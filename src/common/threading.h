#ifndef ODEVIEW_COMMON_THREADING_H_
#define ODEVIEW_COMMON_THREADING_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace ode {

/// A small dense id for the calling thread (1, 2, 3, ... in first-use
/// order), cached thread-locally. Used by log records and trace events,
/// where `std::thread::id` is too opaque to read.
uint32_t CurrentThreadId();

class CondVar;

/// The engine's mutex: a `std::mutex` carrying a static lock rank and
/// Clang thread-safety annotations. Every acquisition is checked
/// against the thread's held-lock stack by the `LockRankValidator`
/// (out-of-order acquisition aborts in debug builds, is counted and
/// journaled in release builds), and ranks flagged watchdog-visible
/// claim a `HoldRegistry` slot for the duration of the hold — covering
/// the blocking wait too, so a thread wedged *acquiring* the lock
/// surfaces in crash dumps.
class ODE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank)
      : rank_(rank),
        name_(LockRankName(rank)),
        watchdog_visible_(IsWatchdogVisible(rank)) {}
  Mutex(LockRank rank, const char* name)
      : rank_(rank),
        name_(name),
        watchdog_visible_(IsWatchdogVisible(rank)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ODE_ACQUIRE();
  bool TryLock() ODE_TRY_ACQUIRE(true);
  void Unlock() ODE_RELEASE();

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  static bool IsWatchdogVisible(LockRank rank) {
    const LockRankInfo* info = FindLockRankInfo(rank);
    return info != nullptr && info->watchdog_visible;
  }
  /// Condition-variable support: drop/reclaim the validator entry and
  /// hold slot around a wait (the wait releases the native mutex).
  void PrepareWait();
  void FinishWait();

  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
  const bool watchdog_visible_;
  /// HoldRegistry slot while locked (-1 = untracked). Written after
  /// acquisition and read before release, so the mutex itself orders
  /// access.
  int hold_slot_ = -1;
};

/// Reader/writer companion to `Mutex` (wraps `std::shared_mutex`).
/// Exclusive mode behaves exactly like `Mutex`; shared mode reports to
/// the validator but never claims watchdog hold slots (shared holds
/// are many and short).
class ODE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank)
      : rank_(rank),
        name_(LockRankName(rank)),
        watchdog_visible_(IsWatchdogVisible(rank)) {}
  SharedMutex(LockRank rank, const char* name)
      : rank_(rank),
        name_(name),
        watchdog_visible_(IsWatchdogVisible(rank)) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ODE_ACQUIRE();
  bool TryLock() ODE_TRY_ACQUIRE(true);
  void Unlock() ODE_RELEASE();

  void LockShared() ODE_ACQUIRE_SHARED();
  bool TryLockShared() ODE_TRY_ACQUIRE_SHARED(true);
  void UnlockShared() ODE_RELEASE_SHARED();

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  static bool IsWatchdogVisible(LockRank rank) {
    const LockRankInfo* info = FindLockRankInfo(rank);
    return info != nullptr && info->watchdog_visible;
  }

  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
  const bool watchdog_visible_;
  int hold_slot_ = -1;  ///< see Mutex::hold_slot_
};

/// RAII exclusive lock on a `Mutex`, relockable for wait loops that
/// drop the lock mid-scope (the watchdog scanner does this).
class ODE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ODE_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
    owned_ = true;
  }
  ~MutexLock() ODE_RELEASE() {
    if (owned_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Lock() ODE_ACQUIRE() {
    mu_->Lock();
    owned_ = true;
  }
  void Unlock() ODE_RELEASE() {
    owned_ = false;
    mu_->Unlock();
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool owned_ = false;
};

/// RAII exclusive lock on a `SharedMutex`.
class ODE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ODE_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() ODE_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared (reader) lock on a `SharedMutex`.
class ODE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ODE_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() ODE_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable paired with `ode::Mutex`. Waits release the
/// mutex, so the wrapper returns the mutex's watchdog hold slot and
/// validator entry for the duration of the block (a thread parked on a
/// condition is not "holding" anything worth flagging) and reclaims
/// them before returning.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// `lock` must be held; it is held again on return.
  void Wait(MutexLock& lock);
  /// Returns `std::cv_status::timeout` when `timeout` elapsed first.
  std::cv_status WaitFor(MutexLock& lock, std::chrono::nanoseconds timeout);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A single worker thread draining a FIFO of closures.
///
/// The thread is spawned lazily on the first `Submit()` so idle owners
/// (e.g. a buffer pool that never prefetches) cost nothing. `Stop()`
/// drops pending tasks and joins; after `Stop()` further submissions
/// are ignored. All methods are thread-safe.
class BackgroundWorker {
 public:
  BackgroundWorker() = default;
  ~BackgroundWorker() { Stop(); }

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  /// Enqueues `task`; starts the worker thread on first use.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Drain();

  /// Drops pending tasks, asks the worker to exit, and joins it.
  void Stop();

  /// Tasks queued but not yet started (approximate, for backpressure).
  size_t pending() const;

 private:
  void Loop();

  mutable Mutex mu_{LockRank::kBackgroundWorker};
  CondVar work_cv_;  ///< wakes the worker
  CondVar idle_cv_;  ///< wakes Drain()
  std::deque<std::function<void()>> queue_ ODE_GUARDED_BY(mu_);
  std::thread thread_ ODE_GUARDED_BY(mu_);
  bool started_ ODE_GUARDED_BY(mu_) = false;
  bool stopping_ ODE_GUARDED_BY(mu_) = false;
  bool busy_ ODE_GUARDED_BY(mu_) = false;
};

}  // namespace ode

#endif  // ODEVIEW_COMMON_THREADING_H_
