// Group commit vs per-commit fsync.
//
// Every committed write transaction must make the log durable before
// it is acknowledged. The baseline (`group=0`) fsyncs once per commit;
// group commit (`group=1`) lets one leader's fsync cover every
// follower whose commit record it flushed. The win shows up under
// concurrency: N sessions commit with ~1 fsync per batch instead of N.
//
// Args: {group_commit, sessions}. Each iteration runs `sessions`
// threads x kCommitsPerThread acknowledged commits against an on-disk
// database; `fsyncs_per_commit` reports the measured batching factor
// from the wal.* instruments.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "odb/database.h"

namespace ode::bench {
namespace {

constexpr int kCommitsPerThread = 4;

constexpr char kSchema[] = R"(
persistent class entry {
public:
  string payload;
};
)";

void BM_WalCommit(benchmark::State& state) {
  const bool group = state.range(0) != 0;
  const int sessions = static_cast<int>(state.range(1));
  const std::string path = "/tmp/ode_bench_wal_" +
                           std::to_string(state.range(0)) + "_" +
                           std::to_string(sessions) + ".db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  odb::DatabaseOptions options;
  options.wal_group_commit = group;
  auto db = ValueOrDie(odb::Database::CreateOnDisk(path, "bench", options),
                       "create db");
  CheckOk(db->DefineSchema(kSchema), "schema");

  obs::Counter* commits = obs::Registry::Global().counter("wal.commits");
  obs::Counter* fsyncs = obs::Registry::Global().counter("wal.fsyncs");
  const uint64_t commits_before = commits->value();
  const uint64_t fsyncs_before = fsyncs->value();

  const odb::Value payload =
      odb::Value::Struct({{"payload", odb::Value::String("forty-two bytes "
                                                         "of durable data")}});
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(sessions));
    for (int t = 0; t < sessions; ++t) {
      workers.emplace_back([&db, &payload] {
        odb::Session session = db->OpenSession();
        for (int i = 0; i < kCommitsPerThread; ++i) {
          benchmark::DoNotOptimize(
              ValueOrDie(session.CreateObject("entry", payload), "create"));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  const double committed =
      static_cast<double>(commits->value() - commits_before);
  if (committed > 0) {
    state.counters["fsyncs_per_commit"] =
        static_cast<double>(fsyncs->value() - fsyncs_before) / committed;
  }
  state.SetItemsProcessed(state.iterations() * sessions * kCommitsPerThread);

  db.reset();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}
BENCHMARK(BM_WalCommit)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
