#include "odb/exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <unordered_map>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/trace.h"
#include "odb/database.h"
#include "odb/exec/compiled_predicate.h"
#include "odb/exec/explain.h"

namespace ode::odb::exec {

namespace {

obs::Counter& ExecBatches() {
  static obs::Counter* c = obs::Registry::Global().counter("exec.batches");
  return *c;
}
obs::Counter& ExecRowsScanned() {
  static obs::Counter* c =
      obs::Registry::Global().counter("exec.rows.scanned");
  return *c;
}
obs::Counter& ExecRowsMatched() {
  static obs::Counter* c =
      obs::Registry::Global().counter("exec.rows.matched");
  return *c;
}
obs::Counter& ExecRowsSkippedDecode() {
  static obs::Counter* c =
      obs::Registry::Global().counter("exec.rows.skipped_decode");
  return *c;
}
obs::Counter& ExecJoinBuildRows() {
  static obs::Counter* c =
      obs::Registry::Global().counter("exec.join.build_rows");
  return *c;
}
obs::Counter& ExecJoinProbeRows() {
  static obs::Counter* c =
      obs::Registry::Global().counter("exec.join.probe_rows");
  return *c;
}
obs::Counter& ExecJoinPairs() {
  static obs::Counter* c =
      obs::Registry::Global().counter("exec.join.pairs");
  return *c;
}
obs::Histogram& ExecScanLatency() {
  static obs::Histogram* h =
      obs::Registry::Global().histogram("exec.scan.latency_ns");
  return *h;
}

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scans one contiguous id range (`after`, `last`] of the cluster,
/// filtering batches through the compiled predicate.
Status ScanPartition(Database* db, const ScanSpec& spec,
                     const CompiledPredicate& compiled,
                     const ProjectionMask* mask, uint64_t after,
                     uint64_t last, ScanResult* out) {
  BatchScanner scanner(db, spec.class_name, after, last, mask,
                       spec.batch_size);
  CompiledPredicate::Scratch scratch;
  RowBatch batch;
  while (true) {
    ODE_ASSIGN_OR_RETURN(bool more, scanner.Next(&batch));
    if (!more) break;
    out->stats.batches += 1;
    out->stats.rows_scanned += batch.size();
    out->stats.skipped_fields += batch.skipped_fields;
    out->stats.arena_bytes += batch.arena_bytes;
    if (spec.injected_delay_ns_per_batch > 0) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(spec.injected_delay_ns_per_batch));
    }
    if (!compiled.always_true()) {
      out->stats.predicate_evals += batch.size();
      ODE_RETURN_IF_ERROR(
          compiled.EvaluateBatch(batch.values.data(), batch.size(),
                                 &scratch));
    }
    size_t matched = batch.size();
    if (!compiled.always_true()) {
      matched = 0;
      for (size_t i = 0; i < batch.size(); ++i) matched += scratch.truth[i];
    }
    if (out->rows.capacity() < out->rows.size() + matched) {
      // Keep geometric growth: a bare reserve() per batch would
      // reallocate every batch on long scans.
      out->rows.reserve(
          std::max(out->rows.size() + matched, out->rows.capacity() * 2));
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!compiled.always_true() && scratch.truth[i] == 0) continue;
      ScanRow row;
      row.oid = Oid{batch.cluster, batch.locals[i]};
      row.version = batch.versions[i];
      if (spec.emit_values) row.value = std::move(batch.values[i]);
      out->rows.push_back(std::move(row));
    }
  }
  out->stats.rows_matched = out->rows.size();
  return Status::OK();
}

void PublishScanStats(const ScanStats& stats) {
  ExecBatches().Add(stats.batches);
  ExecRowsScanned().Add(stats.rows_scanned);
  ExecRowsMatched().Add(stats.rows_matched);
  ExecRowsSkippedDecode().Add(stats.skipped_fields);
  // Exec-level charges land exactly once, on the caller's profile —
  // partition workers adopt the profile only for the storage and lock
  // charges they incur themselves.
  if (auto* profile = obs::CurrentOpProfile()) {
    profile->ChargeScan(stats.rows_scanned, stats.rows_matched,
                        stats.skipped_fields, stats.predicate_evals,
                        stats.batches,
                        static_cast<uint64_t>(stats.partitions));
  }
  obs::Journal::Global().Append(obs::JournalEvent::kExecScan,
                                static_cast<int64_t>(stats.rows_scanned),
                                static_cast<int64_t>(stats.rows_matched));
}

}  // namespace

Result<ScanResult> ExecuteScan(Database* db, const ScanSpec& spec) {
  ODE_TRACE_SPAN("exec.scan");
  obs::ScopedLatencyTimer timer(&ExecScanLatency());
  CompiledPredicate compiled = spec.predicate != nullptr
                                   ? CompiledPredicate::Compile(*spec.predicate)
                                   : CompiledPredicate();
  ProjectionMask mask;
  const ProjectionMask* mask_ptr = nullptr;
  if (!spec.project_all) {
    if (spec.predicate != nullptr) {
      for (const std::string& path : spec.predicate->AttributePaths()) {
        mask.AddPath(path);
      }
    }
    if (spec.projection != nullptr) {
      for (const std::string& path : *spec.projection) mask.AddPath(path);
    }
    mask_ptr = &mask;
  }

  ScanResult result;
  if (mask_ptr != nullptr && mask.size() == 0 && compiled.always_true()) {
    // Nothing to decode and nothing to filter: ids straight from the
    // heap directory.
    ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids,
                         db->ScanCluster(spec.class_name));
    result.rows.reserve(ids.size());
    for (Oid oid : ids) {
      ScanRow row;
      row.oid = oid;
      result.rows.push_back(std::move(row));
    }
    result.stats.rows_scanned = ids.size();
    result.stats.rows_matched = ids.size();
    PublishScanStats(result.stats);
    return result;
  }

  size_t workers = spec.parallelism > 1
                       ? static_cast<size_t>(spec.parallelism)
                       : 1;
  if (workers <= 1) {
    ODE_RETURN_IF_ERROR(ScanPartition(
        db, spec, compiled, mask_ptr, /*after=*/0,
        /*last=*/std::numeric_limits<uint64_t>::max(), &result));
    PublishScanStats(result.stats);
    return result;
  }

  // Parallel path: snapshot the id set, split it into contiguous
  // ranges, scan each on its own thread. Partitions only ever take
  // the schema lock shared (rank kDbSchema down through the pool
  // ranks), so workers obey the PR-4 lock order independently.
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids,
                       db->ScanCluster(spec.class_name));
  workers = std::min(workers, ids.empty() ? size_t{1} : ids.size());
  if (workers <= 1) {
    ODE_RETURN_IF_ERROR(ScanPartition(
        db, spec, compiled, mask_ptr, /*after=*/0,
        /*last=*/std::numeric_limits<uint64_t>::max(), &result));
    PublishScanStats(result.stats);
    return result;
  }
  const size_t chunk = (ids.size() + workers - 1) / workers;
  std::vector<ScanResult> parts(workers);
  std::vector<Status> statuses(workers, Status::OK());
  obs::TraceContext parent = obs::CurrentTraceContext();
  obs::OpProfile* parent_profile = obs::CurrentOpProfile();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(begin + chunk, ids.size());
    if (begin >= end) break;
    // Strictly follow the previous partition's last id, so records
    // created between the snapshot and the scan fall into no
    // partition twice.
    uint64_t after = begin == 0 ? 0 : ids[begin - 1].local;
    uint64_t last = ids[end - 1].local;
    threads.emplace_back([&, w, after, last, parent, parent_profile] {
      obs::TraceContextScope adopt(parent);
      obs::OpProfileScope adopt_profile(parent_profile);
      ODE_TRACE_SPAN("exec.scan.partition");
      statuses[w] =
          ScanPartition(db, spec, compiled, mask_ptr, after, last, &parts[w]);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& status : statuses) ODE_RETURN_IF_ERROR(status);
  result.stats.partitions = static_cast<int>(threads.size());
  for (ScanResult& part : parts) {
    result.stats.batches += part.stats.batches;
    result.stats.rows_scanned += part.stats.rows_scanned;
    result.stats.rows_matched += part.stats.rows_matched;
    result.stats.skipped_fields += part.stats.skipped_fields;
    result.stats.predicate_evals += part.stats.predicate_evals;
    result.stats.arena_bytes += part.stats.arena_bytes;
    for (ScanRow& row : part.rows) result.rows.push_back(std::move(row));
  }
  PublishScanStats(result.stats);
  return result;
}

namespace {

/// Flattens the top-level `&&` chain.
void CollectConjuncts(const Predicate& predicate,
                      std::vector<const Predicate*>* out) {
  if (predicate.kind() == Predicate::Kind::kAnd) {
    CollectConjuncts(predicate.children()[0], out);
    CollectConjuncts(predicate.children()[1], out);
    return;
  }
  out->push_back(&predicate);
}

struct EquiKey {
  bool found = false;
  std::string left_path;   ///< side-stripped
  std::string right_path;  ///< side-stripped
};

/// Finds a `left.x == right.y` conjunct usable as a hash-join key.
EquiKey FindEquiKey(const Predicate& predicate) {
  std::vector<const Predicate*> conjuncts;
  CollectConjuncts(predicate, &conjuncts);
  EquiKey key;
  for (const Predicate* conjunct : conjuncts) {
    if (conjunct->kind() != Predicate::Kind::kCompare ||
        conjunct->compare_op() != CompareOp::kEq) {
      continue;
    }
    const Operand& lhs = conjunct->compare_lhs();
    const Operand& rhs = conjunct->compare_rhs();
    if (lhs.kind != Operand::Kind::kAttribute ||
        rhs.kind != Operand::Kind::kAttribute) {
      continue;
    }
    auto split = [](const std::string& path, std::string_view* head,
                    std::string_view* rest) {
      size_t dot = path.find('.');
      *head = std::string_view(path).substr(0, dot);
      *rest = dot == std::string::npos
                  ? std::string_view{}
                  : std::string_view(path).substr(dot + 1);
    };
    std::string_view lhead, lrest, rhead, rrest;
    split(lhs.path, &lhead, &lrest);
    split(rhs.path, &rhead, &rrest);
    if (lrest.empty() || rrest.empty()) continue;
    if (lhead == "left" && rhead == "right") {
      key.left_path = std::string(lrest);
      key.right_path = std::string(rrest);
    } else if (lhead == "right" && rhead == "left") {
      key.left_path = std::string(rrest);
      key.right_path = std::string(lrest);
    } else {
      continue;  // same-side equality: no join key
    }
    key.found = true;
    return key;
  }
  return key;
}

enum class KeyState { kOk, kMissing, kUnhashable };

/// Normalizes a key value to hashable bytes matching the predicate
/// language's equality: numerics (bool/int/real) collapse to their
/// double, strings hash as bytes, null joins null. Non-scalar kinds —
/// and NaN, whose equality is not transitive across kinds in the
/// legacy evaluator — report kUnhashable so the join falls back to
/// the nested loop.
KeyState NormalizeKey(const Value* value, std::string* out) {
  out->clear();
  if (value == nullptr) return KeyState::kMissing;
  switch (value->kind()) {
    case ValueKind::kNull:
      out->push_back('n');
      return KeyState::kOk;
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kReal: {
      Result<double> number = value->ToNumber();
      if (!number.ok()) return KeyState::kUnhashable;
      double d = *number;
      if (std::isnan(d)) return KeyState::kUnhashable;
      if (d == 0.0) d = 0.0;  // collapse -0.0 into +0.0
      out->push_back('d');
      out->append(reinterpret_cast<const char*>(&d), sizeof(d));
      return KeyState::kOk;
    }
    case ValueKind::kString:
      out->push_back('s');
      out->append(value->AsString());
      return KeyState::kOk;
    default:
      return KeyState::kUnhashable;
  }
}

/// Computes normalized keys for every row; false if any key is
/// unhashable (the caller abandons the hash join).
bool ComputeKeys(const std::vector<ScanRow>& rows, const std::string& path,
                 std::vector<std::string>* keys,
                 std::vector<uint8_t>* present) {
  keys->assign(rows.size(), {});
  present->assign(rows.size(), 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value* v = rows[i].value.FindPath(path);
    switch (NormalizeKey(v, &(*keys)[i])) {
      case KeyState::kOk:
        (*present)[i] = 1;
        break;
      case KeyState::kMissing:
        break;  // cannot satisfy the equality conjunct: joins nothing
      case KeyState::kUnhashable:
        return false;
    }
  }
  return true;
}

}  // namespace

namespace {

/// Runs `body` under a fresh nested profile when `actuals` is wanted,
/// recording wall time and the phase's resource snapshot, then merges
/// the nested profile back into the enclosing one (so session totals
/// and the op's own slow-log record stay complete). With no actuals
/// requested the body runs directly under the caller's profile.
template <typename Body>
auto RunJoinPhase(bool collect, uint64_t* out_ns,
                  obs::OpProfileStats* out_profile, Body body)
    -> decltype(body()) {
  if (!collect) return body();
  obs::OpProfile phase_profile;
  uint64_t start = MonotonicNs();
  decltype(body()) result = [&] {
    obs::OpProfileScope scope(&phase_profile);
    return body();
  }();
  *out_ns = MonotonicNs() - start;
  *out_profile = phase_profile.Snapshot();
  if (auto* enclosing = obs::CurrentOpProfile()) {
    phase_profile.MergeInto(enclosing);
  }
  return result;
}

}  // namespace

Result<JoinResult> ExecuteJoin(Database* db, const JoinSpec& spec,
                               JoinPhaseActuals* actuals) {
  ODE_TRACE_SPAN("exec.join");
  Predicate always = Predicate::True();
  const Predicate& predicate =
      spec.predicate != nullptr ? *spec.predicate : always;
  ODE_ASSIGN_OR_RETURN(CompiledPredicate compiled,
                       CompiledPredicate::CompileJoin(predicate));

  // Each side materializes only the attributes its slots touch.
  std::vector<std::string> left_paths, right_paths;
  bool left_all = false, right_all = false;
  for (const CompiledPredicate::Slot& slot : compiled.slots()) {
    bool left = slot.side == CompiledPredicate::Side::kLeft;
    if (slot.parts.empty()) {
      (left ? left_all : right_all) = true;
    } else {
      (left ? left_paths : right_paths).push_back(slot.dotted);
    }
  }
  auto scan_side = [&](const std::string& class_name,
                       const std::vector<std::string>& paths,
                       bool all) -> Result<ScanResult> {
    ScanSpec scan;
    scan.class_name = class_name;
    scan.projection = &paths;
    scan.project_all = all;
    scan.batch_size = spec.batch_size;
    return ExecuteScan(db, scan);
  };
  const bool collect = actuals != nullptr;
  JoinPhaseActuals scratch_actuals;
  JoinPhaseActuals& act = collect ? *actuals : scratch_actuals;
  ODE_ASSIGN_OR_RETURN(
      ScanResult lefts,
      RunJoinPhase(collect, &act.left_ns, &act.left_profile, [&] {
        return scan_side(spec.left_class, left_paths, left_all);
      }));
  ODE_ASSIGN_OR_RETURN(
      ScanResult rights,
      RunJoinPhase(collect, &act.right_ns, &act.right_profile, [&] {
        return scan_side(spec.right_class, right_paths, right_all);
      }));
  act.left_scan = lefts.stats;
  act.right_scan = rights.stats;

  uint64_t match_start = collect ? MonotonicNs() : 0;
  JoinResult out;
  CompiledPredicate::Scratch scratch;
  EquiKey key = FindEquiKey(predicate);
  bool hashed = false;
  if (key.found) {
    std::vector<std::string> left_keys, right_keys;
    std::vector<uint8_t> left_present, right_present;
    if (ComputeKeys(lefts.rows, key.left_path, &left_keys, &left_present) &&
        ComputeKeys(rights.rows, key.right_path, &right_keys,
                    &right_present)) {
      hashed = true;
      out.stats.hash_join = true;
      out.stats.built_left = lefts.rows.size() <= rights.rows.size();
      const std::vector<ScanRow>& build =
          out.stats.built_left ? lefts.rows : rights.rows;
      const std::vector<ScanRow>& probe =
          out.stats.built_left ? rights.rows : lefts.rows;
      const std::vector<std::string>& build_keys =
          out.stats.built_left ? left_keys : right_keys;
      const std::vector<std::string>& probe_keys =
          out.stats.built_left ? right_keys : left_keys;
      const std::vector<uint8_t>& build_present =
          out.stats.built_left ? left_present : right_present;
      const std::vector<uint8_t>& probe_present =
          out.stats.built_left ? right_present : left_present;
      std::unordered_map<std::string, std::vector<uint32_t>> table;
      table.reserve(build.size());
      for (size_t i = 0; i < build.size(); ++i) {
        if (!build_present[i]) continue;
        table[build_keys[i]].push_back(static_cast<uint32_t>(i));
        out.stats.build_rows += 1;
      }
      out.stats.probe_rows = probe.size();
      for (size_t p = 0; p < probe.size(); ++p) {
        if (!probe_present[p]) continue;
        auto bucket = table.find(probe_keys[p]);
        if (bucket == table.end()) continue;
        for (uint32_t b : bucket->second) {
          const ScanRow& lrow =
              out.stats.built_left ? build[b] : probe[p];
          const ScanRow& rrow =
              out.stats.built_left ? probe[p] : build[b];
          // Residual: the *full* predicate re-runs over the candidate
          // pair, so hash-bucket collisions and the remaining
          // conjuncts resolve with the exact legacy semantics.
          ODE_ASSIGN_OR_RETURN(
              bool match,
              compiled.EvaluatePair(lrow.value, rrow.value, &scratch));
          if (match) out.pairs.emplace_back(lrow.oid, rrow.oid);
        }
      }
    }
  }
  if (!hashed) {
    // Batched nested loop: still avoids the legacy path's per-pair
    // object fetch and combined-struct allocation.
    out.stats.probe_rows = lefts.rows.size() * rights.rows.size();
    for (const ScanRow& lrow : lefts.rows) {
      for (const ScanRow& rrow : rights.rows) {
        ODE_ASSIGN_OR_RETURN(
            bool match,
            compiled.EvaluatePair(lrow.value, rrow.value, &scratch));
        if (match) out.pairs.emplace_back(lrow.oid, rrow.oid);
      }
    }
  }
  std::sort(out.pairs.begin(), out.pairs.end(),
            [](const std::pair<Oid, Oid>& a, const std::pair<Oid, Oid>& b) {
              if (a.first.local != b.first.local) {
                return a.first.local < b.first.local;
              }
              return a.second.local < b.second.local;
            });
  out.stats.pairs = out.pairs.size();
  // Join row flow is reference affinity: each matched pair is an edge
  // the clustering advisor can mine for co-location candidates.
  if (obs::AccessLog::Global().enabled() && !out.pairs.empty()) {
    const char* left_label = obs::Journal::InternLabel(spec.left_class);
    const char* right_label = obs::Journal::InternLabel(spec.right_class);
    for (const auto& [left_oid, right_oid] : out.pairs) {
      obs::AccessLog::Global().RecordAffinity(
          left_oid.cluster, left_oid.local, left_label, right_oid.cluster,
          right_oid.local, right_label);
    }
  }
  ExecJoinBuildRows().Add(out.stats.build_rows);
  ExecJoinProbeRows().Add(out.stats.probe_rows);
  ExecJoinPairs().Add(out.stats.pairs);
  if (auto* profile = obs::CurrentOpProfile()) {
    profile->ChargeJoin(out.stats.build_rows, out.stats.probe_rows,
                        out.stats.pairs);
  }
  if (collect) {
    act.match_ns = MonotonicNs() - match_start;
    // The match phase touches no storage (both sides are already
    // materialized), so its profile is the join-row charge alone.
    act.match_profile.join_build_rows = out.stats.build_rows;
    act.match_profile.join_probe_rows = out.stats.probe_rows;
    act.match_profile.join_pairs = out.stats.pairs;
  }
  obs::Journal::Global().Append(obs::JournalEvent::kExecJoin,
                                static_cast<int64_t>(out.stats.build_rows),
                                static_cast<int64_t>(out.stats.pairs));
  return out;
}

bool FindHashJoinKey(const Predicate& predicate, std::string* left_path,
                     std::string* right_path) {
  EquiKey key = FindEquiKey(predicate);
  if (!key.found) return false;
  *left_path = key.left_path;
  *right_path = key.right_path;
  return true;
}

}  // namespace ode::odb::exec
