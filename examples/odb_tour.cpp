// odb_tour: the Ode substrate on its own — persistence to disk,
// constraints, triggers, versioned objects, and selection, without
// the GUI. This is the database a downstream user gets even if they
// never open OdeView.

#include <cstdio>
#include <string>

#include "odb/database.h"
#include "odb/predicate.h"

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::ode::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

#define CHECK_ASSIGN(lhs, expr)                                     \
  auto lhs##_result = (expr);                                       \
  if (!lhs##_result.ok()) {                                         \
    std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                 lhs##_result.status().ToString().c_str());         \
    return 1;                                                       \
  }                                                                 \
  auto& lhs = *lhs##_result

constexpr char kSchema[] = R"(
// An issue tracker, in the O++ subset.
persistent class user {
public:
  string login;
  int karma;
  constraint karma >= 0;
};

persistent versioned class ticket {
public:
  string title;
  string state;
  int priority;
  user* assignee;
  set<user*> watchers;
  displaylist title, state, priority;
  selectlist title, state, priority;
  constraint priority >= 0 && priority <= 4;
  trigger escalated: on_update when priority >= 3 do page_oncall;
};
)";

}  // namespace

int main() {
  using namespace ode;
  const std::string path = "/tmp/odeview_odb_tour.db";
  std::remove(path.c_str());

  // ---- create a database on disk ---------------------------------------
  odb::Oid ticket_oid;
  {
    CHECK_ASSIGN(db, odb::Database::CreateOnDisk(path, "tracker"));
    CHECK_OK(db->DefineSchema(kSchema));

    CHECK_ASSIGN(amy, db->CreateObject(
                          "user", odb::Value::Struct(
                                      {{"login", odb::Value::String("amy")},
                                       {"karma", odb::Value::Int(10)}})));
    CHECK_ASSIGN(bob, db->CreateObject(
                          "user", odb::Value::Struct(
                                      {{"login", odb::Value::String("bob")},
                                       {"karma", odb::Value::Int(3)}})));

    // Constraints reject bad objects atomically.
    Status bad = db->CreateObject(
                       "user", odb::Value::Struct(
                                   {{"login", odb::Value::String("evil")},
                                    {"karma", odb::Value::Int(-1)}}))
                     .status();
    std::printf("negative karma rejected: %s\n", bad.ToString().c_str());

    CHECK_ASSIGN(
        ticket,
        db->CreateObject(
            "ticket",
            odb::Value::Struct(
                {{"title", odb::Value::String("browser crashes on zoom")},
                 {"state", odb::Value::String("open")},
                 {"priority", odb::Value::Int(1)},
                 {"assignee", odb::Value::Ref(amy, "user")},
                 {"watchers", odb::Value::Set(
                                  {odb::Value::Ref(bob, "user")})}})));
    ticket_oid = ticket;

    // Versioned updates retain history; the trigger fires at p3.
    for (int priority = 2; priority <= 4; ++priority) {
      CHECK_ASSIGN(buffer, db->GetObject(ticket));
      *buffer.value.FindMutableField("priority") =
          odb::Value::Int(priority);
      if (priority == 4) {
        *buffer.value.FindMutableField("state") =
            odb::Value::String("critical");
      }
      CHECK_OK(db->UpdateObject(ticket, buffer.value));
    }
    std::printf("\ntrigger log:\n");
    for (const odb::TriggerFiring& firing : db->trigger_log()) {
      std::printf("  %s on %s %s -> action %s\n",
                  firing.trigger_name.c_str(),
                  firing.class_name.c_str(), firing.oid.ToString().c_str(),
                  firing.action.c_str());
    }

    CHECK_ASSIGN(versions, db->ListVersions(ticket));
    std::printf("\nretained versions of %s:", ticket.ToString().c_str());
    for (uint32_t v : versions) std::printf(" v%u", v);
    std::printf("\n");
    CHECK_ASSIGN(v1, db->GetObjectVersion(ticket, 1));
    std::printf("  v1 priority = %lld\n",
                static_cast<long long>(
                    v1.value.FindField("priority")->AsInt()));

    CHECK_OK(db->Sync());
  }  // database closed

  // ---- reopen from disk --------------------------------------------------
  {
    CHECK_ASSIGN(db, odb::Database::OpenOnDisk(path));
    std::printf("\nreopened '%s': %zu classes, %llu tickets\n",
                db->name().c_str(), db->schema().size(),
                static_cast<unsigned long long>(
                    *db->ClusterCount("ticket")));
    CHECK_ASSIGN(ticket, db->GetObject(ticket_oid));
    std::printf("ticket survives restart at v%u: %s\n", ticket.version,
                ticket.value.ToString().c_str());

    // Selection through the object manager (what §5.2 pushes down).
    CHECK_ASSIGN(p, odb::ParsePredicate(
                        "priority >= 3 && state == \"critical\""));
    CHECK_ASSIGN(hot, db->Select("ticket", p));
    std::printf("critical tickets: %zu\n", hot.size());

    // Sequencing — the object-set window's engine.
    odb::ObjectCursor cursor(db.get(), "user");
    std::printf("users:");
    while (true) {
      Result<odb::ObjectBuffer> next = cursor.Next();
      if (!next.ok()) break;
      std::printf(" %s", next->value.FindField("login")->AsString().c_str());
    }
    std::printf("\n");
  }
  std::remove(path.c_str());
  return 0;
}
