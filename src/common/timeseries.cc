#include "common/timeseries.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/trace.h"

namespace ode::obs {

TimeSeriesStore::TimeSeriesStore(uint64_t resolution_ns, size_t slots)
    : resolution_ns_(resolution_ns == 0 ? kDefaultResolutionNs : resolution_ns),
      slots_(slots == 0 ? kDefaultSlots : slots) {}

TimeSeriesStore::~TimeSeriesStore() { Stop(); }

TimeSeriesStore& TimeSeriesStore::Global() {
  // Leaked: telemetry scrapes may race static destruction.
  static TimeSeriesStore* store = new TimeSeriesStore();
  return *store;
}

Status TimeSeriesStore::Configure(uint64_t resolution_ns, size_t slots) {
  MutexLock lock(mu_);
  if (running_) {
    return Status::FailedPrecondition(
        "timeseries store is running; stop it before reconfiguring");
  }
  if (resolution_ns == 0 || slots == 0) {
    return Status::InvalidArgument("resolution and slot count must be nonzero");
  }
  resolution_ns_ = resolution_ns;
  slots_ = slots;
  series_.clear();
  ticks_ = 0;
  return Status::OK();
}

void TimeSeriesStore::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  if (thread_.joinable()) thread_.join();  // reap a finished generation
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void TimeSeriesStore::Stop() {
  std::thread to_join;
  {
    MutexLock lock(mu_);
    if (!running_ && !thread_.joinable()) return;
    stopping_ = true;
    wake_cv_.NotifyAll();
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
  MutexLock lock(mu_);
  running_ = false;
  stopping_ = false;
}

bool TimeSeriesStore::running() const {
  MutexLock lock(mu_);
  return running_;
}

uint64_t TimeSeriesStore::resolution_ns() const {
  MutexLock lock(mu_);
  return resolution_ns_;
}

size_t TimeSeriesStore::slots() const {
  MutexLock lock(mu_);
  return slots_;
}

uint64_t TimeSeriesStore::tick_count() const {
  MutexLock lock(mu_);
  return ticks_;
}

void TimeSeriesStore::TickOnce() {
  // The registry snapshot is taken lock-free with respect to `mu_`
  // (and would be legal under it too: kTimeSeries 182 < kMetricsRegistry
  // 200) so a slow snapshot never blocks readers of the history.
  std::vector<MetricSample> samples = Registry::Global().Snapshot();
  uint64_t now_ns = Tracing::NowNanos();
  MutexLock lock(mu_);
  Fold(samples, now_ns);
}

void TimeSeriesStore::Fold(const std::vector<MetricSample>& samples,
                           uint64_t now_ns) {
  for (const MetricSample& s : samples) {
    Ring& ring = series_[s.name];
    ring.kind = s.kind;
    if (ring.points.size() != slots_) {
      ring.points.assign(slots_, TimeSeriesPoint{});
      ring.next = 0;
      ring.size = 0;
    }
    TimeSeriesPoint& p = ring.points[ring.next];
    p.ts_ns = now_ns;
    p.value = s.value;
    p.count = s.count;
    if (s.kind == MetricSample::Kind::kHistogram) {
      // Prefer the rotating window (a burst stays visible under a long
      // uptime); fall back to cumulative while the first window fills.
      if (s.window_count > 0) {
        p.p50 = s.window_p50;
        p.p95 = s.window_p95;
        p.p99 = s.window_p99;
      } else {
        p.p50 = s.p50;
        p.p95 = s.p95;
        p.p99 = s.p99;
      }
    }
    ring.next = (ring.next + 1) % slots_;
    if (ring.size < slots_) ++ring.size;
  }
  ++ticks_;
}

std::vector<TimeSeriesPoint> TimeSeriesStore::Unroll(const Ring& ring) {
  std::vector<TimeSeriesPoint> out;
  out.reserve(ring.size);
  size_t capacity = ring.points.size();
  size_t start = ring.size < capacity ? 0 : ring.next;
  for (size_t i = 0; i < ring.size; ++i) {
    out.push_back(ring.points[(start + i) % capacity]);
  }
  return out;
}

void TimeSeriesStore::Loop() {
  while (true) {
    std::vector<MetricSample> samples = Registry::Global().Snapshot();
    uint64_t now_ns = Tracing::NowNanos();
    MutexLock lock(mu_);
    if (stopping_) return;
    Fold(samples, now_ns);
    uint64_t sleep_ns = resolution_ns_;
    wake_cv_.WaitFor(lock, std::chrono::nanoseconds(sleep_ns));
    if (stopping_) return;
  }
}

TimeSeries TimeSeriesStore::Series(const std::string& name) const {
  TimeSeries out;
  out.name = name;
  MutexLock lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return out;
  out.kind = it->second.kind;
  out.points = Unroll(it->second);
  return out;
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

const char* KindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string TimeSeriesStore::RenderJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"resolution_ns\":" + std::to_string(resolution_ns_) +
                    ",\"slots\":" + std::to_string(slots_) +
                    ",\"ticks\":" + std::to_string(ticks_) + ",\"series\":[";
  bool first_series = true;
  for (const auto& [name, ring] : series_) {
    if (!first_series) out += ",";
    first_series = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, name);
    out += "\",\"kind\":\"";
    out += KindName(ring.kind);
    out += "\",\"points\":[";
    std::vector<TimeSeriesPoint> points = Unroll(ring);
    for (size_t i = 0; i < points.size(); ++i) {
      const TimeSeriesPoint& p = points[i];
      if (i != 0) out += ",";
      out += "{\"ts_ns\":" + std::to_string(p.ts_ns);
      switch (ring.kind) {
        case MetricSample::Kind::kCounter: {
          out += ",\"value\":" + std::to_string(p.value);
          if (i != 0 && p.ts_ns > points[i - 1].ts_ns) {
            double rate =
                static_cast<double>(p.value - points[i - 1].value) * 1e9 /
                static_cast<double>(p.ts_ns - points[i - 1].ts_ns);
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f", rate);
            out += ",\"rate_per_s\":";
            out += buf;
          }
          break;
        }
        case MetricSample::Kind::kGauge:
          out += ",\"value\":" + std::to_string(p.value);
          break;
        case MetricSample::Kind::kHistogram:
          out += ",\"count\":" + std::to_string(p.count) +
                 ",\"p50\":" + std::to_string(p.p50) +
                 ",\"p95\":" + std::to_string(p.p95) +
                 ",\"p99\":" + std::to_string(p.p99);
          break;
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void TimeSeriesStore::ResetForTest() {
  Stop();
  MutexLock lock(mu_);
  resolution_ns_ = kDefaultResolutionNs;
  slots_ = kDefaultSlots;
  series_.clear();
  ticks_ = 0;
}

}  // namespace ode::obs
