/// Fuzzes the ODEACC01 access-trace reader — capture files travel
/// between machines (capture on prod, replay in a lab), so the replay
/// side must treat every frame as hostile: lying fixed32 lengths,
/// truncated frames, wrong CRCs, unknown record types.

#include <cstdint>
#include <string_view>

#include "common/access_log.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto trace = ode::obs::ParseAccessTrace(bytes);
  if (trace.ok()) {
    // Walk what the parser accepted; ASan flags any view past the end.
    for (const auto& rec : trace->records) (void)rec;
  }
  return 0;
}
