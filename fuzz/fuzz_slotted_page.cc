/// Fuzzes the slotted-page loader over a forged 4 KiB page image —
/// what a bit-rotted disk or a hostile file hands the heap layer.
/// Validate() is the gate a page passes at open; a page it accepts
/// must then survive a full slot walk through Get() without a single
/// Corruption (Validate's contract), and FreeSpace/ContiguousFreeSpace
/// must stay within the page.

#include <cstdint>
#include <cstring>
#include <string_view>

#include "odb/page.h"
#include "odb/slotted_page.h"

using ode::odb::kPageSize;
using ode::odb::Page;
using ode::odb::SlottedPage;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  Page page;
  page.Zero();
  std::memcpy(page.bytes(), data, size < kPageSize ? size : kPageSize);

  SlottedPage sp(&page);
  bool valid = sp.Validate().ok();

  for (uint32_t slot = 0; slot < sp.slot_count(); ++slot) {
    auto record = sp.Get(static_cast<uint16_t>(slot));
    if (valid && !record.ok() &&
        record.status().code() != ode::StatusCode::kNotFound) {
      __builtin_trap();  // Validate passed a slot Get rejects
    }
    if (record.ok()) {
      // Touch every byte the view claims — ASan catches any lie.
      const std::string_view view = *record;
      uint8_t sum = 0;
      for (char c : view) sum ^= static_cast<uint8_t>(c);
      (void)sum;
    }
  }
  (void)sp.FreeSpace();
  (void)sp.ContiguousFreeSpace();
  (void)sp.next_page();
  return 0;
}
