// Equivalence suite for the batched executor (src/odb/exec/): for a
// battery of predicates, projections, batch sizes, and parallelism
// levels, the vectorized scan/join must produce exactly what the
// legacy per-object tree-walking path produces — same rows, same
// order, errors where it errors. Plus unit tests for the projection
// primitives (SkipValue, DecodeObjectRecordProjected).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "odb/database.h"
#include "odb/exec/executor.h"
#include "odb/labdb.h"
#include "odb/object_record.h"
#include "odb/predicate.h"
#include "odb/value_codec.h"

namespace ode::odb {
namespace {

class ExecSuite : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::move(*Database::CreateInMemory("lab"));
    LabDbConfig config;
    ASSERT_TRUE(BuildLabDatabase(db_.get(), config).ok());
  }

  /// The legacy path: full materialization + tree-walking Evaluate.
  Result<std::vector<Oid>> ReferenceSelect(const std::string& class_name,
                                           const Predicate& predicate) {
    ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids,
                         db_->ScanCluster(class_name));
    std::vector<Oid> out;
    for (Oid oid : ids) {
      ODE_ASSIGN_OR_RETURN(ObjectBuffer buffer, db_->GetObject(oid));
      ODE_ASSIGN_OR_RETURN(bool keep, predicate.Evaluate(buffer.value));
      if (keep) out.push_back(oid);
    }
    return out;
  }

  /// The legacy join: cross product over combined {left, right} structs.
  Result<std::vector<std::pair<Oid, Oid>>> ReferenceJoin(
      const std::string& left_class, const std::string& right_class,
      const Predicate* predicate) {
    ODE_ASSIGN_OR_RETURN(std::vector<Oid> lefts,
                         db_->ScanCluster(left_class));
    ODE_ASSIGN_OR_RETURN(std::vector<Oid> rights,
                         db_->ScanCluster(right_class));
    std::vector<std::pair<Oid, Oid>> out;
    for (Oid left : lefts) {
      ODE_ASSIGN_OR_RETURN(ObjectBuffer lbuf, db_->GetObject(left));
      for (Oid right : rights) {
        ODE_ASSIGN_OR_RETURN(ObjectBuffer rbuf, db_->GetObject(right));
        bool keep = true;
        if (predicate != nullptr) {
          Value combined = Value::Struct(
              {{"left", lbuf.value}, {"right", rbuf.value}});
          ODE_ASSIGN_OR_RETURN(keep, predicate->Evaluate(combined));
        }
        if (keep) out.emplace_back(left, right);
      }
    }
    return out;
  }

  std::vector<Oid> RowOids(const exec::ScanResult& result) {
    std::vector<Oid> out;
    out.reserve(result.rows.size());
    for (const exec::ScanRow& row : result.rows) out.push_back(row.oid);
    return out;
  }

  std::unique_ptr<Database> db_;
};

// --- scan equivalence -------------------------------------------------------

// Predicates spanning every operator, connective, selectivity edge
// (empty, full, missing attribute), and a ref-valued path.
const char* const kScanPredicates[] = {
    "age > 40",
    "age >= 18",         // constraint guarantees 100% selectivity
    "age < 30",
    "age <= 25",
    "age == 33",
    "age != 33",
    "age > 1000",        // 0% selectivity
    "name == \"rakesh\"",
    "name contains \"a\"",
    "title != \"MTS\"",
    "salary > 0.0",
    "age > 30 && title == \"MTS\"",
    "age < 25 || age > 55",
    "!(age > 40)",
    "name contains \"a\" && (age > 30 || title != \"MTS\")",
    "(age > 20 && age < 60) || name == \"rakesh\"",
    "nonexistent == 1",             // missing attribute: false, not error
    "age > 30 && nonexistent == 1",
    "dept.name == \"research\"",    // path through a ref: unresolvable
};

TEST_F(ExecSuite, ScanMatchesTreeWalkAcrossPredicates) {
  for (const char* text : kScanPredicates) {
    Result<Predicate> predicate = ParsePredicate(text);
    ASSERT_TRUE(predicate.ok()) << text;
    Result<std::vector<Oid>> expected =
        ReferenceSelect("employee", *predicate);
    ASSERT_TRUE(expected.ok()) << text;
    for (size_t batch_size : {size_t{1}, size_t{3}, size_t{1024}}) {
      for (int parallelism : {1, 4}) {
        exec::ScanSpec spec;
        spec.class_name = "employee";
        spec.predicate = &*predicate;
        spec.project_all = true;
        spec.batch_size = batch_size;
        spec.parallelism = parallelism;
        Result<exec::ScanResult> result = exec::ExecuteScan(db_.get(), spec);
        ASSERT_TRUE(result.ok())
            << text << " batch=" << batch_size << " par=" << parallelism
            << ": " << result.status().ToString();
        EXPECT_EQ(RowOids(*result), *expected)
            << text << " batch=" << batch_size << " par=" << parallelism;
      }
    }
  }
}

TEST_F(ExecSuite, ScanRowsCarryFullValuesUnderProjectAll) {
  Predicate predicate = *ParsePredicate("age > 30");
  exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &predicate;
  spec.project_all = true;
  exec::ScanResult result = *exec::ExecuteScan(db_.get(), spec);
  ASSERT_FALSE(result.rows.empty());
  for (const exec::ScanRow& row : result.rows) {
    ObjectBuffer buffer = *db_->GetObject(row.oid);
    EXPECT_EQ(row.value, buffer.value);
    EXPECT_EQ(row.version, buffer.version);
  }
  EXPECT_EQ(result.stats.skipped_fields, 0u);
}

TEST_F(ExecSuite, TypeMismatchErrorsOnBothPaths) {
  Predicate predicate = *ParsePredicate("name > 3");
  Result<std::vector<Oid>> reference =
      ReferenceSelect("employee", predicate);
  EXPECT_FALSE(reference.ok());
  exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &predicate;
  Result<exec::ScanResult> result = exec::ExecuteScan(db_.get(), spec);
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecSuite, ShortCircuitSuppressesErrorsLikeTreeWalk) {
  // The right conjunct/disjunct would be a type error, but the left
  // side short-circuits it for every row — legacy Evaluate never sees
  // the error, so the batched path must not either.
  for (const char* text : {"age > 1000 && name > 3", "age >= 18 || name > 3"}) {
    Predicate predicate = *ParsePredicate(text);
    Result<std::vector<Oid>> expected =
        ReferenceSelect("employee", predicate);
    ASSERT_TRUE(expected.ok()) << text;
    exec::ScanSpec spec;
    spec.class_name = "employee";
    spec.predicate = &predicate;
    spec.project_all = true;
    Result<exec::ScanResult> result = exec::ExecuteScan(db_.get(), spec);
    ASSERT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    EXPECT_EQ(RowOids(*result), *expected) << text;
  }
}

TEST_F(ExecSuite, ProjectionKeepsMaskedAttributesOnly) {
  Predicate predicate = *ParsePredicate("age > 30");
  std::vector<std::string> displaylist = {"name", "age"};
  exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &predicate;
  spec.projection = &displaylist;
  exec::ScanResult result = *exec::ExecuteScan(db_.get(), spec);
  ASSERT_FALSE(result.rows.empty());
  // Mask = predicate paths ∪ displaylist = {age, name}.
  for (const exec::ScanRow& row : result.rows) {
    ObjectBuffer full = *db_->GetObject(row.oid);
    ASSERT_EQ(row.value.kind(), ValueKind::kStruct);
    EXPECT_EQ(row.value.fields().size(), 2u);
    for (const Value::Field& field : row.value.fields()) {
      const Value* reference = full.value.FindField(field.name);
      ASSERT_NE(reference, nullptr) << field.name;
      EXPECT_EQ(field.value, *reference) << field.name;
    }
  }
  // Employee records have 7 attributes; 5 per row were never decoded.
  EXPECT_GT(result.stats.skipped_fields, 0u);
  // And the projected rows select exactly the same objects.
  EXPECT_EQ(RowOids(result), *ReferenceSelect("employee", predicate));
}

TEST_F(ExecSuite, IdsOnlyFastPathSkipsDecodingEntirely) {
  exec::ScanSpec spec;
  spec.class_name = "employee";
  exec::ScanResult result = *exec::ExecuteScan(db_.get(), spec);
  EXPECT_EQ(RowOids(result), *db_->ScanCluster("employee"));
  for (const exec::ScanRow& row : result.rows) {
    EXPECT_EQ(row.version, 0u);
    EXPECT_TRUE(row.value.is_null());
  }
}

TEST_F(ExecSuite, ScanStatsCountEveryRow) {
  Predicate predicate = *ParsePredicate("age > 40");
  exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &predicate;
  spec.batch_size = 10;
  exec::ScanResult result = *exec::ExecuteScan(db_.get(), spec);
  std::vector<Oid> all = *db_->ScanCluster("employee");
  EXPECT_EQ(result.stats.rows_scanned, all.size());
  EXPECT_EQ(result.stats.rows_matched, result.rows.size());
  EXPECT_GE(result.stats.batches, all.size() / 10);
  EXPECT_EQ(result.stats.partitions, 1);
}

TEST_F(ExecSuite, ParallelScanIsDeterministic) {
  Predicate predicate = *ParsePredicate("age > 30 || name contains \"a\"");
  exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &predicate;
  spec.project_all = true;
  spec.batch_size = 7;  // force several batches per partition
  exec::ScanResult sequential = *exec::ExecuteScan(db_.get(), spec);
  spec.parallelism = 4;
  exec::ScanResult parallel = *exec::ExecuteScan(db_.get(), spec);
  EXPECT_EQ(parallel.stats.partitions, 4);
  ASSERT_EQ(parallel.rows.size(), sequential.rows.size());
  for (size_t i = 0; i < parallel.rows.size(); ++i) {
    EXPECT_EQ(parallel.rows[i].oid, sequential.rows[i].oid);
    EXPECT_EQ(parallel.rows[i].version, sequential.rows[i].version);
    EXPECT_EQ(parallel.rows[i].value, sequential.rows[i].value);
  }
}

TEST_F(ExecSuite, ParallelismBeyondClusterSizeIsHarmless) {
  exec::ScanSpec spec;
  spec.class_name = "manager";  // 7 objects
  Predicate predicate = *ParsePredicate("age >= 18");
  spec.predicate = &predicate;
  spec.project_all = true;
  spec.parallelism = 16;
  Result<exec::ScanResult> result = exec::ExecuteScan(db_.get(), spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RowOids(*result), *db_->ScanCluster("manager"));
}

TEST_F(ExecSuite, UnknownClassIsAnError) {
  exec::ScanSpec spec;
  spec.class_name = "nosuchclass";
  EXPECT_FALSE(exec::ExecuteScan(db_.get(), spec).ok());
}

// --- join equivalence -------------------------------------------------------

struct JoinCase {
  const char* text;       // nullptr = cross product
  bool expect_hash;
};

const JoinCase kJoinCases[] = {
    {"left.age == right.age", true},
    {"right.age == left.age", true},  // reversed orientation
    {"left.age == right.age && left.name != right.name", true},
    {"left.age == right.age && left.age > 30", true},
    {"left.age < right.age", false},         // no equality conjunct
    {"left.name contains \"a\" || right.age > 40", false},
    {"left.nonexistent == right.age", true},  // hashable, matches nothing
    {nullptr, false},                         // cross product
};

TEST_F(ExecSuite, JoinMatchesNestedLoopAcrossPredicates) {
  for (const JoinCase& join_case : kJoinCases) {
    Predicate predicate = Predicate::True();
    exec::JoinSpec spec;
    spec.left_class = "employee";
    spec.right_class = "manager";
    if (join_case.text != nullptr) {
      Result<Predicate> parsed = ParsePredicate(join_case.text);
      ASSERT_TRUE(parsed.ok()) << join_case.text;
      predicate = std::move(*parsed);
      spec.predicate = &predicate;
    }
    Result<std::vector<std::pair<Oid, Oid>>> expected =
        ReferenceJoin("employee", "manager", spec.predicate);
    ASSERT_TRUE(expected.ok()) << (join_case.text ? join_case.text : "<true>");
    Result<exec::JoinResult> result = exec::ExecuteJoin(db_.get(), spec);
    ASSERT_TRUE(result.ok())
        << (join_case.text ? join_case.text : "<true>") << ": "
        << result.status().ToString();
    EXPECT_EQ(result->pairs, *expected)
        << (join_case.text ? join_case.text : "<true>");
    EXPECT_EQ(result->stats.hash_join, join_case.expect_hash)
        << (join_case.text ? join_case.text : "<true>");
    EXPECT_EQ(result->stats.pairs, result->pairs.size());
  }
}

TEST_F(ExecSuite, JoinTypeMismatchErrorsOnBothPaths) {
  Predicate predicate = *ParsePredicate("left.name > right.age");
  Result<std::vector<std::pair<Oid, Oid>>> reference =
      ReferenceJoin("employee", "manager", &predicate);
  EXPECT_FALSE(reference.ok());
  exec::JoinSpec spec;
  spec.left_class = "employee";
  spec.right_class = "manager";
  spec.predicate = &predicate;
  EXPECT_FALSE(exec::ExecuteJoin(db_.get(), spec).ok());
}

TEST_F(ExecSuite, HashJoinBuildsTheSmallerSide) {
  Predicate predicate = *ParsePredicate("left.age == right.age");
  exec::JoinSpec spec;
  spec.left_class = "employee";  // 55
  spec.right_class = "manager";  // 7
  spec.predicate = &predicate;
  exec::JoinResult result = *exec::ExecuteJoin(db_.get(), spec);
  ASSERT_TRUE(result.stats.hash_join);
  EXPECT_FALSE(result.stats.built_left);
  EXPECT_LE(result.stats.build_rows, result.stats.probe_rows);
}

// --- projection primitives --------------------------------------------------

Value SampleStruct() {
  return Value::Struct(
      {{"a", Value::Int(7)},
       {"b", Value::String("seven")},
       {"c", Value::Real(7.5)},
       {"d", Value::Array({Value::Int(1), Value::Int(2)})},
       {"e", Value::Struct({{"inner", Value::Bool(true)}})}});
}

TEST(SkipValueTest, SkipsEveryKindCompletely) {
  const Value samples[] = {
      Value::Null(),       Value::Bool(true),
      Value::Int(-42),     Value::Real(3.25),
      Value::String("hi"), Value::Blob(std::string("\x00\x01", 2)),
      Value::Ref(Oid{1, 2}, "employee"),
      Value::Set({Value::Int(1), Value::String("x")}),
      SampleStruct()};
  for (const Value& value : samples) {
    std::string bytes;
    EncodeValue(value, &bytes);
    Decoder decoder(bytes);
    ASSERT_TRUE(SkipValue(&decoder).ok()) << value.ToString();
    EXPECT_TRUE(decoder.empty()) << value.ToString();
  }
}

TEST(SkipValueTest, LeavesFollowingBytesIntact) {
  std::string bytes;
  EncodeValue(SampleStruct(), &bytes);
  Value tail = Value::String("tail");
  EncodeValue(tail, &bytes);
  Decoder decoder(bytes);
  ASSERT_TRUE(SkipValue(&decoder).ok());
  Result<Value> decoded = DecodeValue(&decoder);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, tail);
  EXPECT_TRUE(decoder.empty());
}

TEST(SkipValueTest, TruncatedInputIsCorruption) {
  std::string bytes;
  EncodeValue(SampleStruct(), &bytes);
  Decoder decoder(std::string_view(bytes).substr(0, bytes.size() - 3));
  EXPECT_FALSE(SkipValue(&decoder).ok());
}

TEST(ProjectedDecodeTest, MaskPrunesUnlistedFields) {
  ObjectRecord record;
  record.version = 3;
  record.history.emplace_back(1, Value::Int(1));
  record.history.emplace_back(2, SampleStruct());
  record.value = SampleStruct();
  std::string bytes = EncodeObjectRecord(record);

  ProjectionMask mask = ProjectionMask::Of({"a", "e"});
  ProjectedRecord projected =
      *DecodeObjectRecordProjected(bytes, &mask);
  EXPECT_EQ(projected.version, 3u);
  EXPECT_EQ(projected.skipped_fields, 3u);  // b, c, d skipped
  ASSERT_EQ(projected.value.fields().size(), 2u);
  EXPECT_EQ(*projected.value.FindField("a"), Value::Int(7));
  EXPECT_EQ(*projected.value.FindField("e"),
            Value::Struct({{"inner", Value::Bool(true)}}));
}

TEST(ProjectedDecodeTest, NullMaskDecodesFully) {
  ObjectRecord record;
  record.version = 2;
  record.value = SampleStruct();
  std::string bytes = EncodeObjectRecord(record);
  ProjectedRecord projected = *DecodeObjectRecordProjected(bytes, nullptr);
  EXPECT_EQ(projected.value, record.value);
  EXPECT_EQ(projected.skipped_fields, 0u);
}

TEST(ProjectedDecodeTest, NonStructValueIgnoresMask) {
  ObjectRecord record;
  record.value = Value::String("scalar record");
  std::string bytes = EncodeObjectRecord(record);
  ProjectionMask mask = ProjectionMask::Of({"a"});
  ProjectedRecord projected = *DecodeObjectRecordProjected(bytes, &mask);
  EXPECT_EQ(projected.value, record.value);
  EXPECT_EQ(projected.skipped_fields, 0u);
}

TEST(ProjectionMaskTest, DottedPathsKeepTopLevelPrefix) {
  ProjectionMask mask =
      ProjectionMask::FromPaths({"dept.name", "age", "dept.location"});
  EXPECT_EQ(mask.size(), 2u);
  EXPECT_TRUE(mask.contains("dept"));
  EXPECT_TRUE(mask.contains("age"));
  EXPECT_FALSE(mask.contains("name"));
}

}  // namespace
}  // namespace ode::odb
