file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_class_info.dir/bench_fig03_class_info.cc.o"
  "CMakeFiles/bench_fig03_class_info.dir/bench_fig03_class_info.cc.o.d"
  "bench_fig03_class_info"
  "bench_fig03_class_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_class_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
