// Access-observatory battery: the sampled access recorder (ring, heat
// tables, affinity edges, loss accounting), workload capture files
// (round-trip, torn tails), the capture→replay driver, and the
// metrics-history time-series store.
//
// Tests that need the *global* recorder (charge sites record into
// `AccessLog::Global()`) reset it up front; instance-level behavior
// uses private `AccessLog` objects so nothing leaks between tests.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "odb/database.h"
#include "odb/replay.h"

namespace ode::obs {
namespace {

using odb::Database;
using odb::ObjectBuffer;
using odb::Oid;
using odb::Session;
using odb::Value;

constexpr char kObsSchema[] = R"(
persistent class dept {
public:
  string name;
};
persistent class person {
public:
  string name;
  int age;
  dept* dept_ref;
};
)";

std::unique_ptr<Database> ObsDb() {
  auto db = std::move(*Database::CreateInMemory("obs"));
  EXPECT_TRUE(db->DefineSchema(kObsSchema).ok());
  return db;
}

Value Person(std::string name, int64_t age, Oid dept = Oid::Null()) {
  return Value::Struct({
      {"name", Value::String(std::move(name))},
      {"age", Value::Int(age)},
      {"dept_ref", Value::Ref(dept, "dept")},
  });
}

Value Dept(std::string name) {
  return Value::Struct({{"name", Value::String(std::move(name))}});
}

/// Object-attributed page heat as a map (pool touches excluded — the
/// replay regenerates its own pool traffic).
std::map<uint64_t, uint64_t> ObjectPageHeat(const AccessProfile& profile) {
  std::map<uint64_t, uint64_t> out;
  for (const PageHeat& heat : profile.pages) {
    if (heat.object_accesses > 0) out[heat.page] = heat.object_accesses;
  }
  return out;
}

/// Hottest `n` object-accessed pages (the acceptance criterion's
/// "top-10 set").
std::set<uint64_t> TopObjectPages(const AccessProfile& profile, size_t n) {
  std::vector<std::pair<uint64_t, uint64_t>> by_heat;  // (count, page)
  for (const PageHeat& heat : profile.pages) {
    if (heat.object_accesses > 0) {
      by_heat.emplace_back(heat.object_accesses, heat.page);
    }
  }
  std::sort(by_heat.begin(), by_heat.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::set<uint64_t> out;
  for (size_t i = 0; i < by_heat.size() && i < n; ++i) {
    out.insert(by_heat[i].second);
  }
  return out;
}

// --- Recorder basics ---------------------------------------------------

TEST(AccessLogTest, OpNamesAreStable) {
  EXPECT_STREQ(AccessOpName(AccessOp::kGet), "get");
  EXPECT_STREQ(AccessOpName(AccessOp::kScan), "scan");
  EXPECT_STREQ(AccessOpName(AccessOp::kCreate), "create");
  EXPECT_STREQ(AccessOpName(AccessOp::kUpdate), "update");
  EXPECT_STREQ(AccessOpName(AccessOp::kDelete), "delete");
}

TEST(AccessLogTest, DisabledRecorderRecordsNothing) {
  AccessLog log(/*ring_capacity=*/32);
  log.Record(AccessOp::kGet, 1, 1, Journal::InternLabel("x"), 1);
  log.RecordPageTouch(1);
  log.RecordAffinity(1, 1, nullptr, 2, 2, nullptr);
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_TRUE(log.SnapshotRing().empty());
  AccessProfile profile = log.SnapshotProfile();
  EXPECT_TRUE(profile.pages.empty());
  EXPECT_TRUE(profile.classes.empty());
  EXPECT_TRUE(profile.edges.empty());
}

TEST(AccessLogTest, EventsRoundTripThroughTheRing) {
  AccessLog log(/*ring_capacity=*/32);
  log.Start();
  const char* label = Journal::InternLabel("employee");
  log.Record(AccessOp::kUpdate, 7, 42, label, 3);
  log.Record(AccessOp::kGet, 7, 43, label, 4);
  std::vector<AccessEvent> events = log.SnapshotRing();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].op, AccessOp::kUpdate);
  EXPECT_EQ(events[0].cluster, 7u);
  EXPECT_EQ(events[0].local, 42u);
  EXPECT_EQ(events[0].page, 3u);
  EXPECT_EQ(events[0].class_label, label);
  EXPECT_GT(events[0].ts_ns, 0u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].op, AccessOp::kGet);
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(AccessLogTest, RingOverwriteKeepsNewestAndCounts) {
  AccessLog log(/*ring_capacity=*/8);
  log.Start();
  const char* label = Journal::InternLabel("hot");
  for (uint64_t i = 1; i <= 20; ++i) {
    log.Record(AccessOp::kGet, 1, i, label, i);
  }
  EXPECT_EQ(log.recorded(), 20u);
  EXPECT_EQ(log.overwritten(), 12u);  // 20 appends into 8 slots
  std::vector<AccessEvent> events = log.SnapshotRing();
  ASSERT_EQ(events.size(), 8u);
  // The retained tail is the newest 8 events, oldest first.
  EXPECT_EQ(events.front().local, 13u);
  EXPECT_EQ(events.back().local, 20u);
}

TEST(AccessLogTest, SamplingThinsTheStream) {
  AccessLog log(/*ring_capacity=*/256);
  log.Start(/*sample_period=*/4);
  const char* label = Journal::InternLabel("sampled");
  for (uint64_t i = 0; i < 100; ++i) {
    log.Record(AccessOp::kScan, 1, i, label, i % 7);
  }
  // Deterministic modulo sampling: exactly one in four events lands.
  EXPECT_EQ(log.recorded(), 25u);
  EXPECT_EQ(log.sample_period(), 4u);
}

TEST(AccessLogTest, HeatTablesAggregateByPageAndClass) {
  AccessLog log;
  log.Start();
  const char* emp = Journal::InternLabel("employee");
  const char* dept = Journal::InternLabel("department");
  log.Record(AccessOp::kGet, 1, 1, emp, 10);
  log.Record(AccessOp::kGet, 1, 2, emp, 10);
  log.Record(AccessOp::kScan, 1, 3, emp, 11);
  log.Record(AccessOp::kCreate, 2, 1, dept, 20);
  log.RecordPageTouch(10);
  log.RecordPageTouch(99);

  AccessProfile profile = log.SnapshotProfile();
  ASSERT_EQ(profile.classes.size(), 2u);
  EXPECT_EQ(profile.classes[0].class_label, emp);  // hottest first
  EXPECT_EQ(profile.classes[0].total, 3u);
  EXPECT_EQ(profile.classes[0].by_op[static_cast<size_t>(AccessOp::kGet)],
            2u);
  EXPECT_EQ(profile.classes[0].by_op[static_cast<size_t>(AccessOp::kScan)],
            1u);
  EXPECT_EQ(profile.classes[1].total, 1u);
  EXPECT_EQ(profile.class_counts.at("employee"), 3u);
  EXPECT_EQ(profile.class_counts.at("department"), 1u);

  // Page 10: 2 object accesses + 1 pool touch — hottest. Page 99 is
  // pool-touch only.
  ASSERT_FALSE(profile.pages.empty());
  EXPECT_EQ(profile.pages[0].page, 10u);
  EXPECT_EQ(profile.pages[0].object_accesses, 2u);
  EXPECT_EQ(profile.pages[0].pool_touches, 1u);
  std::map<uint64_t, uint64_t> object_heat = ObjectPageHeat(profile);
  EXPECT_EQ(object_heat.count(99), 0u);  // no object access there
}

TEST(AccessLogTest, AffinityEdgesDeduplicateAndRank) {
  AccessLog log;
  log.Start();
  const char* a = Journal::InternLabel("a");
  const char* b = Journal::InternLabel("b");
  log.RecordAffinity(1, 10, a, 2, 20, b);
  log.RecordAffinity(1, 10, a, 2, 20, b);  // same edge again
  log.RecordAffinity(1, 11, a, 2, 21, b);
  AccessProfile profile = log.SnapshotProfile();
  ASSERT_EQ(profile.edges.size(), 2u);
  EXPECT_EQ(profile.edges[0].count, 2u);  // heaviest first
  EXPECT_EQ(profile.edges[0].src_local, 10u);
  EXPECT_EQ(profile.edges[0].dst_local, 20u);
  EXPECT_EQ(profile.edges[0].src_class, a);
  EXPECT_EQ(profile.edges[0].dst_class, b);
  EXPECT_EQ(profile.edges[1].count, 1u);
}

TEST(AccessLogTest, HeatmapJsonCarriesStateHeatAndEdges) {
  AccessLog log;
  log.Start(/*sample_period=*/2);
  const char* label = Journal::InternLabel("renderable");
  log.Record(AccessOp::kGet, 3, 5, label, 12);
  log.RecordAffinity(3, 5, label, 3, 6, label);
  std::string json = log.RenderHeatmapJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"sample_period\":2"), std::string::npos);
  EXPECT_NE(json.find("\"capturing\":false"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"page\":12"), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"renderable\""), std::string::npos);
  EXPECT_NE(json.find("\"get\":1"), std::string::npos);
  EXPECT_NE(json.find("\"src\":\"c3:o5\""), std::string::npos);
  EXPECT_NE(json.find("\"dst\":\"c3:o6\""), std::string::npos);
  std::string text = log.RenderHeatmapText();
  EXPECT_NE(text.find("renderable"), std::string::npos);
  EXPECT_NE(text.find("page 12"), std::string::npos);
}

TEST(AccessLogTest, StartStopAndOverflowAreJournaled) {
  AccessLog log(/*ring_capacity=*/8);
  log.Start(/*sample_period=*/3);
  const char* label = Journal::InternLabel("spill");
  for (uint64_t i = 0; i < 64; ++i) {
    log.Record(AccessOp::kGet, 1, i, label, i);
  }
  log.Stop();
  bool saw_start = false, saw_stop = false, saw_overflow = false;
  for (const JournalRecord& r : Journal::Global().Snapshot()) {
    if (r.type == JournalEvent::kAccessRecorderStart && r.arg0 == 3) {
      saw_start = true;
    }
    if (r.type == JournalEvent::kAccessRecorderStop) saw_stop = true;
    if (r.type == JournalEvent::kAccessRingOverflow && r.arg0 == 8) {
      saw_overflow = true;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_stop);
  EXPECT_TRUE(saw_overflow);
}

// --- Capture files -----------------------------------------------------

TEST(AccessCaptureTest, CaptureRoundTripsEventsAndAffinity) {
  std::string path = testing::TempDir() + "/ode_access_capture_rt.trace";
  AccessLog log;
  ASSERT_TRUE(log.StartCapture(path).ok());
  EXPECT_TRUE(log.enabled());  // capture force-enables the recorder
  EXPECT_TRUE(log.capturing());
  const char* emp = Journal::InternLabel("employee");
  const char* dept = Journal::InternLabel("department");
  log.Record(AccessOp::kCreate, 1, 7, emp, 30);
  log.Record(AccessOp::kGet, 2, 9, dept, 31);
  log.RecordAffinity(1, 7, emp, 2, 9, dept);
  Result<uint64_t> written = log.StopCapture();
  ASSERT_TRUE(written.ok());
  // 2 class-def records + 2 events + 1 affinity.
  EXPECT_EQ(*written, 5u);
  EXPECT_FALSE(log.capturing());

  Result<AccessTrace> trace = ReadAccessTrace(path);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->torn_tail_bytes, 0u);
  ASSERT_EQ(trace->records.size(), 3u);
  const AccessTraceRecord& first = trace->records[0];
  EXPECT_EQ(first.kind, AccessTraceRecord::Kind::kEvent);
  EXPECT_EQ(first.event.op, AccessOp::kCreate);
  EXPECT_EQ(first.event.cluster, 1u);
  EXPECT_EQ(first.event.local, 7u);
  EXPECT_EQ(first.event.page, 30u);
  EXPECT_STREQ(first.event.class_label, "employee");
  EXPECT_GT(first.event.ts_ns, 0u);
  const AccessTraceRecord& second = trace->records[1];
  EXPECT_EQ(second.event.op, AccessOp::kGet);
  EXPECT_STREQ(second.event.class_label, "department");
  const AccessTraceRecord& edge = trace->records[2];
  EXPECT_EQ(edge.kind, AccessTraceRecord::Kind::kAffinity);
  EXPECT_EQ(edge.src_cluster, 1u);
  EXPECT_EQ(edge.src_local, 7u);
  EXPECT_EQ(edge.dst_cluster, 2u);
  EXPECT_EQ(edge.dst_local, 9u);
  EXPECT_STREQ(edge.src_class, "employee");
  EXPECT_STREQ(edge.dst_class, "department");
  std::remove(path.c_str());
}

TEST(AccessCaptureTest, GarbageTailIsReportedNotFatal) {
  std::string path = testing::TempDir() + "/ode_access_capture_garbage.trace";
  AccessLog log;
  ASSERT_TRUE(log.StartCapture(path).ok());
  log.Record(AccessOp::kGet, 1, 1, Journal::InternLabel("t"), 1);
  ASSERT_TRUE(log.StopCapture().ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite("garbage", 1, 7, f);
    std::fclose(f);
  }
  Result<AccessTrace> trace = ReadAccessTrace(path);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->records.size(), 1u);  // class-def + event → 1 event
  EXPECT_EQ(trace->torn_tail_bytes, 7u);
  std::remove(path.c_str());
}

TEST(AccessCaptureTest, TruncatedFinalRecordIsDropped) {
  std::string path = testing::TempDir() + "/ode_access_capture_torn.trace";
  AccessLog log;
  ASSERT_TRUE(log.StartCapture(path).ok());
  const char* label = Journal::InternLabel("torn");
  log.Record(AccessOp::kGet, 1, 1, label, 1);
  log.Record(AccessOp::kGet, 1, 2, label, 2);
  ASSERT_TRUE(log.StopCapture().ok());

  // Chop two bytes off the final record's CRC: a torn write.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 2);
  ASSERT_EQ(truncate(path.c_str(), size - 2), 0);

  Result<AccessTrace> trace = ReadAccessTrace(path);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->records.size(), 1u);  // second event lost
  EXPECT_GT(trace->torn_tail_bytes, 0u);
  std::remove(path.c_str());
}

TEST(AccessCaptureTest, NonCaptureFileIsRejected) {
  std::string path = testing::TempDir() + "/ode_access_not_a_capture";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("definitely not a capture", 1, 24, f);
  std::fclose(f);
  Result<AccessTrace> trace = ReadAccessTrace(path);
  EXPECT_FALSE(trace.ok());
  EXPECT_TRUE(trace.status().IsCorruption());
  std::remove(path.c_str());
}

// --- Charge sites ------------------------------------------------------

TEST(AccessChargeTest, DatabaseOperationsChargeTheGlobalRecorder) {
  AccessLog& log = AccessLog::Global();
  log.ResetForTest();
  auto db = ObsDb();
  log.Start();
  Session session = db->OpenSession();
  Result<Oid> dept = session.CreateObject("dept", Dept("lab"));
  ASSERT_TRUE(dept.ok());
  Result<Oid> alice =
      session.CreateObject("person", Person("alice", 31, *dept));
  ASSERT_TRUE(alice.ok());
  Result<ObjectBuffer> fetched = session.GetObject(*alice);
  ASSERT_TRUE(fetched.ok());
  ASSERT_TRUE(session.UpdateObject(*alice, Person("alice", 32, *dept)).ok());

  AccessProfile profile = log.SnapshotProfile();
  // create + explicit get + update (whose read-modify-write charges one
  // more get for the old-version read).
  EXPECT_EQ(profile.class_counts.at("person"), 4u);
  EXPECT_EQ(profile.class_counts.at("dept"), 1u);  // create
  bool found_person = false;
  for (const ClassHeat& heat : profile.classes) {
    if (std::string_view(heat.class_label) == "person") {
      found_person = true;
      EXPECT_EQ(heat.by_op[static_cast<size_t>(AccessOp::kCreate)], 1u);
      EXPECT_EQ(heat.by_op[static_cast<size_t>(AccessOp::kGet)], 2u);
      EXPECT_EQ(heat.by_op[static_cast<size_t>(AccessOp::kUpdate)], 1u);
    }
  }
  EXPECT_TRUE(found_person);
  // Object accesses land on real heap pages, and the pool fetches
  // underneath them tally as pool touches.
  EXPECT_FALSE(ObjectPageHeat(profile).empty());
  log.ResetForTest();
}

TEST(AccessChargeTest, EventsCarryTheSessionId) {
  AccessLog& log = AccessLog::Global();
  log.ResetForTest();
  auto db = ObsDb();
  log.Start();
  Session session = db->OpenSession();
  Result<Oid> oid = session.CreateObject("dept", Dept("ops"));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(session.GetObject(*oid).ok());
  std::vector<AccessEvent> events = log.SnapshotRing();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().op, AccessOp::kGet);
  EXPECT_EQ(events.back().session_id, session.id());
  log.ResetForTest();
}

TEST(AccessChargeTest, BatchedScansChargeScanEvents) {
  AccessLog& log = AccessLog::Global();
  log.ResetForTest();
  auto db = ObsDb();
  Session session = db->OpenSession();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        session.CreateObject("person", Person("p" + std::to_string(i), i))
            .ok());
  }
  log.Start();
  ASSERT_TRUE(db->ClusterOf("person").ok());
  Oid anchor{*db->ClusterOf("person"), 0};
  Result<std::vector<ObjectBuffer>> batch =
      session.NextObjectBuffers(anchor, 6);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 6u);
  AccessProfile profile = log.SnapshotProfile();
  bool found = false;
  for (const ClassHeat& heat : profile.classes) {
    if (std::string_view(heat.class_label) == "person") {
      found = true;
      EXPECT_EQ(heat.by_op[static_cast<size_t>(AccessOp::kScan)], 6u);
    }
  }
  EXPECT_TRUE(found);
  log.ResetForTest();
}

// --- Capture → replay --------------------------------------------------

// The PR's acceptance criterion: replaying a captured workload against
// the same database reproduces the per-class access counts exactly and
// the object-attributed page-heat ranking (top-10 set) of the capture.
TEST(AccessReplayTest, ReplayReproducesClassCountsAndPageHeat) {
  AccessLog& log = AccessLog::Global();
  log.ResetForTest();
  auto db = ObsDb();
  std::vector<Oid> people;
  {
    Session session = db->OpenSession();
    Result<Oid> dept = session.CreateObject("dept", Dept("eng"));
    ASSERT_TRUE(dept.ok());
    for (int i = 0; i < 12; ++i) {
      Result<Oid> oid = session.CreateObject(
          "person", Person("p" + std::to_string(i), 20 + i, *dept));
      ASSERT_TRUE(oid.ok());
      people.push_back(*oid);
    }
  }

  std::string path = testing::TempDir() + "/ode_access_replay.trace";
  ASSERT_TRUE(log.StartCapture(path).ok());
  {
    Session session = db->OpenSession();
    // Skewed point reads: early objects are hotter.
    for (size_t i = 0; i < people.size(); ++i) {
      size_t reads = i < 4 ? 3 : 1;
      for (size_t r = 0; r < reads; ++r) {
        ASSERT_TRUE(session.GetObject(people[i]).ok());
      }
    }
    // One batched scan over the cluster.
    Oid anchor{*db->ClusterOf("person"), 0};
    ASSERT_TRUE(session.NextObjectBuffers(anchor, people.size()).ok());
  }
  Result<uint64_t> written = log.StopCapture();
  ASSERT_TRUE(written.ok());
  EXPECT_GT(*written, 0u);
  log.Stop();

  AccessProfile captured = log.SnapshotProfile();
  std::map<std::string, uint64_t> captured_counts = captured.class_counts;
  std::map<uint64_t, uint64_t> captured_heat = ObjectPageHeat(captured);
  std::set<uint64_t> captured_top = TopObjectPages(captured, 10);
  ASSERT_FALSE(captured_counts.empty());
  ASSERT_FALSE(captured_heat.empty());

  log.ResetForTest();
  Result<odb::ReplayReport> report = odb::ReplayAccessTrace(db.get(), path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->events_missing, 0u);
  EXPECT_EQ(report->events_failed, 0u);
  EXPECT_EQ(report->events_total,
            report->events_replayed);
  EXPECT_EQ(report->torn_tail_bytes, 0u);
  // Replay restored the recorder to its pre-replay (reset ⇒ off) state.
  EXPECT_FALSE(log.enabled());

  AccessProfile replayed = log.SnapshotProfile();
  // Per-class totals match exactly (mutations replay as reads; totals
  // fold all ops together).
  EXPECT_EQ(replayed.class_counts, captured_counts);
  // Object-attributed page heat reproduces page for page on an
  // unchanged database — which subsumes the top-10 ranking check.
  EXPECT_EQ(ObjectPageHeat(replayed), captured_heat);
  EXPECT_EQ(TopObjectPages(replayed, 10), captured_top);
  log.ResetForTest();
  std::remove(path.c_str());
}

TEST(AccessReplayTest, ReplayCountsVanishedObjectsAsMissing) {
  AccessLog& log = AccessLog::Global();
  log.ResetForTest();
  auto db = ObsDb();
  Oid doomed;
  {
    Session session = db->OpenSession();
    Result<Oid> oid = session.CreateObject("dept", Dept("gone"));
    ASSERT_TRUE(oid.ok());
    doomed = *oid;
  }
  std::string path = testing::TempDir() + "/ode_access_replay_missing.trace";
  ASSERT_TRUE(log.StartCapture(path).ok());
  {
    Session session = db->OpenSession();
    ASSERT_TRUE(session.GetObject(doomed).ok());
  }
  ASSERT_TRUE(log.StopCapture().ok());
  log.ResetForTest();
  {
    Session session = db->OpenSession();
    ASSERT_TRUE(session.DeleteObject(doomed).ok());
  }
  Result<odb::ReplayReport> report = odb::ReplayAccessTrace(db.get(), path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->events_total, 1u);
  EXPECT_EQ(report->events_replayed, 0u);
  EXPECT_EQ(report->events_missing, 1u);
  EXPECT_EQ(report->events_failed, 0u);
  log.ResetForTest();
  std::remove(path.c_str());
}

TEST(AccessReplayTest, ReplayRestoresAnEnabledRecorder) {
  AccessLog& log = AccessLog::Global();
  log.ResetForTest();
  auto db = ObsDb();
  std::string path = testing::TempDir() + "/ode_access_replay_restore.trace";
  ASSERT_TRUE(log.StartCapture(path).ok());
  ASSERT_TRUE(log.StopCapture().ok());
  log.Start(/*sample_period=*/8);
  Result<odb::ReplayReport> report = odb::ReplayAccessTrace(db.get(), path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(log.enabled());
  EXPECT_EQ(log.sample_period(), 8u);
  log.ResetForTest();
  std::remove(path.c_str());
}

// --- Time-series store -------------------------------------------------

TEST(TimeSeriesTest, TickFoldsCountersIntoHistory) {
  TimeSeriesStore store(/*resolution_ns=*/1, /*slots=*/8);
  Counter* c = Registry::Global().counter("access_ts.counter.fold");
  c->Add(5);
  store.TickOnce();
  c->Add(7);
  store.TickOnce();
  EXPECT_EQ(store.tick_count(), 2u);
  TimeSeries series = store.Series("access_ts.counter.fold");
  EXPECT_EQ(series.kind, MetricSample::Kind::kCounter);
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_EQ(series.points[0].value, 5);
  EXPECT_EQ(series.points[1].value, 12);
  EXPECT_GE(series.points[1].ts_ns, series.points[0].ts_ns);
}

TEST(TimeSeriesTest, RingWrapsKeepingNewestPoints) {
  TimeSeriesStore store(/*resolution_ns=*/1, /*slots=*/4);
  Counter* c = Registry::Global().counter("access_ts.counter.wrap");
  for (int i = 0; i < 6; ++i) {
    c->Increment();
    store.TickOnce();
  }
  TimeSeries series = store.Series("access_ts.counter.wrap");
  ASSERT_EQ(series.points.size(), 4u);  // oldest two fell off
  EXPECT_EQ(series.points[0].value, 3);
  EXPECT_EQ(series.points[3].value, 6);
}

TEST(TimeSeriesTest, HistogramPointsCarryQuantiles) {
  TimeSeriesStore store(/*resolution_ns=*/1, /*slots=*/8);
  Histogram* h = Registry::Global().histogram("access_ts.hist.quantiles");
  for (int i = 0; i < 100; ++i) h->Record(1000);
  store.TickOnce();
  TimeSeries series = store.Series("access_ts.hist.quantiles");
  EXPECT_EQ(series.kind, MetricSample::Kind::kHistogram);
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_EQ(series.points[0].count, 100u);
  EXPECT_GT(series.points[0].p50, 0u);
  EXPECT_GE(series.points[0].p99, series.points[0].p50);
}

TEST(TimeSeriesTest, RenderJsonCarriesSeriesAndRates) {
  TimeSeriesStore store(/*resolution_ns=*/1, /*slots=*/8);
  Counter* c = Registry::Global().counter("access_ts.counter.render");
  c->Add(3);
  store.TickOnce();
  c->Add(3);
  store.TickOnce();
  std::string json = store.RenderJson();
  EXPECT_NE(json.find("\"name\":\"access_ts.counter.render\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"rate_per_s\""), std::string::npos);
  EXPECT_NE(json.find("\"ticks\":2"), std::string::npos);
  TimeSeries unknown = store.Series("access_ts.counter.never_registered");
  EXPECT_TRUE(unknown.points.empty());
}

TEST(TimeSeriesTest, ConfigureRequiresStoppedStore) {
  TimeSeriesStore store;
  store.Start();
  EXPECT_TRUE(store.running());
  Status while_running = store.Configure(1000, 16);
  EXPECT_EQ(while_running.code(), StatusCode::kFailedPrecondition);
  store.Stop();
  EXPECT_FALSE(store.running());
  EXPECT_TRUE(store.Configure(1000, 16).ok());
  EXPECT_EQ(store.resolution_ns(), 1000u);
  EXPECT_EQ(store.slots(), 16u);
  EXPECT_TRUE(store.Configure(0, 16).IsInvalidArgument());
}

TEST(TimeSeriesTest, BackgroundTickAccumulatesHistory) {
  TimeSeriesStore store(/*resolution_ns=*/1000 * 1000, /*slots=*/64);
  Counter* c = Registry::Global().counter("access_ts.counter.bg");
  c->Add(1);
  store.Start();
  store.Start();  // idempotent
  // The loop folds once immediately; wait for at least one more tick.
  for (int i = 0; i < 200 && store.tick_count() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  store.Stop();
  EXPECT_GE(store.tick_count(), 2u);
  EXPECT_FALSE(store.Series("access_ts.counter.bg").points.empty());
  // Restartable after Stop.
  store.Start();
  store.Stop();
}

}  // namespace
}  // namespace ode::obs
