#include "odb/predicate.h"

#include <cstdlib>

#include "odb/lexer.h"

namespace ode::odb {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "contains";
  }
  return "?";
}

Predicate Predicate::True() { return Predicate(); }

Predicate Predicate::Compare(Operand lhs, CompareOp op, Operand rhs) {
  Predicate p;
  p.kind_ = Kind::kCompare;
  p.lhs_ = std::move(lhs);
  p.op_ = op;
  p.rhs_ = std::move(rhs);
  return p;
}

Predicate Predicate::And(Predicate lhs, Predicate rhs) {
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.children_.push_back(std::move(lhs));
  p.children_.push_back(std::move(rhs));
  return p;
}

Predicate Predicate::Or(Predicate lhs, Predicate rhs) {
  Predicate p;
  p.kind_ = Kind::kOr;
  p.children_.push_back(std::move(lhs));
  p.children_.push_back(std::move(rhs));
  return p;
}

Predicate Predicate::Not(Predicate operand) {
  Predicate p;
  p.kind_ = Kind::kNot;
  p.children_.push_back(std::move(operand));
  return p;
}

namespace {

/// Resolves an operand against the object. Returns nullptr (not an
/// error) when an attribute path is absent.
const Value* ResolveOperand(const Operand& operand, const Value& object,
                            const Value** storage) {
  if (operand.kind == Operand::Kind::kLiteral) {
    *storage = &operand.literal;
    return *storage;
  }
  return object.FindPath(operand.path);
}

}  // namespace

Result<int> OrderValues(const Value& a, const Value& b) {
  // Numeric comparison when both sides are numeric.
  if ((a.kind() == ValueKind::kInt || a.kind() == ValueKind::kReal ||
       a.kind() == ValueKind::kBool) &&
      (b.kind() == ValueKind::kInt || b.kind() == ValueKind::kReal ||
       b.kind() == ValueKind::kBool)) {
    ODE_ASSIGN_OR_RETURN(double da, a.ToNumber());
    ODE_ASSIGN_OR_RETURN(double db, b.ToNumber());
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  if (a.kind() == ValueKind::kString && b.kind() == ValueKind::kString) {
    return a.AsString().compare(b.AsString()) < 0
               ? -1
               : (a.AsString() == b.AsString() ? 0 : 1);
  }
  return Status::InvalidArgument(
      std::string("cannot order values of kind ") +
      std::string(ValueKindName(a.kind())) + " and " +
      std::string(ValueKindName(b.kind())));
}

Result<bool> EvaluateCompareOp(const Value* lhs, CompareOp op,
                               const Value* rhs) {
  if (lhs == nullptr || rhs == nullptr) {
    return false;  // missing attribute: QBE semantics
  }
  switch (op) {
    case CompareOp::kEq:
      // Equality works across all kinds, numerically when numeric.
      if (lhs->kind() != rhs->kind()) {
        Result<int> cmp = OrderValues(*lhs, *rhs);
        if (cmp.ok()) return *cmp == 0;
        return false;
      }
      return *lhs == *rhs;
    case CompareOp::kNe: {
      if (lhs->kind() != rhs->kind()) {
        Result<int> cmp = OrderValues(*lhs, *rhs);
        if (cmp.ok()) return *cmp != 0;
        return true;
      }
      return !(*lhs == *rhs);
    }
    case CompareOp::kLt: {
      ODE_ASSIGN_OR_RETURN(int cmp, OrderValues(*lhs, *rhs));
      return cmp < 0;
    }
    case CompareOp::kLe: {
      ODE_ASSIGN_OR_RETURN(int cmp, OrderValues(*lhs, *rhs));
      return cmp <= 0;
    }
    case CompareOp::kGt: {
      ODE_ASSIGN_OR_RETURN(int cmp, OrderValues(*lhs, *rhs));
      return cmp > 0;
    }
    case CompareOp::kGe: {
      ODE_ASSIGN_OR_RETURN(int cmp, OrderValues(*lhs, *rhs));
      return cmp >= 0;
    }
    case CompareOp::kContains: {
      if (lhs->kind() == ValueKind::kString &&
          rhs->kind() == ValueKind::kString) {
        return lhs->AsString().find(rhs->AsString()) != std::string::npos;
      }
      if (lhs->kind() == ValueKind::kSet ||
          lhs->kind() == ValueKind::kArray) {
        for (const Value& e : lhs->elements()) {
          if (e == *rhs) return true;
        }
        return false;
      }
      return Status::InvalidArgument(
          "contains requires a string, set, or array on the left");
    }
  }
  return Status::Internal("unhandled compare op");
}

Result<bool> Predicate::Evaluate(const Value& object) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kNot: {
      ODE_ASSIGN_OR_RETURN(bool inner, children_[0].Evaluate(object));
      return !inner;
    }
    case Kind::kAnd: {
      ODE_ASSIGN_OR_RETURN(bool l, children_[0].Evaluate(object));
      if (!l) return false;
      return children_[1].Evaluate(object);
    }
    case Kind::kOr: {
      ODE_ASSIGN_OR_RETURN(bool l, children_[0].Evaluate(object));
      if (l) return true;
      return children_[1].Evaluate(object);
    }
    case Kind::kCompare:
      break;
  }
  const Value* lhs_storage = nullptr;
  const Value* rhs_storage = nullptr;
  const Value* lhs = ResolveOperand(lhs_, object, &lhs_storage);
  const Value* rhs = ResolveOperand(rhs_, object, &rhs_storage);
  return EvaluateCompareOp(lhs, op_, rhs);
}

namespace {
void CollectPaths(const Operand& operand, std::vector<std::string>* out) {
  if (operand.kind == Operand::Kind::kAttribute) {
    out->push_back(operand.path);
  }
}
}  // namespace

std::vector<std::string> Predicate::AttributePaths() const {
  std::vector<std::string> out;
  switch (kind_) {
    case Kind::kTrue:
      break;
    case Kind::kCompare:
      CollectPaths(lhs_, &out);
      CollectPaths(rhs_, &out);
      break;
    default:
      for (const Predicate& child : children_) {
        for (std::string& p : child.AttributePaths()) {
          out.push_back(std::move(p));
        }
      }
  }
  return out;
}

namespace {
std::string OperandToString(const Operand& operand) {
  return operand.kind == Operand::Kind::kAttribute
             ? operand.path
             : operand.literal.ToString();
}
}  // namespace

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kCompare:
      return OperandToString(lhs_) + " " + std::string(CompareOpName(op_)) +
             " " + OperandToString(rhs_);
    case Kind::kAnd:
      return "(" + children_[0].ToString() + ") && (" +
             children_[1].ToString() + ")";
    case Kind::kOr:
      return "(" + children_[0].ToString() + ") || (" +
             children_[1].ToString() + ")";
    case Kind::kNot:
      return "!(" + children_[0].ToString() + ")";
  }
  return "?";
}

namespace {

/// Recursive-descent parser for the condition-box language.
class PredicateParser {
 public:
  explicit PredicateParser(std::vector<Token> tokens)
      : cursor_(std::move(tokens)) {}

  Result<Predicate> Parse() {
    if (cursor_.AtEnd()) return Predicate::True();
    ODE_ASSIGN_OR_RETURN(Predicate p, ParseOr());
    if (!cursor_.AtEnd()) {
      return cursor_.ErrorHere("unexpected trailing input");
    }
    return p;
  }

 private:
  Result<Predicate> ParseOr() {
    ODE_ASSIGN_OR_RETURN(Predicate lhs, ParseAnd());
    while (cursor_.TryConsumePunct("||")) {
      ODE_ASSIGN_OR_RETURN(Predicate rhs, ParseAnd());
      lhs = Predicate::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Predicate> ParseAnd() {
    ODE_ASSIGN_OR_RETURN(Predicate lhs, ParseUnary());
    while (cursor_.TryConsumePunct("&&")) {
      ODE_ASSIGN_OR_RETURN(Predicate rhs, ParseUnary());
      lhs = Predicate::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Predicate> ParseUnary() {
    // `!` and `(` recurse per level; a condition box pasted from an
    // untrusted source can nest arbitrarily, so bound the stack.
    if (++depth_ > kMaxDepth) {
      --depth_;
      return cursor_.ErrorHere("predicate nesting exceeds limit (" +
                               std::to_string(kMaxDepth) + ")");
    }
    Result<Predicate> p = ParseUnaryInner();
    --depth_;
    return p;
  }

  Result<Predicate> ParseUnaryInner() {
    if (cursor_.TryConsumePunct("!")) {
      ODE_ASSIGN_OR_RETURN(Predicate inner, ParseUnary());
      return Predicate::Not(std::move(inner));
    }
    if (cursor_.TryConsumePunct("(")) {
      ODE_ASSIGN_OR_RETURN(Predicate inner, ParseOr());
      ODE_RETURN_IF_ERROR(cursor_.ExpectPunct(")"));
      return inner;
    }
    return ParseCompare();
  }

  Result<Predicate> ParseCompare() {
    ODE_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    ODE_ASSIGN_OR_RETURN(CompareOp op, ParseOp());
    ODE_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    return Predicate::Compare(std::move(lhs), op, std::move(rhs));
  }

  Result<CompareOp> ParseOp() {
    const Token& tok = cursor_.Peek();
    if (tok.IsIdent("contains")) {
      cursor_.Next();
      return CompareOp::kContains;
    }
    if (!tok.Is(TokenKind::kPunct)) {
      return cursor_.ErrorHere("expected a comparison operator");
    }
    CompareOp op;
    if (tok.text == "==" || tok.text == "=") {
      op = CompareOp::kEq;
    } else if (tok.text == "!=") {
      op = CompareOp::kNe;
    } else if (tok.text == "<") {
      op = CompareOp::kLt;
    } else if (tok.text == "<=") {
      op = CompareOp::kLe;
    } else if (tok.text == ">") {
      op = CompareOp::kGt;
    } else if (tok.text == ">=") {
      op = CompareOp::kGe;
    } else {
      return cursor_.ErrorHere("expected a comparison operator");
    }
    cursor_.Next();
    return op;
  }

  Result<Operand> ParseOperand() {
    const Token& tok = cursor_.Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        int64_t v = std::strtoll(cursor_.Next().text.c_str(), nullptr, 10);
        bool negative = false;
        (void)negative;
        return Operand::Literal(Value::Int(v));
      }
      case TokenKind::kReal: {
        double v = std::strtod(cursor_.Next().text.c_str(), nullptr);
        return Operand::Literal(Value::Real(v));
      }
      case TokenKind::kString:
        return Operand::Literal(Value::String(cursor_.Next().text));
      case TokenKind::kPunct:
        if (tok.text == "-") {
          cursor_.Next();
          const Token& num = cursor_.Peek();
          if (num.Is(TokenKind::kInt)) {
            int64_t v =
                std::strtoll(cursor_.Next().text.c_str(), nullptr, 10);
            return Operand::Literal(Value::Int(-v));
          }
          if (num.Is(TokenKind::kReal)) {
            double v = std::strtod(cursor_.Next().text.c_str(), nullptr);
            return Operand::Literal(Value::Real(-v));
          }
          return cursor_.ErrorHere("expected a number after '-'");
        }
        return cursor_.ErrorHere("expected an operand");
      case TokenKind::kIdent: {
        if (tok.text == "true") {
          cursor_.Next();
          return Operand::Literal(Value::Bool(true));
        }
        if (tok.text == "false") {
          cursor_.Next();
          return Operand::Literal(Value::Bool(false));
        }
        if (tok.text == "null") {
          cursor_.Next();
          return Operand::Literal(Value::Null());
        }
        std::string path = cursor_.Next().text;
        while (cursor_.TryConsumePunct(".")) {
          ODE_ASSIGN_OR_RETURN(std::string part, cursor_.ExpectAnyIdent());
          path += ".";
          path += part;
        }
        return Operand::Attribute(std::move(path));
      }
      case TokenKind::kEnd:
        return cursor_.ErrorHere("expected an operand");
    }
    return cursor_.ErrorHere("expected an operand");
  }

  static constexpr int kMaxDepth = 128;

  TokenCursor cursor_;
  int depth_ = 0;
};

}  // namespace

Result<Predicate> ParsePredicate(std::string_view text) {
  Lexer lexer(text);
  ODE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  PredicateParser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace ode::odb
