#ifndef ODEVIEW_BENCH_BENCH_SCATTER_H_
#define ODEVIEW_BENCH_BENCH_SCATTER_H_

// Shared scattered-heap fixture for the clustering benchmarks: hot
// (small) employee records interleaved with bulky cold ones so that
// consecutive hot records land on different heap pages. A chase over
// the hot chain then touches one page per record — the worst case the
// re-clusterer exists to fix. bench_access_obs.cc uses the same
// fixture so recorder-overhead numbers and reorg-payoff numbers are
// measured against an identical storage layout.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/access_log.h"
#include "odb/database.h"
#include "odb/oid.h"

namespace ode::bench {

inline constexpr char kScatterSchema[] = R"(
persistent class dept {
public:
  string name;
};
persistent class employee {
public:
  string name;
  string pad;
  dept* dept_ref;
};
)";

/// A database whose hot employees are deliberately scattered across
/// heap pages by interleaved cold records.
struct ScatteredBenchDb {
  std::unique_ptr<odb::Database> db;
  odb::Oid dept;
  std::vector<odb::Oid> hot;  ///< creation order
};

inline ScatteredBenchDb MakeScatteredBenchDb(size_t hot_count,
                                             size_t cold_per_hot,
                                             size_t pool_pages) {
  ScatteredBenchDb out;
  odb::DatabaseOptions options;
  options.buffer_pool_pages = pool_pages;
  out.db = ValueOrDie(odb::Database::CreateInMemory("scatter", options),
                      "create scatter db");
  CheckOk(out.db->DefineSchema(kScatterSchema), "scatter schema");
  out.dept = ValueOrDie(
      out.db->CreateObject(
          "dept", odb::Value::Struct({{"name",
                                       odb::Value::String("research")}})),
      "create dept");
  const std::string cold_pad(900, 'x');
  for (size_t i = 0; i < hot_count; ++i) {
    out.hot.push_back(ValueOrDie(
        out.db->CreateObject(
            "employee",
            odb::Value::Struct(
                {{"name", odb::Value::String("hot" + std::to_string(i))},
                 {"pad", odb::Value::String("h")},
                 {"dept_ref", odb::Value::Ref(out.dept, "dept")}})),
        "create hot employee"));
    for (size_t j = 0; j < cold_per_hot; ++j) {
      (void)ValueOrDie(
          out.db->CreateObject(
              "employee",
              odb::Value::Struct(
                  {{"name", odb::Value::String(
                                "cold" + std::to_string(i) + "_" +
                                std::to_string(j))},
                   {"pad", odb::Value::String(cold_pad)},
                   {"dept_ref", odb::Value::Ref(out.dept, "dept")}})),
          "create cold employee");
    }
  }
  return out;
}

/// An AccessProfile holding a chain of direct intra-cluster affinity
/// edges over consecutive hot records — the shape a browse cascade
/// leaves in the access recorder.
inline obs::AccessProfile ChainProfile(const std::vector<odb::Oid>& hot,
                                       uint64_t weight) {
  obs::AccessProfile profile;
  for (size_t i = 0; i + 1 < hot.size(); ++i) {
    obs::AffinityEdge edge;
    edge.src_cluster = hot[i].cluster;
    edge.src_local = hot[i].local;
    edge.dst_cluster = hot[i + 1].cluster;
    edge.dst_local = hot[i + 1].local;
    edge.count = weight;
    profile.edges.push_back(edge);
  }
  return profile;
}

/// One pass over the hot chain (point reads in affinity order).
inline void ChaseHotChain(odb::Session& session,
                          const std::vector<odb::Oid>& hot) {
  for (odb::Oid oid : hot) {
    benchmark::DoNotOptimize(ValueOrDie(session.GetObject(oid), "chase"));
  }
}

}  // namespace ode::bench

#endif  // ODEVIEW_BENCH_BENCH_SCATTER_H_
