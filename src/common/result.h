#ifndef ODEVIEW_COMMON_RESULT_H_
#define ODEVIEW_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ode {

/// A value-or-error type: either holds a `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`. Construction from a `Status` must use a
/// non-OK status; constructing from OK is an internal error.
template <typename T>
class Result {
 public:
  /// Wraps a successful value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  /// Wraps a failure; `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Accessors; must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

}  // namespace ode

/// Assigns the value of a `Result<T>` expression to `lhs`, or propagates
/// its error status. `lhs` may declare a new variable.
#define ODE_ASSIGN_OR_RETURN(lhs, expr)             \
  ODE_ASSIGN_OR_RETURN_IMPL(                        \
      ODE_RESULT_CONCAT(_result_, __LINE__), lhs, expr)

#define ODE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)   \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define ODE_RESULT_CONCAT_INNER(a, b) a##b
#define ODE_RESULT_CONCAT(a, b) ODE_RESULT_CONCAT_INNER(a, b)

#endif  // ODEVIEW_COMMON_RESULT_H_
