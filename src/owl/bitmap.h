#ifndef ODEVIEW_OWL_BITMAP_H_
#define ODEVIEW_OWL_BITMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ode::owl {

/// A monochrome raster image, as X11 bitmaps were.
///
/// The paper's employee objects have pictorial displays; its
/// acknowledgments credit a "bitmap filter" and "bitmap scaling
/// routines" — reproduced here as `ScaledNearest` (point sampling) and
/// `ScaledBox` (box-filter anti-aliasing via majority threshold).
class Bitmap {
 public:
  Bitmap() = default;
  /// Creates a cleared bitmap of the given dimensions.
  Bitmap(int width, int height);

  /// Parses an ASCII PBM ("P1 w h" then 0/1 cells, whitespace-separated;
  /// '#' comments allowed).
  static Result<Bitmap> FromPbm(std::string_view text);

  /// Serializes back to ASCII PBM.
  std::string ToPbm() const;

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  /// Pixel access; out-of-bounds reads return false, writes are ignored.
  bool Get(int x, int y) const;
  void Set(int x, int y, bool on);

  /// Count of set pixels.
  int PopCount() const;

  /// Point-sampled rescale to `new_width` x `new_height`.
  Bitmap ScaledNearest(int new_width, int new_height) const;

  /// Box-filtered rescale: each destination pixel is set when at least
  /// half of the covered source region is set. Smoother for downscale.
  Bitmap ScaledBox(int new_width, int new_height) const;

  /// Inverts every pixel in place.
  void Invert();

  /// Renders rows of characters (`on` for set pixels, `off` otherwise).
  std::vector<std::string> ToAscii(char on = '#', char off = '.') const;

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.bits_ == b.bits_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> bits_;  // one byte per pixel (simplicity > space)
};

}  // namespace ode::owl

#endif  // ODEVIEW_OWL_BITMAP_H_
