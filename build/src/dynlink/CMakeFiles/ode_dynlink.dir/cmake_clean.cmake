file(REMOVE_RECURSE
  "CMakeFiles/ode_dynlink.dir/lab_modules.cc.o"
  "CMakeFiles/ode_dynlink.dir/lab_modules.cc.o.d"
  "CMakeFiles/ode_dynlink.dir/linker.cc.o"
  "CMakeFiles/ode_dynlink.dir/linker.cc.o.d"
  "CMakeFiles/ode_dynlink.dir/repository.cc.o"
  "CMakeFiles/ode_dynlink.dir/repository.cc.o.d"
  "CMakeFiles/ode_dynlink.dir/synthesized.cc.o"
  "CMakeFiles/ode_dynlink.dir/synthesized.cc.o.d"
  "libode_dynlink.a"
  "libode_dynlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_dynlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
