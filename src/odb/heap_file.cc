#include "odb/heap_file.h"

#include <set>

#include "common/coding.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/trace.h"
#include "odb/slotted_page.h"

namespace ode::odb {

namespace {

// Shared heap-layer instruments: scans over the full directory,
// single-step sequential moves, records served by the batch paths,
// and the three mutation kinds.
obs::Counter& HeapScans() {
  static obs::Counter* c = obs::Registry::Global().counter("heap.scans");
  return *c;
}
obs::Counter& HeapSeqSteps() {
  static obs::Counter* c = obs::Registry::Global().counter("heap.seq_steps");
  return *c;
}
obs::Counter& HeapBatchRecords() {
  static obs::Counter* c =
      obs::Registry::Global().counter("heap.batch_records");
  return *c;
}
obs::Counter& HeapInserts() {
  static obs::Counter* c = obs::Registry::Global().counter("heap.inserts");
  return *c;
}
obs::Counter& HeapUpdates() {
  static obs::Counter* c = obs::Registry::Global().counter("heap.updates");
  return *c;
}
obs::Counter& HeapDeletes() {
  static obs::Counter* c = obs::Registry::Global().counter("heap.deletes");
  return *c;
}

constexpr uint8_t kInlineFlag = 0;
constexpr uint8_t kOverflowFlag = 1;

/// Headroom for the id varint + flag when deciding whether a payload
/// still fits inline.
constexpr size_t kRecordHeaderBudget = 12;

struct ParsedRecord {
  uint64_t local_id = 0;
  bool overflow = false;
  std::string_view inline_payload;  ///< when !overflow
  PageId overflow_head = kNoPage;   ///< when overflow
  uint64_t overflow_size = 0;
};

Result<ParsedRecord> ParseStoredRecord(std::string_view record) {
  Decoder decoder(record);
  ParsedRecord parsed;
  ODE_RETURN_IF_ERROR(decoder.GetVarint64(&parsed.local_id));
  std::string_view flag;
  ODE_RETURN_IF_ERROR(decoder.GetRaw(1, &flag));
  if (static_cast<uint8_t>(flag[0]) == kOverflowFlag) {
    parsed.overflow = true;
    uint32_t head = 0;
    ODE_RETURN_IF_ERROR(decoder.GetFixed32(&head));
    ODE_RETURN_IF_ERROR(decoder.GetVarint64(&parsed.overflow_size));
    parsed.overflow_head = head;
  } else {
    parsed.inline_payload = decoder.remaining();
  }
  return parsed;
}

}  // namespace

Result<HeapFile> HeapFile::Create(BufferPool* pool, FreeList* free_list) {
  PageId first = kNoPage;
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle, pool->NewPage());
    SlottedPage sp(handle.page());
    sp.Init();
    handle.MarkDirty();
    first = handle.id();
    // The handle (frame latch, rank 60) is released here, before the
    // heap lock (rank 30) below — heap locks order before latches.
  }
  HeapFile heap(pool, free_list, first);
  {
    WriterMutexLock lock(*heap.mu_);
    heap.last_page_ = first;
  }
  return heap;
}

Result<HeapFile> HeapFile::Open(BufferPool* pool, FreeList* free_list,
                                PageId first_page) {
  HeapFile heap(pool, free_list, first_page);
  {
    WriterMutexLock lock(*heap.mu_);
    ODE_RETURN_IF_ERROR(heap.ScanChain());
  }
  return heap;
}

uint64_t HeapFile::count() const {
  ReaderMutexLock lock(*mu_);
  return directory_.size();
}

bool HeapFile::Contains(uint64_t local_id) const {
  ReaderMutexLock lock(*mu_);
  return directory_.find(local_id) != directory_.end();
}

Status HeapFile::ScanChain() {
  directory_.clear();
  PageId current = first_page_;
  std::set<PageId> visited;  // a corrupt chain must not loop forever
  while (current != kNoPage) {
    if (!visited.insert(current).second) {
      return Status::Corruption("heap chain cycles back to page " +
                                std::to_string(current));
    }
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(current, PageIntent::kRead));
    SlottedPage sp(handle.page());
    // The chain walk is the first time a page loaded from disk is
    // interpreted, so structural corruption is rejected here once
    // instead of checked on every later access.
    ODE_RETURN_IF_ERROR(sp.Validate());
    for (uint16_t s = 0; s < sp.slot_count(); ++s) {
      Result<std::string_view> record = sp.Get(s);
      if (!record.ok()) continue;  // tombstone
      ODE_ASSIGN_OR_RETURN(ParsedRecord parsed, ParseStoredRecord(*record));
      if (directory_.count(parsed.local_id) != 0) {
        return Status::Corruption("duplicate record id " +
                                  std::to_string(parsed.local_id) +
                                  " in heap chain");
      }
      directory_[parsed.local_id] = Location{current, s};
    }
    last_page_ = current;
    current = sp.next_page();
  }
  return Status::OK();
}

Result<std::string> HeapFile::MakeStoredRecord(uint64_t local_id,
                                               std::string_view payload) {
  std::string record;
  PutVarint64(&record, local_id);
  if (payload.size() + kRecordHeaderBudget <= SlottedPage::kMaxRecordSize) {
    record.push_back(static_cast<char>(kInlineFlag));
    record.append(payload.data(), payload.size());
    return record;
  }
  if (free_list_ == nullptr) {
    return Status::InvalidArgument(
        "object too large for a page and no overflow free list");
  }
  ODE_ASSIGN_OR_RETURN(PageId head, WriteBlob(pool_, free_list_, payload));
  record.push_back(static_cast<char>(kOverflowFlag));
  PutFixed32(&record, head);
  PutVarint64(&record, payload.size());
  return record;
}

Status HeapFile::ReleaseOverflow(std::string_view stored_record) {
  ODE_ASSIGN_OR_RETURN(ParsedRecord parsed,
                       ParseStoredRecord(stored_record));
  if (!parsed.overflow) return Status::OK();
  if (free_list_ == nullptr) {
    return Status::Internal("overflow record without a free list");
  }
  return FreeBlob(pool_, free_list_, parsed.overflow_head);
}

Result<PageId> HeapFile::FindPageWithRoom(size_t needed) {
  // Check the last page first (the common append path), then extend.
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(last_page_, PageIntent::kRead));
    SlottedPage sp(handle.page());
    if (sp.FreeSpace() >= needed + SlottedPage::kSlotSize) {
      return last_page_;
    }
  }
  ODE_ASSIGN_OR_RETURN(PageHandle fresh, pool_->NewPage());
  SlottedPage fresh_sp(fresh.page());
  fresh_sp.Init();
  fresh.MarkDirty();
  PageId fresh_id = fresh.id();
  fresh.Release();
  // Link the old tail to the new page.
  ODE_ASSIGN_OR_RETURN(PageHandle tail,
                       pool_->Fetch(last_page_, PageIntent::kWrite));
  SlottedPage tail_sp(tail.page());
  tail_sp.set_next_page(fresh_id);
  tail.MarkDirty();
  last_page_ = fresh_id;
  return fresh_id;
}

void HeapFile::ChargeAccess(obs::AccessOp op, uint64_t local_id,
                            PageId page) const {
  if (access_label_ == nullptr) return;  // unwired heap (tests, bootstrap)
  obs::AccessLog::Global().Record(op, access_cluster_, local_id,
                                  access_label_, page);
}

Status HeapFile::Insert(uint64_t local_id, std::string_view payload) {
  WriterMutexLock lock(*mu_);
  if (directory_.find(local_id) != directory_.end()) {
    return Status::AlreadyExists("record id " + std::to_string(local_id));
  }
  ODE_ASSIGN_OR_RETURN(std::string record,
                       MakeStoredRecord(local_id, payload));
  ODE_ASSIGN_OR_RETURN(PageId target, FindPageWithRoom(record.size()));
  ODE_ASSIGN_OR_RETURN(PageHandle handle,
                       pool_->Fetch(target, PageIntent::kWrite));
  SlottedPage sp(handle.page());
  ODE_ASSIGN_OR_RETURN(uint16_t slot, sp.Insert(record));
  handle.MarkDirty();
  directory_[local_id] = Location{target, slot};
  HeapInserts().Increment();
  ChargeAccess(obs::AccessOp::kCreate, local_id, target);
  return Status::OK();
}

Result<std::string> HeapFile::Get(uint64_t local_id) const {
  ReaderMutexLock lock(*mu_);
  return GetLocked(local_id);
}

Result<std::string> HeapFile::GetLocked(uint64_t local_id) const {
  auto it = directory_.find(local_id);
  if (it == directory_.end()) {
    return Status::NotFound("record id " + std::to_string(local_id));
  }
  ChargeAccess(obs::AccessOp::kGet, local_id, it->second.page);
  PageHandle handle;
  PageId held = kNoPage;
  return ReadRecordLocked(local_id, it->second, &handle, &held);
}

Result<std::string> HeapFile::ReadRecordLocked(uint64_t local_id,
                                               const Location& loc,
                                               PageHandle* handle,
                                               PageId* held) const {
  std::string payload;
  ODE_RETURN_IF_ERROR(
      AppendRecordLocked(local_id, loc, handle, held, &payload).status());
  return payload;
}

Result<size_t> HeapFile::AppendRecordLocked(uint64_t local_id,
                                            const Location& loc,
                                            PageHandle* handle, PageId* held,
                                            std::string* arena) const {
  if (*held != loc.page) {
    ODE_ASSIGN_OR_RETURN(*handle, pool_->Fetch(loc.page, PageIntent::kRead));
    *held = loc.page;
  }
  SlottedPage sp(handle->page());
  ODE_ASSIGN_OR_RETURN(std::string_view record, sp.Get(loc.slot));
  ODE_ASSIGN_OR_RETURN(ParsedRecord parsed, ParseStoredRecord(record));
  if (parsed.local_id != local_id) {
    return Status::Corruption("directory/record id mismatch");
  }
  if (!parsed.overflow) {
    arena->append(parsed.inline_payload);
    return parsed.inline_payload.size();
  }
  // The record view dies with the handle; read the blob afterwards
  // (never hold a page latch while chasing the overflow chain).
  PageId head = parsed.overflow_head;
  uint64_t size = parsed.overflow_size;
  handle->Release();
  *held = kNoPage;
  ODE_ASSIGN_OR_RETURN(std::string payload, ReadBlob(pool_, head));
  if (payload.size() != size) {
    return Status::Corruption("overflow chain length mismatch for id " +
                              std::to_string(local_id));
  }
  arena->append(payload);
  return payload.size();
}

Status HeapFile::Update(uint64_t local_id, std::string_view payload) {
  WriterMutexLock lock(*mu_);
  return UpdateLocked(local_id, payload);
}

Status HeapFile::UpdateLocked(uint64_t local_id, std::string_view payload) {
  auto it = directory_.find(local_id);
  if (it == directory_.end()) {
    return Status::NotFound("record id " + std::to_string(local_id));
  }
  // Release a previous overflow chain before writing the new record.
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(it->second.page, PageIntent::kRead));
    SlottedPage sp(handle.page());
    ODE_ASSIGN_OR_RETURN(std::string_view old_record,
                         sp.Get(it->second.slot));
    std::string old_copy(old_record);
    handle.Release();
    ODE_RETURN_IF_ERROR(ReleaseOverflow(old_copy));
  }
  ODE_ASSIGN_OR_RETURN(std::string record,
                       MakeStoredRecord(local_id, payload));
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(it->second.page, PageIntent::kWrite));
    SlottedPage sp(handle.page());
    Status in_place = sp.Update(it->second.slot, record);
    if (in_place.ok()) {
      handle.MarkDirty();
      HeapUpdates().Increment();
      ChargeAccess(obs::AccessOp::kUpdate, local_id, it->second.page);
      return Status::OK();
    }
    if (!in_place.IsOutOfRange()) return in_place;
    // Fall through: relocate.
    ODE_RETURN_IF_ERROR(sp.Delete(it->second.slot));
    handle.MarkDirty();
  }
  directory_.erase(it);
  ODE_ASSIGN_OR_RETURN(PageId target, FindPageWithRoom(record.size()));
  ODE_ASSIGN_OR_RETURN(PageHandle handle,
                       pool_->Fetch(target, PageIntent::kWrite));
  SlottedPage sp(handle.page());
  ODE_ASSIGN_OR_RETURN(uint16_t slot, sp.Insert(record));
  handle.MarkDirty();
  directory_[local_id] = Location{target, slot};
  HeapUpdates().Increment();
  ChargeAccess(obs::AccessOp::kUpdate, local_id, target);
  return Status::OK();
}

Status HeapFile::Delete(uint64_t local_id) {
  WriterMutexLock lock(*mu_);
  return DeleteLocked(local_id);
}

Status HeapFile::DeleteLocked(uint64_t local_id) {
  auto it = directory_.find(local_id);
  if (it == directory_.end()) {
    return Status::NotFound("record id " + std::to_string(local_id));
  }
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(it->second.page, PageIntent::kRead));
    SlottedPage sp(handle.page());
    ODE_ASSIGN_OR_RETURN(std::string_view record, sp.Get(it->second.slot));
    std::string copy(record);
    handle.Release();
    ODE_RETURN_IF_ERROR(ReleaseOverflow(copy));
  }
  ODE_ASSIGN_OR_RETURN(PageHandle handle,
                       pool_->Fetch(it->second.page, PageIntent::kWrite));
  SlottedPage sp(handle.page());
  ODE_RETURN_IF_ERROR(sp.Delete(it->second.slot));
  handle.MarkDirty();
  PageId freed_page = it->second.page;
  directory_.erase(it);
  HeapDeletes().Increment();
  ChargeAccess(obs::AccessOp::kDelete, local_id, freed_page);
  return Status::OK();
}

Result<uint64_t> HeapFile::FirstId() const {
  ReaderMutexLock lock(*mu_);
  if (directory_.empty()) return Status::NotFound("cluster is empty");
  return directory_.begin()->first;
}

Result<uint64_t> HeapFile::LastId() const {
  ReaderMutexLock lock(*mu_);
  if (directory_.empty()) return Status::NotFound("cluster is empty");
  return directory_.rbegin()->first;
}

Result<uint64_t> HeapFile::NextId(uint64_t after) const {
  ReaderMutexLock lock(*mu_);
  return NextIdLocked(after);
}

Result<uint64_t> HeapFile::NextIdLocked(uint64_t after) const {
  auto it = directory_.upper_bound(after);
  if (it == directory_.end()) {
    return Status::OutOfRange("no object after id " + std::to_string(after));
  }
  // Read-ahead: while the caller materializes `it`, warm the page the
  // *following* record lives on — the page `next` will need next.
  // Sequencing is the control panel's next/previous button, an
  // explicitly sequential walk, so it is not a point lookup.
  auto follow = std::next(it);
  if (follow != directory_.end() &&
      follow->second.page != it->second.page) {
    pool_->ReadAhead(follow->second.page, /*point_lookup=*/false);
  }
  HeapSeqSteps().Increment();
  return it->first;
}

Result<uint64_t> HeapFile::PrevId(uint64_t before) const {
  ReaderMutexLock lock(*mu_);
  return PrevIdLocked(before);
}

Result<uint64_t> HeapFile::PrevIdLocked(uint64_t before) const {
  auto it = directory_.lower_bound(before);
  if (it == directory_.begin()) {
    return Status::OutOfRange("no object before id " +
                              std::to_string(before));
  }
  --it;
  if (it != directory_.begin()) {
    auto follow = std::prev(it);
    if (follow->second.page != it->second.page) {
      pool_->ReadAhead(follow->second.page, /*point_lookup=*/false);
    }
  }
  HeapSeqSteps().Increment();
  return it->first;
}

Result<std::vector<std::pair<uint64_t, std::string>>> HeapFile::NextRecords(
    uint64_t after, size_t limit) const {
  ODE_TRACE_SPAN("heap.batch_read");
  ReaderMutexLock lock(*mu_);
  auto it = directory_.upper_bound(after);
  if (it == directory_.end()) {
    return Status::OutOfRange("no object after id " + std::to_string(after));
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  out.reserve(limit);
  PageHandle handle;
  PageId held = kNoPage;
  for (; it != directory_.end() && out.size() < limit; ++it) {
    ChargeAccess(obs::AccessOp::kScan, it->first, it->second.page);
    ODE_ASSIGN_OR_RETURN(
        std::string payload,
        ReadRecordLocked(it->first, it->second, &handle, &held));
    out.emplace_back(it->first, std::move(payload));
  }
  // Read-ahead: warm the page the record after the batch lives on. A
  // limit-1 batch is a point lookup (the browse cascade's fused step),
  // not a scan — the policy keeps those out of the prefetch queue.
  if (it != directory_.end() && it->second.page != held) {
    pool_->ReadAhead(it->second.page, /*point_lookup=*/limit == 1);
  }
  HeapBatchRecords().Add(out.size());
  if (auto* profile = obs::CurrentOpProfile()) {
    size_t bytes = 0;
    for (const auto& [id, payload] : out) bytes += payload.size();
    profile->ChargeHeapBatch(out.size(), bytes);
  }
  return out;
}

Status HeapFile::NextRecordsInto(uint64_t after, size_t limit,
                                 std::string* arena,
                                 std::vector<RecordSpan>* spans) const {
  ODE_TRACE_SPAN("heap.batch_read");
  arena->clear();
  spans->clear();
  ReaderMutexLock lock(*mu_);
  auto it = directory_.upper_bound(after);
  if (it == directory_.end()) {
    return Status::OutOfRange("no object after id " + std::to_string(after));
  }
  spans->reserve(limit);
  PageHandle handle;
  PageId held = kNoPage;
  for (; it != directory_.end() && spans->size() < limit; ++it) {
    ChargeAccess(obs::AccessOp::kScan, it->first, it->second.page);
    size_t offset = arena->size();
    ODE_ASSIGN_OR_RETURN(
        size_t length,
        AppendRecordLocked(it->first, it->second, &handle, &held, arena));
    spans->push_back(RecordSpan{it->first, offset, length});
  }
  // Read-ahead: warm the page the record after the batch lives on
  // (limit-1 batches are point lookups; see NextRecords).
  if (it != directory_.end() && it->second.page != held) {
    pool_->ReadAhead(it->second.page, /*point_lookup=*/limit == 1);
  }
  HeapBatchRecords().Add(spans->size());
  if (auto* profile = obs::CurrentOpProfile()) {
    profile->ChargeHeapBatch(spans->size(), arena->size());
  }
  return Status::OK();
}

Result<std::vector<std::pair<uint64_t, std::string>>> HeapFile::PrevRecords(
    uint64_t before, size_t limit) const {
  ODE_TRACE_SPAN("heap.batch_read");
  ReaderMutexLock lock(*mu_);
  auto it = directory_.lower_bound(before);
  if (it == directory_.begin()) {
    return Status::OutOfRange("no object before id " +
                              std::to_string(before));
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  out.reserve(limit);
  PageHandle handle;
  PageId held = kNoPage;
  while (it != directory_.begin() && out.size() < limit) {
    --it;
    ChargeAccess(obs::AccessOp::kScan, it->first, it->second.page);
    ODE_ASSIGN_OR_RETURN(
        std::string payload,
        ReadRecordLocked(it->first, it->second, &handle, &held));
    out.emplace_back(it->first, std::move(payload));
  }
  if (it != directory_.begin()) {
    auto follow = std::prev(it);
    if (follow->second.page != held) {
      pool_->ReadAhead(follow->second.page, /*point_lookup=*/limit == 1);
    }
  }
  HeapBatchRecords().Add(out.size());
  if (auto* profile = obs::CurrentOpProfile()) {
    size_t bytes = 0;
    for (const auto& [id, payload] : out) bytes += payload.size();
    profile->ChargeHeapBatch(out.size(), bytes);
  }
  return out;
}

Result<std::vector<HeapFile::Placement>> HeapFile::RecordPlacements() const {
  ReaderMutexLock lock(*mu_);
  std::vector<Placement> out;
  out.reserve(directory_.size());
  PageHandle handle;
  PageId held = kNoPage;
  for (const auto& [id, loc] : directory_) {
    if (held != loc.page) {
      ODE_ASSIGN_OR_RETURN(handle, pool_->Fetch(loc.page, PageIntent::kRead));
      held = loc.page;
    }
    SlottedPage sp(handle.page());
    ODE_ASSIGN_OR_RETURN(std::string_view record, sp.Get(loc.slot));
    out.push_back(Placement{id, loc.page, loc.slot,
                            static_cast<uint32_t>(record.size())});
  }
  return out;
}

Status HeapFile::RelocateRecord(uint64_t local_id, PageId target_page) {
  WriterMutexLock lock(*mu_);
  auto it = directory_.find(local_id);
  if (it == directory_.end()) {
    return Status::NotFound("record id " + std::to_string(local_id));
  }
  if (it->second.page == target_page) return Status::OK();
  // Copy the stored record off its current page (one handle at a time).
  std::string record;
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(it->second.page, PageIntent::kRead));
    SlottedPage sp(handle.page());
    ODE_ASSIGN_OR_RETURN(std::string_view stored, sp.Get(it->second.slot));
    record.assign(stored.data(), stored.size());
  }
  // Insert on the target first: the record is reachable at every
  // moment (under WAL the insert and the delete below commit in one
  // transaction, so a crash never exposes the duplicate to ScanChain).
  uint16_t new_slot = 0;
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(target_page, PageIntent::kWrite));
    SlottedPage sp(handle.page());
    ODE_RETURN_IF_ERROR(sp.Validate());
    ODE_ASSIGN_OR_RETURN(new_slot, sp.Insert(record));
    handle.MarkDirty();
  }
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(it->second.page, PageIntent::kWrite));
    SlottedPage sp(handle.page());
    ODE_RETURN_IF_ERROR(sp.Delete(it->second.slot));
    handle.MarkDirty();
  }
  it->second = Location{target_page, new_slot};
  return Status::OK();
}

Result<PageId> HeapFile::AllocateTailPage() {
  WriterMutexLock lock(*mu_);
  ODE_ASSIGN_OR_RETURN(PageHandle fresh, pool_->NewPage());
  SlottedPage fresh_sp(fresh.page());
  fresh_sp.Init();
  fresh.MarkDirty();
  PageId fresh_id = fresh.id();
  fresh.Release();
  ODE_ASSIGN_OR_RETURN(PageHandle tail,
                       pool_->Fetch(last_page_, PageIntent::kWrite));
  SlottedPage tail_sp(tail.page());
  tail_sp.set_next_page(fresh_id);
  tail.MarkDirty();
  last_page_ = fresh_id;
  return fresh_id;
}

std::vector<uint64_t> HeapFile::AllIds() const {
  ODE_TRACE_SPAN("heap.scan");
  HeapScans().Increment();
  ReaderMutexLock lock(*mu_);
  std::vector<uint64_t> ids;
  ids.reserve(directory_.size());
  for (const auto& [id, loc] : directory_) ids.push_back(id);
  return ids;
}

Result<uint32_t> HeapFile::PageCount() const {
  ReaderMutexLock lock(*mu_);
  uint32_t n = 0;
  PageId current = first_page_;
  while (current != kNoPage) {
    ++n;
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(current, PageIntent::kRead));
    SlottedPage sp(handle.page());
    current = sp.next_page();
  }
  return n;
}

Result<uint64_t> HeapFile::OverflowCount() const {
  ReaderMutexLock lock(*mu_);
  uint64_t n = 0;
  for (const auto& [id, loc] : directory_) {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(loc.page, PageIntent::kRead));
    SlottedPage sp(handle.page());
    ODE_ASSIGN_OR_RETURN(std::string_view record, sp.Get(loc.slot));
    ODE_ASSIGN_OR_RETURN(ParsedRecord parsed, ParseStoredRecord(record));
    if (parsed.overflow) ++n;
  }
  return n;
}

}  // namespace ode::odb
