#include "odb/catalog.h"

#include <cstring>

#include "common/coding.h"

namespace ode::odb {

namespace {
constexpr uint64_t kMagic = 0x4f44455649455731ull;  // "ODEVIEW1"
// Version 2: every page reserves an 8-byte LSN trailer (see page.h),
// shrinking slotted/blob payload capacity, and the superblock mirrors
// the free-list head on every acquire/release.
constexpr uint32_t kFormatVersion = 2;

// Superblock layout (page 0):
//   magic u64 | format u32 | catalog_head u32 | free_head u32 |
//   name_len u16 | name bytes
constexpr size_t kMagicOffset = 0;
constexpr size_t kFormatOffset = 8;
constexpr size_t kCatalogHeadOffset = 12;
constexpr size_t kFreeHeadOffset = 16;
constexpr size_t kNameLenOffset = 20;
constexpr size_t kNameOffset = 22;

void StoreU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
void StoreU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
void StoreU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}

// Blob page layout: next u32 | length u16 | payload (the LSN trailer
// caps the payload at the usable prefix).
constexpr size_t kBlobHeaderSize = 6;
constexpr size_t kBlobPayloadPerPage = kPageUsableSize - kBlobHeaderSize;
}  // namespace

PageId FreeList::head() const {
  MutexLock lock(*mu_);
  return head_;
}

Result<PageId> FreeList::Acquire() {
  MutexLock lock(*mu_);
  if (head_ == kNoPage) {
    ODE_ASSIGN_OR_RETURN(PageHandle handle, pool_->NewPage());
    PageId id = handle.id();
    handle.MarkDirty();
    // Fresh allocation: the head is unchanged, nothing to mirror.
    return id;
  }
  PageId id = head_;
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(id, PageIntent::kWrite));
    head_ = DecodeFixed32(handle.page()->bytes());
    handle.page()->Zero();
    handle.MarkDirty();
  }
  ODE_RETURN_IF_ERROR(PersistHead());
  return id;
}

Status FreeList::Release(PageId id) {
  MutexLock lock(*mu_);
  {
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(id, PageIntent::kWrite));
    handle.page()->Zero();
    StoreU32(handle.page()->bytes(), head_);
    handle.MarkDirty();
  }
  head_ = id;
  return PersistHead();
}

Status FreeList::PersistHead() {
  if (superblock_ == kNoPage) return Status::OK();
  // Write-through of the head into the superblock so every head change
  // is part of the write transaction that caused it (a crash can then
  // never resurrect an acquired page or orphan a released one beyond
  // what log replay reconstructs).
  ODE_ASSIGN_OR_RETURN(PageHandle super,
                       pool_->Fetch(superblock_, PageIntent::kWrite));
  StoreU32(super.page()->bytes() + kFreeHeadOffset, head_);
  super.MarkDirty();
  return Status::OK();
}

Result<uint32_t> FreeList::Size() const {
  MutexLock lock(*mu_);
  uint32_t n = 0;
  PageId current = head_;
  while (current != kNoPage) {
    ++n;
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->Fetch(current, PageIntent::kRead));
    current = DecodeFixed32(handle.page()->bytes());
    if (n > pool_->pager()->page_count()) {
      return Status::Corruption("free list cycle");
    }
  }
  return n;
}

Result<PageId> WriteBlob(BufferPool* pool, FreeList* free_list,
                         std::string_view bytes) {
  PageId head = kNoPage;
  PageId prev = kNoPage;
  size_t offset = 0;
  do {
    size_t chunk = std::min(kBlobPayloadPerPage, bytes.size() - offset);
    ODE_ASSIGN_OR_RETURN(PageId id, free_list->Acquire());
    ODE_ASSIGN_OR_RETURN(PageHandle handle,
                         pool->Fetch(id, PageIntent::kWrite));
    handle.page()->Zero();
    StoreU32(handle.page()->bytes(), kNoPage);
    StoreU16(handle.page()->bytes() + 4, static_cast<uint16_t>(chunk));
    std::memcpy(handle.page()->bytes() + kBlobHeaderSize,
                bytes.data() + offset, chunk);
    handle.MarkDirty();
    handle.Release();
    if (prev != kNoPage) {
      ODE_ASSIGN_OR_RETURN(PageHandle prev_handle,
                           pool->Fetch(prev, PageIntent::kWrite));
      StoreU32(prev_handle.page()->bytes(), id);
      prev_handle.MarkDirty();
    } else {
      head = id;
    }
    prev = id;
    offset += chunk;
  } while (offset < bytes.size());
  return head;
}

Result<std::string> ReadBlob(BufferPool* pool, PageId head) {
  std::string out;
  PageId current = head;
  uint32_t guard = 0;
  while (current != kNoPage) {
    if (++guard > pool->pager()->page_count()) {
      return Status::Corruption("blob chain cycle");
    }
    ODE_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(current));
    uint16_t len = DecodeFixed16(handle.page()->bytes() + 4);
    if (len > kBlobPayloadPerPage) {
      return Status::Corruption("blob page length out of range");
    }
    out.append(handle.page()->bytes() + kBlobHeaderSize, len);
    current = DecodeFixed32(handle.page()->bytes());
  }
  return out;
}

Status FreeBlob(BufferPool* pool, FreeList* free_list, PageId head) {
  PageId current = head;
  uint32_t guard = 0;
  while (current != kNoPage) {
    if (++guard > pool->pager()->page_count()) {
      return Status::Corruption("blob chain cycle");
    }
    ODE_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(current));
    PageId next = DecodeFixed32(handle.page()->bytes());
    handle.Release();
    ODE_RETURN_IF_ERROR(free_list->Release(current));
    current = next;
  }
  return Status::OK();
}

Result<Catalog> Catalog::Format(BufferPool* pool, std::string db_name) {
  if (pool->pager()->page_count() != 0) {
    return Status::FailedPrecondition("Format requires an empty database");
  }
  if (db_name.size() > kPageUsableSize - kNameOffset) {
    return Status::InvalidArgument("database name too long");
  }
  ODE_ASSIGN_OR_RETURN(PageHandle super, pool->NewPage());
  if (super.id() != 0) {
    return Status::Internal("superblock did not land on page 0");
  }
  super.MarkDirty();
  super.Release();
  Catalog catalog(pool, std::move(db_name),
                  FreeList(pool, kNoPage, /*superblock=*/0));
  ODE_RETURN_IF_ERROR(catalog.Persist());
  return catalog;
}

Result<Catalog> Catalog::Load(BufferPool* pool) {
  ODE_ASSIGN_OR_RETURN(PageHandle super, pool->Fetch(0, PageIntent::kRead));
  const char* bytes = super.page()->bytes();
  if (DecodeFixed64(bytes + kMagicOffset) != kMagic) {
    return Status::Corruption("bad database magic");
  }
  uint32_t format = DecodeFixed32(bytes + kFormatOffset);
  if (format != kFormatVersion) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(format));
  }
  PageId catalog_head = DecodeFixed32(bytes + kCatalogHeadOffset);
  PageId free_head = DecodeFixed32(bytes + kFreeHeadOffset);
  uint16_t name_len = DecodeFixed16(bytes + kNameLenOffset);
  if (name_len > kPageUsableSize - kNameOffset) {
    return Status::Corruption("database name length out of range");
  }
  std::string name(bytes + kNameOffset, name_len);
  super.Release();
  Catalog catalog(pool, std::move(name),
                  FreeList(pool, free_head, /*superblock=*/0));
  catalog.catalog_head_ = catalog_head;
  if (catalog_head != kNoPage) {
    ODE_ASSIGN_OR_RETURN(std::string body, ReadBlob(pool, catalog_head));
    ODE_RETURN_IF_ERROR(catalog.DecodeBody(body));
  }
  return catalog;
}

Result<ClusterId> Catalog::AddCluster(const std::string& class_name,
                                      PageId first_page) {
  for (const auto& [id, info] : clusters_) {
    if (info.class_name == class_name) {
      return Status::AlreadyExists("cluster for class '" + class_name + "'");
    }
  }
  ClusterId id = next_cluster_id_++;
  clusters_[id] = ClusterInfo{class_name, id, first_page, 1};
  return id;
}

Status Catalog::RemoveCluster(const std::string& class_name) {
  for (auto it = clusters_.begin(); it != clusters_.end(); ++it) {
    if (it->second.class_name == class_name) {
      clusters_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("cluster for class '" + class_name + "'");
}

Result<const ClusterInfo*> Catalog::FindCluster(
    const std::string& class_name) const {
  for (const auto& [id, info] : clusters_) {
    if (info.class_name == class_name) return &info;
  }
  return Status::NotFound("cluster for class '" + class_name + "'");
}

Result<const ClusterInfo*> Catalog::FindCluster(ClusterId id) const {
  auto it = clusters_.find(id);
  if (it == clusters_.end()) {
    return Status::NotFound("cluster " + std::to_string(id));
  }
  return &it->second;
}

std::vector<const ClusterInfo*> Catalog::clusters() const {
  std::vector<const ClusterInfo*> out;
  out.reserve(clusters_.size());
  for (const auto& [id, info] : clusters_) out.push_back(&info);
  return out;
}

Result<uint64_t> Catalog::NextLocalId(ClusterId id) {
  MutexLock lock(*id_mu_);
  auto it = clusters_.find(id);
  if (it == clusters_.end()) {
    return Status::NotFound("cluster " + std::to_string(id));
  }
  return it->second.next_local++;
}

Status Catalog::BumpNextLocalId(ClusterId id, uint64_t at_least) {
  MutexLock lock(*id_mu_);
  auto it = clusters_.find(id);
  if (it == clusters_.end()) {
    return Status::NotFound("cluster " + std::to_string(id));
  }
  if (it->second.next_local < at_least) it->second.next_local = at_least;
  return Status::OK();
}

Status Catalog::Persist() {
  std::string body;
  EncodeBody(&body);
  PageId old_head = catalog_head_;
  ODE_ASSIGN_OR_RETURN(PageId new_head,
                       WriteBlob(pool_, &free_list_, body));
  catalog_head_ = new_head;
  if (old_head != kNoPage) {
    ODE_RETURN_IF_ERROR(FreeBlob(pool_, &free_list_, old_head));
  }
  return WriteSuperblock(new_head);
}

Status Catalog::WriteSuperblock(PageId catalog_head) {
  // Read the free-list head before latching page 0: the lock order
  // puts the free-list mutex before frame latches (FreeList::Acquire
  // latches fresh frames while holding its mutex).
  PageId free_head = free_list_.head();
  ODE_ASSIGN_OR_RETURN(PageHandle super,
                       pool_->Fetch(0, PageIntent::kWrite));
  char* bytes = super.page()->bytes();
  super.page()->Zero();
  StoreU64(bytes + kMagicOffset, kMagic);
  StoreU32(bytes + kFormatOffset, kFormatVersion);
  StoreU32(bytes + kCatalogHeadOffset, catalog_head);
  StoreU32(bytes + kFreeHeadOffset, free_head);
  StoreU16(bytes + kNameLenOffset, static_cast<uint16_t>(db_name_.size()));
  std::memcpy(bytes + kNameOffset, db_name_.data(), db_name_.size());
  super.MarkDirty();
  return Status::OK();
}

void Catalog::EncodeBody(std::string* dst) const {
  schema_.Encode(dst);
  PutVarint32(dst, next_cluster_id_);
  PutVarint64(dst, clusters_.size());
  for (const auto& [id, info] : clusters_) {
    PutVarint32(dst, info.id);
    PutLengthPrefixed(dst, info.class_name);
    PutFixed32(dst, info.first_page);
    PutVarint64(dst, info.next_local);
  }
}

Status Catalog::DecodeBody(std::string_view bytes) {
  Decoder decoder(bytes);
  ODE_ASSIGN_OR_RETURN(schema_, Schema::Decode(&decoder));
  ODE_RETURN_IF_ERROR(decoder.GetVarint32(&next_cluster_id_));
  uint64_t n = 0;
  ODE_RETURN_IF_ERROR(decoder.GetVarint64(&n));
  clusters_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    ClusterInfo info;
    ODE_RETURN_IF_ERROR(decoder.GetVarint32(&info.id));
    std::string_view name;
    ODE_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&name));
    info.class_name = std::string(name);
    ODE_RETURN_IF_ERROR(decoder.GetFixed32(&info.first_page));
    ODE_RETURN_IF_ERROR(decoder.GetVarint64(&info.next_local));
    clusters_[info.id] = std::move(info);
  }
  if (!decoder.empty()) {
    return Status::Corruption("trailing bytes after catalog body");
  }
  return Status::OK();
}

}  // namespace ode::odb
