#ifndef ODEVIEW_ODB_CLUSTER_ADVISOR_H_
#define ODEVIEW_ODB_CLUSTER_ADVISOR_H_

#include <cstddef>
#include <string>

#include "common/access_log.h"
#include "common/result.h"
#include "odb/cluster/plan.h"
#include "odb/database.h"

namespace ode::odb::cluster {

/// Advisor knobs.
struct AdvisorOptions {
  /// Ignore affinity edges weaker than this (noise floor).
  uint64_t min_edge_weight = 1;
};

/// Computes a page-placement plan from an access-recorder snapshot.
///
/// The advisor mines the profile's reference-affinity edges (display
/// cascades and join row flow — see `AccessLog::RecordAffinity`):
///  * a direct edge between two records of the same cluster is a
///    co-location vote with the edge's weight;
///  * records of one cluster referenced from the same *other* object
///    (e.g. all employees of one department) are chained as siblings,
///    adjacent pairs weighted by the weaker endpoint — linear in the
///    sibling count, so a popular hub never induces a quadratic clique.
/// Edges are then greedily merged into byte-budgeted page groups
/// (strongest first; a group never outgrows one slotted page's usable
/// space, costed from each record's current stored size + slot).
/// Records deleted since the profile was taken drop out naturally —
/// their placements no longer exist.
///
/// The returned plan carries the cost model's verdict: total affinity
/// weight crossing a page boundary now vs. under the plan (see
/// `ClusterPlan::PredictedSavingRatio`).
Result<ClusterPlan> BuildClusterPlan(Database* db,
                                     const obs::AccessProfile& profile,
                                     const AdvisorOptions& options = {});

/// Trace-driven variant: folds the affinity records of a captured
/// ODEACC01 file (see `obs::ReadAccessTrace` / replay.h) into an edge
/// list and plans from that — advise from yesterday's captured
/// workload without keeping the recorder on.
Result<ClusterPlan> BuildClusterPlanFromTrace(
    Database* db, const std::string& trace_path,
    const AdvisorOptions& options = {});

}  // namespace ode::odb::cluster

#endif  // ODEVIEW_ODB_CLUSTER_ADVISOR_H_
