# Empty dependencies file for odeview_shell.
# This may be replaced when dependencies are built.
