#include <gtest/gtest.h>

#include "odb/predicate.h"

namespace ode::odb {
namespace {

Value Employee(std::string name, int64_t age, double salary) {
  return Value::Struct({
      {"name", Value::String(std::move(name))},
      {"age", Value::Int(age)},
      {"salary", Value::Real(salary)},
      {"active", Value::Bool(true)},
      {"dept", Value::Struct({{"name", Value::String("research")}})},
      {"tags", Value::Set({Value::String("db"), Value::String("ui")})},
  });
}

// --- Programmatic construction & evaluation ------------------------------

TEST(PredicateTest, TrueMatchesEverything) {
  EXPECT_TRUE(*Predicate::True().Evaluate(Employee("a", 1, 2)));
  EXPECT_TRUE(*Predicate::True().Evaluate(Value::Null()));
}

TEST(PredicateTest, NumericComparisons) {
  Value obj = Employee("amy", 40, 90000);
  auto cmp = [&](CompareOp op, int64_t rhs) {
    return *Predicate::Compare(Operand::Attribute("age"), op,
                               Operand::Literal(Value::Int(rhs)))
                .Evaluate(obj);
  };
  EXPECT_TRUE(cmp(CompareOp::kEq, 40));
  EXPECT_FALSE(cmp(CompareOp::kEq, 41));
  EXPECT_TRUE(cmp(CompareOp::kNe, 41));
  EXPECT_TRUE(cmp(CompareOp::kLt, 41));
  EXPECT_TRUE(cmp(CompareOp::kLe, 40));
  EXPECT_FALSE(cmp(CompareOp::kLt, 40));
  EXPECT_TRUE(cmp(CompareOp::kGt, 39));
  EXPECT_TRUE(cmp(CompareOp::kGe, 40));
}

TEST(PredicateTest, IntRealCrossComparison) {
  Value obj = Employee("amy", 40, 90000.5);
  Predicate p = Predicate::Compare(Operand::Attribute("salary"),
                                   CompareOp::kGt,
                                   Operand::Literal(Value::Int(90000)));
  EXPECT_TRUE(*p.Evaluate(obj));
}

TEST(PredicateTest, StringComparisons) {
  Value obj = Employee("rakesh", 35, 1);
  EXPECT_TRUE(*Predicate::Compare(Operand::Attribute("name"),
                                  CompareOp::kEq,
                                  Operand::Literal(Value::String("rakesh")))
                   .Evaluate(obj));
  EXPECT_TRUE(*Predicate::Compare(Operand::Attribute("name"),
                                  CompareOp::kLt,
                                  Operand::Literal(Value::String("zzz")))
                   .Evaluate(obj));
  EXPECT_TRUE(*Predicate::Compare(Operand::Attribute("name"),
                                  CompareOp::kContains,
                                  Operand::Literal(Value::String("kes")))
                   .Evaluate(obj));
}

TEST(PredicateTest, SetContains) {
  Value obj = Employee("a", 1, 2);
  EXPECT_TRUE(*Predicate::Compare(Operand::Attribute("tags"),
                                  CompareOp::kContains,
                                  Operand::Literal(Value::String("db")))
                   .Evaluate(obj));
  EXPECT_FALSE(*Predicate::Compare(Operand::Attribute("tags"),
                                   CompareOp::kContains,
                                   Operand::Literal(Value::String("net")))
                    .Evaluate(obj));
}

TEST(PredicateTest, DottedPathsReachNestedAttributes) {
  Value obj = Employee("a", 1, 2);
  EXPECT_TRUE(*Predicate::Compare(
                   Operand::Attribute("dept.name"), CompareOp::kEq,
                   Operand::Literal(Value::String("research")))
                   .Evaluate(obj));
}

TEST(PredicateTest, MissingAttributeIsFalseNotError) {
  Value obj = Employee("a", 1, 2);
  Result<bool> result =
      Predicate::Compare(Operand::Attribute("ghost"), CompareOp::kEq,
                         Operand::Literal(Value::Int(1)))
          .Evaluate(obj);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(PredicateTest, TypeMismatchOrderingIsError) {
  Value obj = Employee("a", 1, 2);
  Result<bool> result =
      Predicate::Compare(Operand::Attribute("name"), CompareOp::kLt,
                         Operand::Literal(Value::Int(3)))
          .Evaluate(obj);
  EXPECT_FALSE(result.ok());
}

TEST(PredicateTest, EqualityAcrossKindsIsFalseNotError) {
  Value obj = Employee("a", 1, 2);
  Result<bool> eq =
      Predicate::Compare(Operand::Attribute("name"), CompareOp::kEq,
                         Operand::Literal(Value::Int(3)))
          .Evaluate(obj);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
  Result<bool> ne =
      Predicate::Compare(Operand::Attribute("name"), CompareOp::kNe,
                         Operand::Literal(Value::Int(3)))
          .Evaluate(obj);
  ASSERT_TRUE(ne.ok());
  EXPECT_TRUE(*ne);
}

TEST(PredicateTest, BooleanConnectives) {
  Value obj = Employee("amy", 40, 90000);
  Predicate young = Predicate::Compare(Operand::Attribute("age"),
                                       CompareOp::kLt,
                                       Operand::Literal(Value::Int(30)));
  Predicate rich = Predicate::Compare(
      Operand::Attribute("salary"), CompareOp::kGt,
      Operand::Literal(Value::Real(50000)));
  EXPECT_FALSE(*Predicate::And(young, rich).Evaluate(obj));
  EXPECT_TRUE(*Predicate::Or(young, rich).Evaluate(obj));
  EXPECT_TRUE(*Predicate::Not(young).Evaluate(obj));
  EXPECT_FALSE(*Predicate::Not(Predicate::Or(young, rich)).Evaluate(obj));
}

TEST(PredicateTest, ShortCircuitSkipsErrors) {
  Value obj = Employee("a", 10, 2);
  // RHS would error (string < int), but LHS decides first.
  Predicate lhs_false = Predicate::Compare(
      Operand::Attribute("age"), CompareOp::kGt,
      Operand::Literal(Value::Int(100)));
  Predicate bad = Predicate::Compare(Operand::Attribute("name"),
                                     CompareOp::kLt,
                                     Operand::Literal(Value::Int(1)));
  EXPECT_FALSE(*Predicate::And(lhs_false, bad).Evaluate(obj));
  Predicate lhs_true = Predicate::Compare(
      Operand::Attribute("age"), CompareOp::kLt,
      Operand::Literal(Value::Int(100)));
  EXPECT_TRUE(*Predicate::Or(lhs_true, bad).Evaluate(obj));
}

TEST(PredicateTest, AttributePathsCollected) {
  Result<Predicate> p =
      ParsePredicate("age > 30 && (dept.name == \"x\" || salary < 5)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->AttributePaths(),
            (std::vector<std::string>{"age", "dept.name", "salary"}));
}

// --- Parser -----------------------------------------------------------------

struct ParseCase {
  const char* text;
  bool expected;  // against Employee("rakesh", 35, 90000.5)
};

class PredicateParseEval : public ::testing::TestWithParam<ParseCase> {};

TEST_P(PredicateParseEval, EvaluatesAsExpected) {
  Value obj = Employee("rakesh", 35, 90000.5);
  Result<Predicate> p = ParsePredicate(GetParam().text);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Result<bool> result = p->Evaluate(obj);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, GetParam().expected) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PredicateParseEval,
    ::testing::Values(
        ParseCase{"age == 35", true},
        ParseCase{"age = 35", true},  // QBE-friendly single '='
        ParseCase{"age != 35", false},
        ParseCase{"age >= 35 && age <= 35", true},
        ParseCase{"age < 35 || age > 34", true},
        ParseCase{"!(age < 35) && !(age > 35)", true},
        ParseCase{"name == \"rakesh\"", true},
        ParseCase{"name contains \"ake\"", true},
        ParseCase{"name contains \"xyz\"", false},
        ParseCase{"tags contains \"db\"", true},
        ParseCase{"dept.name == \"research\"", true},
        ParseCase{"salary > 90000", true},
        ParseCase{"salary > 9.5e4", false},
        ParseCase{"active == true", true},
        ParseCase{"active != false", true},
        ParseCase{"age > -100", true},
        ParseCase{"35 == age", true},  // literal on the left
        ParseCase{"age > 30 && name == \"rakesh\" && salary < 100000",
                  true},
        ParseCase{"", true}));  // empty condition box = everything

TEST(PredicateParserTest, ErrorsAreDescriptive) {
  EXPECT_FALSE(ParsePredicate("age >").ok());
  EXPECT_FALSE(ParsePredicate("&& age > 1").ok());
  EXPECT_FALSE(ParsePredicate("age > 1 garbage").ok());
  EXPECT_FALSE(ParsePredicate("(age > 1").ok());
  EXPECT_FALSE(ParsePredicate("age ~ 3").ok());
  EXPECT_FALSE(ParsePredicate("age > \"unterminated").ok());
}

TEST(PredicateParserTest, ToStringIsReparseable) {
  Result<Predicate> p =
      ParsePredicate("age > 30 && (name == \"amy\" || salary <= 5.5)");
  ASSERT_TRUE(p.ok());
  Result<Predicate> reparsed = ParsePredicate(p->ToString());
  ASSERT_TRUE(reparsed.ok()) << p->ToString();
  Value obj = Employee("amy", 40, 2.0);
  EXPECT_EQ(*p->Evaluate(obj), *reparsed->Evaluate(obj));
}

TEST(PredicateParserTest, PrecedenceAndBindsTighterThanOr) {
  // a || b && c  ==  a || (b && c)
  Result<Predicate> p =
      ParsePredicate("age == 1 || age == 35 && name == \"rakesh\"");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(*p->Evaluate(Employee("rakesh", 35, 0)));
  EXPECT_FALSE(*p->Evaluate(Employee("other", 35, 0)));
  EXPECT_TRUE(*p->Evaluate(Employee("other", 1, 0)));
}

}  // namespace
}  // namespace ode::odb
