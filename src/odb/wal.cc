#include "odb/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>

#include "common/coding.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/trace.h"

namespace ode::odb {

namespace {

constexpr uint64_t kWalMagic = 0x4f4445574c303155ull;  // "ODEWL01U"
constexpr uint32_t kWalVersion = 1;

// Log instruments (process-wide; the WAL has no per-instance stats
// API, matching the pager's convention).
obs::Counter& RecordsAppended() {
  static obs::Counter* c =
      obs::Registry::Global().counter("wal.records.appended");
  return *c;
}
obs::Counter& BytesAppended() {
  static obs::Counter* c =
      obs::Registry::Global().counter("wal.bytes.appended");
  return *c;
}
obs::Counter& Commits() {
  static obs::Counter* c = obs::Registry::Global().counter("wal.commits");
  return *c;
}
obs::Counter& Fsyncs() {
  static obs::Counter* c = obs::Registry::Global().counter("wal.fsyncs");
  return *c;
}
obs::Counter& Checkpoints() {
  static obs::Counter* c = obs::Registry::Global().counter("wal.checkpoints");
  return *c;
}
obs::Counter& RecoveryRuns() {
  static obs::Counter* c =
      obs::Registry::Global().counter("wal.recovery.runs");
  return *c;
}
obs::Counter& RecoveryPagesRedone() {
  static obs::Counter* c =
      obs::Registry::Global().counter("wal.recovery.pages_redone");
  return *c;
}
obs::Counter& RecoveryCommittedTxns() {
  static obs::Counter* c =
      obs::Registry::Global().counter("wal.recovery.committed_txns");
  return *c;
}
obs::Counter& RecoveryTornBytes() {
  static obs::Counter* c =
      obs::Registry::Global().counter("wal.recovery.torn_bytes");
  return *c;
}
obs::Histogram& CommitWaitNs() {
  static obs::Histogram* h =
      obs::Registry::Global().histogram("wal.commit.wait_ns");
  return *h;
}

std::string EncodeWalHeader(uint64_t base_lsn) {
  std::string header;
  PutFixed64(&header, kWalMagic);
  PutFixed32(&header, kWalVersion);
  PutFixed32(&header, 0);  // reserved
  PutFixed64(&header, base_lsn);
  PutFixed32(&header, Crc32(std::string_view(header)));
  PutFixed32(&header, 0);  // pad to kHeaderSize
  return header;
}

/// Returns the base LSN, or an error for a missing/corrupt header.
Result<uint64_t> DecodeWalHeader(std::string_view bytes) {
  if (bytes.size() < Wal::kHeaderSize) {
    return Status::Corruption("wal header truncated");
  }
  if (DecodeFixed64(bytes.data()) != kWalMagic) {
    return Status::Corruption("bad wal magic");
  }
  if (DecodeFixed32(bytes.data() + 8) != kWalVersion) {
    return Status::Corruption("unsupported wal version");
  }
  uint32_t crc = DecodeFixed32(bytes.data() + 24);
  if (Crc32(bytes.substr(0, 24)) != crc) {
    return Status::Corruption("wal header checksum mismatch");
  }
  return DecodeFixed64(bytes.data() + 16);
}

/// One parsed record during the recovery scan (payload views into the
/// scanned buffer).
struct ScannedRecord {
  WalRecordInfo info;
  std::string_view payload;
};

/// Walks records from `kHeaderSize` to the first invalid/torn one.
/// Returns the file offset just past the last valid record.
uint64_t ScanWalRecords(std::string_view bytes,
                        std::vector<ScannedRecord>* out) {
  // Cap a record's payload well above any legal record so a garbage
  // length field can't send the scanner far past the torn point.
  constexpr size_t kMaxPayload = kPageSize + 64;
  size_t offset = Wal::kHeaderSize;
  while (bytes.size() - offset >= Wal::kRecordHeaderSize) {
    const char* p = bytes.data() + offset;
    uint32_t payload_len = DecodeFixed32(p);
    uint8_t type = static_cast<uint8_t>(p[4]);
    uint64_t txn = DecodeFixed64(p + 5);
    uint32_t crc = DecodeFixed32(p + 13);
    if (payload_len > kMaxPayload) break;
    if (bytes.size() - offset - Wal::kRecordHeaderSize < payload_len) break;
    std::string_view payload =
        bytes.substr(offset + Wal::kRecordHeaderSize, payload_len);
    // CRC covers type + txn + payload (everything the length and crc
    // fields describe).
    uint32_t actual = Crc32(bytes.substr(offset + 4, 9));
    actual = Crc32(payload, actual);
    if (actual != crc) break;
    if (type != static_cast<uint8_t>(WalRecordType::kPageImage) &&
        type != static_cast<uint8_t>(WalRecordType::kCommit) &&
        type != static_cast<uint8_t>(WalRecordType::kCheckpoint)) {
      break;
    }
    ScannedRecord rec;
    rec.info.offset = offset;
    rec.info.end_offset = offset + Wal::kRecordHeaderSize + payload_len;
    rec.info.type = static_cast<WalRecordType>(type);
    rec.info.txn = txn;
    if (rec.info.type == WalRecordType::kPageImage &&
        payload.size() >= sizeof(uint32_t)) {
      rec.info.page = DecodeFixed32(payload.data());
    }
    rec.payload = payload;
    if (out != nullptr) out->push_back(rec);
    offset = static_cast<size_t>(rec.info.end_offset);
  }
  return offset;
}

/// Grows the data file with zeroed pages until `id` is writable.
Status EnsureAllocated(Pager* pager, PageId id) {
  Page zero;
  zero.Zero();
  while (pager->page_count() < id) {
    ODE_RETURN_IF_ERROR(pager->Write(pager->page_count(), zero));
  }
  return Status::OK();
}

}  // namespace

// --- FdWalStore -------------------------------------------------------

Result<std::unique_ptr<FdWalStore>> FdWalStore::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open wal file '" + path + "': " +
                           std::strerror(errno));
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::IOError("cannot size wal file '" + path + "'");
  }
  return std::unique_ptr<FdWalStore>(
      new FdWalStore(fd, static_cast<uint64_t>(end), path));
}

FdWalStore::~FdWalStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status FdWalStore::Append(std::string_view bytes) {
  const char* src = bytes.data();
  size_t remaining = bytes.size();
  auto offset = static_cast<off_t>(size_.load(std::memory_order_relaxed));
  while (remaining > 0) {
    ssize_t n = ::pwrite(fd_, src, remaining, offset);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("short write to wal '" + path_ + "'");
    }
    src += n;
    offset += n;
    remaining -= static_cast<size_t>(n);
  }
  size_.fetch_add(bytes.size(), std::memory_order_release);
  return Status::OK();
}

Status FdWalStore::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed for wal '" + path_ + "'");
  }
  return Status::OK();
}

Result<std::string> FdWalStore::ReadAll() {
  uint64_t size = size_.load(std::memory_order_acquire);
  std::string out(size, '\0');
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pread(fd_, out.data() + done, size - done,
                        static_cast<off_t>(done));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("short read from wal '" + path_ + "'");
    }
    done += static_cast<size_t>(n);
  }
  return out;
}

Status FdWalStore::Reset(std::string_view header) {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("truncate failed for wal '" + path_ + "'");
  }
  size_.store(0, std::memory_order_release);
  ODE_RETURN_IF_ERROR(Append(header));
  return Sync();
}

Status FdWalStore::TruncateTo(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("truncate failed for wal '" + path_ + "'");
  }
  size_.store(size, std::memory_order_release);
  return Status::OK();
}

// --- MemWalStore ------------------------------------------------------

Status MemWalStore::Append(std::string_view bytes) {
  MutexLock lock(mu_);
  bytes_.append(bytes);
  return Status::OK();
}

Status MemWalStore::Sync() {
  MutexLock lock(mu_);
  if (fail_syncs_) return Status::IOError("injected wal sync failure");
  synced_ = bytes_.size();
  return Status::OK();
}

Result<std::string> MemWalStore::ReadAll() {
  MutexLock lock(mu_);
  return bytes_;
}

Status MemWalStore::Reset(std::string_view header) {
  MutexLock lock(mu_);
  if (fail_syncs_) return Status::IOError("injected wal sync failure");
  bytes_.assign(header.data(), header.size());
  synced_ = bytes_.size();
  return Status::OK();
}

Status MemWalStore::TruncateTo(uint64_t size) {
  MutexLock lock(mu_);
  if (size < bytes_.size()) bytes_.resize(size);
  synced_ = std::min<uint64_t>(synced_, bytes_.size());
  return Status::OK();
}

uint64_t MemWalStore::size() const {
  MutexLock lock(mu_);
  return bytes_.size();
}

void MemWalStore::set_fail_syncs(bool fail) {
  MutexLock lock(mu_);
  fail_syncs_ = fail;
}

std::string MemWalStore::durable_bytes() const {
  MutexLock lock(mu_);
  return bytes_.substr(0, synced_);
}

std::string MemWalStore::contents() const {
  MutexLock lock(mu_);
  return bytes_;
}

// --- Wal --------------------------------------------------------------

Wal::Wal(std::unique_ptr<WalStore> store, const WalOptions& options,
         uint64_t base_lsn)
    : store_(std::move(store)),
      options_(options),
      base_lsn_(base_lsn),
      next_lsn_(base_lsn),
      durable_lsn_(base_lsn) {}

Result<std::unique_ptr<Wal>> Wal::Create(const std::string& path,
                                         const WalOptions& options) {
  ODE_ASSIGN_OR_RETURN(std::unique_ptr<FdWalStore> store,
                       FdWalStore::Open(path));
  return Create(std::unique_ptr<WalStore>(std::move(store)), options);
}

Result<std::unique_ptr<Wal>> Wal::Create(std::unique_ptr<WalStore> store,
                                         const WalOptions& options) {
  ODE_RETURN_IF_ERROR(store->Reset(EncodeWalHeader(0)));
  return std::unique_ptr<Wal>(new Wal(std::move(store), options, 0));
}

Result<std::unique_ptr<Wal>> Wal::OpenAndRecover(const std::string& path,
                                                 Pager* pager,
                                                 const WalOptions& options,
                                                 WalRecoveryStats* stats) {
  ODE_ASSIGN_OR_RETURN(std::unique_ptr<FdWalStore> store,
                       FdWalStore::Open(path));
  return OpenAndRecover(std::unique_ptr<WalStore>(std::move(store)), pager,
                        options, stats);
}

Result<std::unique_ptr<Wal>> Wal::OpenAndRecover(
    std::unique_ptr<WalStore> store, Pager* pager, const WalOptions& options,
    WalRecoveryStats* stats) {
  ODE_TRACE_SPAN("wal.recover");
  ODE_ASSIGN_OR_RETURN(std::string bytes, store->ReadAll());
  obs::Journal::Global().Append(obs::JournalEvent::kWalRecoveryStart,
                                static_cast<int64_t>(bytes.size()));
  RecoveryRuns().Increment();
  WalRecoveryStats local;
  WalRecoveryStats* out = stats != nullptr ? stats : &local;
  *out = WalRecoveryStats{};
  out->scanned_bytes = bytes.size();

  Result<uint64_t> base = DecodeWalHeader(bytes);
  if (!base.ok()) {
    // Empty (fresh database) or garbled header. With no parsable
    // records the data file stands as of its last checkpoint, which is
    // consistent by construction; start a clean log.
    if (!bytes.empty()) {
      out->torn_bytes = bytes.size();
      RecoveryTornBytes().Add(bytes.size());
      obs::Journal::Global().Append(obs::JournalEvent::kWalTornTail,
                                    static_cast<int64_t>(bytes.size()));
    }
    ODE_RETURN_IF_ERROR(store->Reset(EncodeWalHeader(0)));
    obs::Journal::Global().Append(obs::JournalEvent::kWalRecoveryEnd, 0, 0);
    return std::unique_ptr<Wal>(new Wal(std::move(store), options, 0));
  }

  std::vector<ScannedRecord> records;
  uint64_t valid_end = ScanWalRecords(bytes, &records);
  if (valid_end < bytes.size()) {
    uint64_t torn = bytes.size() - valid_end;
    out->torn_bytes = torn;
    RecoveryTornBytes().Add(torn);
    obs::Journal::Global().Append(obs::JournalEvent::kWalTornTail,
                                  static_cast<int64_t>(torn));
  }
  out->records = records.size();

  // Analysis: the set of sealed transactions.
  std::set<uint64_t> committed;
  for (const ScannedRecord& rec : records) {
    if (rec.info.type == WalRecordType::kCommit) committed.insert(rec.info.txn);
  }
  out->committed_txns = committed.size();

  // Redo: replay committed after-images in log order. Loser images are
  // skipped; under no-steal none of their bytes ever reached the data
  // file, so skipping *is* the undo phase.
  //
  // Growth bound: pages are allocated contiguously, so any page this
  // log can legally mention is below the data file's current page
  // count plus one page per image record (a freshly-allocated page has
  // at least one image in the log that created it). A forged page id
  // past that bound would otherwise make EnsureAllocated grow the data
  // file by up to 4 billion pages.
  uint64_t image_records = 0;
  for (const ScannedRecord& rec : records) {
    if (rec.info.type == WalRecordType::kPageImage) ++image_records;
  }
  const uint64_t max_page_bound =
      (pager != nullptr ? pager->page_count() : 0) + image_records;
  uint64_t max_txn = 0;
  for (const ScannedRecord& rec : records) {
    max_txn = std::max(max_txn, rec.info.txn);
    if (rec.info.type != WalRecordType::kPageImage) continue;
    if (committed.find(rec.info.txn) == committed.end()) continue;
    if (rec.payload.size() != sizeof(uint32_t) + kPageSize) {
      return Status::Corruption("wal page-image payload size mismatch");
    }
    if (pager == nullptr) continue;  // no file to bound or redo against
    if (rec.info.page >= max_page_bound) {
      return Status::Corruption(
          "wal page image for page " + std::to_string(rec.info.page) +
          " exceeds the file growth bound " + std::to_string(max_page_bound));
    }
    Page image;
    std::memcpy(image.bytes(), rec.payload.data() + sizeof(uint32_t),
                kPageSize);
    ODE_RETURN_IF_ERROR(EnsureAllocated(pager, rec.info.page));
    ODE_RETURN_IF_ERROR(pager->Write(rec.info.page, image));
    out->pages_redone += 1;
  }
  if (pager != nullptr && out->pages_redone > 0) {
    ODE_RETURN_IF_ERROR(pager->Sync());
  }
  RecoveryPagesRedone().Add(out->pages_redone);
  RecoveryCommittedTxns().Add(out->committed_txns);

  // The replayed state is durable; retire the log. LSNs stay monotonic
  // by basing the fresh file at the old end.
  uint64_t end_lsn = *base + (valid_end - kHeaderSize);
  ODE_RETURN_IF_ERROR(store->Reset(EncodeWalHeader(end_lsn)));
  obs::Journal::Global().Append(
      obs::JournalEvent::kWalRecoveryEnd,
      static_cast<int64_t>(out->pages_redone),
      static_cast<int64_t>(out->committed_txns));
  auto wal = std::unique_ptr<Wal>(new Wal(std::move(store), options, end_lsn));
  wal->next_txn_.store(max_txn + 1);
  return wal;
}

Result<std::vector<WalRecordInfo>> Wal::Inspect(std::string_view bytes) {
  std::vector<WalRecordInfo> out;
  if (!DecodeWalHeader(bytes).ok()) return out;
  std::vector<ScannedRecord> records;
  ScanWalRecords(bytes, &records);
  out.reserve(records.size());
  for (const ScannedRecord& rec : records) out.push_back(rec.info);
  return out;
}

Result<uint64_t> Wal::AppendLocked(WalRecordType type, uint64_t txn,
                                   std::string_view payload) {
  std::string rec;
  rec.reserve(kRecordHeaderSize + payload.size());
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  rec.push_back(static_cast<char>(type));
  PutFixed64(&rec, txn);
  uint32_t crc = Crc32(std::string_view(rec).substr(4));
  crc = Crc32(payload, crc);
  PutFixed32(&rec, crc);
  rec.append(payload);
  ODE_RETURN_IF_ERROR(store_->Append(rec));
  next_lsn_ += rec.size();
  if (!options_.sync) durable_lsn_ = next_lsn_;
  RecordsAppended().Increment();
  BytesAppended().Add(rec.size());
  if (auto* profile = obs::CurrentOpProfile()) {
    profile->ChargeWalBytes(rec.size());
  }
  return next_lsn_;
}

Result<uint64_t> Wal::AppendPageImage(uint64_t txn, PageId page_id,
                                      Page* page) {
  MutexLock lock(mu_);
  // The record's end LSN is known before the image is copied, so the
  // page trailer can carry its own LSN inside the logged image.
  uint64_t end_lsn =
      next_lsn_ + kRecordHeaderSize + sizeof(uint32_t) + kPageSize;
  page->set_lsn(end_lsn);
  std::string payload;
  payload.reserve(sizeof(uint32_t) + kPageSize);
  PutFixed32(&payload, page_id);
  payload.append(page->bytes(), kPageSize);
  return AppendLocked(WalRecordType::kPageImage, txn, payload);
}

Result<uint64_t> Wal::AppendCommit(uint64_t txn) {
  MutexLock lock(mu_);
  Commits().Increment();
  return AppendLocked(WalRecordType::kCommit, txn, {});
}

Status Wal::WaitCommitDurable(uint64_t lsn) {
  obs::ScopedLatencyTimer timer(&CommitWaitNs());
  obs::OpProfile* profile = obs::CurrentOpProfile();
  if (profile == nullptr) {
    return WaitDurableInternal(lsn, /*force_own_sync=*/!options_.group_commit);
  }
  auto start = std::chrono::steady_clock::now();
  Status status =
      WaitDurableInternal(lsn, /*force_own_sync=*/!options_.group_commit);
  auto elapsed = std::chrono::steady_clock::now() - start;
  profile->ChargeWalCommitWait(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  return status;
}

Status Wal::FlushUntil(uint64_t lsn) {
  return WaitDurableInternal(lsn, /*force_own_sync=*/false);
}

Status Wal::WaitDurableInternal(uint64_t target, bool force_own_sync) {
  if (!options_.sync) return Status::OK();
  bool synced_myself = false;
  MutexLock lock(mu_);
  while (true) {
    if (durable_lsn_ >= target && (!force_own_sync || synced_myself)) {
      return Status::OK();
    }
    if (flushing_) {
      // A leader's fsync is in flight; it covers every byte appended
      // before it started. Wait for its verdict and re-check.
      flushed_cv_.Wait(lock);
      continue;
    }
    flushing_ = true;
    uint64_t upto = next_lsn_;
    lock.Unlock();
    // The group-commit window: appends (and new waiters) pile up while
    // the leader syncs without holding the mutex.
    Status synced = store_->Sync();
    lock.Lock();
    flushing_ = false;
    if (synced.ok()) {
      durable_lsn_ = std::max(durable_lsn_, upto);
      Fsyncs().Increment();
    }
    flushed_cv_.NotifyAll();
    if (!synced.ok()) return synced;
    synced_myself = true;
  }
}

Status Wal::ResetLog() {
  MutexLock lock(mu_);
  while (flushing_) flushed_cv_.Wait(lock);
  uint64_t released = next_lsn_ - base_lsn_;
  ODE_RETURN_IF_ERROR(store_->Reset(EncodeWalHeader(next_lsn_)));
  base_lsn_ = next_lsn_;
  durable_lsn_ = next_lsn_;
  Checkpoints().Increment();
  obs::Journal::Global().Append(obs::JournalEvent::kWalCheckpoint,
                                static_cast<int64_t>(released));
  return Status::OK();
}

uint64_t Wal::next_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_;
}

uint64_t Wal::durable_lsn() const {
  MutexLock lock(mu_);
  return durable_lsn_;
}

uint64_t Wal::durable_file_bytes() const {
  MutexLock lock(mu_);
  return kHeaderSize + (durable_lsn_ - base_lsn_);
}

// --- WalTransactionScope ----------------------------------------------

namespace {
thread_local WalTransactionScope* tls_scope = nullptr;
}  // namespace

WalTransactionScope* WalTransactionScope::Current() { return tls_scope; }

WalTransactionScope::WalTransactionScope(Wal* wal, Mutex* txn_mu)
    : wal_(wal), txn_mu_(txn_mu) {
  if (wal_ == nullptr) return;
  if (txn_mu_ != nullptr) {
    txn_mu_->Lock();
    mu_held_ = true;
  }
  txn_ = wal_->BeginTxn();
  prev_ = tls_scope;
  tls_scope = this;
}

WalTransactionScope::~WalTransactionScope() {
  if (wal_ == nullptr) return;
  if (!committed_) {
    // Error path after pages may already have been dirtied: finalize
    // without awaiting durability. If nothing was captured there is
    // nothing to seal.
    if (!frames_.empty() && capture_error_.ok()) {
      Result<uint64_t> lsn = wal_->AppendCommit(txn_);
      if (lsn.ok()) {
        PublishFrames(*lsn);
      }
      // On append failure the frames stay flagged uncommitted: their
      // images are not in the log, so they must never reach the data
      // file. The frames pin until the process exits — acceptable on
      // a dead log device.
    }
  }
  ReleaseTxnMutex();
  tls_scope = prev_;
}

Status WalTransactionScope::Commit() {
  committed_ = true;
  if (wal_ == nullptr) return Status::OK();
  Status result = capture_error_;
  uint64_t target = 0;
  bool sealed = false;
  if (result.ok() && !frames_.empty()) {
    Result<uint64_t> lsn = wal_->AppendCommit(txn_);
    if (lsn.ok()) {
      target = *lsn;
      sealed = true;
      PublishFrames(target);
    } else {
      result = lsn.status();
    }
  }
  // Early lock release: the commit record's position is fixed, so the
  // next writer may proceed while this one waits for the fsync.
  ReleaseTxnMutex();
  if (result.ok() && sealed) {
    result = wal_->WaitCommitDurable(target);
  }
  return result;
}

void WalTransactionScope::ReleaseTxnMutex() {
  if (mu_held_) {
    txn_mu_->Unlock();
    mu_held_ = false;
  }
}

void WalTransactionScope::PublishFrames(uint64_t commit_lsn) {
  for (const WalFrameRef& ref : frames_) {
    // Raise the flush gate to the commit LSN: a page may only be
    // written back once its whole transaction is durable (otherwise a
    // flushed page could survive a crash that loses the commit).
    ref.page_lsn->store(commit_lsn, std::memory_order_relaxed);
    ref.uncommitted->store(false, std::memory_order_release);
  }
}

}  // namespace ode::odb
