# Empty dependencies file for odb_tour.
# This may be replaced when dependencies are built.
