#include "odb/exec/compiled_predicate.h"

#include <numeric>

namespace ode::odb::exec {

namespace {
constexpr uint32_t kNoHint = ~uint32_t{0};
}  // namespace

CompiledPredicate CompiledPredicate::Compile(const Predicate& predicate) {
  CompiledPredicate compiled;
  if (predicate.kind() == Predicate::Kind::kTrue) return compiled;
  Status error = Status::OK();
  compiled.root_ = compiled.CompileNode(predicate, /*join=*/false, &error);
  // Single-object compilation cannot fail: every path is kSelf.
  return compiled;
}

Result<CompiledPredicate> CompiledPredicate::CompileJoin(
    const Predicate& predicate) {
  CompiledPredicate compiled;
  if (predicate.kind() == Predicate::Kind::kTrue) return compiled;
  Status error = Status::OK();
  compiled.root_ = compiled.CompileNode(predicate, /*join=*/true, &error);
  ODE_RETURN_IF_ERROR(error);
  return compiled;
}

int32_t CompiledPredicate::CompileNode(const Predicate& predicate, bool join,
                                       Status* error) {
  Node node;
  node.kind = predicate.kind();
  switch (predicate.kind()) {
    case Predicate::Kind::kTrue:
      break;
    case Predicate::Kind::kCompare: {
      const Operand& lhs = predicate.compare_lhs();
      const Operand& rhs = predicate.compare_rhs();
      node.op = predicate.compare_op();
      auto intern = [&](const Operand& operand, int32_t* slot,
                        Value* literal) {
        if (operand.kind == Operand::Kind::kLiteral) {
          *literal = operand.literal;
          return;
        }
        if (!join) {
          *slot = InternSlot(Side::kSelf, operand.path);
          return;
        }
        std::string_view path = operand.path;
        size_t dot = path.find('.');
        std::string_view head = path.substr(0, dot);
        std::string_view rest =
            dot == std::string_view::npos ? std::string_view{}
                                          : path.substr(dot + 1);
        if (head == "left") {
          *slot = InternSlot(Side::kLeft, rest);
        } else if (head == "right") {
          *slot = InternSlot(Side::kRight, rest);
        } else if (error->ok()) {
          *error = Status::InvalidArgument(
              "join predicates reference attributes as left.<attr> / "
              "right.<attr>; got '" +
              operand.path + "'");
        }
      };
      intern(lhs, &node.lhs_slot, &node.lhs_literal);
      intern(rhs, &node.rhs_slot, &node.rhs_literal);
      break;
    }
    case Predicate::Kind::kNot:
      node.child0 =
          CompileNode(predicate.children()[0], join, error);
      break;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      node.child0 = CompileNode(predicate.children()[0], join, error);
      node.child1 = CompileNode(predicate.children()[1], join, error);
      break;
  }
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size()) - 1;
}

int32_t CompiledPredicate::InternSlot(Side side, std::string_view dotted) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].side == side && slots_[i].dotted == dotted) {
      return static_cast<int32_t>(i);
    }
  }
  Slot slot;
  slot.side = side;
  slot.dotted = std::string(dotted);
  size_t start = 0;
  while (start <= dotted.size() && !dotted.empty()) {
    size_t dot = dotted.find('.', start);
    if (dot == std::string_view::npos) {
      slot.parts.emplace_back(dotted.substr(start));
      break;
    }
    slot.parts.emplace_back(dotted.substr(start, dot - start));
    start = dot + 1;
  }
  slots_.push_back(std::move(slot));
  return static_cast<int32_t>(slots_.size()) - 1;
}

void CompiledPredicate::BindColumns(const Value* rows, const Value* left,
                                    const Value* right, size_t n,
                                    Scratch* scratch) const {
  if (scratch->hints.size() != slots_.size()) {
    scratch->hints.assign(slots_.size(), {});
    for (size_t s = 0; s < slots_.size(); ++s) {
      scratch->hints[s].assign(slots_[s].parts.size(), kNoHint);
    }
  }
  scratch->columns.resize(slots_.size());
  for (size_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = slots_[s];
    std::vector<uint32_t>& hints = scratch->hints[s];
    if (hints.size() != slot.parts.size()) {
      hints.assign(slot.parts.size(), kNoHint);
    }
    std::vector<const Value*>& column = scratch->columns[s];
    column.assign(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      const Value* cur = slot.side == Side::kSelf
                             ? &rows[i]
                             : (slot.side == Side::kLeft ? left : right);
      for (size_t d = 0; d < slot.parts.size() && cur != nullptr; ++d) {
        if (cur->kind() != ValueKind::kStruct) {
          cur = nullptr;
          break;
        }
        const std::vector<Value::Field>& fields = cur->fields();
        uint32_t hint = hints[d];
        if (hint < fields.size() && fields[hint].name == slot.parts[d]) {
          cur = &fields[hint].value;
          continue;
        }
        // Hint miss (first row, or a heterogeneous batch): linear
        // probe once, then remember the index — objects of one class
        // share their field order.
        cur = nullptr;
        for (size_t f = 0; f < fields.size(); ++f) {
          if (fields[f].name == slot.parts[d]) {
            hints[d] = static_cast<uint32_t>(f);
            cur = &fields[f].value;
            break;
          }
        }
      }
      column[i] = cur;
    }
  }
}

Status CompiledPredicate::EvalNode(int32_t index,
                                   const std::vector<uint32_t>& sel,
                                   Scratch* scratch) const {
  const Node& node = nodes_[static_cast<size_t>(index)];
  switch (node.kind) {
    case Predicate::Kind::kTrue:
      for (uint32_t r : sel) scratch->truth[r] = 1;
      return Status::OK();
    case Predicate::Kind::kCompare: {
      const std::vector<const Value*>* lhs_col =
          node.lhs_slot >= 0
              ? &scratch->columns[static_cast<size_t>(node.lhs_slot)]
              : nullptr;
      const std::vector<const Value*>* rhs_col =
          node.rhs_slot >= 0
              ? &scratch->columns[static_cast<size_t>(node.rhs_slot)]
              : nullptr;
      for (uint32_t r : sel) {
        const Value* lhs = lhs_col ? (*lhs_col)[r] : &node.lhs_literal;
        const Value* rhs = rhs_col ? (*rhs_col)[r] : &node.rhs_literal;
        ODE_ASSIGN_OR_RETURN(bool match,
                             EvaluateCompareOp(lhs, node.op, rhs));
        scratch->truth[r] = match ? 1 : 0;
      }
      return Status::OK();
    }
    case Predicate::Kind::kNot: {
      ODE_RETURN_IF_ERROR(EvalNode(node.child0, sel, scratch));
      for (uint32_t r : sel) scratch->truth[r] ^= 1;
      return Status::OK();
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      ODE_RETURN_IF_ERROR(EvalNode(node.child0, sel, scratch));
      // Per-row short-circuit: the right operand only runs over rows
      // the left did not decide, so type errors surface for exactly
      // the rows the tree-walking evaluator would evaluate.
      const uint8_t undecided = node.kind == Predicate::Kind::kAnd ? 1 : 0;
      std::vector<uint32_t> narrowed;
      narrowed.reserve(sel.size());
      for (uint32_t r : sel) {
        if (scratch->truth[r] == undecided) narrowed.push_back(r);
      }
      if (narrowed.empty()) return Status::OK();
      return EvalNode(node.child1, narrowed, scratch);
    }
  }
  return Status::Internal("unhandled compiled predicate node");
}

Status CompiledPredicate::EvaluateBatch(const Value* rows, size_t n,
                                        Scratch* scratch) const {
  scratch->truth.assign(n, 1);
  if (always_true() || n == 0) return Status::OK();
  BindColumns(rows, nullptr, nullptr, n, scratch);
  std::vector<uint32_t> sel(n);
  std::iota(sel.begin(), sel.end(), 0);
  return EvalNode(root_, sel, scratch);
}

Result<bool> CompiledPredicate::EvaluateOne(const Value& object,
                                            Scratch* scratch) const {
  ODE_RETURN_IF_ERROR(EvaluateBatch(&object, 1, scratch));
  return scratch->truth[0] != 0;
}

Result<bool> CompiledPredicate::EvaluatePair(const Value& left,
                                             const Value& right,
                                             Scratch* scratch) const {
  scratch->truth.assign(1, 1);
  if (always_true()) return true;
  BindColumns(nullptr, &left, &right, 1, scratch);
  std::vector<uint32_t> sel{0};
  ODE_RETURN_IF_ERROR(EvalNode(root_, sel, scratch));
  return scratch->truth[0] != 0;
}

}  // namespace ode::odb::exec
