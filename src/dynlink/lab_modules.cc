#include "dynlink/lab_modules.h"

#include "dynlink/synthesized.h"

namespace ode::dynlink {

namespace {

/// Text display built on the shared formatter, with a per-class title
/// attribute highlighted first — what a class designer would write.
DisplayFunction MakeTextDisplay(const odb::Schema* schema,
                                std::string title_attr) {
  return [schema, title_attr](
             const odb::ObjectBuffer& object,
             const std::vector<std::string>& attributes,
             const std::vector<bool>& mask) -> Result<DisplayResources> {
    ODE_ASSIGN_OR_RETURN(
        std::string text,
        FormatObjectText(*schema, object, attributes, mask,
                         /*privileged=*/false));
    DisplayResources resources;
    WindowSpec window;
    window.kind = WindowKind::kScrollText;
    window.format = "text";
    const odb::Value* title_value = object.value.FindField(title_attr);
    window.title = object.class_name;
    if (title_value != nullptr &&
        title_value->kind() == odb::ValueKind::kString) {
      window.title += ": " + title_value->AsString();
    }
    window.size = owl::Size{36, 12};
    window.text = std::move(text);
    resources.windows.push_back(std::move(window));
    return resources;
  };
}

/// Raster display from a blob member holding an ASCII PBM.
DisplayFunction MakeRasterDisplay(std::string blob_attr,
                                  std::string format_name) {
  return [blob_attr, format_name](
             const odb::ObjectBuffer& object,
             const std::vector<std::string>& attributes,
             const std::vector<bool>& mask) -> Result<DisplayResources> {
    (void)attributes;
    (void)mask;  // raster media ignore projection
    const odb::Value* blob = object.value.FindField(blob_attr);
    if (blob == nullptr || blob->kind() != odb::ValueKind::kBlob) {
      return Status::DisplayFault("object " + object.oid.ToString() +
                                  " has no blob member '" + blob_attr +
                                  "'");
    }
    DisplayResources resources;
    WindowSpec window;
    window.kind = WindowKind::kRasterImage;
    window.format = format_name;
    window.title = object.class_name + " " + object.oid.ToString() + " [" +
                   format_name + "]";
    window.size = owl::Size{18, 10};
    window.image_pbm = blob->AsString();
    resources.windows.push_back(std::move(window));
    return resources;
  };
}

/// Raw text window from a string/blob member (postscript view).
DisplayFunction MakeRawTextDisplay(std::string attr,
                                   std::string format_name) {
  return [attr, format_name](
             const odb::ObjectBuffer& object,
             const std::vector<std::string>& attributes,
             const std::vector<bool>& mask) -> Result<DisplayResources> {
    (void)attributes;
    (void)mask;
    const odb::Value* value = object.value.FindField(attr);
    if (value == nullptr || (value->kind() != odb::ValueKind::kBlob &&
                             value->kind() != odb::ValueKind::kString)) {
      return Status::DisplayFault("object " + object.oid.ToString() +
                                  " has no text member '" + attr + "'");
    }
    DisplayResources resources;
    WindowSpec window;
    window.kind = WindowKind::kScrollText;
    window.format = format_name;
    window.title = object.class_name + " " + object.oid.ToString() + " [" +
                   format_name + "]";
    window.text = value->AsString();
    resources.windows.push_back(std::move(window));
    return resources;
  };
}

}  // namespace

Status RegisterLabDisplayModules(ModuleRepository* repository,
                                 const std::string& db_name,
                                 const odb::Schema& schema) {
  const odb::Schema* s = &schema;
  auto reg = [&](const std::string& cls, const std::string& format,
                 DisplayFunction fn, size_t code_size) {
    return repository->Register(
        DisplayModule{db_name, cls, format, std::move(fn), code_size});
  };
  ODE_RETURN_IF_ERROR(
      reg("employee", "text", MakeTextDisplay(s, "name"), 24 * 1024));
  ODE_RETURN_IF_ERROR(reg("employee", "picture",
                          MakeRasterDisplay("picture", "picture"),
                          40 * 1024));
  ODE_RETURN_IF_ERROR(
      reg("manager", "text", MakeTextDisplay(s, "name"), 26 * 1024));
  ODE_RETURN_IF_ERROR(reg("manager", "picture",
                          MakeRasterDisplay("picture", "picture"),
                          40 * 1024));
  ODE_RETURN_IF_ERROR(
      reg("department", "text", MakeTextDisplay(s, "name"), 20 * 1024));
  ODE_RETURN_IF_ERROR(
      reg("project", "text", MakeTextDisplay(s, "title"), 20 * 1024));
  ODE_RETURN_IF_ERROR(
      reg("document", "text", MakeTextDisplay(s, "title"), 22 * 1024));
  ODE_RETURN_IF_ERROR(reg("document", "postscript",
                          MakeRawTextDisplay("postscript", "postscript"),
                          30 * 1024));
  ODE_RETURN_IF_ERROR(reg("document", "bitmap",
                          MakeRasterDisplay("bitmap", "bitmap"),
                          36 * 1024));
  return Status::OK();
}

Status RegisterFaultyDisplayModule(ModuleRepository* repository,
                                   const std::string& db_name,
                                   const std::string& class_name) {
  DisplayFunction crash =
      [](const odb::ObjectBuffer& object, const std::vector<std::string>&,
         const std::vector<bool>&) -> Result<DisplayResources> {
    return Status::DisplayFault(
        "simulated crash in class-designer display code for object " +
        object.oid.ToString());
  };
  return repository->Register(
      DisplayModule{db_name, class_name, "crash", std::move(crash), 8192});
}

}  // namespace ode::dynlink
