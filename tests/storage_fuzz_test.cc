// Stateful property tests: random operation sequences against the
// storage engine, checked after every step against a trivial
// in-memory reference model. Runs with a tiny buffer pool so eviction
// and write-back paths are constantly exercised.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "odb/buffer_pool.h"
#include "odb/heap_file.h"
#include "odb/pager.h"
#include "odb/slotted_page.h"
#include "odb/wal.h"

namespace ode::odb {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2 + 1) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  uint64_t Below(uint64_t bound) { return bound ? Next() % bound : 0; }

 private:
  uint64_t state_;
};

std::string RandomPayload(Rng* rng, size_t max_size) {
  std::string out(rng->Below(max_size), '\0');
  for (char& c : out) {
    c = static_cast<char>('a' + rng->Below(26));
  }
  return out;
}

// --- Heap file vs. std::map ------------------------------------------------

class HeapFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapFuzz, MatchesReferenceModel) {
  MemPager pager;
  BufferPool pool(&pager, 6);  // tiny: constant eviction
  FreeList free_list(&pool, kNoPage);
  HeapFile heap = *HeapFile::Create(&pool, &free_list);
  std::map<uint64_t, std::string> model;
  Rng rng(GetParam());
  uint64_t next_id = 1;

  for (int step = 0; step < 1200; ++step) {
    int op = static_cast<int>(rng.Below(10));
    if (op < 4) {  // insert (occasionally bigger than a page)
      uint64_t id = next_id++;
      std::string payload =
          RandomPayload(&rng, rng.Below(8) == 0 ? 9000 : 900);
      ASSERT_TRUE(heap.Insert(id, payload).ok()) << "step " << step;
      model[id] = payload;
    } else if (op < 6 && !model.empty()) {  // update (inline <-> spill)
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      std::string payload =
          RandomPayload(&rng, rng.Below(6) == 0 ? 12000 : 1800);
      ASSERT_TRUE(heap.Update(it->first, payload).ok()) << "step " << step;
      it->second = payload;
    } else if (op < 8 && !model.empty()) {  // delete
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      ASSERT_TRUE(heap.Delete(it->first).ok()) << "step " << step;
      model.erase(it);
    } else if (!model.empty()) {  // point lookup
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      Result<std::string> got = heap.Get(it->first);
      ASSERT_TRUE(got.ok()) << "step " << step;
      ASSERT_EQ(*got, it->second) << "step " << step;
    }
    // Cheap global invariants every step.
    ASSERT_EQ(heap.count(), model.size()) << "step " << step;
  }
  // Full verification: contents and iteration order.
  std::vector<uint64_t> ids = heap.AllIds();
  ASSERT_EQ(ids.size(), model.size());
  size_t i = 0;
  for (const auto& [id, payload] : model) {
    EXPECT_EQ(ids[i++], id);
    EXPECT_EQ(*heap.Get(id), payload);
  }
  // Reopen from the chain: the rebuilt directory matches too.
  ASSERT_TRUE(pool.FlushAll().ok());
  HeapFile reopened = *HeapFile::Open(&pool, &free_list, heap.first_page());
  EXPECT_EQ(reopened.count(), model.size());
  for (const auto& [id, payload] : model) {
    EXPECT_EQ(*reopened.Get(id), payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Slotted page vs. std::map -----------------------------------------------

class SlottedFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlottedFuzz, MatchesReferenceModel) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  std::map<uint16_t, std::string> model;  // slot -> payload
  Rng rng(GetParam() * 977);

  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng.Below(10));
    if (op < 5) {  // insert (may fail when full — then model intact)
      std::string payload = RandomPayload(&rng, 300);
      Result<uint16_t> slot = sp.Insert(payload);
      if (slot.ok()) {
        ASSERT_EQ(model.count(*slot), 0u) << "live slot reused";
        model[*slot] = payload;
      } else {
        ASSERT_TRUE(slot.status().IsOutOfRange()) << "step " << step;
      }
    } else if (op < 7 && !model.empty()) {  // update
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      std::string payload = RandomPayload(&rng, 400);
      Status updated = sp.Update(it->first, payload);
      if (updated.ok()) {
        it->second = payload;
      } else {
        ASSERT_TRUE(updated.IsOutOfRange()) << "step " << step;
        // Failed grow keeps the old record readable.
        ASSERT_EQ(*sp.Get(it->first), it->second);
      }
    } else if (!model.empty()) {  // delete
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      ASSERT_TRUE(sp.Delete(it->first).ok());
      model.erase(it);
    }
    ASSERT_EQ(sp.live_count(), model.size()) << "step " << step;
  }
  for (const auto& [slot, payload] : model) {
    EXPECT_EQ(*sp.Get(slot), payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- Buffer pool under random pin patterns ---------------------------------------

class PoolFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolFuzz, NeverCorruptsPages) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  constexpr int kPages = 24;
  for (int i = 0; i < kPages; ++i) {
    PageHandle handle = *pool.NewPage();
    handle.page()->bytes()[0] = static_cast<char>(i);
    handle.MarkDirty();
  }
  Rng rng(GetParam());
  std::vector<PageHandle> pins;
  for (int step = 0; step < 3000; ++step) {
    int op = static_cast<int>(rng.Below(4));
    if (op == 0 && pins.size() < 3) {
      auto id = static_cast<PageId>(rng.Below(kPages));
      Result<PageHandle> handle = pool.Fetch(id);
      ASSERT_TRUE(handle.ok());
      ASSERT_EQ(handle->page()->bytes()[0], static_cast<char>(id));
      pins.push_back(std::move(*handle));
    } else if (op == 1 && !pins.empty()) {
      pins.erase(pins.begin() +
                 static_cast<long>(rng.Below(pins.size())));
    } else {
      auto id = static_cast<PageId>(rng.Below(kPages));
      Result<PageHandle> handle = pool.Fetch(id);
      if (handle.ok()) {  // may fail when all frames pinned
        ASSERT_EQ(handle->page()->bytes()[0], static_cast<char>(id));
      }
    }
  }
  pins.clear();
  ASSERT_TRUE(pool.FlushAll().ok());
  for (int i = 0; i < kPages; ++i) {
    Page raw;
    ASSERT_TRUE(pager.Read(static_cast<PageId>(i), &raw).ok());
    EXPECT_EQ(raw.bytes()[0], static_cast<char>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolFuzz, ::testing::Values(9, 18, 27));

// --- Sharded pool under random pin patterns --------------------------------

// Same invariant as PoolFuzz, but with degenerate shard configurations:
// capacity 1 (every fetch evicts) and capacity below the requested
// shard count (policy clamps to one frame per shard). With multiple
// frames pinned a shard can legitimately be exhausted, so fetch
// failures are tolerated whenever pins are held — and must not occur
// when none are.
class ShardedPoolFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t, size_t>> {
};

TEST_P(ShardedPoolFuzz, NeverCorruptsPages) {
  auto [seed, capacity, shards] = GetParam();
  MemPager pager;
  BufferPool pool(&pager, capacity, shards);
  constexpr int kPages = 24;
  for (int i = 0; i < kPages; ++i) {
    PageHandle handle = *pool.NewPage();
    handle.page()->bytes()[0] = static_cast<char>(i);
    handle.MarkDirty();
  }
  Rng rng(seed);
  std::vector<PageHandle> pins;
  for (int step = 0; step < 3000; ++step) {
    int op = static_cast<int>(rng.Below(4));
    if (op == 0 && pins.size() + 1 < pool.capacity()) {
      auto id = static_cast<PageId>(rng.Below(kPages));
      Result<PageHandle> handle = pool.Fetch(id);
      if (handle.ok()) {
        ASSERT_EQ(handle->page()->bytes()[0], static_cast<char>(id));
        pins.push_back(std::move(*handle));
      } else {
        // Only a shard exhausted by existing pins may refuse.
        ASSERT_FALSE(pins.empty()) << "step " << step;
        ASSERT_TRUE(handle.status().code() ==
                    StatusCode::kFailedPrecondition)
            << handle.status().ToString();
      }
    } else if (op == 1 && !pins.empty()) {
      pins.erase(pins.begin() +
                 static_cast<long>(rng.Below(pins.size())));
    } else {
      auto id = static_cast<PageId>(rng.Below(kPages));
      Result<PageHandle> handle = pool.Fetch(id);
      if (handle.ok()) {
        ASSERT_EQ(handle->page()->bytes()[0], static_cast<char>(id));
      } else {
        ASSERT_FALSE(pins.empty()) << "step " << step;
      }
    }
  }
  pins.clear();
  ASSERT_TRUE(pool.FlushAll().ok());
  for (int i = 0; i < kPages; ++i) {
    Page raw;
    ASSERT_TRUE(pager.Read(static_cast<PageId>(i), &raw).ok());
    EXPECT_EQ(raw.bytes()[0], static_cast<char>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ShardedPoolFuzz,
    ::testing::Values(std::make_tuple(101, 1, 8),   // capacity 1
                      std::make_tuple(202, 4, 8),   // capacity < shards
                      std::make_tuple(303, 8, 4),
                      std::make_tuple(404, 6, 3)));

// --- MemPager vs. FilePager equivalence ------------------------------------

// Replays one random allocate/write/read sequence against both pager
// backends; every page image and the page counts must stay identical.
class PagerEquivalenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PagerEquivalenceFuzz, BackendsProduceIdenticalImages) {
  std::string path = ::testing::TempDir() + "ode_pager_fuzz_" +
                     std::to_string(GetParam()) + ".db";
  std::remove(path.c_str());
  MemPager mem;
  auto opened = FilePager::Open(path, /*create=*/true);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<FilePager> file = std::move(*opened);

  Rng rng(GetParam() * 131);
  for (int step = 0; step < 400; ++step) {
    int op = static_cast<int>(rng.Below(4));
    if (op == 0 || mem.page_count() == 0) {  // allocate
      Result<PageId> a = mem.Allocate();
      Result<PageId> b = file->Allocate();
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(*a, *b) << "step " << step;
    } else if (op == 1) {  // overwrite an existing page
      auto id = static_cast<PageId>(rng.Below(mem.page_count()));
      Page page;
      page.Zero();
      std::string payload = RandomPayload(&rng, kPageSize);
      std::memcpy(page.bytes(), payload.data(), payload.size());
      ASSERT_TRUE(mem.Write(id, page).ok());
      ASSERT_TRUE(file->Write(id, page).ok());
    } else if (op == 2) {  // appending write at page_count extends
      auto id = static_cast<PageId>(mem.page_count());
      Page page;
      page.Zero();
      page.bytes()[0] = static_cast<char>(rng.Below(256));
      Status a = mem.Write(id, page);
      Status b = file->Write(id, page);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
    } else {  // read-compare a random page
      auto id = static_cast<PageId>(rng.Below(mem.page_count()));
      Page pa, pb;
      ASSERT_TRUE(mem.Read(id, &pa).ok());
      ASSERT_TRUE(file->Read(id, &pb).ok());
      ASSERT_EQ(std::memcmp(pa.bytes(), pb.bytes(), kPageSize), 0)
          << "page " << id << " diverged at step " << step;
    }
    ASSERT_EQ(mem.page_count(), file->page_count()) << "step " << step;
  }

  // Final sweep: every page byte-identical across backends.
  for (PageId id = 0; id < mem.page_count(); ++id) {
    Page pa, pb;
    ASSERT_TRUE(mem.Read(id, &pa).ok());
    ASSERT_TRUE(file->Read(id, &pb).ok());
    EXPECT_EQ(std::memcmp(pa.bytes(), pb.bytes(), kPageSize), 0)
        << "page " << id;
  }
  ASSERT_TRUE(file->Sync().ok());

  // Reopen the file: images survive a close/open cycle.
  uint32_t pages = mem.page_count();
  file.reset();
  auto reopened = FilePager::Open(path, /*create=*/false);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->page_count(), pages);
  for (PageId id = 0; id < pages; ++id) {
    Page pa, pb;
    ASSERT_TRUE(mem.Read(id, &pa).ok());
    ASSERT_TRUE((*reopened)->Read(id, &pb).ok());
    EXPECT_EQ(std::memcmp(pa.bytes(), pb.bytes(), kPageSize), 0);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagerEquivalenceFuzz,
                         ::testing::Values(7, 14, 21, 28));

// --- WAL replay equivalence ------------------------------------------------
//
// Property: for ANY crash point in the log — every record boundary
// plus sampled mid-record cuts — recovering (checkpoint image, log
// prefix) reproduces exactly the state as of the last commit record
// fully contained in the prefix. Acknowledged-but-torn suffixes
// truncate; nothing else is lost, nothing uncommitted appears.

std::vector<Page> DumpPager(MemPager* pager) {
  std::vector<Page> out(pager->page_count());
  for (PageId id = 0; id < out.size(); ++id) {
    EXPECT_TRUE(pager->Read(id, &out[id]).ok());
  }
  return out;
}

std::unique_ptr<MemPager> RestorePager(const std::vector<Page>& pages) {
  auto pager = std::make_unique<MemPager>();
  for (PageId id = 0; id < pages.size(); ++id) {
    EXPECT_TRUE(pager->Write(id, pages[id]).ok());
  }
  return pager;
}

class WalReplayFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalReplayFuzz, CrashAtEveryRecordBoundaryRecoversLastCommit) {
  WalOptions wal_options;
  auto owned_store = std::make_unique<MemWalStore>();
  MemWalStore* store = owned_store.get();
  auto wal = *Wal::Create(std::move(owned_store), wal_options);

  MemPager pager;
  BufferPool pool(&pager, 24);
  pool.SetWal(wal.get());
  FreeList free_list(&pool, kNoPage);
  HeapFile heap = *HeapFile::Create(&pool, &free_list);
  const PageId heap_root = heap.first_page();

  using Model = std::map<uint64_t, std::string>;
  Model model;
  // Data-file image as of the last checkpoint (what a crash finds on
  // disk at minimum — the WAL covers everything since).
  std::vector<Page> baseline;
  // Committed state keyed by the log offset of its commit record's
  // end: the state recovery must reproduce for any cut at or past it.
  std::map<uint64_t, Model> snapshots;

  auto RunCheckpoint = [&]() {
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(pager.Sync().ok());
    ASSERT_TRUE(wal->ResetLog().ok());
    baseline = DumpPager(&pager);
    snapshots.clear();
    snapshots[store->contents().size()] = model;
  };
  RunCheckpoint();

  Rng rng(GetParam());
  uint64_t next_id = 1;
  for (int txn_index = 0; txn_index < 60; ++txn_index) {
    // Fuzzy-checkpoint twice mid-run so recovery replays against a
    // non-trivial baseline; the final stretch stays long so the crash
    // sweep below has plenty of boundaries.
    if (txn_index == 12 || txn_index == 24) RunCheckpoint();
    WalTransactionScope txn(wal.get(), /*txn_mu=*/nullptr);
    const int ops = 1 + static_cast<int>(rng.Below(2));
    for (int op_index = 0; op_index < ops; ++op_index) {
      int op = static_cast<int>(rng.Below(10));
      if (op < 5 || model.empty()) {
        uint64_t id = next_id++;
        // Occasionally larger than a page to route through overflow.
        std::string payload = RandomPayload(
            &rng, rng.Below(8) == 0 ? 5000 : 700);
        ASSERT_TRUE(heap.Insert(id, payload).ok()) << "txn " << txn_index;
        model[id] = payload;
      } else if (op < 8) {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.Below(model.size())));
        std::string payload = RandomPayload(&rng, 900);
        ASSERT_TRUE(heap.Update(it->first, payload).ok());
        it->second = payload;
      } else {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.Below(model.size())));
        ASSERT_TRUE(heap.Delete(it->first).ok());
        model.erase(it);
      }
    }
    ASSERT_TRUE(txn.Commit().ok()) << "txn " << txn_index;
    snapshots[store->contents().size()] = model;
  }

  // Crash sweep over the final log segment.
  const std::string log = store->contents();
  auto records = Wal::Inspect(log);
  ASSERT_TRUE(records.ok());
  ASSERT_FALSE(records->empty());
  EXPECT_EQ(records->back().end_offset, log.size()) << "log must be clean";

  std::vector<uint64_t> cuts;
  cuts.push_back(0);                 // even the header is torn
  cuts.push_back(Wal::kHeaderSize);  // empty log
  uint64_t previous_end = Wal::kHeaderSize;
  for (size_t i = 0; i < records->size(); ++i) {
    const WalRecordInfo& record = (*records)[i];
    // Sampled mid-record cut: a tear inside this record must recover
    // identically to a cut at the previous boundary.
    if (i % 4 == rng.Below(4) && record.end_offset - previous_end > 2) {
      cuts.push_back(previous_end + 1 +
                     rng.Below(record.end_offset - previous_end - 1));
    }
    cuts.push_back(record.end_offset);
    previous_end = record.end_offset;
  }

  for (uint64_t cut : cuts) {
    // The state recovery must reproduce: the last commit snapshot
    // whose log offset fits inside the prefix.
    auto expected_it = snapshots.upper_bound(cut);
    // A cut inside the header recovers to the checkpoint image itself
    // (the first snapshot); otherwise to the last covered commit.
    if (expected_it != snapshots.begin()) --expected_it;
    const Model& expected = expected_it->second;

    auto crash_store = std::make_unique<MemWalStore>();
    ASSERT_TRUE(crash_store->Append(log.substr(0, cut)).ok());
    std::unique_ptr<MemPager> crash_pager = RestorePager(baseline);
    WalRecoveryStats stats;
    auto recovered = Wal::OpenAndRecover(std::move(crash_store),
                                         crash_pager.get(), wal_options,
                                         &stats);
    ASSERT_TRUE(recovered.ok()) << "cut " << cut;

    BufferPool crash_pool(crash_pager.get(), 24);
    FreeList crash_free_list(&crash_pool, kNoPage);
    HeapFile crash_heap =
        *HeapFile::Open(&crash_pool, &crash_free_list, heap_root);
    std::vector<uint64_t> ids = crash_heap.AllIds();
    ASSERT_EQ(ids.size(), expected.size()) << "cut " << cut;
    for (uint64_t id : ids) {
      auto it = expected.find(id);
      ASSERT_NE(it, expected.end()) << "cut " << cut << " ghost id " << id;
      EXPECT_EQ(*crash_heap.Get(id), it->second) << "cut " << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalReplayFuzz, ::testing::Values(3, 6, 9));

}  // namespace
}  // namespace ode::odb
