// Section 5.3 (extension): multi-object (join) views — materialization
// cost across cluster sizes and predicate selectivity, plus the
// integrity checker that database owners run after deletions.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "odb/integrity.h"

namespace ode::bench {
namespace {

void BM_JoinMaterialization(benchmark::State& state) {
  int employees = static_cast<int>(state.range(0));
  odb::LabDbConfig config;
  config.employees = employees;
  config.managers = 8;
  config.departments = 8;
  LabSession session = LabSession::Create(config);
  size_t pairs = 0;
  for (auto _ : state) {
    Result<view::JoinView*> join = session.interactor->OpenJoinView(
        "employee", "manager", "left.age == right.age");
    CheckOk(join.status(), "join");
    pairs = (*join)->pair_count();
    benchmark::DoNotOptimize(pairs);
    // Tear the view down so iterations don't accumulate window trees
    // (the growing server state used to dominate the measurement).
    CheckOk(session.interactor->CloseJoinView(*join), "close");
  }
  // Logical join size: |employee| x |manager| pair evaluations.
  state.SetItemsProcessed(state.iterations() * employees * 8);
  state.counters["pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_JoinMaterialization)->Arg(50)->Arg(200)->Arg(1000);

void BM_JoinSequencing(benchmark::State& state) {
  LabSession session = LabSession::Create();
  Result<view::JoinView*> join = session.interactor->OpenJoinView(
      "employee", "department", "left.title == \"MTS\"");
  CheckOk(join.status(), "join");
  for (auto _ : state) {
    if (!(*join)->Next().ok()) CheckOk((*join)->Reset(), "reset");
  }
  state.counters["pairs"] = static_cast<double>((*join)->pair_count());
}
BENCHMARK(BM_JoinSequencing);

void BM_IntegrityCheck(benchmark::State& state) {
  int employees = static_cast<int>(state.range(0));
  odb::LabDbConfig config;
  config.employees = employees;
  LabSession session = LabSession::Create(config);
  for (auto _ : state) {
    Result<std::vector<odb::IntegrityIssue>> issues =
        odb::CheckIntegrity(session.db.get());
    CheckOk(issues.status(), "check");
    benchmark::DoNotOptimize(issues->size());
  }
  state.counters["employees"] = employees;
  state.SetItemsProcessed(state.iterations() * employees);
}
BENCHMARK(BM_IntegrityCheck)->Arg(55)->Arg(500);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
