#ifndef ODEVIEW_ODB_VALUE_H_
#define ODEVIEW_ODB_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "odb/oid.h"

namespace ode::odb {

/// Discriminator for `Value`.
enum class ValueKind : uint8_t {
  kNull = 0,
  kBool,
  kInt,     ///< 64-bit signed integer
  kReal,    ///< IEEE double
  kString,
  kBlob,    ///< uninterpreted bytes (e.g. a bitmap payload)
  kStruct,  ///< ordered named fields
  kArray,   ///< positional elements
  kSet,     ///< unordered elements (stored in insertion order)
  kRef,     ///< reference to another persistent object
};

/// Returns a lowercase name for `kind` ("int", "struct", ...).
std::string_view ValueKindName(ValueKind kind);

struct ValueField;  // defined after Value (mutual recursion)

/// Self-describing runtime representation of an Ode object (or component).
///
/// O++ objects are C++ objects; since our stand-in object manager cannot
/// host native C++ layouts, objects are materialized as `Value` trees —
/// the same role the paper's "object buffer" plays. A `Value` is a
/// tagged union over the kinds above. Struct fields are ordered (they
/// mirror declaration order in the class definition), and references
/// carry both the target OID and the target class name so browsers can
/// resolve the display function without consulting the object.
class Value {
 public:
  /// A named field inside a struct value.
  using Field = ValueField;

  /// Constructs the null value.
  Value() : kind_(ValueKind::kNull) {}

  Value(const Value&) = default;
  Value(Value&&) noexcept = default;
  Value& operator=(const Value&) = default;
  Value& operator=(Value&&) noexcept = default;

  /// Factories (the only way to build non-null values).
  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value String(std::string v);
  static Value Blob(std::string bytes);
  static Value Struct(std::vector<Field> fields);
  static Value Array(std::vector<Value> elements);
  static Value Set(std::vector<Value> elements);
  /// A reference to object `oid` of class `class_name`; a null `oid`
  /// models a dangling/unset reference.
  static Value Ref(Oid oid, std::string class_name);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  /// Scalar accessors; calling the wrong accessor is a programming error
  /// checked by assert; use `kind()` first.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsReal() const;
  const std::string& AsString() const;  ///< also valid for kBlob
  Oid AsRef() const;
  /// Class name carried by a kRef value.
  const std::string& RefClass() const;

  /// Struct access. `FindField` returns nullptr when absent.
  const std::vector<Field>& fields() const;
  std::vector<Field>& mutable_fields();
  const Value* FindField(std::string_view name) const;
  Value* FindMutableField(std::string_view name);
  /// Resolves a dotted path ("dept.name") through nested structs.
  const Value* FindPath(std::string_view dotted_path) const;

  /// Array/set access.
  const std::vector<Value>& elements() const;
  std::vector<Value>& mutable_elements();
  size_t size() const;  ///< fields or elements count; 0 for scalars

  /// Numeric convenience: kInt/kReal/kBool as double; fails otherwise.
  Result<double> ToNumber() const;

  /// Deep structural equality.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Renders the value as a single line ("{name: \"amy\", age: 31}").
  std::string ToString() const;
  /// Renders the value as indented lines — the paper's "fixed display
  /// scheme": nested structures indented, sets as element lists.
  std::string ToIndentedString(int indent = 0) const;

 private:
  ValueKind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double real_ = 0;
  std::string str_;         // kString / kBlob payload; kRef class name
  Oid ref_;
  std::vector<ValueField> fields_;
  std::vector<Value> elements_;
};

/// A named field inside a struct value.
struct ValueField {
  std::string name;
  Value value;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_VALUE_H_
