#ifndef ODEVIEW_ODB_EXEC_BATCH_SCANNER_H_
#define ODEVIEW_ODB_EXEC_BATCH_SCANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "odb/database.h"
#include "odb/object_record.h"
#include "odb/oid.h"
#include "odb/value.h"

namespace ode::odb::exec {

/// Records decoded per scan batch. Sized so a batch of lab-sized
/// objects stays cache-resident while still amortizing the heap's
/// lock round-trip and page fetches.
inline constexpr size_t kDefaultBatchSize = 1024;

/// One decoded batch: parallel arrays, ascending local id.
struct RowBatch {
  ClusterId cluster = 0;
  std::vector<uint64_t> locals;
  std::vector<uint32_t> versions;
  std::vector<Value> values;
  uint64_t skipped_fields = 0;  ///< decodes avoided by the mask
  uint64_t arena_bytes = 0;     ///< raw record bytes behind this batch

  size_t size() const { return locals.size(); }
  void clear() {
    locals.clear();
    versions.clear();
    values.clear();
    skipped_fields = 0;
    arena_bytes = 0;
  }
};

/// Streams one cluster (or an id sub-range of it — a parallel scan
/// partition) in decoded batches. Each batch is one
/// `Database::ScanRawRecords` lock round-trip; records are decoded
/// under the projection mask, so attributes outside it cost a skip,
/// not a materialization.
class BatchScanner {
 public:
  /// Scans ids in (`after`, `last`]; pass `after = 0`,
  /// `last = UINT64_MAX` for the whole cluster. `mask` (optional, not
  /// owned, must outlive the scanner) selects the top-level attributes
  /// to materialize; null decodes fully.
  BatchScanner(Database* db, std::string class_name, uint64_t after,
               uint64_t last, const ProjectionMask* mask,
               size_t batch_size = kDefaultBatchSize);

  /// Fills `*batch` with the next run of records. Returns false when
  /// the range is exhausted (batch left empty).
  Result<bool> Next(RowBatch* batch);

 private:
  Database* db_;
  std::string class_name_;
  uint64_t cursor_;  ///< last id delivered (exclusive lower bound)
  uint64_t last_;
  const ProjectionMask* mask_;
  size_t batch_size_;
  bool done_ = false;
  /// Reused across `Next` calls: the raw read appends into its arena,
  /// so a warm scan allocates nothing per batch.
  RawRecordBatch raw_;
};

}  // namespace ode::odb::exec

#endif  // ODEVIEW_ODB_EXEC_BATCH_SCANNER_H_
