#ifndef ODEVIEW_COMMON_LOGGING_H_
#define ODEVIEW_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ode {

/// Severity for library log records.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; records below it are dropped. Backed
/// by an atomic, so it may be flipped while other threads log.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log record to stderr (or a test-installed sink). The
/// default stderr format carries a timestamp and the dense thread id:
///   [WARN 14:03:21.507 t3 browse_node.cc:817] message
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

/// Installs a sink capturing log records; pass nullptr to restore
/// stderr. Atomic like the level: installing a sink while other threads
/// log is safe (in-flight records may still hit the previous sink).
/// The sink signature receives (level, formatted message).
using LogSink = void (*)(LogLevel, const std::string&);
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style builder used by the ODE_LOG macro.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ode

#define ODE_LOG(level)                                                \
  ::ode::internal::LogStream(::ode::LogLevel::k##level, __FILE__, __LINE__)

#endif  // ODEVIEW_COMMON_LOGGING_H_
