#include "common/op_profile.h"

#include <chrono>
#include <sstream>

#include "common/journal.h"

namespace ode::obs {

namespace {

thread_local OpProfile* tls_profile = nullptr;
thread_local uint64_t tls_session_id = 0;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void AppendOpProfileStatsJson(std::ostringstream& os,
                              const OpProfileStats& s) {
  os << "\"pool_lookups\":" << s.pool_lookups
     << ",\"pool_hits\":" << s.pool_hits
     << ",\"pages_read\":" << s.pool_misses
     << ",\"pager_reads\":" << s.pager_reads
     << ",\"pager_writes\":" << s.pager_writes
     << ",\"heap_records\":" << s.heap_records
     << ",\"arena_bytes\":" << s.arena_bytes
     << ",\"cluster_prefetches\":" << s.cluster_prefetches
     << ",\"rows_scanned\":" << s.rows_scanned
     << ",\"rows_matched\":" << s.rows_matched
     << ",\"rows_skipped_decode\":" << s.rows_skipped_decode
     << ",\"predicate_evals\":" << s.predicate_evals
     << ",\"batches\":" << s.batches
     << ",\"partitions\":" << s.partitions
     << ",\"join_build_rows\":" << s.join_build_rows
     << ",\"join_probe_rows\":" << s.join_probe_rows
     << ",\"join_pairs\":" << s.join_pairs
     << ",\"lock_wait_ns\":" << s.lock_wait_ns
     << ",\"wal_commit_wait_ns\":" << s.wal_commit_wait_ns
     << ",\"wal_bytes_logged\":" << s.wal_bytes_logged;
}

OpProfileStats& OpProfileStats::operator+=(const OpProfileStats& other) {
  pool_lookups += other.pool_lookups;
  pool_hits += other.pool_hits;
  pool_misses += other.pool_misses;
  pager_reads += other.pager_reads;
  pager_writes += other.pager_writes;
  heap_records += other.heap_records;
  arena_bytes += other.arena_bytes;
  cluster_prefetches += other.cluster_prefetches;
  rows_scanned += other.rows_scanned;
  rows_matched += other.rows_matched;
  rows_skipped_decode += other.rows_skipped_decode;
  predicate_evals += other.predicate_evals;
  batches += other.batches;
  partitions += other.partitions;
  join_build_rows += other.join_build_rows;
  join_probe_rows += other.join_probe_rows;
  join_pairs += other.join_pairs;
  lock_wait_ns += other.lock_wait_ns;
  wal_commit_wait_ns += other.wal_commit_wait_ns;
  wal_bytes_logged += other.wal_bytes_logged;
  return *this;
}

OpProfileStats OpProfile::Snapshot() const {
  OpProfileStats s;
  s.pool_lookups = pool_lookups_.load(std::memory_order_relaxed);
  s.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  s.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  s.pager_reads = pager_reads_.load(std::memory_order_relaxed);
  s.pager_writes = pager_writes_.load(std::memory_order_relaxed);
  s.heap_records = heap_records_.load(std::memory_order_relaxed);
  s.arena_bytes = arena_bytes_.load(std::memory_order_relaxed);
  s.cluster_prefetches = cluster_prefetches_.load(std::memory_order_relaxed);
  s.rows_scanned = rows_scanned_.load(std::memory_order_relaxed);
  s.rows_matched = rows_matched_.load(std::memory_order_relaxed);
  s.rows_skipped_decode =
      rows_skipped_decode_.load(std::memory_order_relaxed);
  s.predicate_evals = predicate_evals_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.partitions = partitions_.load(std::memory_order_relaxed);
  s.join_build_rows = join_build_rows_.load(std::memory_order_relaxed);
  s.join_probe_rows = join_probe_rows_.load(std::memory_order_relaxed);
  s.join_pairs = join_pairs_.load(std::memory_order_relaxed);
  s.lock_wait_ns = lock_wait_ns_.load(std::memory_order_relaxed);
  s.wal_commit_wait_ns =
      wal_commit_wait_ns_.load(std::memory_order_relaxed);
  s.wal_bytes_logged = wal_bytes_logged_.load(std::memory_order_relaxed);
  return s;
}

void OpProfile::MergeInto(OpProfile* dest) const {
  OpProfileStats s = Snapshot();
  dest->pool_lookups_.fetch_add(s.pool_lookups, std::memory_order_relaxed);
  dest->pool_hits_.fetch_add(s.pool_hits, std::memory_order_relaxed);
  dest->pool_misses_.fetch_add(s.pool_misses, std::memory_order_relaxed);
  dest->pager_reads_.fetch_add(s.pager_reads, std::memory_order_relaxed);
  dest->pager_writes_.fetch_add(s.pager_writes, std::memory_order_relaxed);
  dest->heap_records_.fetch_add(s.heap_records, std::memory_order_relaxed);
  dest->arena_bytes_.fetch_add(s.arena_bytes, std::memory_order_relaxed);
  dest->cluster_prefetches_.fetch_add(s.cluster_prefetches,
                                      std::memory_order_relaxed);
  dest->rows_scanned_.fetch_add(s.rows_scanned, std::memory_order_relaxed);
  dest->rows_matched_.fetch_add(s.rows_matched, std::memory_order_relaxed);
  dest->rows_skipped_decode_.fetch_add(s.rows_skipped_decode,
                                       std::memory_order_relaxed);
  dest->predicate_evals_.fetch_add(s.predicate_evals,
                                   std::memory_order_relaxed);
  dest->batches_.fetch_add(s.batches, std::memory_order_relaxed);
  dest->partitions_.fetch_add(s.partitions, std::memory_order_relaxed);
  dest->join_build_rows_.fetch_add(s.join_build_rows,
                                   std::memory_order_relaxed);
  dest->join_probe_rows_.fetch_add(s.join_probe_rows,
                                   std::memory_order_relaxed);
  dest->join_pairs_.fetch_add(s.join_pairs, std::memory_order_relaxed);
  dest->lock_wait_ns_.fetch_add(s.lock_wait_ns, std::memory_order_relaxed);
  dest->wal_commit_wait_ns_.fetch_add(s.wal_commit_wait_ns,
                                      std::memory_order_relaxed);
  dest->wal_bytes_logged_.fetch_add(s.wal_bytes_logged,
                                    std::memory_order_relaxed);
}

OpProfile* CurrentOpProfile() { return tls_profile; }

uint64_t CurrentSessionId() { return tls_session_id; }

OpProfileScope::OpProfileScope(OpProfile* profile) : prev_(tls_profile) {
  tls_profile = profile;
}

OpProfileScope::~OpProfileScope() { tls_profile = prev_; }

// ---------------------------------------------------------------------------
// SessionRegistry

SessionRegistry& SessionRegistry::Global() {
  // Leaked: sessions may close during static destruction.
  static SessionRegistry* registry = new SessionRegistry();
  return *registry;
}

std::shared_ptr<SessionEntry> SessionRegistry::Register(uint64_t session_id,
                                                        uint64_t trace_id) {
  auto entry =
      std::make_shared<SessionEntry>(session_id, trace_id, NowNs());
  MutexLock lock(mu_);
  sessions_[session_id] = entry;
  return entry;
}

void SessionRegistry::Unregister(uint64_t session_id) {
  MutexLock lock(mu_);
  sessions_.erase(session_id);
}

std::vector<std::shared_ptr<SessionEntry>> SessionRegistry::Snapshot() const {
  std::vector<std::shared_ptr<SessionEntry>> out;
  MutexLock lock(mu_);
  out.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) out.push_back(entry);
  return out;
}

size_t SessionRegistry::size() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

std::string SessionRegistry::RenderJson() const {
  std::vector<std::shared_ptr<SessionEntry>> entries = Snapshot();
  uint64_t now = NowNs();
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& entry : entries) {
    if (!first) os << ",";
    first = false;
    const char* op = entry->current_op();
    os << "{\"session_id\":" << entry->session_id()
       << ",\"trace_id\":" << entry->trace_id() << ",\"current_op\":";
    if (op != nullptr) {
      os << "\"" << op << "\""
         << ",\"op_elapsed_ns\":" << (now - entry->op_started_ns());
    } else {
      os << "null";
    }
    os << ",\"open_ns\":" << (now - entry->opened_ns())
       << ",\"ops_completed\":" << entry->ops_completed()
       << ",\"busy_ns\":" << entry->busy_ns() << ",\"totals\":{";
    AppendOpProfileStatsJson(os,entry->totals().Snapshot());
    os << "}}";
  }
  os << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// SlowOpLog

SlowOpLog& SlowOpLog::Global() {
  static SlowOpLog* log = new SlowOpLog();
  return *log;
}

void SlowOpLog::Record(const char* op, uint64_t session_id,
                       uint64_t trace_id, uint64_t duration_ns,
                       const OpProfileStats& stats) {
  SlowOpRecord record;
  record.seq = recorded_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.ts_ns = NowNs();
  record.duration_ns = duration_ns;
  record.session_id = session_id;
  record.trace_id = trace_id;
  record.op = op;
  record.stats = stats;
  {
    MutexLock lock(mu_);
    if (ring_.size() < kCapacity) {
      ring_.push_back(record);
    } else {
      ring_[next_] = record;
    }
    next_ = (next_ + 1) % kCapacity;
  }
  Journal::Global().Append(JournalEvent::kSlowOp,
                           static_cast<int64_t>(duration_ns),
                           static_cast<int64_t>(session_id), op);
}

std::vector<SlowOpRecord> SlowOpLog::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SlowOpRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < kCapacity) {
    out = ring_;
  } else {
    // `next_` is the oldest slot once the ring has wrapped.
    for (size_t i = 0; i < kCapacity; ++i) {
      out.push_back(ring_[(next_ + i) % kCapacity]);
    }
  }
  return out;
}

std::string SlowOpLog::RenderJson() const {
  std::vector<SlowOpRecord> records = Snapshot();
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const SlowOpRecord& r : records) {
    if (!first) os << ",";
    first = false;
    os << "{\"seq\":" << r.seq << ",\"ts_ns\":" << r.ts_ns
       << ",\"duration_ns\":" << r.duration_ns
       << ",\"session_id\":" << r.session_id
       << ",\"trace_id\":" << r.trace_id << ",\"op\":\""
       << (r.op != nullptr ? r.op : "?") << "\",\"stats\":{";
    AppendOpProfileStatsJson(os,r.stats);
    os << "}}";
  }
  os << "]";
  return os.str();
}

void SlowOpLog::ResetForTest() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ProfiledOp

ProfiledOp::ProfiledOp(SessionEntry* session, const char* op_name)
    : parent_(CurrentOpProfile()),
      session_(session),
      op_name_(op_name),
      start_ns_(NowNs()),
      prev_session_id_(tls_session_id),
      scope_(&profile_) {
  if (session_ != nullptr) {
    session_->BeginOp(op_name_, start_ns_);
    tls_session_id = session_->session_id();
  }
}

ProfiledOp::~ProfiledOp() {
  tls_session_id = prev_session_id_;
  uint64_t duration = NowNs() - start_ns_;
  // The scope is still installed here (members are destroyed after this
  // body), so the snapshot covers every charge of the op.
  if (session_ != nullptr) {
    profile_.MergeInto(&session_->totals());
    session_->EndOp(duration);
  }
  if (parent_ != nullptr && parent_ != &profile_) {
    profile_.MergeInto(parent_);
  }
  uint64_t threshold = SlowOpLog::Global().threshold_ns();
  if (threshold != 0 && duration >= threshold) {
    SlowOpLog::Global().Record(
        op_name_, session_ != nullptr ? session_->session_id() : 0,
        session_ != nullptr ? session_->trace_id() : 0, duration,
        profile_.Snapshot());
  }
}

}  // namespace ode::obs
