// odeview_shell: an interactive (and scriptable) driver for OdeView.
// Reads commands from stdin and operates the same public API the GUI
// buttons call, printing ASCII screenshots on demand.
//
//   $ ./odeview_shell <<'EOF'
//   open lab
//   info employee
//   objects employee
//   next employee
//   show employee text
//   follow employee dept
//   screen
//   EOF

#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/op_profile.h"
#include "common/strings.h"
#include "common/telemetry_http.h"
#include "common/timeseries.h"
#include "common/watchdog.h"
#include "dynlink/lab_modules.h"
#include "odb/cluster/advisor.h"
#include "odb/cluster/plan.h"
#include "odb/cluster/prefetch.h"
#include "odb/database.h"
#include "odb/exec/executor.h"
#include "odb/exec/explain.h"
#include "odb/integrity.h"
#include "odb/labdb.h"
#include "odeview/app.h"

namespace {

using ode::Status;

void Help() {
  std::puts(R"(commands:
  dbs                          list registered databases
  open <db>                    open a database (schema window)
  schema                       render the schema DAG
  zoom in|out                  change schema detail level
  info <class>                 class information window
  def <class>                  class definition window
  objects <class>              open the object-set window
  next|prev|reset <class>      sequence the object set
  show <class> <format>        toggle a display format
  follow <class> <member>      follow a reference member
  followset <class> <member>   follow a set-of-references member
  project <class> <attrs,...>  project onto attributes (empty = ALL)
  select <class> <predicate>   apply a selection predicate
  join <left> <right> <pred>   open a §5.3 join view
  explain [analyze] select <class> <pred>
                               show (and with analyze, run) the plan
  explain [analyze] join <left> <right> <pred>
  sessions                     list open sessions (JSON)
  slow-demo                    run a deliberately slow profiled query
                               (parks it in the /slow ring)
  versions <class>             open the version-history window
  check                        run the referential-integrity checker
  stats                        open/refresh the statistics window
  telemetry                    dump the metrics registry (text report)
  heatmap [top-n]              print the access heat map (pages, classes,
                               affinity edges; recorder starts with
                               --telemetry-port, or at 'record start')
  record start <file>          capture the access stream to <file>
  record stop                  close the capture; prints records written
  cluster-plan [trace-file]    compute a co-location plan from the access
                               recorder's affinity edges (or from a
                               captured ODEACC01 trace file)
  recluster                    apply the last cluster-plan (builds one if
                               needed), then install the affinity
                               prefetch source and enable affinity
                               read-ahead
  journal                      print the flight-recorder journal tail
  watchdog [start [ms]|stop]   stall watchdog status / control
  screen                       print the composed screen
  quit

flags: [--telemetry-port=N] [employee-count])");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ode;
  int employees = 55;
  int telemetry_port = -1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string kPortFlag = "--telemetry-port=";
    if (arg.rfind(kPortFlag, 0) == 0) {
      telemetry_port = std::atoi(arg.c_str() + kPortFlag.size());
    } else {
      employees = std::atoi(arg.c_str());
    }
  }

  obs::TelemetryServer telemetry_server;
  if (telemetry_port >= 0) {
    Status started =
        telemetry_server.Start(static_cast<uint16_t>(telemetry_port));
    if (started.ok()) {
      std::fprintf(stderr,
                   "telemetry endpoint listening on 127.0.0.1:%u "
                   "(/metrics /metrics.json /journal /trace /sessions "
                   "/slow /heatmap /timeseries /healthz)\n",
                   telemetry_server.port());
      // Give the endpoint live content: the access recorder feeds
      // /heatmap and a 1 s metrics-history tick feeds /timeseries.
      obs::AccessLog::Global().Start();
      (void)obs::TimeSeriesStore::Global().Configure(
          /*resolution_ns=*/1'000'000'000ull, /*slots=*/600);
      obs::TimeSeriesStore::Global().Start();
    } else {
      std::fprintf(stderr, "telemetry endpoint: %s\n",
                   started.ToString().c_str());
    }
  }

  odb::LabDbConfig config;
  config.employees = employees;
  auto db_result = odb::Database::CreateInMemory("lab");
  if (!db_result.ok()) return 1;
  auto db = std::move(*db_result);
  if (Status s = odb::BuildLabDatabase(db.get(), config); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  view::OdeViewApp app(150, 56);
  (void)dynlink::RegisterLabDisplayModules(app.repository(), "lab",
                                           db->schema());
  (void)app.AddDatabaseBorrowed(db.get());
  (void)app.OpenInitialWindow();

  // slow-demo state: a second database with a deliberately tiny pool
  // and a session held open so /sessions and /slow have live content.
  std::unique_ptr<odb::Database> demo_db;
  std::optional<odb::Session> demo_session;

  // The last advisor output; `recluster` applies (and consumes) it.
  std::optional<odb::cluster::ClusterPlan> last_plan;

  auto interactor = [&]() -> view::DbInteractor* {
    return app.FindInteractor("lab");
  };
  auto need_set = [&](const std::string& cls) -> view::BrowseNode* {
    if (interactor() == nullptr) return nullptr;
    Result<view::BrowseNode*> node = interactor()->OpenObjectSet(cls);
    if (!node.ok()) {
      std::printf("%s\n", node.status().ToString().c_str());
      return nullptr;
    }
    return *node;
  };
  auto report = [](const Status& status) {
    std::printf("%s\n", status.ToString().c_str());
  };

  std::puts("OdeView shell — 'help' for commands.");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      Help();
    } else if (cmd == "dbs") {
      for (const std::string& name : app.DatabaseNames()) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (cmd == "open") {
      std::string name;
      in >> name;
      report(app.OpenDatabase(name).status());
    } else if (cmd == "slow-demo") {
      // A page-miss-heavy profiled query made predictably slow: an
      // 8-frame pool over 200 employees forces real pool misses, and
      // a 2 ms/batch injected delay pushes the op past the (lowered)
      // slow threshold. CI curls /slow and /sessions afterwards and
      // asserts the parked record carries nonzero pages_read.
      if (demo_db == nullptr) {
        odb::DatabaseOptions demo_options;
        demo_options.buffer_pool_pages = 8;
        auto demo_or =
            odb::Database::CreateInMemory("slowdemo", demo_options);
        if (!demo_or.ok()) {
          report(demo_or.status());
          continue;
        }
        demo_db = std::move(*demo_or);
        odb::LabDbConfig demo_config;
        demo_config.employees = 200;
        if (Status s = odb::BuildLabDatabase(demo_db.get(), demo_config);
            !s.ok()) {
          report(s);
          demo_db.reset();
          continue;
        }
        demo_session.emplace(demo_db->OpenSession());
      }
      obs::SlowOpLog::Global().set_threshold_ns(1'000'000);  // 1 ms
      auto predicate = odb::ParsePredicate("age > 30");
      if (!predicate.ok()) {
        report(predicate.status());
        continue;
      }
      odb::exec::ScanSpec spec;
      spec.class_name = "employee";
      spec.predicate = &*predicate;
      spec.batch_size = 32;  // ~7 batches over 200 employees
      spec.injected_delay_ns_per_batch = 2'000'000;  // 2 ms per batch
      size_t matched = 0;
      {
        obs::ProfiledOp op(demo_session->entry(), "slow_demo");
        auto result = odb::exec::ExecuteScan(demo_db.get(), spec);
        if (!result.ok()) {
          report(result.status());
          continue;
        }
        matched = result->rows.size();
      }
      std::printf(
          "slow demo: %zu rows matched; the op is parked in /slow and "
          "the session shows on /sessions\n",
          matched);
    } else if (cmd == "sessions") {
      std::printf("%s\n",
                  obs::SessionRegistry::Global().RenderJson().c_str());
    } else if (cmd == "heatmap") {
      size_t top_n = 16;
      int requested = 0;
      if (in >> requested && requested > 0) {
        top_n = static_cast<size_t>(requested);
      }
      if (!obs::AccessLog::Global().enabled()) {
        std::puts(
            "access recorder is off — run with --telemetry-port or "
            "'record start <file>' to enable it");
      }
      std::fputs(obs::AccessLog::Global().RenderHeatmapText(top_n).c_str(),
                 stdout);
    } else if (cmd == "record") {
      std::string sub;
      in >> sub;
      if (sub == "start") {
        std::string path;
        in >> path;
        if (path.empty()) {
          std::puts("usage: record start <file>");
          continue;
        }
        Status started = obs::AccessLog::Global().StartCapture(path);
        if (started.ok()) {
          std::printf("capturing access stream to %s\n", path.c_str());
        } else {
          report(started);
        }
      } else if (sub == "stop") {
        auto written = obs::AccessLog::Global().StopCapture();
        if (written.ok()) {
          std::printf("capture closed: %llu records written\n",
                      static_cast<unsigned long long>(*written));
        } else {
          report(written.status());
        }
      } else {
        std::puts("usage: record start <file> | record stop");
      }
    } else if (cmd == "cluster-plan") {
      std::string trace;
      in >> trace;
      Result<odb::cluster::ClusterPlan> plan =
          trace.empty()
              ? odb::cluster::BuildClusterPlan(
                    db.get(), obs::AccessLog::Global().SnapshotProfile())
              : odb::cluster::BuildClusterPlanFromTrace(db.get(), trace);
      if (!plan.ok()) {
        report(plan.status());
        continue;
      }
      last_plan = std::move(*plan);
      std::fputs(last_plan->Summary().c_str(), stdout);
      if (last_plan->empty()) {
        std::puts(
            "no co-location opportunities found — browse some references "
            "with the access recorder on, then retry");
      }
    } else if (cmd == "recluster") {
      if (!last_plan.has_value() || last_plan->empty()) {
        Result<odb::cluster::ClusterPlan> plan = odb::cluster::BuildClusterPlan(
            db.get(), obs::AccessLog::Global().SnapshotProfile());
        if (!plan.ok()) {
          report(plan.status());
          continue;
        }
        last_plan = std::move(*plan);
      }
      if (last_plan->empty()) {
        std::puts("nothing to recluster (empty plan)");
        last_plan.reset();
        continue;
      }
      Status applied = db->Recluster(*last_plan);
      if (!applied.ok()) {
        report(applied);
        continue;
      }
      std::printf("recluster applied: %llu move(s)\n",
                  static_cast<unsigned long long>(last_plan->planned_moves));
      last_plan.reset();
      // Re-project the affinity edges onto the new placement and turn
      // on affinity read-ahead so cascades ride the new layout.
      auto source = odb::cluster::BuildAffinityPrefetchSource(
          db.get(), obs::AccessLog::Global().SnapshotProfile());
      if (source.ok()) {
        db->buffer_pool()->SetPrefetchSource(*source);
        db->buffer_pool()->SetReadAheadPolicy(odb::ReadAheadPolicy::kAffinity);
        std::printf(
            "affinity prefetch installed: %zu page(s) with neighbors\n",
            (*source)->page_count());
      } else {
        report(source.status());
      }
    } else if (interactor() == nullptr) {
      std::puts("open a database first ('open lab')");
    } else if (cmd == "schema") {
      for (const std::string& row :
           interactor()->dag_view()->RenderLines()) {
        std::printf("%s\n", row.c_str());
      }
    } else if (cmd == "zoom") {
      std::string dir;
      in >> dir;
      report(dir == "in" ? interactor()->ZoomIn()
                         : interactor()->ZoomOut());
    } else if (cmd == "info") {
      std::string cls;
      in >> cls;
      report(interactor()->OpenClassInfo(cls));
    } else if (cmd == "def") {
      std::string cls;
      in >> cls;
      report(interactor()->OpenClassDefinition(cls));
    } else if (cmd == "objects") {
      std::string cls;
      in >> cls;
      report(interactor()->OpenObjectSet(cls).status());
    } else if (cmd == "next" || cmd == "prev" || cmd == "reset") {
      std::string cls;
      in >> cls;
      view::BrowseNode* node = need_set(cls);
      if (node == nullptr) continue;
      Status status = cmd == "next"   ? node->Next()
                      : cmd == "prev" ? node->Prev()
                                      : node->Reset();
      if (status.ok() && node->has_current()) {
        auto current = node->Current();
        std::printf("-> %s\n", current->value.ToString().c_str());
      } else {
        report(status);
      }
    } else if (cmd == "show") {
      std::string cls, format;
      in >> cls >> format;
      view::BrowseNode* node = need_set(cls);
      if (node != nullptr) report(node->ToggleFormat(format));
    } else if (cmd == "follow" || cmd == "followset") {
      std::string cls, member;
      in >> cls >> member;
      view::BrowseNode* node = need_set(cls);
      if (node == nullptr) continue;
      auto child = cmd == "follow" ? node->FollowReference(member)
                                   : node->FollowReferenceSet(member);
      report(child.status());
    } else if (cmd == "project") {
      std::string cls, attrs;
      in >> cls >> attrs;
      view::BrowseNode* node = need_set(cls);
      if (node == nullptr) continue;
      if (attrs.empty()) {
        report(node->ClearProjection());
      } else {
        std::vector<std::string> chosen = Split(attrs, ',');
        report(node->SetProjection(chosen));
      }
    } else if (cmd == "select") {
      std::string cls;
      in >> cls;
      std::string predicate;
      std::getline(in, predicate);
      report(interactor()->ApplyConditionBox(
          cls, std::string(StripWhitespace(predicate))));
    } else if (cmd == "join") {
      std::string left, right;
      in >> left >> right;
      std::string predicate;
      std::getline(in, predicate);
      auto join = interactor()->OpenJoinView(
          left, right, std::string(StripWhitespace(predicate)));
      if (join.ok()) {
        std::printf("%zu matching pairs\n", (*join)->pair_count());
      } else {
        report(join.status());
      }
    } else if (cmd == "explain") {
      std::string what;
      in >> what;
      bool analyze = false;
      if (what == "analyze") {
        analyze = true;
        in >> what;
      }
      std::string left, right;
      if (what == "select") {
        in >> left;
      } else if (what == "join") {
        in >> left >> right;
      } else {
        std::puts(
            "usage: explain [analyze] select <class> <pred>\n"
            "       explain [analyze] join <left> <right> <pred>");
        continue;
      }
      std::string predicate_text;
      std::getline(in, predicate_text);
      auto predicate =
          odb::ParsePredicate(StripWhitespace(predicate_text));
      if (!predicate.ok()) {
        report(predicate.status());
        continue;
      }
      auto explained =
          what == "select"
              ? db->ExplainSelect(left, *predicate, analyze)
              : db->ExplainJoin(left, right, *predicate, analyze);
      if (explained.ok()) {
        std::fputs(explained->RenderText().c_str(), stdout);
      } else {
        report(explained.status());
      }
    } else if (cmd == "versions") {
      std::string cls;
      in >> cls;
      view::BrowseNode* node = need_set(cls);
      if (node != nullptr) report(node->OpenVersionsWindow());
    } else if (cmd == "check") {
      auto issues = odb::CheckIntegrity(db.get());
      if (!issues.ok()) {
        report(issues.status());
      } else if (issues->empty()) {
        std::puts("no integrity issues");
      } else {
        for (const odb::IntegrityIssue& issue : *issues) {
          std::printf("  %s\n", issue.ToString().c_str());
        }
      }
    } else if (cmd == "stats") {
      report(app.OpenStatsWindow());
    } else if (cmd == "telemetry") {
      std::fputs(db->DumpTelemetry().c_str(), stdout);
    } else if (cmd == "journal") {
      std::fputs(obs::Journal::Global().RenderText().c_str(), stdout);
    } else if (cmd == "watchdog") {
      std::string sub;
      in >> sub;
      if (sub == "start") {
        int deadline_ms = 0;
        in >> deadline_ms;
        obs::WatchdogOptions options;
        if (deadline_ms > 0) {
          options.span_deadline = std::chrono::milliseconds(deadline_ms);
          options.hold_deadline = std::chrono::milliseconds(deadline_ms);
        }
        report(obs::Watchdog::Global().Start(options));
      } else if (sub == "stop") {
        obs::Watchdog::Global().Stop();
        std::puts("watchdog stopped");
      } else {
        std::fputs(obs::Watchdog::Global().StatusReport().c_str(), stdout);
      }
    } else if (cmd == "screen") {
      std::fputs(app.Screenshot().c_str(), stdout);
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  obs::TimeSeriesStore::Global().Stop();
  if (obs::AccessLog::Global().capturing()) {
    (void)obs::AccessLog::Global().StopCapture();
  }
  return 0;
}
