// Payoff and cost matrix for access-driven re-clustering.
//
// The same hot-chain chase runs against two layouts of an identical
// database:
//   BM_ChaseScattered    — hot records interleaved with cold ones, one
//     page fetch per hot record once the pool thrashes.
//   BM_ChaseReclustered  — after the advisor's plan is applied, the
//     hot chain shares a handful of pages. CI gates
//     BM_ChaseReclustered : BM_ChaseScattered on the `pool_misses`
//     counter at 0.5x — re-clustering must at least halve the page
//     fetches on the workload it was planned from.
// Plus the mechanism's own cost:
//   BM_ClusterPlanBuild  — advisor over a browse-shaped profile.
//   BM_ReclusterApply    — plan + apply on a freshly scattered heap.

#include <benchmark/benchmark.h>

#include "bench/bench_scatter.h"
#include "bench/bench_util.h"
#include "odb/buffer_pool.h"
#include "odb/cluster/advisor.h"
#include "odb/cluster/plan.h"

namespace ode::bench {
namespace {

constexpr size_t kHot = 64;
constexpr size_t kColdPerHot = 4;
// Small enough that the scattered chase thrashes (one miss per hot
// record), big enough that the reclustered hot pages all stay cached.
constexpr size_t kPoolPages = 16;

/// Chases the hot chain once per iteration and exports the average
/// buffer-pool misses per chase as the `pool_misses` counter — the
/// number the CI ratio gate compares across layouts.
void ChaseLoop(benchmark::State& state, ScatteredBenchDb& lab) {
  odb::Session session = lab.db->OpenSession();
  // Prime the pool so the first iteration's cold start does not count.
  ChaseHotChain(session, lab.hot);
  const uint64_t misses_before = lab.db->buffer_pool()->stats().misses;
  for (auto _ : state) {
    ChaseHotChain(session, lab.hot);
  }
  const uint64_t misses =
      lab.db->buffer_pool()->stats().misses - misses_before;
  state.counters["pool_misses"] = benchmark::Counter(
      static_cast<double>(misses), benchmark::Counter::kAvgIterations);
}

void BM_ChaseScattered(benchmark::State& state) {
  ScatteredBenchDb lab = MakeScatteredBenchDb(kHot, kColdPerHot, kPoolPages);
  ChaseLoop(state, lab);
}
BENCHMARK(BM_ChaseScattered);

void BM_ChaseReclustered(benchmark::State& state) {
  ScatteredBenchDb lab = MakeScatteredBenchDb(kHot, kColdPerHot, kPoolPages);
  obs::AccessProfile profile = ChainProfile(lab.hot, /*weight=*/8);
  odb::cluster::ClusterPlan plan = ValueOrDie(
      odb::cluster::BuildClusterPlan(lab.db.get(), profile), "plan");
  CheckOk(lab.db->Recluster(plan), "recluster");
  ChaseLoop(state, lab);
}
BENCHMARK(BM_ChaseReclustered);

void BM_ClusterPlanBuild(benchmark::State& state) {
  ScatteredBenchDb lab = MakeScatteredBenchDb(kHot, kColdPerHot, kPoolPages);
  obs::AccessProfile profile = ChainProfile(lab.hot, /*weight=*/8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie(
        odb::cluster::BuildClusterPlan(lab.db.get(), profile), "plan"));
  }
}
BENCHMARK(BM_ClusterPlanBuild);

void BM_ReclusterApply(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ScatteredBenchDb lab =
        MakeScatteredBenchDb(kHot, kColdPerHot, kPoolPages);
    obs::AccessProfile profile = ChainProfile(lab.hot, /*weight=*/8);
    odb::cluster::ClusterPlan plan = ValueOrDie(
        odb::cluster::BuildClusterPlan(lab.db.get(), profile), "plan");
    state.ResumeTiming();
    CheckOk(lab.db->Recluster(plan), "recluster");
    state.PauseTiming();
    // Destruction outside the timed region.
    lab.db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ReclusterApply);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
