#include "owl/widget.h"

namespace ode::owl {

Widget* Widget::AddChild(std::unique_ptr<Widget> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

bool Widget::RemoveChild(std::string_view child_name) {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i]->name() == child_name) {
      children_.erase(children_.begin() + static_cast<long>(i));
      return true;
    }
    if (children_[i]->RemoveChild(child_name)) return true;
  }
  return false;
}

Widget* Widget::FindWidget(std::string_view widget_name) {
  if (name_ == widget_name) return this;
  for (const auto& child : children_) {
    if (Widget* found = child->FindWidget(widget_name)) return found;
  }
  return nullptr;
}

const Widget* Widget::FindWidget(std::string_view widget_name) const {
  return const_cast<Widget*>(this)->FindWidget(widget_name);
}

Point Widget::AbsoluteOrigin() const {
  Point origin{rect_.x, rect_.y};
  for (const Widget* p = parent_; p != nullptr; p = p->parent_) {
    origin.x += p->rect().x;
    origin.y += p->rect().y;
  }
  return origin;
}

void Widget::Render(Framebuffer* fb, Point origin) const {
  if (!visible_) return;
  RenderSelf(fb, origin);
  for (const auto& child : children_) {
    child->Render(fb, Point{origin.x + child->rect().x,
                            origin.y + child->rect().y});
  }
}

bool Widget::DispatchClick(Point local) {
  if (!visible_) return false;
  // Children on top, last-added first (painter's order inverse).
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    Widget* child = it->get();
    if (!child->visible()) continue;
    if (child->rect().Contains(local)) {
      Point child_local{local.x - child->rect().x,
                        local.y - child->rect().y};
      if (child->DispatchClick(child_local)) return true;
    }
  }
  return OnClick(local);
}

bool Widget::DispatchScroll(Point local, int amount) {
  if (!visible_) return false;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    Widget* child = it->get();
    if (!child->visible()) continue;
    if (child->rect().Contains(local)) {
      Point child_local{local.x - child->rect().x,
                        local.y - child->rect().y};
      if (child->DispatchScroll(child_local, amount)) return true;
    }
  }
  return OnScroll(local, amount);
}

bool Widget::OnKey(std::string_view) { return false; }
void Widget::RenderSelf(Framebuffer*, Point) const {}
bool Widget::OnClick(Point) { return false; }
bool Widget::OnScroll(Point, int) { return false; }

}  // namespace ode::owl
