#ifndef ODEVIEW_COMMON_TELEMETRY_HTTP_H_
#define ODEVIEW_COMMON_TELEMETRY_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include <string_view>

#include "common/status.h"

namespace ode::obs {

/// Extracts the request path from a raw HTTP request ("GET /metrics
/// HTTP/1.0\r\n..."). Returns "/" when the request line does not carry
/// a well-formed `METHOD SP path SP` prefix — the caller then answers
/// 404/400 rather than guessing. Pure function over untrusted network
/// bytes (fuzzed by `fuzz/fuzz_http_request.cc`).
std::string_view ParseRequestPath(std::string_view request);

/// A minimal HTTP/1.0 scrape endpoint for the flight recorder:
///
///   GET /metrics   Prometheus text exposition (the metrics registry)
///   GET /journal   event-journal tail as JSON lines
///   GET /trace     Chrome trace-event JSON (retained spans)
///   GET /healthz   liveness probe ("ok")
///
/// Engine-side only, mirroring the paper's OdeView/Ode separation: the
/// endpoint renders the same registry exports any in-process consumer
/// gets — it has no back channel into engine internals. One accept
/// thread handles requests serially (scrapes are rare and responses
/// small); unknown paths get 404.
class TelemetryServer {
 public:
  TelemetryServer() = default;
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see `port()`) and starts
  /// the accept thread. FailedPrecondition if already running;
  /// IOError if the bind/listen fails.
  Status Start(uint16_t port);

  /// Closes the listener and joins the accept thread (idempotent).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the actual one when Start was given 0).
  uint16_t port() const { return port_; }

 private:
  void Serve();

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace ode::obs

#endif  // ODEVIEW_COMMON_TELEMETRY_HTTP_H_
