#ifndef ODEVIEW_ODB_CATALOG_H_
#define ODEVIEW_ODB_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading.h"
#include "odb/buffer_pool.h"
#include "odb/oid.h"
#include "odb/page.h"
#include "odb/schema.h"

namespace ode::odb {

/// Page-allocation bookkeeping: a singly-linked free list threaded
/// through freed pages (first 4 bytes = next free page). The head lives
/// in the superblock and is managed by `Catalog`.
/// Thread-safe: the list head and chain are guarded by an internal
/// mutex, so heaps of different clusters may spill/reclaim overflow
/// pages concurrently.
class FreeList {
 public:
  /// `superblock`, when given, is the page whose free-head field is
  /// rewritten on every head change (write-through, so the head is
  /// always crash-consistent with the chain — the write joins whatever
  /// WAL transaction is mutating the chain). `kNoPage` keeps the head
  /// in memory only (standalone heaps in tests have no superblock).
  FreeList(BufferPool* pool, PageId head, PageId superblock = kNoPage)
      : pool_(pool),
        mu_(std::make_unique<Mutex>(LockRank::kFreeList)),
        head_(head),
        superblock_(superblock) {}

  PageId head() const;

  /// Pops a free page, or allocates a fresh one from the pager.
  Result<PageId> Acquire();

  /// Pushes `id` onto the free list.
  Status Release(PageId id);

  /// Number of pages currently on the list (walks the chain).
  Result<uint32_t> Size() const;

 private:
  /// Mirrors `head_` into the superblock (no-op without one).
  Status PersistHead() ODE_REQUIRES(*mu_);

  BufferPool* pool_;
  /// In a unique_ptr so the list (and the Catalog holding it) stays
  /// movable. Rank kFreeList (50): held across page fetches, so it
  /// sits below frame latches and the pool shards in the lock order.
  mutable std::unique_ptr<Mutex> mu_;
  PageId head_ ODE_GUARDED_BY(*mu_);
  PageId superblock_ = kNoPage;
};

/// Reads/writes a byte blob across a chain of pages from `free_list`.
/// Blob page layout: next u32 | length u16 | payload.
Result<PageId> WriteBlob(BufferPool* pool, FreeList* free_list,
                         std::string_view bytes);
Result<std::string> ReadBlob(BufferPool* pool, PageId head);
Status FreeBlob(BufferPool* pool, FreeList* free_list, PageId head);

/// Descriptor of one cluster (the extent of one persistent class).
struct ClusterInfo {
  std::string class_name;
  ClusterId id = 0;
  PageId first_page = kNoPage;
  /// Next logical object id to assign; ids are never reused.
  uint64_t next_local = 1;
};

/// The persistent catalog: database schema plus the cluster table.
///
/// Page 0 is the superblock (magic, format version, catalog blob head,
/// free-list head). The catalog body is one serialized blob, rewritten
/// on schema changes and on `Sync()`; the freed pages of the previous
/// blob return to the free list.
class Catalog {
 public:
  /// Formats a brand-new database (writes the superblock).
  static Result<Catalog> Format(BufferPool* pool, std::string db_name);

  /// Loads the catalog of an existing database.
  static Result<Catalog> Load(BufferPool* pool);

  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  const std::string& db_name() const { return db_name_; }
  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  /// Registers a new cluster for `class_name` rooted at `first_page`.
  Result<ClusterId> AddCluster(const std::string& class_name,
                               PageId first_page);
  Status RemoveCluster(const std::string& class_name);

  Result<const ClusterInfo*> FindCluster(const std::string& class_name) const;
  Result<const ClusterInfo*> FindCluster(ClusterId id) const;
  /// All clusters, ordered by id (== class registration order).
  std::vector<const ClusterInfo*> clusters() const;

  /// Assigns the next logical id for a cluster (monotonic, never reused).
  Result<uint64_t> NextLocalId(ClusterId id);
  /// Raises the stored next-id watermark (used after reopening heaps).
  Status BumpNextLocalId(ClusterId id, uint64_t at_least);

  FreeList* free_list() { return &free_list_; }

  /// Serializes the catalog body and rewrites superblock pointers.
  Status Persist();

 private:
  Catalog(BufferPool* pool, std::string db_name, FreeList free_list)
      : pool_(pool),
        db_name_(std::move(db_name)),
        free_list_(std::move(free_list)),
        id_mu_(std::make_unique<Mutex>(LockRank::kCatalogId)) {}

  Status WriteSuperblock(PageId catalog_head);
  void EncodeBody(std::string* dst) const;
  Status DecodeBody(std::string_view bytes);

  BufferPool* pool_;
  std::string db_name_;
  FreeList free_list_;
  Schema schema_;
  std::map<ClusterId, ClusterInfo> clusters_;
  ClusterId next_cluster_id_ = 1;
  PageId catalog_head_ = kNoPage;
  /// Guards the per-cluster next-id watermarks in `clusters_`, which
  /// concurrent sessions bump while creating objects (all *structural*
  /// access to `clusters_` — insert, erase, Persist — is serialized by
  /// the Database's exclusive schema lock instead, so the map itself
  /// carries no annotation). unique_ptr keeps the Catalog movable.
  std::unique_ptr<Mutex> id_mu_;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_CATALOG_H_
