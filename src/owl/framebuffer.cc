#include "owl/framebuffer.h"

#include <algorithm>

namespace ode::owl {

Framebuffer::Framebuffer(int width, int height)
    : width_(std::max(0, width)),
      height_(std::max(0, height)),
      cells_(static_cast<size_t>(width_) * static_cast<size_t>(height_),
             ' ') {}

void Framebuffer::Clear(char fill) {
  std::fill(cells_.begin(), cells_.end(), fill);
}

void Framebuffer::Put(int x, int y, char c) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  cells_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
         static_cast<size_t>(x)] = c;
}

char Framebuffer::At(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return ' ';
  return cells_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                static_cast<size_t>(x)];
}

void Framebuffer::DrawText(int x, int y, std::string_view text) {
  for (size_t i = 0; i < text.size(); ++i) {
    Put(x + static_cast<int>(i), y, text[i]);
  }
}

void Framebuffer::DrawHLine(int x, int y, int length, char c) {
  for (int i = 0; i < length; ++i) Put(x + i, y, c);
}

void Framebuffer::DrawVLine(int x, int y, int length, char c) {
  for (int i = 0; i < length; ++i) Put(x, y + i, c);
}

void Framebuffer::DrawBox(const Rect& rect) {
  if (rect.width < 2 || rect.height < 2) return;
  DrawHLine(rect.x + 1, rect.y, rect.width - 2, '-');
  DrawHLine(rect.x + 1, rect.bottom() - 1, rect.width - 2, '-');
  DrawVLine(rect.x, rect.y + 1, rect.height - 2, '|');
  DrawVLine(rect.right() - 1, rect.y + 1, rect.height - 2, '|');
  Put(rect.x, rect.y, '+');
  Put(rect.right() - 1, rect.y, '+');
  Put(rect.x, rect.bottom() - 1, '+');
  Put(rect.right() - 1, rect.bottom() - 1, '+');
}

void Framebuffer::FillRect(const Rect& rect, char c) {
  for (int y = rect.y; y < rect.bottom(); ++y) {
    for (int x = rect.x; x < rect.right(); ++x) Put(x, y, c);
  }
}

void Framebuffer::DrawBitmap(int x, int y, const Bitmap& bitmap, char on,
                             char off) {
  for (int by = 0; by < bitmap.height(); ++by) {
    for (int bx = 0; bx < bitmap.width(); ++bx) {
      Put(x + bx, y + by, bitmap.Get(bx, by) ? on : off);
    }
  }
}

std::string Framebuffer::ToString() const {
  std::string out;
  out.reserve(static_cast<size_t>(height_) *
              (static_cast<size_t>(width_) + 1));
  for (int y = 0; y < height_; ++y) {
    out.append(Row(y));
    out.push_back('\n');
  }
  return out;
}

std::string Framebuffer::Row(int y) const {
  if (y < 0 || y >= height_) return std::string();
  return std::string(
      cells_.begin() + static_cast<long>(y) * width_,
      cells_.begin() + static_cast<long>(y + 1) * width_);
}

}  // namespace ode::owl
