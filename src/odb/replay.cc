#include "odb/replay.h"

#include <utility>

#include "common/trace.h"

namespace ode::odb {

Result<ReplayReport> ReplayAccessTrace(Database* db, const std::string& path) {
  ODE_TRACE_SPAN("obs.access_replay");
  ODE_ASSIGN_OR_RETURN(obs::AccessTrace trace, obs::ReadAccessTrace(path));

  obs::AccessLog& log = obs::AccessLog::Global();
  bool was_enabled = log.enabled();
  uint32_t prior_period = log.sample_period();
  log.Start(/*sample_period=*/1);

  ReplayReport report;
  report.torn_tail_bytes = trace.torn_tail_bytes;
  {
    Session session = db->OpenSession();
    for (const obs::AccessTraceRecord& record : trace.records) {
      if (record.kind == obs::AccessTraceRecord::Kind::kAffinity) {
        log.RecordAffinity(record.src_cluster, record.src_local,
                           record.src_class, record.dst_cluster,
                           record.dst_local, record.dst_class);
        ++report.affinity_edges;
        continue;
      }
      ++report.events_total;
      Oid oid{static_cast<ClusterId>(record.event.cluster),
              record.event.local};
      // Every captured op replays as a point read: re-running a
      // mutation would change the database, and the profile only needs
      // the class/page to be touched again.
      Result<ObjectBuffer> object = session.GetObject(oid);
      if (object.ok()) {
        ++report.events_replayed;
      } else if (object.status().IsNotFound()) {
        ++report.events_missing;
      } else {
        ++report.events_failed;
      }
    }
  }

  // Restore the recorder's pre-replay state.
  if (was_enabled) {
    log.Start(prior_period);
  } else {
    log.Stop();
  }
  return report;
}

}  // namespace ode::odb
