#!/usr/bin/env python3
"""Compare a Google Benchmark JSON run against BENCH_BASELINE.json.

Usage:
  compare_bench.py --baseline BENCH_BASELINE.json --run out.json \
      [--binary bench_ext_selection] [--filter REGEX] [--tolerance 0.20]

Fails (exit 1) when any benchmark matched by --filter is slower than
baseline * (1 + tolerance). Benchmarks missing from the baseline are
skipped with a note, so adding a new benchmark never breaks the gate.

Same-run ratio mode (machine-independent — no baseline needed):
  compare_bench.py --run out.json \
      --ratio BM_SelectProfilingOn:BM_SelectProfilingOff --max-ratio 1.5

Fails when numerator/denominator real_time exceeds --max-ratio. Both
benchmarks come from the *same* run, so the gate holds on any machine;
it's how CI bounds profiling-on overhead relative to profiling-off.
--ratio may repeat.

With --counter NAME the ratio is taken over that user counter (a
`state.counters[NAME]` value in the run JSON) instead of real_time —
how CI asserts the reclustered chase does fewer page fetches than the
scattered one (`--counter pool_misses --max-ratio 0.5`), a gate that
no amount of machine noise can flip because it counts work, not time.

Caveat: the committed baseline was captured on one specific machine
and build type. Cross-machine absolute comparisons are meaningless —
CI re-captures or uses a generous tolerance on stable runners; local
use is for spotting order-of-magnitude regressions, not ±5% drift.
"""

import argparse
import json
import re
import sys


def load_run(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = bench
    return out


def warn_build_type_mismatch(run_path, baseline):
    """Warn (never fail) when the run's stamped build type differs from
    the baseline's. Absolute comparisons across build flavors are noise;
    the numbers still print, but the verdicts should be read with that
    in mind. Runs older than the stamping (no ode_build_type in the
    context) and baselines without a build_type stay silent."""
    with open(run_path) as f:
        context = json.load(f).get("context", {})
    run_build = context.get("ode_build_type")
    base_build = baseline.get("build_type")
    if run_build and base_build and run_build != base_build:
        print(f"compare_bench: WARNING: run build type '{run_build}' != "
              f"baseline build type '{base_build}'; absolute comparisons "
              f"across build flavors are unreliable", file=sys.stderr)


def check_ratios(run_benches, specs, max_ratio, counter=None):
    """Same-run numerator:denominator gates. Returns the exit code.

    With counter=NAME the gate divides that user counter instead of
    real_time. A zero-valued denominator counter is an error (the gate
    would be vacuous); a zero numerator is the best possible result."""
    failures = []
    for spec in specs:
        try:
            num_name, den_name = spec.split(":", 1)
        except ValueError:
            print(f"compare_bench: bad --ratio '{spec}' (want NUM:DEN)",
                  file=sys.stderr)
            return 1
        num = run_benches.get(num_name)
        den = run_benches.get(den_name)
        if num is None or den is None:
            missing = num_name if num is None else den_name
            print(f"compare_bench: --ratio benchmark '{missing}' not in "
                  f"the run", file=sys.stderr)
            return 1
        if counter is not None:
            unit = counter
            num_value = num.get(counter)
            den_value = den.get(counter)
            if num_value is None or den_value is None:
                missing = num_name if num_value is None else den_name
                print(f"compare_bench: benchmark '{missing}' has no "
                      f"counter '{counter}'", file=sys.stderr)
                return 1
            if den_value == 0:
                print(f"compare_bench: counter '{counter}' is zero in "
                      f"denominator '{den_name}'; ratio gate is vacuous",
                      file=sys.stderr)
                return 1
        else:
            if num["time_unit"] != den["time_unit"]:
                print(f"compare_bench: unit mismatch in '{spec}'",
                      file=sys.stderr)
                return 1
            unit = num["time_unit"]
            num_value = num["real_time"]
            den_value = den["real_time"]
        ratio = num_value / den_value
        verdict = "OK"
        if ratio > max_ratio:
            verdict = "REGRESSION"
            failures.append(spec)
        print(f"  {verdict:10s} {num_name} / {den_name}: "
              f"{num_value:.0f} / {den_value:.0f} "
              f"{unit} = {ratio:.2f}x (max {max_ratio:.2f}x)")
    if failures:
        print(f"compare_bench: {len(failures)} ratio gate(s) exceeded: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"compare_bench: {len(specs)} ratio gate(s) within "
          f"{max_ratio:.2f}x")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--run", required=True,
                        help="benchmark JSON produced with --benchmark_out")
    parser.add_argument("--binary", default=None,
                        help="baseline 'benches' key; inferred from the "
                             "run's executable name when omitted")
    parser.add_argument("--filter", default=".*",
                        help="regex over benchmark names to compare")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed slowdown fraction (0.20 = +20%%)")
    parser.add_argument("--ratio", action="append", default=[],
                        metavar="NUM:DEN",
                        help="same-run ratio gate; may repeat")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="fail when a --ratio pair exceeds this")
    parser.add_argument("--counter", default=None, metavar="NAME",
                        help="ratio over this user counter instead of "
                             "real_time (only with --ratio)")
    args = parser.parse_args()

    if args.counter and not args.ratio:
        print("compare_bench: --counter only applies to --ratio mode",
              file=sys.stderr)
        return 1

    if args.ratio:
        return check_ratios(load_run(args.run), args.ratio, args.max_ratio,
                            args.counter)

    if args.baseline is None:
        print("compare_bench: --baseline is required unless --ratio is "
              "used", file=sys.stderr)
        return 1

    with open(args.baseline) as f:
        baseline = json.load(f)
    warn_build_type_mismatch(args.run, baseline)

    binary = args.binary
    if binary is None:
        with open(args.run) as f:
            executable = json.load(f)["context"]["executable"]
        binary = executable.rsplit("/", 1)[-1]
    base_benches = baseline["benches"].get(binary)
    if base_benches is None:
        print(f"compare_bench: no baseline for binary '{binary}'; known: "
              f"{sorted(baseline['benches'])}", file=sys.stderr)
        return 1

    run_benches = load_run(args.run)
    pattern = re.compile(args.filter)
    failures = []
    compared = 0
    for name, bench in sorted(run_benches.items()):
        if not pattern.search(name):
            continue
        base = base_benches.get(name)
        if base is None:
            print(f"  skip {name}: not in baseline")
            continue
        if base["time_unit"] != bench["time_unit"]:
            print(f"  skip {name}: unit mismatch "
                  f"({base['time_unit']} vs {bench['time_unit']})")
            continue
        compared += 1
        ratio = bench["real_time"] / base["real_time"]
        verdict = "OK"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"  {verdict:10s} {name}: {base['real_time']:.0f} -> "
              f"{bench['real_time']:.0f} {bench['time_unit']} "
              f"({ratio:.2f}x)")
    if compared == 0:
        print(f"compare_bench: filter '{args.filter}' matched nothing "
              f"in {args.run}", file=sys.stderr)
        return 1
    if failures:
        print(f"compare_bench: {len(failures)} regression(s) beyond "
              f"+{args.tolerance:.0%}: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"compare_bench: {compared} benchmark(s) within +"
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
