#ifndef ODEVIEW_ODB_BUFFER_POOL_H_
#define ODEVIEW_ODB_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "odb/page.h"
#include "odb/pager.h"

namespace ode::odb {

class BufferPool;

/// RAII pin on a buffered page. While a handle is alive the frame
/// cannot be evicted. Call `MarkDirty()` after mutating the page.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }
  /// Records that the page content changed and must be written back.
  void MarkDirty() { dirty_ = true; }
  /// Drops the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, Page* page)
      : pool_(pool), id_(id), page_(page) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kNoPage;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

/// Fixed-capacity page cache with LRU eviction and pin counting.
///
/// All storage-layer reads and writes go through the pool; dirty frames
/// are written back on eviction and on `FlushAll()`.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
  };

  /// `capacity` is the number of frames; must be >= 1.
  BufferPool(Pager* pager, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the pager on a miss.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh zeroed page, pins it, and reports its id.
  Result<PageHandle> NewPage();

  /// Writes back every dirty frame (does not evict).
  Status FlushAll();

  /// Writes back dirty frames and syncs the pager.
  Status Sync();

  const Stats& stats() const { return stats_; }
  size_t capacity() const { return frames_.size(); }
  Pager* pager() { return pager_; }

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    PageId id = kNoPage;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;
  };

  void Unpin(PageId id, bool dirty);
  /// Returns a frame index to (re)use, evicting an unpinned LRU frame
  /// if necessary. Fails when every frame is pinned.
  Result<size_t> AcquireFrame();
  void TouchLru(size_t frame_index);

  Pager* pager_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_to_frame_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  Stats stats_;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_BUFFER_POOL_H_
