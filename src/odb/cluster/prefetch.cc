#include "odb/cluster/prefetch.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace ode::odb::cluster {
namespace {

/// Lazily-fetched local-id → page maps, one per cluster.
class PlacementIndex {
 public:
  explicit PlacementIndex(Database* db) : db_(db) {}

  /// The page currently holding (`cluster`, `local`), or kNoPage when
  /// the record (or its whole cluster) no longer exists.
  PageId Resolve(uint64_t cluster, uint64_t local) {
    auto it = by_cluster_.find(cluster);
    if (it == by_cluster_.end()) {
      it = by_cluster_.emplace(cluster, Load(cluster)).first;
    }
    auto found = it->second.find(local);
    return found == it->second.end() ? kNoPage : found->second;
  }

 private:
  std::unordered_map<uint64_t, PageId> Load(uint64_t cluster) {
    std::unordered_map<uint64_t, PageId> pages;
    Result<std::string> class_name =
        db_->ClassOfCluster(static_cast<ClusterId>(cluster));
    if (!class_name.ok()) return pages;  // cluster dropped since capture
    Result<std::vector<HeapFile::Placement>> placements =
        db_->ClusterPlacements(*class_name);
    if (!placements.ok()) return pages;
    pages.reserve(placements->size());
    for (const HeapFile::Placement& p : *placements) {
      pages[p.local_id] = p.page;
    }
    return pages;
  }

  Database* db_;
  std::map<uint64_t, std::unordered_map<uint64_t, PageId>> by_cluster_;
};

}  // namespace

Result<std::shared_ptr<AffinityPrefetchSource>> BuildAffinityPrefetchSource(
    Database* db, const obs::AccessProfile& profile, size_t top_k) {
  PlacementIndex index(db);
  /// Directed page-pair weights: src page -> (dst page -> weight).
  /// Affinity is followed in traversal order, so prefetch is directed
  /// too — but each edge also votes the reverse direction at half
  /// weight (a browse that goes A→B often comes back).
  std::map<PageId, std::map<PageId, uint64_t>> weights;
  for (const obs::AffinityEdge& edge : profile.edges) {
    PageId src = index.Resolve(edge.src_cluster, edge.src_local);
    PageId dst = index.Resolve(edge.dst_cluster, edge.dst_local);
    if (src == kNoPage || dst == kNoPage || src == dst) continue;
    weights[src][dst] += edge.count * 2;
    weights[dst][src] += edge.count;
  }

  std::unordered_map<PageId, std::vector<PageId>> neighbors;
  neighbors.reserve(weights.size());
  for (const auto& [page, out_edges] : weights) {
    std::vector<std::pair<PageId, uint64_t>> ranked(out_edges.begin(),
                                                    out_edges.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (ranked.size() > top_k) ranked.resize(top_k);
    std::vector<PageId> top;
    top.reserve(ranked.size());
    for (const auto& [neighbor, weight] : ranked) top.push_back(neighbor);
    neighbors.emplace(page, std::move(top));
  }
  return std::make_shared<AffinityPrefetchSource>(std::move(neighbors));
}

}  // namespace ode::odb::cluster
