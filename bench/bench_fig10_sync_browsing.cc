// Figure 10: synchronized browsing — clicking `next` on the employee
// object set refreshes the whole network of windows hanging off it,
// open or closed.

#include <benchmark/benchmark.h>

#include "bench/bench_scatter.h"
#include "bench/bench_util.h"
#include "odb/buffer_pool.h"
#include "odb/cluster/advisor.h"
#include "odb/cluster/plan.h"
#include "odb/cluster/prefetch.h"

namespace ode::bench {
namespace {

view::BrowseNode* BuildChain(view::BrowseNode* node, int depth,
                             bool displays_open) {
  for (int i = 0; i < depth; ++i) {
    const char* member = (i % 2 == 0) ? "dept" : "head";
    node = ValueOrDie(node->FollowReference(member), "follow");
    if (displays_open) CheckOk(node->ToggleFormat("text"), "open text");
  }
  return node;
}

void BM_SyncPropagationByDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  bool displays_open = state.range(1) == 1;
  LabSession session = LabSession::Create();
  view::BrowseNode* root =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(root->Next(), "next");
  BuildChain(root, depth, displays_open);
  for (auto _ : state) {
    if (!root->Next().ok()) CheckOk(root->Reset(), "reset");
  }
  state.counters["windows"] = root->SubtreeSize();
  state.SetLabel(displays_open ? "displays open" : "panels only");
}
BENCHMARK(BM_SyncPropagationByDepth)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({16, 1});

void BM_SyncPropagationByFanout(benchmark::State& state) {
  // A bushy network: the employee's dept with all its set members and
  // references followed, replicated via multiple children.
  LabSession session = LabSession::Create();
  view::BrowseNode* root =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(root->Next(), "next");
  view::BrowseNode* dept = ValueOrDie(root->FollowReference("dept"), "d");
  (void)ValueOrDie(root->FollowReference("boss"), "boss");
  (void)ValueOrDie(dept->FollowReferenceSet("employees"), "emps");
  (void)ValueOrDie(dept->FollowReferenceSet("projects"), "projects");
  (void)ValueOrDie(dept->FollowReference("head"), "head");
  for (auto _ : state) {
    if (!root->Next().ok()) CheckOk(root->Reset(), "reset");
  }
  state.counters["windows"] = root->SubtreeSize();
}
BENCHMARK(BM_SyncPropagationByFanout);

void BM_SyncRefreshClosedWindows(benchmark::State& state) {
  // Paper §4.4: refreshing happens even for closed windows. Measure a
  // chain whose display windows are all closed.
  LabSession session = LabSession::Create();
  view::BrowseNode* root =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(root->Next(), "next");
  view::BrowseNode* dept = ValueOrDie(root->FollowReference("dept"), "d");
  CheckOk(dept->ToggleFormat("text"), "open");
  session.app->server()
      ->FindWindow(dept->DisplayWindow("text"))
      ->set_open(false);
  for (auto _ : state) {
    if (!root->Next().ok()) CheckOk(root->Reset(), "reset");
  }
}
BENCHMARK(BM_SyncRefreshClosedWindows);

void BM_UnsynchronizedBaseline(benchmark::State& state) {
  // Ablation: sequencing with no children — the cost of `next` alone,
  // to isolate what synchronized propagation adds.
  LabSession session = LabSession::Create();
  view::BrowseNode* root =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  for (auto _ : state) {
    if (!root->Next().ok()) CheckOk(root->Reset(), "reset");
  }
}
BENCHMARK(BM_UnsynchronizedBaseline);

// --- Browse cascade vs physical layout ---------------------------------
//
// The storage-level shape of a synchronized-browsing cascade: each
// `next` refreshes a network of windows, touching a chain of related
// objects in affinity order. Over a scattered heap every hop is a page
// fetch; after the advisor's plan is applied (and its affinity
// prefetcher installed) the chain shares pages and upcoming ones are
// scheduled ahead. Both flavors export `pool_misses` so the payoff is
// a same-run counter ratio, immune to machine noise.

void CascadeLoop(benchmark::State& state, ScatteredBenchDb& lab) {
  odb::Session session = lab.db->OpenSession();
  ChaseHotChain(session, lab.hot);  // prime: cold start does not count
  lab.db->buffer_pool()->WaitForPrefetches();
  const uint64_t misses_before = lab.db->buffer_pool()->stats().misses;
  for (auto _ : state) {
    ChaseHotChain(session, lab.hot);
  }
  lab.db->buffer_pool()->WaitForPrefetches();
  odb::BufferPool::Stats stats = lab.db->buffer_pool()->stats();
  state.counters["pool_misses"] = benchmark::Counter(
      static_cast<double>(stats.misses - misses_before),
      benchmark::Counter::kAvgIterations);
  state.counters["prefetched"] =
      static_cast<double>(stats.cluster_prefetches);
}

void BM_SyncCascadeScattered(benchmark::State& state) {
  ScatteredBenchDb lab = MakeScatteredBenchDb(
      /*hot_count=*/64, /*cold_per_hot=*/4, /*pool_pages=*/16);
  CascadeLoop(state, lab);
}
BENCHMARK(BM_SyncCascadeScattered);

void BM_SyncCascadeReclustered(benchmark::State& state) {
  ScatteredBenchDb lab = MakeScatteredBenchDb(
      /*hot_count=*/64, /*cold_per_hot=*/4, /*pool_pages=*/16);
  obs::AccessProfile profile = ChainProfile(lab.hot, /*weight=*/8);
  odb::cluster::ClusterPlan plan = ValueOrDie(
      odb::cluster::BuildClusterPlan(lab.db.get(), profile), "plan");
  CheckOk(lab.db->Recluster(plan), "recluster");
  auto source = ValueOrDie(
      odb::cluster::BuildAffinityPrefetchSource(lab.db.get(), profile),
      "prefetch source");
  lab.db->buffer_pool()->SetPrefetchSource(source);
  lab.db->buffer_pool()->SetReadAheadPolicy(
      odb::ReadAheadPolicy::kAffinity);
  CascadeLoop(state, lab);
}
BENCHMARK(BM_SyncCascadeReclustered);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
