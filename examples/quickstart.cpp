// Quickstart: create the lab database, open it in OdeView, browse the
// schema and an employee object — the minimal end-to-end tour of the
// public API.

#include <cstdio>

#include "dynlink/lab_modules.h"
#include "odb/database.h"
#include "odb/labdb.h"
#include "odeview/app.h"

namespace {

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::ode::Status _st = (expr);                                    \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                        \
      return 1;                                                    \
    }                                                              \
  } while (0)

#define CHECK_ASSIGN(lhs, expr)                                    \
  auto lhs##_result = (expr);                                      \
  if (!lhs##_result.ok()) {                                        \
    std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,  \
                 lhs##_result.status().ToString().c_str());        \
    return 1;                                                      \
  }                                                                \
  auto& lhs = *lhs##_result

}  // namespace

int main() {
  using namespace ode;

  // 1. Build the lab database (55 employees, 7 managers — the
  //    cardinalities of the paper's Figs. 3 and 5).
  CHECK_ASSIGN(db, odb::Database::CreateInMemory("lab"));
  CHECK_OK(odb::BuildLabDatabase(db.get()));

  // 2. Start OdeView, register the class designers' display modules,
  //    and open the initial database window (Fig. 1).
  view::OdeViewApp app;
  CHECK_OK(dynlink::RegisterLabDisplayModules(app.repository(), "lab",
                                              db->schema()));
  CHECK_OK(app.AddDatabaseBorrowed(db.get()));
  CHECK_OK(app.OpenInitialWindow());

  // 3. Click the lab icon: a db-interactor opens the schema window
  //    (Fig. 2) with the crossing-minimized inheritance DAG.
  CHECK_ASSIGN(interactor, app.OpenDatabase("lab"));
  std::printf("schema DAG crossings: %llu\n",
              static_cast<unsigned long long>(
                  interactor->dag_view()->layout().crossings));

  // 4. Class information for employee (Fig. 3): superclasses,
  //    subclasses, and the object count.
  CHECK_OK(interactor->OpenClassInfo("employee"));
  CHECK_ASSIGN(subs, db->schema().DirectSubclasses("employee"));
  CHECK_ASSIGN(count, db->ClusterCount("employee"));
  std::printf("employee: %zu subclass(es), %llu objects in cluster\n",
              subs.size(), static_cast<unsigned long long>(count));

  // 5. Browse objects (Fig. 6): open the object set, step to the first
  //    employee, and open its text + picture displays.
  CHECK_ASSIGN(node, interactor->OpenObjectSet("employee"));
  CHECK_OK(node->Next());
  CHECK_OK(node->ToggleFormat("text"));
  CHECK_OK(node->ToggleFormat("picture"));
  CHECK_ASSIGN(current, node->Current());
  std::printf("current object: %s %s\n", current.class_name.c_str(),
              current.oid.ToString().c_str());

  // 6. Follow the dept reference (Fig. 7) and the department's
  //    employees set (Fig. 8).
  CHECK_ASSIGN(dept, node->FollowReference("dept"));
  CHECK_OK(dept->ToggleFormat("text"));
  CHECK_ASSIGN(colleagues, dept->FollowReferenceSet("employees"));
  CHECK_OK(colleagues->Next());

  // 7. Synchronized browsing (Figs. 9-10): sequencing the employee
  //    set refreshes the whole chain of windows.
  CHECK_OK(node->Next());
  CHECK_ASSIGN(dept_now, dept->Current());
  std::printf("after next: employee's department is %s\n",
              dept_now.value.FindField("name")->AsString().c_str());

  // 8. Render the screen the way the paper's figures show the session.
  std::printf("\n--- screen ---\n%s", app.Screenshot().c_str());
  return 0;
}
