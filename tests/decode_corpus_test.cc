/// Named regression tests for the crashers the fuzz harnesses found
/// (and the bug shapes fixed alongside them). Each case inlines the
/// exact hostile bytes so the regression runs on every toolchain and
/// build type — the same inputs also live as files under
/// `fuzz/corpus/` for the coverage-guided runs. See
/// docs/STATIC_ANALYSIS.md for the fuzzing workflow.

#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/access_log.h"
#include "common/coding.h"
#include "common/telemetry_http.h"
#include "odb/buffer_pool.h"
#include "odb/catalog.h"
#include "odb/ddl_parser.h"
#include "odb/heap_file.h"
#include "odb/object_record.h"
#include "odb/page.h"
#include "odb/pager.h"
#include "odb/predicate.h"
#include "odb/slotted_page.h"
#include "odb/value_codec.h"
#include "odb/wal.h"

namespace ode::odb {
namespace {

// --- value codec -------------------------------------------------------

// A struct tag followed by varint field count 2^60 and nothing else.
// Pre-fix, DecodeValue reserve()d the full forged count (~16 EiB of
// Field objects) before reading a single field — instant bad_alloc /
// OOM-kill on hostile input. The clamp bounds the reserve by the
// bytes actually remaining.
TEST(DecodeCorpusTest, ValueForgedStructFieldCount) {
  std::string bytes;
  bytes.push_back(6);  // ValueKind::kStruct
  PutVarint64(&bytes, uint64_t{1} << 60);
  Result<Value> value = DecodeValue(bytes);
  EXPECT_FALSE(value.ok());
}

// Same shape through the array path.
TEST(DecodeCorpusTest, ValueForgedArrayElementCount) {
  std::string bytes;
  bytes.push_back(7);  // ValueKind::kArray
  PutVarint64(&bytes, uint64_t{1} << 59);
  Result<Value> value = DecodeValue(bytes);
  EXPECT_FALSE(value.ok());
}

// --- object record -----------------------------------------------------

// Version plus a history count of 2^59 with no history bytes: the
// decode loop must fail on the missing first entry, not pre-size
// anything to the forged count.
TEST(DecodeCorpusTest, ObjectRecordForgedHistoryCount) {
  std::string bytes;
  PutVarint32(&bytes, 1);
  PutVarint64(&bytes, uint64_t{1} << 59);
  EXPECT_FALSE(DecodeObjectRecord(bytes).ok());
  EXPECT_FALSE(DecodeObjectRecordProjected(bytes, nullptr).ok());
}

// Mutation-fuzzer find: a record whose history interior is garbage
// (tag 0xc0 is no ValueKind) but whose framing is intact. The full
// decode rejects it; the projected decode skips history by length
// prefix without decoding it, so it accepts the record — that
// asymmetry is the documented projection contract, pinned here.
TEST(DecodeCorpusTest, ObjectRecordHistoryInteriorGarbage) {
  const unsigned char raw[] = {0x03, 0x02, 0x01, 0x02, 0x02, 0x14,
                               0x02, 0x02, 0xc0, 0x28, 0x02, 0x3c};
  std::string bytes(reinterpret_cast<const char*>(raw), sizeof(raw));
  EXPECT_FALSE(DecodeObjectRecord(bytes).ok());
  Result<ProjectedRecord> projected =
      DecodeObjectRecordProjected(bytes, nullptr);
  ASSERT_TRUE(projected.ok()) << projected.status().message();
  EXPECT_EQ(projected->version, 3u);
}

// --- slotted page ------------------------------------------------------

// Fuzzer crasher (fuzz/corpus/slotted_page/forged_slot_count): a page
// image claiming 65535 slots. The slot array for that count would be
// 256 KiB — 64x the page. Pre-fix, Get()/FreeSpace() walked the raw
// header count and read slot entries far off the page (SIGSEGV under
// the replay driver, heap-buffer-overflow under ASan). Accessors now
// clamp to kMaxSlotCount and Validate() rejects the image.
TEST(DecodeCorpusTest, SlottedPageForgedSlotCount) {
  Page page;
  page.Zero();
  page.bytes()[4] = static_cast<char>(0xff);  // slot_count = 0xffff
  page.bytes()[5] = static_cast<char>(0xff);
  SlottedPage sp(&page);
  EXPECT_FALSE(sp.Validate().ok());
  // The pre-fix crash sites: none of these may read off the page.
  EXPECT_FALSE(sp.Get(40000).ok());
  (void)sp.FreeSpace();
  (void)sp.ContiguousFreeSpace();
}

// A live slot whose [offset, offset+length) hangs past the usable
// page area: Validate() rejects it, and Get() re-checks the slot it
// touches even without a prior Validate().
TEST(DecodeCorpusTest, SlottedPageSlotPastEnd) {
  Page page;
  page.Zero();
  SlottedPage sp(&page);
  sp.Init();
  auto* bytes = page.bytes();
  bytes[4] = 1;  // slot_count = 1
  bytes[8] = 1;  // live_count = 1
  // slot 0: offset 4000, length 500 -> ends at 4500 > kPageUsableSize.
  bytes[SlottedPage::kHeaderSize] = static_cast<char>(4000 & 0xff);
  bytes[SlottedPage::kHeaderSize + 1] = static_cast<char>(4000 >> 8);
  bytes[SlottedPage::kHeaderSize + 2] = static_cast<char>(500 & 0xff);
  bytes[SlottedPage::kHeaderSize + 3] = static_cast<char>(500 >> 8);
  EXPECT_FALSE(sp.Validate().ok());
  Result<std::string_view> record = sp.Get(0);
  ASSERT_FALSE(record.ok());
  EXPECT_TRUE(record.status().IsCorruption());
}

// --- WAL recovery ------------------------------------------------------

std::string WalHeaderBytes() {
  std::string header;
  PutFixed64(&header, uint64_t{0x4f4445574c303155});  // kWalMagic
  PutFixed32(&header, 1);                             // version
  PutFixed32(&header, 0);                             // reserved
  PutFixed64(&header, 0);                             // base_lsn
  PutFixed32(&header, Crc32(std::string_view(header)));
  PutFixed32(&header, 0);  // pad
  return header;
}

std::string WalRecordBytes(uint8_t type, uint64_t txn,
                           const std::string& payload) {
  std::string rec;
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  rec.push_back(static_cast<char>(type));
  PutFixed64(&rec, txn);
  uint32_t crc = Crc32(std::string_view(rec).substr(4));
  crc = Crc32(payload, crc);
  PutFixed32(&rec, crc);
  rec += payload;
  return rec;
}

// A committed page image for page 2^31 in an empty database
// (fuzz/corpus/wal_replay/forged_page_id). Redo must refuse to grow
// the file toward a forged page id — pre-fix this attempted to
// materialize two billion pages (8 TiB) through the pager.
TEST(DecodeCorpusTest, WalRecoveryForgedPageIdRejected) {
  std::string image_payload;
  PutFixed32(&image_payload, uint32_t{1} << 31);
  image_payload.append(kPageSize, '\0');
  std::string log = WalHeaderBytes() +
                    WalRecordBytes(1, 3, image_payload) +
                    WalRecordBytes(2, 3, "");

  auto store = std::make_unique<MemWalStore>();
  ASSERT_TRUE(store->Append(log).ok());
  MemPager pager;
  WalRecoveryStats stats;
  auto wal =
      Wal::OpenAndRecover(std::move(store), &pager, WalOptions{}, &stats);
  EXPECT_FALSE(wal.ok());
  EXPECT_EQ(pager.page_count(), 0u) << "recovery must not grow the file";
}

// The same forged-page-id log parses fine as bytes: Inspect() is the
// pure scan and takes no position on page ids.
TEST(DecodeCorpusTest, WalInspectAcceptsForgedPageId) {
  std::string image_payload;
  PutFixed32(&image_payload, uint32_t{1} << 31);
  image_payload.append(kPageSize, '\0');
  std::string log = WalHeaderBytes() +
                    WalRecordBytes(1, 3, image_payload) +
                    WalRecordBytes(2, 3, "");
  auto records = Wal::Inspect(log);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

// --- heap chain --------------------------------------------------------

// Two pages whose next_page pointers form a cycle. Pre-fix,
// HeapFile::Open's chain walk looped forever; it now fails with
// Corruption naming the revisited page.
TEST(DecodeCorpusTest, HeapChainCycleDetected) {
  MemPager pager;
  Page page;
  for (int i = 0; i < 2; ++i) {
    page.Zero();
    SlottedPage sp(&page);
    sp.Init();
    sp.set_next_page(i == 0 ? 1 : 0);  // 0 -> 1 -> 0
    auto id = pager.Allocate();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(pager.Write(*id, page).ok());
  }
  BufferPool pool(&pager, /*capacity=*/8);
  FreeList free_list(&pool, kNoPage);
  auto heap = HeapFile::Open(&pool, &free_list, /*first_page=*/0);
  ASSERT_FALSE(heap.ok());
  EXPECT_TRUE(heap.status().IsCorruption());
}

}  // namespace
}  // namespace ode::odb

namespace ode::obs {
namespace {

// --- ODEACC01 access trace --------------------------------------------

// A frame length claiming 2^31 bytes in a 30-byte file: the reader
// must treat it as a torn tail, not trust the length.
TEST(DecodeCorpusTest, AccessTraceLyingFrameLength) {
  std::string bytes = "ODEACC01";
  PutFixed32(&bytes, uint32_t{1} << 31);
  bytes.append(18, '\0');
  auto trace = ParseAccessTrace(bytes);
  ASSERT_TRUE(trace.ok()) << trace.status().message();
  EXPECT_TRUE(trace->records.empty());
  EXPECT_GT(trace->torn_tail_bytes, 0u);
}

// A well-CRC'd frame whose interior is a truncated event record: the
// frame passes the checksum but the record decode must fail cleanly.
TEST(DecodeCorpusTest, AccessTraceTornEventInsideValidFrame) {
  std::string payload;
  payload.push_back(2);  // kCaptureEvent
  payload.push_back(0);  // op varint
  payload.push_back(static_cast<char>(0xff));  // cut mid-varint
  std::string bytes = "ODEACC01";
  PutFixed32(&bytes, static_cast<uint32_t>(payload.size()));
  bytes += payload;
  PutFixed32(&bytes, Crc32(payload));
  EXPECT_FALSE(ParseAccessTrace(bytes).ok());
}

// --- telemetry HTTP ----------------------------------------------------

TEST(DecodeCorpusTest, RequestPathParsesAndDefaults) {
  EXPECT_EQ(ParseRequestPath("GET /metrics HTTP/1.0\r\n"), "/metrics");
  EXPECT_EQ(ParseRequestPath("GET /healthz HTTP/1.1\r\nHost: x\r\n"),
            "/healthz");
  // Degenerate request lines all fall back to "/" (never empty, never
  // a view outside the input).
  EXPECT_EQ(ParseRequestPath(""), "/");
  EXPECT_EQ(ParseRequestPath("GARBAGE\r\n"), "/");
  EXPECT_EQ(ParseRequestPath("   \r\n"), "/");
  EXPECT_EQ(ParseRequestPath("GET  HTTP/1.0\r\n"), "/");
  EXPECT_EQ(ParseRequestPath(std::string("GET /\x00x HTTP/1.0\r\n", 19)),
            std::string("/\x00x", 3));
}

}  // namespace
}  // namespace ode::obs

namespace ode::odb {
namespace {

// --- DDL / predicate depth caps ---------------------------------------

// 600 levels of set< nesting: pre-fix this recursed once per level
// and overflowed the stack; now it fails at the documented cap.
TEST(DecodeCorpusTest, DdlDeepTypeNestingRejected) {
  std::string source = "class T { ";
  for (int i = 0; i < 600; ++i) source += "set<";
  source += "int";
  source.append(600, '>');
  source += " x; };";
  EXPECT_FALSE(ParseSchema(source).ok());
}

// Nesting inside the cap still parses.
TEST(DecodeCorpusTest, DdlModerateTypeNestingAccepted) {
  std::string source = "class T { set<set<set<array<int, 4>>>> x; };";
  auto schema = ParseSchema(source);
  ASSERT_TRUE(schema.ok()) << schema.status().message();
}

// 4000 parens around a comparison: the predicate parser's cap turns a
// stack overflow into InvalidArgument.
TEST(DecodeCorpusTest, PredicateDeepParensRejected) {
  std::string text(4000, '(');
  text += "a == 1";
  text.append(4000, ')');
  EXPECT_FALSE(ParsePredicate(text).ok());
}

TEST(DecodeCorpusTest, PredicateModerateNestingAccepted) {
  std::string text = "!(!(a == 1 && (b > 2 || !(c != 3))))";
  auto predicate = ParsePredicate(text);
  ASSERT_TRUE(predicate.ok()) << predicate.status().message();
}

}  // namespace
}  // namespace ode::odb
