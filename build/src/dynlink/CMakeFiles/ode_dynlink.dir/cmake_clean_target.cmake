file(REMOVE_RECURSE
  "libode_dynlink.a"
)
