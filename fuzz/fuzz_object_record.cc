/// Fuzzes the object-record codec, full and projected: the framing
/// that wraps every stored object (version, history entries, current
/// value). The invariant is one-way: any record the full decode
/// accepts, the projected decode must also accept, agreeing on the
/// version. (The converse does not hold by design — projection skips
/// history entries by their length prefix without decoding their
/// interior, so corruption confined to history bytes only fails the
/// full decode.)

#include <cstdint>
#include <string_view>

#include "odb/object_record.h"

using ode::Result;
using ode::odb::DecodeObjectRecord;
using ode::odb::DecodeObjectRecordProjected;
using ode::odb::ObjectRecord;
using ode::odb::ProjectedRecord;
using ode::odb::ProjectionMask;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  Result<ObjectRecord> full = DecodeObjectRecord(bytes);

  // Unmasked projected decode (null mask = keep everything).
  Result<ProjectedRecord> projected =
      DecodeObjectRecordProjected(bytes, nullptr);

  // A masked decode exercises the skip paths over history and
  // unselected top-level struct fields.
  ProjectionMask mask = ProjectionMask::Of({"name", "dept"});
  Result<ProjectedRecord> masked = DecodeObjectRecordProjected(bytes, &mask);

  if (full.ok()) {
    if (!projected.ok() || !masked.ok()) __builtin_trap();
    if (full->version != projected->version ||
        full->version != masked->version) {
      __builtin_trap();
    }
  }
  return 0;
}
