# Empty compiler generated dependencies file for bench_fig04_class_def.
# This may be replaced when dependencies are built.
