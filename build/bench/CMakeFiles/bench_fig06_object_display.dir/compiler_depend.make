# Empty compiler generated dependencies file for bench_fig06_object_display.
# This may be replaced when dependencies are built.
