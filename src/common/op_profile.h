#ifndef ODEVIEW_COMMON_OP_PROFILE_H_
#define ODEVIEW_COMMON_OP_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/threading.h"

namespace ode::obs {

/// A plain (non-atomic) snapshot of one operation's resource charges —
/// what EXPLAIN ANALYZE, the slow-op ring, and the session inspector
/// all render.
struct OpProfileStats {
  // Buffer pool (storage layer).
  uint64_t pool_lookups = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;  ///< pages read into the pool for this op
  // Pager I/O (page reads/writes that reached the backend).
  uint64_t pager_reads = 0;
  uint64_t pager_writes = 0;
  // Heap layer.
  uint64_t heap_records = 0;  ///< records served by the batch read paths
  uint64_t arena_bytes = 0;   ///< raw record bytes appended to scan arenas
  // Clustering / prefetch.
  uint64_t cluster_prefetches = 0;  ///< affinity read-ahead pages issued
  // Executor.
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t rows_skipped_decode = 0;  ///< attribute decodes avoided
  uint64_t predicate_evals = 0;
  uint64_t batches = 0;
  uint64_t partitions = 0;
  uint64_t join_build_rows = 0;
  uint64_t join_probe_rows = 0;
  uint64_t join_pairs = 0;
  // Waits.
  uint64_t lock_wait_ns = 0;        ///< blocking time in ranked mutexes
  uint64_t wal_commit_wait_ns = 0;  ///< group-commit / fsync waits
  uint64_t wal_bytes_logged = 0;    ///< WAL payload bytes appended

  OpProfileStats& operator+=(const OpProfileStats& other);
};

/// Appends `s` as a flat JSON object body (no surrounding braces) —
/// the shared rendering behind `/sessions`, `/slow`, and EXPLAIN
/// ANALYZE's JSON output. `pool_misses` is exported as "pages_read".
void AppendOpProfileStatsJson(std::ostringstream& os, const OpProfileStats& s);

/// The per-operation profiling context every engine layer charges into.
///
/// All fields are relaxed atomics: one profile may be charged from many
/// threads at once (parallel scan partitions adopt the caller's profile
/// exactly like they adopt its `TraceContext`). Charge sites pay one
/// thread-local pointer test when no profile is attached — the
/// `CurrentOpProfile()` null check — and a handful of relaxed adds when
/// one is.
class OpProfile {
 public:
  OpProfile() = default;
  OpProfile(const OpProfile&) = delete;
  OpProfile& operator=(const OpProfile&) = delete;

  // --- Charge helpers (relaxed; callable from any thread) -------------
  void ChargePoolFetch(bool hit) {
    pool_lookups_.fetch_add(1, std::memory_order_relaxed);
    (hit ? pool_hits_ : pool_misses_).fetch_add(1, std::memory_order_relaxed);
  }
  void ChargePagerRead() {
    pager_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void ChargePagerWrite() {
    pager_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  void ChargeHeapBatch(uint64_t records, uint64_t bytes) {
    heap_records_.fetch_add(records, std::memory_order_relaxed);
    arena_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void ChargeClusterPrefetch(uint64_t pages) {
    cluster_prefetches_.fetch_add(pages, std::memory_order_relaxed);
  }
  void ChargeScan(uint64_t scanned, uint64_t matched, uint64_t skipped,
                  uint64_t evals, uint64_t batches, uint64_t partitions) {
    rows_scanned_.fetch_add(scanned, std::memory_order_relaxed);
    rows_matched_.fetch_add(matched, std::memory_order_relaxed);
    rows_skipped_decode_.fetch_add(skipped, std::memory_order_relaxed);
    predicate_evals_.fetch_add(evals, std::memory_order_relaxed);
    batches_.fetch_add(batches, std::memory_order_relaxed);
    partitions_.fetch_add(partitions, std::memory_order_relaxed);
  }
  void ChargeJoin(uint64_t build, uint64_t probe, uint64_t pairs) {
    join_build_rows_.fetch_add(build, std::memory_order_relaxed);
    join_probe_rows_.fetch_add(probe, std::memory_order_relaxed);
    join_pairs_.fetch_add(pairs, std::memory_order_relaxed);
  }
  void ChargeLockWait(uint64_t ns) {
    lock_wait_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void ChargeWalCommitWait(uint64_t ns) {
    wal_commit_wait_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void ChargeWalBytes(uint64_t bytes) {
    wal_bytes_logged_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// A consistent-enough copy (relaxed loads; concurrent charges may or
  /// may not be included — totals of a finished op are exact).
  OpProfileStats Snapshot() const;

  /// Adds this profile's current charges into `dest` (relaxed adds).
  void MergeInto(OpProfile* dest) const;

 private:
  std::atomic<uint64_t> pool_lookups_{0};
  std::atomic<uint64_t> pool_hits_{0};
  std::atomic<uint64_t> pool_misses_{0};
  std::atomic<uint64_t> pager_reads_{0};
  std::atomic<uint64_t> pager_writes_{0};
  std::atomic<uint64_t> heap_records_{0};
  std::atomic<uint64_t> arena_bytes_{0};
  std::atomic<uint64_t> cluster_prefetches_{0};
  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_matched_{0};
  std::atomic<uint64_t> rows_skipped_decode_{0};
  std::atomic<uint64_t> predicate_evals_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> partitions_{0};
  std::atomic<uint64_t> join_build_rows_{0};
  std::atomic<uint64_t> join_probe_rows_{0};
  std::atomic<uint64_t> join_pairs_{0};
  std::atomic<uint64_t> lock_wait_ns_{0};
  std::atomic<uint64_t> wal_commit_wait_ns_{0};
  std::atomic<uint64_t> wal_bytes_logged_{0};
};

/// The calling thread's attached profile (nullptr = profiling off —
/// the near-zero-cost common case every charge site tests first).
OpProfile* CurrentOpProfile();

/// The session id of the `ProfiledOp` currently running on the calling
/// thread (0 = none / not session-bound). The access recorder stamps
/// this into its events, the same way journal records stamp the
/// thread's trace context.
uint64_t CurrentSessionId();

/// Installs `profile` as the calling thread's current profile for the
/// scope's lifetime, restoring the previous one on destruction. Used
/// both to *attach* a profile on the initiating thread and to *adopt*
/// the initiator's profile on a worker thread (capture
/// `CurrentOpProfile()` before spawning, adopt inside the worker —
/// the exact `TraceContextScope` pattern). Installing nullptr is legal
/// and turns profiling off for the scope.
class OpProfileScope {
 public:
  explicit OpProfileScope(OpProfile* profile);
  ~OpProfileScope();

  OpProfileScope(const OpProfileScope&) = delete;
  OpProfileScope& operator=(const OpProfileScope&) = delete;

 private:
  OpProfile* prev_;
};

/// One live session as the inspector sees it. `current_op` is a
/// pointer to a string with static storage duration (same contract as
/// journal details) or nullptr when the session is idle.
class SessionEntry {
 public:
  SessionEntry(uint64_t session_id, uint64_t trace_id, uint64_t opened_ns)
      : session_id_(session_id), trace_id_(trace_id), opened_ns_(opened_ns) {}

  uint64_t session_id() const { return session_id_; }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t opened_ns() const { return opened_ns_; }
  OpProfile& totals() { return totals_; }
  const OpProfile& totals() const { return totals_; }

  void BeginOp(const char* name, uint64_t now_ns) {
    op_started_ns_.store(now_ns, std::memory_order_relaxed);
    current_op_.store(name, std::memory_order_release);
  }
  void EndOp(uint64_t duration_ns) {
    current_op_.store(nullptr, std::memory_order_release);
    ops_completed_.fetch_add(1, std::memory_order_relaxed);
    busy_ns_.fetch_add(duration_ns, std::memory_order_relaxed);
  }

  /// Current op name (nullptr = idle) and when it started.
  const char* current_op() const {
    return current_op_.load(std::memory_order_acquire);
  }
  uint64_t op_started_ns() const {
    return op_started_ns_.load(std::memory_order_relaxed);
  }
  uint64_t ops_completed() const {
    return ops_completed_.load(std::memory_order_relaxed);
  }
  uint64_t busy_ns() const {
    return busy_ns_.load(std::memory_order_relaxed);
  }

 private:
  const uint64_t session_id_;
  const uint64_t trace_id_;
  const uint64_t opened_ns_;
  OpProfile totals_;
  std::atomic<const char*> current_op_{nullptr};
  std::atomic<uint64_t> op_started_ns_{0};
  std::atomic<uint64_t> ops_completed_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

/// Process-wide directory of open sessions, the `/sessions` endpoint's
/// data source. Lives obs-side (not in the engine) so the telemetry
/// endpoint keeps its "registry data only" separation: the engine
/// registers/unregisters entries, the inspector only reads them.
class SessionRegistry {
 public:
  static SessionRegistry& Global();

  SessionRegistry() = default;
  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  std::shared_ptr<SessionEntry> Register(uint64_t session_id,
                                         uint64_t trace_id);
  void Unregister(uint64_t session_id);

  /// Open sessions, id-ascending.
  std::vector<std::shared_ptr<SessionEntry>> Snapshot() const;
  size_t size() const;

  /// JSON array: one object per open session with its current op,
  /// trace id, and cumulative resource totals.
  std::string RenderJson() const;

 private:
  mutable Mutex mu_{LockRank::kSessionRegistry};
  std::map<uint64_t, std::shared_ptr<SessionEntry>> sessions_
      ODE_GUARDED_BY(mu_);
};

/// One parked slow operation.
struct SlowOpRecord {
  uint64_t seq = 0;  ///< 1-based; monotonically increasing
  uint64_t ts_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t session_id = 0;  ///< 0 = not session-bound
  uint64_t trace_id = 0;
  const char* op = nullptr;  ///< static storage duration
  OpProfileStats stats;
};

/// Bounded overwrite ring of full profiles for operations that ran
/// longer than the configured threshold — the `/slow` endpoint's data
/// source. Recording is off the hot path (only ops already past the
/// threshold pay the mutex), so a plain lock-guarded ring suffices.
class SlowOpLog {
 public:
  static constexpr size_t kCapacity = 128;
  /// Default threshold: 50 ms. 0 disables slow-op capture entirely.
  static constexpr uint64_t kDefaultThresholdNs = 50'000'000;

  static SlowOpLog& Global();

  SlowOpLog() = default;
  SlowOpLog(const SlowOpLog&) = delete;
  SlowOpLog& operator=(const SlowOpLog&) = delete;

  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }
  void set_threshold_ns(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Parks one record (oldest entry overwritten when full) and appends
  /// a `slow_op` journal record. Callers check the threshold first.
  void Record(const char* op, uint64_t session_id, uint64_t trace_id,
              uint64_t duration_ns, const OpProfileStats& stats);

  /// Records ever parked (including overwritten ones).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// The retained tail, oldest first.
  std::vector<SlowOpRecord> Snapshot() const;

  /// JSON array, oldest first.
  std::string RenderJson() const;

  void ResetForTest();

 private:
  std::atomic<uint64_t> threshold_ns_{kDefaultThresholdNs};
  std::atomic<uint64_t> recorded_{0};
  mutable Mutex mu_{LockRank::kSlowOpLog};
  std::vector<SlowOpRecord> ring_ ODE_GUARDED_BY(mu_);  ///< ring, wraps
  size_t next_ ODE_GUARDED_BY(mu_) = 0;
};

/// RAII around one profiled operation: installs a fresh `OpProfile`
/// for the scope, and on destruction
///  * merges the charges into the enclosing profile (if any), so
///    nested ops aggregate upward,
///  * merges them into `session->totals()` and stamps the session's
///    current-op state (when a session entry is given), and
///  * parks the full profile in the `SlowOpLog` when the op ran longer
///    than the threshold.
/// `op_name` must have static storage duration.
class ProfiledOp {
 public:
  ProfiledOp(SessionEntry* session, const char* op_name);
  explicit ProfiledOp(const char* op_name) : ProfiledOp(nullptr, op_name) {}
  ~ProfiledOp();

  ProfiledOp(const ProfiledOp&) = delete;
  ProfiledOp& operator=(const ProfiledOp&) = delete;

  OpProfile* profile() { return &profile_; }
  uint64_t start_ns() const { return start_ns_; }

 private:
  OpProfile profile_;
  OpProfile* parent_;  ///< enclosing profile at construction (may be null)
  SessionEntry* session_;
  const char* op_name_;
  uint64_t start_ns_;
  uint64_t prev_session_id_;  ///< thread's session id before this op
  OpProfileScope scope_;  ///< installs &profile_; last member: first out
};

}  // namespace ode::obs

#endif  // ODEVIEW_COMMON_OP_PROFILE_H_
