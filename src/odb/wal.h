#ifndef ODEVIEW_ODB_WAL_H_
#define ODEVIEW_ODB_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading.h"
#include "odb/page.h"
#include "odb/pager.h"

namespace ode::odb {

/// The write-ahead log (DESIGN.md §10 "Durability").
///
/// Physical redo logging with a no-steal buffer policy: every page a
/// write transaction dirties is captured as a full after-image record
/// when its handle is released, a commit record seals the transaction,
/// and group commit batches the fsyncs of concurrent committers. The
/// buffer pool never writes a page to the data file before (a) its
/// transaction committed and (b) the log is durable up to the page's
/// LSN — so restart recovery only ever needs to *redo* committed
/// transactions (losers never reached the data file and, because write
/// transactions are serialized by `Database::wal_txn_mu_`, they are
/// always a strict suffix of the log).
///
/// LSNs are logical byte positions: `base_lsn` of the current log file
/// plus the record's end offset. They survive checkpoints (a reset
/// starts the new file at the old `next_lsn`), so page-LSN trailers
/// stay monotonic for the life of the database.

/// Byte-level backend of the log. All mutating calls are serialized by
/// the owning `Wal`; `size()` may race them (tracked atomically).
/// Split out so failure-injection tests can substitute a store whose
/// `Sync()` fails or that models a power-loss durable prefix.
class WalStore {
 public:
  virtual ~WalStore() = default;
  /// Appends bytes at the current end of the log.
  virtual Status Append(std::string_view bytes) = 0;
  /// Makes all appended bytes durable.
  virtual Status Sync() = 0;
  /// The entire log contents (recovery scan).
  virtual Result<std::string> ReadAll() = 0;
  /// Replaces the log with just `header` and makes that durable.
  virtual Status Reset(std::string_view header) = 0;
  /// Drops everything past `size` (torn-tail truncation).
  virtual Status TruncateTo(uint64_t size) = 0;
  virtual uint64_t size() const = 0;
};

/// File-descriptor backed store (the real one).
class FdWalStore final : public WalStore {
 public:
  static Result<std::unique_ptr<FdWalStore>> Open(const std::string& path);
  ~FdWalStore() override;

  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Result<std::string> ReadAll() override;
  Status Reset(std::string_view header) override;
  Status TruncateTo(uint64_t size) override;
  uint64_t size() const override {
    return size_.load(std::memory_order_acquire);
  }

 private:
  FdWalStore(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  int fd_;
  std::atomic<uint64_t> size_;
  std::string path_;
};

/// In-memory store with a power-loss model for tests: `Sync()` rolls
/// the durable watermark forward (or fails when a failure budget is
/// armed), and `durable_bytes()` is what a crash would leave behind.
class MemWalStore final : public WalStore {
 public:
  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Result<std::string> ReadAll() override;
  Status Reset(std::string_view header) override;
  Status TruncateTo(uint64_t size) override;
  uint64_t size() const override;

  /// When true every `Sync()` fails (appends still succeed).
  void set_fail_syncs(bool fail);
  /// The durable prefix — what survives a simulated power loss.
  std::string durable_bytes() const;
  /// The full volatile contents (synced or not).
  std::string contents() const;

 private:
  /// Rank kWalStore (78): the owning `Wal` serializes every mutating
  /// call under rank 75, so this only ever nests directly beneath it
  /// (and above nothing — store calls never call out).
  mutable Mutex mu_{LockRank::kWalStore};
  std::string bytes_ ODE_GUARDED_BY(mu_);
  uint64_t synced_ ODE_GUARDED_BY(mu_) = 0;
  bool fail_syncs_ ODE_GUARDED_BY(mu_) = false;
};

struct WalOptions {
  /// When false, `Sync()` is never called and every append is treated
  /// as durable immediately (throughput over durability; tests).
  bool sync = true;
  /// Group commit: a committer whose LSN another session's fsync
  /// already covered returns without syncing. When false every commit
  /// performs its own fsync (the bench baseline).
  bool group_commit = true;
};

enum class WalRecordType : uint8_t {
  kPageImage = 1,  ///< payload: page id u32 + full page image
  kCommit = 2,     ///< seals `txn`
  kCheckpoint = 3, ///< reserved marker (recovery treats it as a no-op)
};

/// One scanned record (tooling/test hook, see `Wal::Inspect`).
struct WalRecordInfo {
  uint64_t offset = 0;   ///< file offset of the record start
  uint64_t end_offset = 0;  ///< file offset just past the record
  WalRecordType type = WalRecordType::kCheckpoint;
  uint64_t txn = 0;
  PageId page = kNoPage;  ///< only for kPageImage
};

/// What restart recovery found and did.
struct WalRecoveryStats {
  uint64_t scanned_bytes = 0;
  uint64_t records = 0;
  uint64_t committed_txns = 0;
  uint64_t pages_redone = 0;
  uint64_t torn_bytes = 0;  ///< invalid tail dropped (0 = clean log)
};

class Wal {
 public:
  /// Fixed log-file header: magic u64 | version u32 | reserved u32 |
  /// base_lsn u64 | crc u32 | pad u32.
  static constexpr size_t kHeaderSize = 32;
  /// Per-record header: payload_len u32 | type u8 | txn u64 | crc u32.
  static constexpr size_t kRecordHeaderSize = 17;

  /// Creates a fresh (truncated) log at `path`.
  static Result<std::unique_ptr<Wal>> Create(const std::string& path,
                                             const WalOptions& options);
  /// Opens the log at `path`, truncates any torn tail, replays every
  /// committed transaction into `pager` (ARIES analysis + redo; undo
  /// is vacuous under no-steal), syncs the pager, and resets the log.
  static Result<std::unique_ptr<Wal>> OpenAndRecover(
      const std::string& path, Pager* pager, const WalOptions& options,
      WalRecoveryStats* stats = nullptr);

  /// Store-injected variants (failure-injection and fuzz tests).
  static Result<std::unique_ptr<Wal>> Create(std::unique_ptr<WalStore> store,
                                             const WalOptions& options);
  static Result<std::unique_ptr<Wal>> OpenAndRecover(
      std::unique_ptr<WalStore> store, Pager* pager,
      const WalOptions& options, WalRecoveryStats* stats = nullptr);

  /// Parses raw log bytes (header + records) up to the first invalid
  /// record. Never fails on a torn tail — it just stops there; a
  /// missing/corrupt header yields an empty vector.
  static Result<std::vector<WalRecordInfo>> Inspect(std::string_view bytes);

  /// Allocates a transaction id (process-monotonic).
  uint64_t BeginTxn() { return next_txn_.fetch_add(1); }

  /// Appends a full-page after-image for `txn`, stamping the record's
  /// end LSN into the page's trailer first (so the image carries its
  /// own LSN). Returns the end LSN. Caller holds the frame's exclusive
  /// latch.
  Result<uint64_t> AppendPageImage(uint64_t txn, PageId page_id, Page* page);

  /// Appends the commit record for `txn` (does not wait for
  /// durability — pair with `WaitCommitDurable`).
  Result<uint64_t> AppendCommit(uint64_t txn);

  /// Blocks until the log is durable up to `lsn`. Group commit: the
  /// first waiter becomes the leader and fsyncs with the mutex
  /// dropped; later waiters covered by that fsync return without
  /// syncing. With `group_commit` off each commit syncs itself.
  Status WaitCommitDurable(uint64_t lsn);

  /// WAL-before-data gate for the buffer pool: make the log durable up
  /// to `lsn` before a page with that LSN may be written back.
  Status FlushUntil(uint64_t lsn);

  /// Truncates the log to an empty file based at the current
  /// `next_lsn`. Caller contract (checkpoint phase 2): no write
  /// transaction in flight, every committed page flushed to the data
  /// file, and the data file synced.
  Status ResetLog();

  uint64_t next_lsn() const;
  uint64_t durable_lsn() const;
  /// Current log file size in bytes.
  uint64_t size_bytes() const { return store_->size(); }
  /// File offset of the durable watermark (crash-harness hook: bytes
  /// beyond this offset may legally be lost by a power cut).
  uint64_t durable_file_bytes() const;

  const WalOptions& options() const { return options_; }
  WalStore* store() { return store_.get(); }

 private:
  Wal(std::unique_ptr<WalStore> store, const WalOptions& options,
      uint64_t base_lsn);

  Result<uint64_t> AppendLocked(WalRecordType type, uint64_t txn,
                                std::string_view payload)
      ODE_REQUIRES(mu_);
  Status WaitDurableInternal(uint64_t target, bool force_own_sync);

  std::unique_ptr<WalStore> store_;
  const WalOptions options_;
  std::atomic<uint64_t> next_txn_{1};

  /// Rank kWal (75): above frame latches and pool shards (eviction
  /// gates on durability from inside a shard), below the pager. Never
  /// held across an fsync — the flush leader drops it first.
  mutable Mutex mu_{LockRank::kWal};
  CondVar flushed_cv_;
  uint64_t base_lsn_ ODE_GUARDED_BY(mu_);
  uint64_t next_lsn_ ODE_GUARDED_BY(mu_);
  uint64_t durable_lsn_ ODE_GUARDED_BY(mu_);
  bool flushing_ ODE_GUARDED_BY(mu_) = false;
};

/// Flag pair of one captured buffer frame (the pool registers these
/// with the current transaction scope; commit publishes through them).
struct WalFrameRef {
  std::atomic<uint64_t>* page_lsn;
  std::atomic<bool>* uncommitted;
};

/// RAII write-transaction scope. While one is current (thread-local),
/// the buffer pool captures every dirtied page it releases into the
/// WAL under this scope's transaction id. The scope holds the
/// database's write-transaction mutex (`txn_mu`, rank kWalTxn) from
/// construction until the commit record is appended — serializing
/// writers so uncommitted transactions are always a strict log suffix
/// — and releases it before waiting on the group-commit fsync, so the
/// next writer proceeds while this one waits for the disk.
///
/// `Commit()` appends the commit record, marks the captured frames
/// flushable, and waits for durability. A scope destroyed without
/// `Commit()` (an error path after pages were already dirtied) is
/// *finalized*: the commit record is appended but not awaited — the
/// in-memory mutation already happened, so crash atomicity is only
/// guaranteed per successfully-committed operation.
///
/// With `wal == nullptr` (in-memory databases) the scope is a no-op.
class WalTransactionScope {
 public:
  WalTransactionScope(Wal* wal, Mutex* txn_mu) ODE_NO_THREAD_SAFETY_ANALYSIS;
  ~WalTransactionScope() ODE_NO_THREAD_SAFETY_ANALYSIS;

  WalTransactionScope(const WalTransactionScope&) = delete;
  WalTransactionScope& operator=(const WalTransactionScope&) = delete;

  Status Commit() ODE_NO_THREAD_SAFETY_ANALYSIS;

  /// The calling thread's innermost active scope (nullptr outside any).
  static WalTransactionScope* Current();

  Wal* wal() const { return wal_; }
  uint64_t txn_id() const { return txn_; }
  bool has_captures() const { return !frames_.empty(); }

  /// Called by the buffer pool after appending a page image.
  void RecordCapturedFrame(const WalFrameRef& ref) { frames_.push_back(ref); }
  /// Called by the buffer pool when an image append failed; poisons
  /// the scope so Commit reports the error.
  void NoteCaptureFailure(const Status& status) {
    if (capture_error_.ok()) capture_error_ = status;
  }

 private:
  void ReleaseTxnMutex() ODE_NO_THREAD_SAFETY_ANALYSIS;
  /// Clears the frames' uncommitted flags and raises their flush gate
  /// to the commit LSN (a page may then only reach the data file once
  /// its whole transaction is durable).
  void PublishFrames(uint64_t commit_lsn);

  Wal* wal_;
  Mutex* txn_mu_;
  bool mu_held_ = false;
  uint64_t txn_ = 0;
  std::vector<WalFrameRef> frames_;
  Status capture_error_;
  bool committed_ = false;
  WalTransactionScope* prev_ = nullptr;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_WAL_H_
