/// Database::Recluster — the online plan applicator. Lives in the
/// cluster/ subsystem (not database.cc) so the odb core never includes
/// a cluster header; being a member definition it still has full
/// access to the database's locking and WAL machinery.

#include <cstdint>
#include <string>
#include <vector>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/status.h"
#include "odb/cluster/plan.h"
#include "odb/database.h"
#include "odb/wal.h"

namespace ode::odb {
namespace {

obs::Counter& ReorgRuns() {
  static obs::Counter* counter =
      obs::Registry::Global().counter("cluster.reorg.runs");
  return *counter;
}

obs::Counter& ReorgMoves() {
  static obs::Counter* counter =
      obs::Registry::Global().counter("cluster.reorg.moves");
  return *counter;
}

}  // namespace

Status Database::Recluster(const cluster::ClusterPlan& plan) {
  // Shared, not exclusive: a recluster runs beside readers (lookups go
  // via the heap directory, which RelocateRecord updates under the
  // heap's writer lock) and beside writers (ordinary DML serializes on
  // the same WAL transaction mutex each group takes below).
  ReaderMutexLock lock(schema_mu_);
  uint64_t total_applied = 0;
  for (const cluster::ClusterPlanEntry& entry : plan.clusters) {
    const char* label = obs::Journal::InternLabel(entry.class_name);
    uint64_t planned = 0;
    for (const cluster::PageGroup& group : entry.groups) {
      planned += group.members.size();
    }
    obs::Journal::Global().Append(obs::JournalEvent::kReclusterStart,
                                  static_cast<int64_t>(planned), 0, label);
    ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(entry.cluster));
    uint64_t applied = 0;
    for (const cluster::PageGroup& group : entry.groups) {
      // One WAL transaction per page group: every relocation inside it
      // (insert-on-target + tombstone) is covered by full-page redo
      // images, so a kill -9 recovers to a group boundary — records
      // are never duplicated or lost, only partially-regrouped.
      WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
      ODE_ASSIGN_OR_RETURN(PageId target, heap->AllocateTailPage());
      for (uint64_t local_id : group.members) {
        Status moved = heap->RelocateRecord(local_id, target);
        if (moved.ok()) {
          ++applied;
          continue;
        }
        // Deleted since the plan was built: stale entry, skip.
        if (moved.code() == StatusCode::kNotFound) continue;
        // Target filled up (records grew since planning): spill the
        // rest of the group onto a fresh page and retry once.
        if (moved.code() == StatusCode::kOutOfRange) {
          ODE_ASSIGN_OR_RETURN(target, heap->AllocateTailPage());
          Status retried = heap->RelocateRecord(local_id, target);
          if (retried.ok()) {
            ++applied;
            continue;
          }
          if (retried.code() == StatusCode::kNotFound) continue;
          moved = retried;
        }
        obs::Journal::Global().Append(obs::JournalEvent::kReclusterEnd,
                                      static_cast<int64_t>(applied), 1,
                                      label);
        return moved;
      }
      ODE_RETURN_IF_ERROR(txn.Commit());
    }
    obs::Journal::Global().Append(obs::JournalEvent::kReclusterEnd,
                                  static_cast<int64_t>(applied), 0, label);
    total_applied += applied;
  }
  if (total_applied != 0) BumpMutationEpoch();
  ReorgRuns().Increment();
  ReorgMoves().Add(total_applied);
  return MaybeCheckpointLocked();
}

}  // namespace ode::odb
