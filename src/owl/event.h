#ifndef ODEVIEW_OWL_EVENT_H_
#define ODEVIEW_OWL_EVENT_H_

#include <cstdint>
#include <string>

#include "owl/geometry.h"

namespace ode::owl {

/// Window identifier assigned by the `Server`.
using WindowId = uint32_t;
inline constexpr WindowId kNoWindow = 0;

/// Kinds of events the headless server delivers.
enum class EventType : uint8_t {
  kMouseClick = 0,  ///< click at a position inside a window
  kKeyPress,        ///< a key (with optional text payload)
  kExpose,          ///< window needs repainting
  kCloseRequest,    ///< user asked to close the window
  kScroll,          ///< scroll wheel: delta in `amount`
};

/// One input event, addressed to a window.
struct Event {
  EventType type = EventType::kExpose;
  WindowId window = kNoWindow;
  Point position;      ///< kMouseClick / kScroll: window-local coords
  int amount = 0;      ///< kScroll delta (positive = down)
  std::string text;    ///< kKeyPress payload

  static Event MouseClick(WindowId window, Point position) {
    Event e;
    e.type = EventType::kMouseClick;
    e.window = window;
    e.position = position;
    return e;
  }
  static Event KeyPress(WindowId window, std::string text) {
    Event e;
    e.type = EventType::kKeyPress;
    e.window = window;
    e.text = std::move(text);
    return e;
  }
  static Event Scroll(WindowId window, Point position, int amount) {
    Event e;
    e.type = EventType::kScroll;
    e.window = window;
    e.position = position;
    e.amount = amount;
    return e;
  }
  static Event CloseRequest(WindowId window) {
    Event e;
    e.type = EventType::kCloseRequest;
    e.window = window;
    return e;
  }
};

}  // namespace ode::owl

#endif  // ODEVIEW_OWL_EVENT_H_
