#ifndef ODEVIEW_DAG_LAYOUT_H_
#define ODEVIEW_DAG_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dag/digraph.h"

namespace ode::dag {

/// Crossing-minimization strategy for the ordering phase.
enum class OrderingMethod {
  kNone,        ///< initial DFS order only (the ablation baseline)
  kBarycenter,  ///< barycenter sweeps (Sugiyama et al.)
  kMedian,      ///< median sweeps (Eades & Wormald)
};

/// Layer-assignment strategy.
enum class LayeringMethod {
  kLongestPath,     ///< minimal height
  kCoffmanGraham,   ///< width-bounded (`max_width`)
};

/// Knobs for `LayoutDag`.
struct LayoutOptions {
  OrderingMethod ordering = OrderingMethod::kBarycenter;
  LayeringMethod layering = LayeringMethod::kLongestPath;
  /// Ordering sweeps (each = one down pass + one up pass).
  int sweeps = 4;
  /// Width bound for Coffman-Graham (0 = sqrt(n) heuristic).
  int max_width = 0;
  /// Horizontal cells between node boxes.
  int node_gap = 3;
  /// Vertical cells between layers (room for edge routing).
  int layer_gap = 2;
  /// When > 0, every node box gets this width instead of deriving it
  /// from the label length (used by zoomed-out schema views).
  int fixed_node_width = 0;
};

/// Placement of one input node.
struct PlacedNode {
  NodeId node = -1;
  int layer = 0;  ///< 0 = topmost (roots)
  int order = 0;  ///< index within its layer (real + dummy nodes)
  int x = 0;      ///< left edge of the node box, in cells
  int y = 0;      ///< top of the node box, in cells
  int width = 0;  ///< box width (label length + 2)
};

/// A point on an edge's polyline, in cell coordinates.
struct EdgeBend {
  int x = 0;
  int y = 0;
};

/// Full layout result.
struct DagLayout {
  std::vector<PlacedNode> nodes;  ///< indexed by NodeId
  /// Real-node ids per layer, left to right (dummies excluded).
  std::vector<std::vector<NodeId>> layers;
  /// Polyline per input edge (same order as `Digraph::edges()`),
  /// from the source node's bottom center to the target's top center,
  /// bending at dummy-node positions.
  std::vector<std::vector<EdgeBend>> edge_paths;
  /// Edge crossings in the final ordering (dummy-expanded graph).
  uint64_t crossings = 0;
  /// Overall extent in cells.
  int width = 0;
  int height = 0;
};

/// Lays out `graph` (cycles are tolerated: a greedy feedback set is
/// reversed internally, as inheritance DAGs are acyclic anyway but
/// arbitrary inputs need not be).
Result<DagLayout> LayoutDag(const Digraph& graph,
                            const LayoutOptions& options = {});

/// Counts crossings between two adjacent layers given the positions of
/// edge endpoints: `edges[i] = (pos_upper, pos_lower)`. O(E log E).
uint64_t CountBilayerCrossings(std::vector<std::pair<int, int>> edges);

}  // namespace ode::dag

#endif  // ODEVIEW_DAG_LAYOUT_H_
