#ifndef ODEVIEW_ODEVIEW_DAG_VIEW_H_
#define ODEVIEW_ODEVIEW_DAG_VIEW_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dag/digraph.h"
#include "dag/layout.h"
#include "owl/widget.h"

namespace ode::view {

/// The schema-window canvas: renders the class-inheritance DAG using
/// the crossing-minimizing layout and maps clicks back to class nodes
/// (paper Fig. 2: "The user can also examine a class in detail by
/// clicking at the node labeled with the class of interest").
///
/// Zoom levels (paper: "the user can zoom in and zoom out to examine
/// this dag at various levels of detail"):
///   0 — full class names in boxes;
///   1 — names truncated to 4 characters;
///   2 — anonymous dots (structure overview).
class DagView : public owl::Widget {
 public:
  using ClassClickCallback = std::function<void(const std::string&)>;

  DagView(std::string name, dag::Digraph graph,
          ClassClickCallback on_class_click = {});

  std::string_view TypeName() const override { return "dagview"; }

  /// Recomputes the layout (called on construction and zoom change).
  Status Relayout();

  int zoom() const { return zoom_; }
  Status ZoomIn();   ///< more detail (lower zoom number)
  Status ZoomOut();  ///< less detail

  /// Scrolling offset over the (possibly large) diagram.
  void ScrollBy(int dx, int dy);
  owl::Point scroll() const { return scroll_; }

  const dag::DagLayout& layout() const { return layout_; }
  const dag::Digraph& graph() const { return graph_; }

  /// The class at a widget-local position, empty when none.
  std::string ClassAt(owl::Point local) const;

  /// Full rendering of the diagram (unclipped), for tests/examples.
  std::vector<std::string> RenderLines() const;

 protected:
  void RenderSelf(owl::Framebuffer* fb, owl::Point origin) const override;
  bool OnClick(owl::Point local) override;
  bool OnScroll(owl::Point local, int amount) override;

 private:
  std::string DisplayLabel(dag::NodeId node) const;
  /// Label box of a node in diagram coordinates.
  owl::Rect NodeBox(dag::NodeId node) const;

  dag::Digraph graph_;
  ClassClickCallback on_class_click_;
  dag::DagLayout layout_;
  int zoom_ = 0;
  owl::Point scroll_;
};

}  // namespace ode::view

#endif  // ODEVIEW_ODEVIEW_DAG_VIEW_H_
