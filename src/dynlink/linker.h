#ifndef ODEVIEW_DYNLINK_LINKER_H_
#define ODEVIEW_DYNLINK_LINKER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "dynlink/repository.h"

namespace ode::dynlink {

/// The dynamic linker: resolves (db, class, format) to a loaded
/// display function at run time, caching load results.
///
/// This reproduces the paper's §4.5: "Every time OdeView needs to
/// display an object, it dynamically loads the object file containing
/// the appropriate display function (if it is not already loaded)."
/// Loading is simulated with a deterministic checksum pass over the
/// module's simulated code bytes, so cold loads cost measurable work
/// proportional to code size while warm calls hit the cache.
class DynamicLinker {
 public:
  struct Stats {
    uint64_t loads = 0;        ///< cold loads performed
    uint64_t cache_hits = 0;   ///< resolutions served from cache
    uint64_t bytes_loaded = 0; ///< simulated code bytes processed
    uint64_t invalidations = 0;
  };

  explicit DynamicLinker(const ModuleRepository* repository)
      : repository_(repository) {}

  DynamicLinker(const DynamicLinker&) = delete;
  DynamicLinker& operator=(const DynamicLinker&) = delete;

  /// Resolves and (if needed) loads the display function. The returned
  /// pointer stays valid until the entry is invalidated or unloaded.
  Result<const DisplayFunction*> Load(const std::string& db_name,
                                      const std::string& class_name,
                                      const std::string& format);

  bool IsLoaded(const std::string& db_name, const std::string& class_name,
                const std::string& format) const;

  /// Drops loaded entries of one class — invoked on schema change so a
  /// recompiled display function is picked up without restarting
  /// OdeView.
  int Invalidate(const std::string& db_name, const std::string& class_name);

  /// Drops everything.
  void UnloadAll();

  size_t loaded_count() const { return loaded_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Key {
    std::string db;
    std::string cls;
    std::string format;
    bool operator<(const Key& o) const {
      if (db != o.db) return db < o.db;
      if (cls != o.cls) return cls < o.cls;
      return format < o.format;
    }
  };

  const ModuleRepository* repository_;
  std::map<Key, DisplayFunction> loaded_;
  Stats stats_;
};

}  // namespace ode::dynlink

#endif  // ODEVIEW_DYNLINK_LINKER_H_
