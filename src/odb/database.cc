#include "odb/database.h"

#include <algorithm>

#include "common/coding.h"
#include "common/journal.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/trace.h"
#include "odb/ddl_parser.h"
#include "odb/exec/executor.h"
#include "odb/exec/explain.h"
#include "odb/object_record.h"
#include "odb/typecheck.h"
#include "odb/value_codec.h"

namespace ode::odb {

namespace {

// Object-manager instruments. Sessions may outlive their database (UI
// teardown order), so the session gauge lives in the leaked global
// registry rather than on the Database.
obs::Counter& ObjectsCreated() {
  static obs::Counter* c =
      obs::Registry::Global().counter("db.objects.created");
  return *c;
}
obs::Counter& ObjectsFetched() {
  static obs::Counter* c =
      obs::Registry::Global().counter("db.objects.fetched");
  return *c;
}
obs::Counter& ObjectsUpdated() {
  static obs::Counter* c =
      obs::Registry::Global().counter("db.objects.updated");
  return *c;
}
obs::Counter& ObjectsDeleted() {
  static obs::Counter* c =
      obs::Registry::Global().counter("db.objects.deleted");
  return *c;
}
obs::Counter& Selects() {
  static obs::Counter* c = obs::Registry::Global().counter("db.selects");
  return *c;
}
obs::Counter& SessionsOpened() {
  static obs::Counter* c =
      obs::Registry::Global().counter("db.sessions.opened");
  return *c;
}
obs::Gauge& SessionsActive() {
  static obs::Gauge* g =
      obs::Registry::Global().gauge("db.sessions.active");
  return *g;
}
obs::Histogram& GetObjectLatency() {
  static obs::Histogram* h =
      obs::Registry::Global().histogram("db.get_object.latency_ns");
  return *h;
}

}  // namespace

Result<std::unique_ptr<Database>> Database::CreateInMemory(
    std::string name, DatabaseOptions options) {
  auto pager = std::make_unique<MemPager>();
  auto pool =
      std::make_unique<BufferPool>(pager.get(), options.buffer_pool_pages);
  std::unique_ptr<Database> db(
      new Database(std::move(pager), std::move(pool), options));
  ODE_ASSIGN_OR_RETURN(Catalog catalog,
                       Catalog::Format(db->pool_.get(), std::move(name)));
  db->catalog_.emplace(std::move(catalog));
  return db;
}

namespace {

WalOptions WalOptionsFor(const DatabaseOptions& options) {
  WalOptions wal_options;
  wal_options.sync = options.wal_sync;
  wal_options.group_commit = options.wal_group_commit;
  return wal_options;
}

}  // namespace

Result<std::unique_ptr<Database>> Database::CreateOnDisk(
    const std::string& path, std::string name, DatabaseOptions options) {
  ODE_ASSIGN_OR_RETURN(std::unique_ptr<FilePager> pager,
                       FilePager::Open(path, /*create=*/true));
  ODE_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                       Wal::Create(path + ".wal", WalOptionsFor(options)));
  auto pool =
      std::make_unique<BufferPool>(pager.get(), options.buffer_pool_pages);
  pool->SetWal(wal.get());
  std::unique_ptr<Database> db(
      new Database(std::move(pager), std::move(pool), options));
  db->wal_ = std::move(wal);
  {
    // The format writes are a logged transaction too, so a crash
    // between Format and Sync leaves a replayable (or cleanly absent)
    // superblock rather than a torn one.
    WalTransactionScope txn(db->wal_.get(), &db->wal_txn_mu_);
    ODE_ASSIGN_OR_RETURN(Catalog catalog,
                         Catalog::Format(db->pool_.get(), std::move(name)));
    db->catalog_.emplace(std::move(catalog));
    ODE_RETURN_IF_ERROR(txn.Commit());
  }
  ODE_RETURN_IF_ERROR(db->Sync());
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenOnDisk(
    const std::string& path, DatabaseOptions options) {
  ODE_ASSIGN_OR_RETURN(std::unique_ptr<FilePager> pager,
                       FilePager::Open(path, /*create=*/false));
  // Restart recovery runs before anything reads through the pool: the
  // committed tail of the previous incarnation's log is replayed into
  // the data file, torn records are dropped, and the log is reset.
  ODE_ASSIGN_OR_RETURN(
      std::unique_ptr<Wal> wal,
      Wal::OpenAndRecover(path + ".wal", pager.get(), WalOptionsFor(options)));
  auto pool =
      std::make_unique<BufferPool>(pager.get(), options.buffer_pool_pages);
  pool->SetWal(wal.get());
  std::unique_ptr<Database> db(
      new Database(std::move(pager), std::move(pool), options));
  db->wal_ = std::move(wal);
  ODE_ASSIGN_OR_RETURN(Catalog catalog, Catalog::Load(db->pool_.get()));
  db->catalog_.emplace(std::move(catalog));
  // Raise next-id watermarks above anything already stored, so ids are
  // not reused even if the catalog was last persisted before a crash.
  ReaderMutexLock lock(db->schema_mu_);
  for (const ClusterInfo* info : db->catalog_->clusters()) {
    ODE_ASSIGN_OR_RETURN(HeapFile * heap, db->GetHeap(info->id));
    Result<uint64_t> last = heap->LastId();
    if (last.ok()) {
      ODE_RETURN_IF_ERROR(
          db->catalog_->BumpNextLocalId(info->id, *last + 1));
    }
  }
  return db;
}

const std::string& Database::name() const { return catalog_->db_name(); }

Status Database::DefineSchema(std::string_view ddl) {
  WriterMutexLock lock(schema_mu_);
  WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
  BumpMutationEpoch();
  ODE_ASSIGN_OR_RETURN(Schema parsed, ParseSchema(ddl));
  for (const ClassDef& def : parsed.classes()) {
    ODE_RETURN_IF_ERROR(AddClassInternal(def, /*persist=*/false));
  }
  ODE_RETURN_IF_ERROR(catalog_->mutable_schema()->Validate());
  ODE_RETURN_IF_ERROR(catalog_->Persist());
  return txn.Commit();
}

Status Database::AddClass(ClassDef def) {
  WriterMutexLock lock(schema_mu_);
  WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
  BumpMutationEpoch();
  ODE_RETURN_IF_ERROR(AddClassInternal(std::move(def), /*persist=*/true));
  return txn.Commit();
}

Status Database::AddClassInternal(ClassDef def, bool persist) {
  bool persistent = def.persistent;
  std::string class_name = def.name;
  ODE_RETURN_IF_ERROR(catalog_->mutable_schema()->AddClass(std::move(def)));
  if (persistent) {
    ODE_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_.get(), catalog_->free_list()));
    PageId first_page = heap.first_page();
    Result<ClusterId> id = catalog_->AddCluster(class_name, first_page);
    if (!id.ok()) {
      (void)catalog_->mutable_schema()->DropClass(class_name);
      return id.status();
    }
    // Wire access-observatory attribution before the heap becomes
    // reachable (publication under heaps_mu_ orders the plain stores).
    heap.SetAccessAttribution(*id, obs::Journal::InternLabel(class_name));
    MutexLock guard(heaps_mu_);
    heaps_.emplace(*id, std::move(heap));
  }
  if (persist) {
    ODE_RETURN_IF_ERROR(catalog_->mutable_schema()->Validate());
    return catalog_->Persist();
  }
  return Status::OK();
}

Status Database::AlterClass(ClassDef def) {
  WriterMutexLock lock(schema_mu_);
  WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
  BumpMutationEpoch();
  ODE_ASSIGN_OR_RETURN(const ClassDef* old_def, schema().GetClass(def.name));
  if (old_def->bases != def.bases) {
    return Status::InvalidArgument(
        "AlterClass cannot change the bases of '" + def.name + "'");
  }
  std::string class_name = def.name;
  // Try the new definition against the rest of the schema.
  ClassDef backup = *old_def;
  ODE_RETURN_IF_ERROR(catalog_->mutable_schema()->ReplaceClass(std::move(def)));
  Status valid = catalog_->mutable_schema()->Validate();
  if (!valid.ok()) {
    (void)catalog_->mutable_schema()->ReplaceClass(std::move(backup));
    return valid;
  }
  // Migrate stored objects of this class and of every descendant (their
  // effective member sets include this class's members).
  std::vector<std::string> affected{class_name};
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> descendants,
                       schema().Descendants(class_name));
  affected.insert(affected.end(), descendants.begin(), descendants.end());
  for (const std::string& cls : affected) {
    Result<const ClusterInfo*> info = catalog_->FindCluster(cls);
    if (!info.ok()) continue;  // transient class
    ODE_ASSIGN_OR_RETURN(std::vector<MemberDef> members,
                         schema().AllMembers(cls));
    ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap((*info)->id));
    for (uint64_t local : heap->AllIds()) {
      ODE_ASSIGN_OR_RETURN(std::string bytes, heap->Get(local));
      ODE_ASSIGN_OR_RETURN(ObjectRecord record, DecodeObjectRecord(bytes));
      // Rebuild the struct in declaration order: keep compatible old
      // fields, default new/retyped ones, drop removed ones.
      std::vector<Value::Field> fields;
      fields.reserve(members.size());
      for (const MemberDef& member : members) {
        const Value* old_value = record.value.FindField(member.name);
        if (old_value != nullptr &&
            TypeCheckValue(schema(), member.type, *old_value,
                           cls + "." + member.name)
                .ok()) {
          fields.push_back({member.name, *old_value});
        } else {
          ODE_ASSIGN_OR_RETURN(Value fresh,
                               DefaultMemberValue(member));
          fields.push_back({member.name, std::move(fresh)});
        }
      }
      record.value = Value::Struct(std::move(fields));
      record.version += 1;
      ODE_RETURN_IF_ERROR(
          heap->Update(local, EncodeObjectRecord(record)));
    }
  }
  ODE_RETURN_IF_ERROR(catalog_->Persist());
  return txn.Commit();
}

Result<Value> Database::DefaultMemberValue(const MemberDef& member) {
  // DefaultInstance handles whole classes; single members reuse the
  // same rules through a one-field wrapper schema lookup.
  switch (member.type.kind) {
    case TypeRef::Kind::kClass:
      return DefaultInstance(schema(), member.type.class_name);
    default: {
      // Build via DefaultInstance of a synthetic holder is overkill;
      // replicate the scalar defaults here.
      using Kind = TypeRef::Kind;
      switch (member.type.kind) {
        case Kind::kBool:
          return Value::Bool(false);
        case Kind::kInt:
          return Value::Int(0);
        case Kind::kReal:
          return Value::Real(0.0);
        case Kind::kString:
          return Value::String("");
        case Kind::kBlob:
          return Value::Blob("");
        case Kind::kRef:
          return Value::Ref(Oid::Null(), member.type.class_name);
        case Kind::kSet:
          return Value::Set({});
        case Kind::kArray: {
          std::vector<Value> elements;
          // Sized arrays of scalars default element-wise; nested
          // containers default empty.
          for (uint32_t i = 0; i < member.type.array_size; ++i) {
            elements.push_back(Value::Null());
          }
          return Value::Array(std::move(elements));
        }
        default:
          return Status::InvalidArgument("member '" + member.name +
                                         "' has no default value");
      }
    }
  }
}

Status Database::DropClass(const std::string& class_name) {
  WriterMutexLock lock(schema_mu_);
  WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
  BumpMutationEpoch();
  Result<const ClusterInfo*> cluster = catalog_->FindCluster(class_name);
  if (cluster.ok()) {
    ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap((*cluster)->id));
    if (heap->count() != 0) {
      return Status::FailedPrecondition(
          "cluster of class '" + class_name + "' still holds " +
          std::to_string(heap->count()) + " objects");
    }
  }
  ODE_RETURN_IF_ERROR(catalog_->mutable_schema()->DropClass(class_name));
  if (cluster.ok()) {
    {
      MutexLock guard(heaps_mu_);
      heaps_.erase((*cluster)->id);
    }
    ODE_RETURN_IF_ERROR(catalog_->RemoveCluster(class_name));
  }
  ODE_RETURN_IF_ERROR(catalog_->Persist());
  return txn.Commit();
}

Result<HeapFile*> Database::GetHeap(ClusterId id) {
  MutexLock guard(heaps_mu_);
  auto it = heaps_.find(id);
  if (it != heaps_.end()) return &it->second;
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info, catalog_->FindCluster(id));
  ODE_ASSIGN_OR_RETURN(HeapFile heap,
                       HeapFile::Open(pool_.get(), catalog_->free_list(),
                                     info->first_page));
  heap.SetAccessAttribution(id, obs::Journal::InternLabel(info->class_name));
  auto pos = heaps_.emplace(id, std::move(heap)).first;
  return &pos->second;
}

Result<std::vector<const ConstraintDef*>> Database::EffectiveConstraints(
    const std::string& class_name) const {
  ODE_ASSIGN_OR_RETURN(const ClassDef* def, schema().GetClass(class_name));
  std::vector<const ConstraintDef*> out;
  for (const ConstraintDef& c : def->constraints) out.push_back(&c);
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> ancestors,
                       schema().Ancestors(class_name));
  for (const std::string& a : ancestors) {
    ODE_ASSIGN_OR_RETURN(const ClassDef* base, schema().GetClass(a));
    for (const ConstraintDef& c : base->constraints) out.push_back(&c);
  }
  return out;
}

Result<std::vector<const TriggerDef*>> Database::EffectiveTriggers(
    const std::string& class_name) const {
  ODE_ASSIGN_OR_RETURN(const ClassDef* def, schema().GetClass(class_name));
  std::vector<const TriggerDef*> out;
  for (const TriggerDef& t : def->triggers) out.push_back(&t);
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> ancestors,
                       schema().Ancestors(class_name));
  for (const std::string& a : ancestors) {
    ODE_ASSIGN_OR_RETURN(const ClassDef* base, schema().GetClass(a));
    for (const TriggerDef& t : base->triggers) out.push_back(&t);
  }
  return out;
}

Status Database::CheckConstraints(const std::string& class_name,
                                  const Value& value) {
  ODE_ASSIGN_OR_RETURN(std::vector<const ConstraintDef*> constraints,
                       EffectiveConstraints(class_name));
  for (const ConstraintDef* c : constraints) {
    const Predicate* pred = nullptr;
    {
      // std::map nodes are stable, so the pointer survives concurrent
      // inserts once the mutex is dropped.
      MutexLock guard(predicate_mu_);
      auto it = predicate_cache_.find(c->predicate_text);
      if (it == predicate_cache_.end()) {
        ODE_ASSIGN_OR_RETURN(Predicate p, ParsePredicate(c->predicate_text));
        it = predicate_cache_.emplace(c->predicate_text, std::move(p)).first;
      }
      pred = &it->second;
    }
    ODE_ASSIGN_OR_RETURN(bool ok, pred->Evaluate(value));
    if (!ok) {
      return Status::ConstraintViolation("constraint '" +
                                         c->predicate_text +
                                         "' violated for class '" +
                                         class_name + "'");
    }
  }
  return Status::OK();
}

Status Database::FireTriggers(const std::string& class_name, Oid oid,
                              TriggerEvent event, const Value& value) {
  ODE_ASSIGN_OR_RETURN(std::vector<const TriggerDef*> triggers,
                       EffectiveTriggers(class_name));
  for (const TriggerDef* t : triggers) {
    if (t->event != event) continue;
    bool fires = true;
    if (!t->condition_text.empty()) {
      const Predicate* pred = nullptr;
      {
        MutexLock guard(predicate_mu_);
        auto it = predicate_cache_.find(t->condition_text);
        if (it == predicate_cache_.end()) {
          ODE_ASSIGN_OR_RETURN(Predicate p,
                               ParsePredicate(t->condition_text));
          it = predicate_cache_.emplace(t->condition_text, std::move(p)).first;
        }
        pred = &it->second;
      }
      ODE_ASSIGN_OR_RETURN(fires, pred->Evaluate(value));
    }
    if (fires) {
      MutexLock guard(trigger_mu_);
      trigger_log_.push_back(
          TriggerFiring{class_name, oid, t->name, t->action, event});
    }
  }
  return Status::OK();
}

Result<Oid> Database::CreateObject(const std::string& class_name,
                                   Value value) {
  ODE_TRACE_SPAN("db.create_object");
  ReaderMutexLock lock(schema_mu_);
  // The scope serializes writers before the local id is assigned, so
  // commit-record order matches id order: the survivors of a crash are
  // always exactly the ids 1..k of each cluster.
  WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
  ODE_ASSIGN_OR_RETURN(const ClassDef* def, schema().GetClass(class_name));
  if (!def->persistent) {
    return Status::InvalidArgument("class '" + class_name +
                                   "' is not persistent");
  }
  ODE_RETURN_IF_ERROR(TypeCheckObject(schema(), class_name, value));
  ODE_RETURN_IF_ERROR(CheckConstraints(class_name, value));
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(class_name));
  ClusterId cluster_id = info->id;
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(cluster_id));
  ODE_ASSIGN_OR_RETURN(uint64_t local, catalog_->NextLocalId(cluster_id));
  ObjectRecord record;
  record.version = 1;
  record.value = std::move(value);
  ODE_RETURN_IF_ERROR(heap->Insert(local, EncodeObjectRecord(record)));
  BumpMutationEpoch();
  ObjectsCreated().Increment();
  Oid oid{cluster_id, local};
  ODE_RETURN_IF_ERROR(
      FireTriggers(class_name, oid, TriggerEvent::kCreate, record.value));
  ODE_RETURN_IF_ERROR(txn.Commit());
  ODE_RETURN_IF_ERROR(MaybeCheckpointLocked());
  return oid;
}

Result<ObjectBuffer> Database::GetObject(Oid oid) {
  ODE_TRACE_SPAN("db.get_object");
  obs::ScopedLatencyTimer timer(&GetObjectLatency());
  ReaderMutexLock lock(schema_mu_);
  return GetObjectUnlocked(oid);
}

Result<ObjectBuffer> Database::GetObjectUnlocked(Oid oid) {
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(oid.cluster));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(oid.cluster));
  ODE_ASSIGN_OR_RETURN(std::string bytes, heap->Get(oid.local));
  ODE_ASSIGN_OR_RETURN(ObjectRecord record, DecodeObjectRecord(bytes));
  ObjectBuffer buffer;
  buffer.oid = oid;
  buffer.class_name = info->class_name;
  buffer.version = record.version;
  buffer.value = std::move(record.value);
  ObjectsFetched().Increment();
  return buffer;
}

Result<ObjectBuffer> Database::GetObjectVersion(Oid oid, uint32_t version) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(oid.cluster));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(oid.cluster));
  ODE_ASSIGN_OR_RETURN(std::string bytes, heap->Get(oid.local));
  ODE_ASSIGN_OR_RETURN(ObjectRecord record, DecodeObjectRecord(bytes));
  ObjectBuffer buffer;
  buffer.oid = oid;
  buffer.class_name = info->class_name;
  if (version == record.version) {
    buffer.version = record.version;
    buffer.value = std::move(record.value);
    return buffer;
  }
  for (auto& [ver, val] : record.history) {
    if (ver == version) {
      buffer.version = ver;
      buffer.value = std::move(val);
      return buffer;
    }
  }
  return Status::NotFound("version " + std::to_string(version) +
                          " of object " + oid.ToString() +
                          " is not retained");
}

Result<std::vector<uint32_t>> Database::ListVersions(Oid oid) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(oid.cluster));
  ODE_ASSIGN_OR_RETURN(std::string bytes, heap->Get(oid.local));
  ODE_ASSIGN_OR_RETURN(ObjectRecord record, DecodeObjectRecord(bytes));
  std::vector<uint32_t> versions;
  versions.reserve(record.history.size() + 1);
  for (const auto& [ver, val] : record.history) versions.push_back(ver);
  versions.push_back(record.version);
  return versions;
}

Status Database::UpdateObject(Oid oid, Value value) {
  ReaderMutexLock lock(schema_mu_);
  WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(oid.cluster));
  ODE_ASSIGN_OR_RETURN(const ClassDef* def,
                       schema().GetClass(info->class_name));
  ODE_RETURN_IF_ERROR(TypeCheckObject(schema(), info->class_name, value));
  ODE_RETURN_IF_ERROR(CheckConstraints(info->class_name, value));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(oid.cluster));
  ODE_ASSIGN_OR_RETURN(std::string bytes, heap->Get(oid.local));
  ODE_ASSIGN_OR_RETURN(ObjectRecord record, DecodeObjectRecord(bytes));
  if (def->versioned) {
    record.history.emplace_back(record.version, std::move(record.value));
    while (record.history.size() > options_.version_history_limit) {
      record.history.erase(record.history.begin());
    }
  }
  record.version += 1;
  record.value = std::move(value);
  ODE_RETURN_IF_ERROR(heap->Update(oid.local, EncodeObjectRecord(record)));
  BumpMutationEpoch();
  ObjectsUpdated().Increment();
  ODE_RETURN_IF_ERROR(FireTriggers(info->class_name, oid,
                                   TriggerEvent::kUpdate, record.value));
  ODE_RETURN_IF_ERROR(txn.Commit());
  return MaybeCheckpointLocked();
}

Status Database::DeleteObject(Oid oid) {
  ReaderMutexLock lock(schema_mu_);
  WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(oid.cluster));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(oid.cluster));
  ODE_ASSIGN_OR_RETURN(std::string bytes, heap->Get(oid.local));
  ODE_ASSIGN_OR_RETURN(ObjectRecord record, DecodeObjectRecord(bytes));
  ODE_RETURN_IF_ERROR(heap->Delete(oid.local));
  BumpMutationEpoch();
  ObjectsDeleted().Increment();
  ODE_RETURN_IF_ERROR(FireTriggers(info->class_name, oid,
                                   TriggerEvent::kDelete, record.value));
  ODE_RETURN_IF_ERROR(txn.Commit());
  return MaybeCheckpointLocked();
}

Result<uint64_t> Database::ClusterCount(const std::string& class_name) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(class_name));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(info->id));
  return heap->count();
}

Result<ClusterId> Database::ClusterOf(const std::string& class_name) const {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(class_name));
  return info->id;
}

Result<std::string> Database::ClassOfCluster(ClusterId id) const {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info, catalog_->FindCluster(id));
  return info->class_name;
}

Result<Oid> Database::FirstObject(const std::string& class_name) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(class_name));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(info->id));
  ODE_ASSIGN_OR_RETURN(uint64_t id, heap->FirstId());
  return Oid{info->id, id};
}

Result<Oid> Database::LastObject(const std::string& class_name) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(class_name));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(info->id));
  ODE_ASSIGN_OR_RETURN(uint64_t id, heap->LastId());
  return Oid{info->id, id};
}

Result<Oid> Database::NextObject(Oid oid) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(oid.cluster));
  ODE_ASSIGN_OR_RETURN(uint64_t id, heap->NextId(oid.local));
  return Oid{oid.cluster, id};
}

Result<Oid> Database::PrevObject(Oid oid) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(oid.cluster));
  ODE_ASSIGN_OR_RETURN(uint64_t id, heap->PrevId(oid.local));
  return Oid{oid.cluster, id};
}

Result<ObjectBuffer> Database::NextObjectBuffer(Oid oid) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(std::vector<ObjectBuffer> batch,
                       StepObjectBuffers(oid, /*forward=*/true, 1));
  return std::move(batch.front());
}

Result<ObjectBuffer> Database::PrevObjectBuffer(Oid oid) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(std::vector<ObjectBuffer> batch,
                       StepObjectBuffers(oid, /*forward=*/false, 1));
  return std::move(batch.front());
}

Result<std::vector<ObjectBuffer>> Database::NextObjectBuffers(Oid oid,
                                                              size_t limit) {
  ReaderMutexLock lock(schema_mu_);
  return StepObjectBuffers(oid, /*forward=*/true, limit);
}

Result<std::vector<ObjectBuffer>> Database::PrevObjectBuffers(Oid oid,
                                                              size_t limit) {
  ReaderMutexLock lock(schema_mu_);
  return StepObjectBuffers(oid, /*forward=*/false, limit);
}

Result<std::vector<ObjectBuffer>> Database::StepObjectBuffers(Oid oid,
                                                              bool forward,
                                                              size_t limit) {
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(oid.cluster));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(oid.cluster));
  auto stepped = forward ? heap->NextRecords(oid.local, limit)
                         : heap->PrevRecords(oid.local, limit);
  ODE_RETURN_IF_ERROR(stepped.status());
  std::vector<ObjectBuffer> out;
  out.reserve(stepped->size());
  for (auto& [local, bytes] : *stepped) {
    ODE_ASSIGN_OR_RETURN(ObjectRecord record, DecodeObjectRecord(bytes));
    ObjectBuffer buffer;
    buffer.oid = Oid{oid.cluster, local};
    buffer.class_name = info->class_name;
    buffer.version = record.version;
    buffer.value = std::move(record.value);
    out.push_back(std::move(buffer));
  }
  return out;
}

Result<std::vector<Oid>> Database::ScanCluster(
    const std::string& class_name) {
  ReaderMutexLock lock(schema_mu_);
  return ScanClusterUnlocked(class_name);
}

Result<std::vector<Oid>> Database::ScanClusterUnlocked(
    const std::string& class_name) {
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(class_name));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(info->id));
  std::vector<Oid> out;
  for (uint64_t id : heap->AllIds()) out.push_back(Oid{info->id, id});
  return out;
}

Result<std::vector<Oid>> Database::ScanClusterDeep(
    const std::string& class_name) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> out, ScanClusterUnlocked(class_name));
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> descendants,
                       schema().Descendants(class_name));
  for (const std::string& cls : descendants) {
    Result<std::vector<Oid>> sub = ScanClusterUnlocked(cls);
    if (!sub.ok()) continue;  // transient subclass
    out.insert(out.end(), sub->begin(), sub->end());
  }
  return out;
}

Result<std::vector<Oid>> Database::Select(const std::string& class_name,
                                          const Predicate& predicate) {
  ODE_TRACE_SPAN("db.select");
  Selects().Increment();
  // Batched path: projection pushed to the record decode (only the
  // predicate's attributes are materialized), predicate compiled to a
  // slot program, evaluation column-at-a-time per batch.
  exec::ScanSpec spec;
  spec.class_name = class_name;
  spec.predicate = &predicate;
  spec.emit_values = false;  // only the ids leave this function
  ODE_ASSIGN_OR_RETURN(exec::ScanResult result, exec::ExecuteScan(this, spec));
  std::vector<Oid> out;
  out.reserve(result.rows.size());
  for (const exec::ScanRow& row : result.rows) out.push_back(row.oid);
  return out;
}

Result<exec::ExplainResult> Database::ExplainSelect(
    const std::string& class_name, const Predicate& predicate, bool analyze) {
  // The exact spec Select() builds, so the plan describes what Select
  // would run (ids-only projection, compiled filter, batched decode).
  exec::ScanSpec spec;
  spec.class_name = class_name;
  spec.predicate = &predicate;
  spec.emit_values = false;
  return exec::ExplainScan(this, spec, analyze);
}

Result<exec::ExplainResult> Database::ExplainJoin(
    const std::string& left_class, const std::string& right_class,
    const Predicate& predicate, bool analyze) {
  exec::JoinSpec spec;
  spec.left_class = left_class;
  spec.right_class = right_class;
  spec.predicate = &predicate;
  return exec::ExplainJoin(this, spec, analyze);
}

Status Database::ScanRawRecords(const std::string& class_name, uint64_t after,
                                size_t limit, RawRecordBatch* out) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(class_name));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(info->id));
  out->cluster = info->id;
  Status status =
      heap->NextRecordsInto(after, limit, &out->arena, &out->records);
  if (status.IsOutOfRange()) return Status::OK();  // exhausted: empty batch
  return status;
}

Result<std::vector<HeapFile::Placement>> Database::ClusterPlacements(
    const std::string& class_name) {
  ReaderMutexLock lock(schema_mu_);
  ODE_ASSIGN_OR_RETURN(const ClusterInfo* info,
                       catalog_->FindCluster(class_name));
  ODE_ASSIGN_OR_RETURN(HeapFile * heap, GetHeap(info->id));
  return heap->RecordPlacements();
}

Status Database::Sync() {
  WriterMutexLock lock(schema_mu_);
  {
    WalTransactionScope txn(wal_.get(), &wal_txn_mu_);
    ODE_RETURN_IF_ERROR(catalog_->Persist());
    ODE_RETURN_IF_ERROR(txn.Commit());
  }
  return CheckpointLocked();
}

Status Database::Checkpoint() {
  ReaderMutexLock lock(schema_mu_);
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  ODE_TRACE_SPAN("db.checkpoint");
  // Phase 1 (fuzzy): push committed work out without blocking writers.
  // Most of the flush I/O happens here, so the quiesce below is short.
  if (wal_ != nullptr) {
    ODE_RETURN_IF_ERROR(wal_->FlushUntil(wal_->next_lsn()));
  }
  ODE_RETURN_IF_ERROR(pool_->FlushAll());
  // Phase 2: quiesce writers. With `wal_txn_mu_` held no transaction
  // is in flight, so every frame is either clean or committed-dirty;
  // after the flush + data sync the log's history is fully contained
  // in the data file and can be truncated.
  MutexLock txn_lock(wal_txn_mu_);
  if (wal_ != nullptr) {
    ODE_RETURN_IF_ERROR(wal_->FlushUntil(wal_->next_lsn()));
  }
  ODE_RETURN_IF_ERROR(pool_->FlushAll());
  ODE_RETURN_IF_ERROR(pager_->Sync());
  if (wal_ != nullptr) {
    ODE_RETURN_IF_ERROR(wal_->ResetLog());
  }
  return Status::OK();
}

Status Database::MaybeCheckpointLocked() {
  if (wal_ == nullptr ||
      wal_->size_bytes() <= options_.wal_checkpoint_bytes) {
    return Status::OK();
  }
  return CheckpointLocked();
}

std::string Database::DumpTelemetry() const {
  // Registry data only — the report must stay valid for any engine
  // version without reaching into class internals.
  return "=== ode telemetry ===\n" + obs::Registry::Global().RenderText();
}

Session Database::OpenSession() {
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  active_sessions_->fetch_add(1, std::memory_order_relaxed);
  SessionsOpened().Increment();
  SessionsActive().Add(1);
  obs::Journal::Global().Append(obs::JournalEvent::kSessionOpen,
                                static_cast<int64_t>(id));
  Session session(this, id, active_sessions_);
  if (obs::Tracing::enabled()) {
    // Anchor the session's causal tree with a zero-length span; browse
    // cascades adopt this context, so every gesture of the session
    // hangs off it in the exported trace.
    session.trace_context_ = obs::Tracing::NewRootContext();
    obs::Tracing::Record("db.session", obs::Tracing::NowNanos(), 0, 0,
                         session.trace_context_.trace_id,
                         session.trace_context_.span_id, 0);
  }
  session.entry_ = obs::SessionRegistry::Global().Register(
      id, session.trace_context_.trace_id);
  return session;
}

Session& Session::operator=(Session&& other) noexcept {
  if (this != &other) {
    if (counter_ != nullptr) {
      counter_->fetch_sub(1, std::memory_order_relaxed);
      SessionsActive().Sub(1);
      obs::Journal::Global().Append(obs::JournalEvent::kSessionClose,
                                    static_cast<int64_t>(id_));
    }
    if (entry_ != nullptr) obs::SessionRegistry::Global().Unregister(id_);
    db_ = other.db_;
    id_ = other.id_;
    counter_ = std::move(other.counter_);
    trace_context_ = other.trace_context_;
    entry_ = std::move(other.entry_);
    other.db_ = nullptr;
    other.id_ = 0;
    other.trace_context_ = obs::TraceContext{};
  }
  return *this;
}

Session::~Session() {
  if (counter_ != nullptr) {
    counter_->fetch_sub(1, std::memory_order_relaxed);
    SessionsActive().Sub(1);
    obs::Journal::Global().Append(obs::JournalEvent::kSessionClose,
                                  static_cast<int64_t>(id_));
  }
  if (entry_ != nullptr) obs::SessionRegistry::Global().Unregister(id_);
}

// Session methods run under a ProfiledOp: every resource the engine
// charges during the call lands on this op (and the session's
// cumulative totals), and ops past the slow threshold park their full
// profile in the slow-op ring. Op names are string literals — the
// SessionEntry/SlowOpLog static-storage contract.

Result<Oid> Session::CreateObject(const std::string& class_name,
                                  Value value) {
  obs::ProfiledOp op(entry_.get(), "create_object");
  return db_->CreateObject(class_name, std::move(value));
}

Result<ObjectBuffer> Session::GetObject(Oid oid) {
  obs::ProfiledOp op(entry_.get(), "get_object");
  return db_->GetObject(oid);
}

Result<ObjectBuffer> Session::GetObjectVersion(Oid oid, uint32_t version) {
  obs::ProfiledOp op(entry_.get(), "get_object_version");
  return db_->GetObjectVersion(oid, version);
}

Result<std::vector<uint32_t>> Session::ListVersions(Oid oid) {
  obs::ProfiledOp op(entry_.get(), "list_versions");
  return db_->ListVersions(oid);
}

Status Session::UpdateObject(Oid oid, Value value) {
  obs::ProfiledOp op(entry_.get(), "update_object");
  return db_->UpdateObject(oid, std::move(value));
}

Status Session::DeleteObject(Oid oid) {
  obs::ProfiledOp op(entry_.get(), "delete_object");
  return db_->DeleteObject(oid);
}

Result<uint64_t> Session::ClusterCount(const std::string& class_name) {
  obs::ProfiledOp op(entry_.get(), "cluster_count");
  return db_->ClusterCount(class_name);
}

Result<Oid> Session::FirstObject(const std::string& class_name) {
  obs::ProfiledOp op(entry_.get(), "first_object");
  return db_->FirstObject(class_name);
}

Result<Oid> Session::LastObject(const std::string& class_name) {
  obs::ProfiledOp op(entry_.get(), "last_object");
  return db_->LastObject(class_name);
}

Result<Oid> Session::NextObject(Oid oid) {
  obs::ProfiledOp op(entry_.get(), "next_object");
  return db_->NextObject(oid);
}

Result<Oid> Session::PrevObject(Oid oid) {
  obs::ProfiledOp op(entry_.get(), "prev_object");
  return db_->PrevObject(oid);
}

Result<ObjectBuffer> Session::NextObjectBuffer(Oid oid) {
  obs::ProfiledOp op(entry_.get(), "next_object_buffer");
  return db_->NextObjectBuffer(oid);
}

Result<ObjectBuffer> Session::PrevObjectBuffer(Oid oid) {
  obs::ProfiledOp op(entry_.get(), "prev_object_buffer");
  return db_->PrevObjectBuffer(oid);
}

Result<std::vector<ObjectBuffer>> Session::NextObjectBuffers(Oid oid,
                                                             size_t limit) {
  obs::ProfiledOp op(entry_.get(), "next_object_buffers");
  return db_->NextObjectBuffers(oid, limit);
}

Result<std::vector<ObjectBuffer>> Session::PrevObjectBuffers(Oid oid,
                                                             size_t limit) {
  obs::ProfiledOp op(entry_.get(), "prev_object_buffers");
  return db_->PrevObjectBuffers(oid, limit);
}

Result<std::vector<Oid>> Session::ScanCluster(const std::string& class_name) {
  obs::ProfiledOp op(entry_.get(), "scan_cluster");
  return db_->ScanCluster(class_name);
}

Result<std::vector<Oid>> Session::Select(const std::string& class_name,
                                         const Predicate& predicate) {
  obs::ProfiledOp op(entry_.get(), "select");
  return db_->Select(class_name, predicate);
}

Result<Oid> ObjectCursor::Current() const {
  if (!current_.has_value()) {
    return Status::FailedPrecondition("cursor has no current object");
  }
  return *current_;
}

Result<bool> ObjectCursor::Matches(const ObjectBuffer& buffer) const {
  if (!filtered_) return true;
  return compiled_.EvaluateOne(buffer.value, &scratch_);
}

namespace {

/// Buffers fetched per cursor lock round-trip. Large enough to
/// amortize the locking, small enough that an invalidated batch
/// (any concurrent mutation) wastes little work.
constexpr size_t kCursorLookahead = 16;

}  // namespace

Result<ObjectBuffer> ObjectCursor::Step(bool forward) {
  // Walk with a local position so a mid-scan error keeps `current_`
  // where the caller left it; only a match commits the new position.
  std::optional<Oid> pos = current_;
  while (true) {
    Result<ObjectBuffer> candidate = TakeNext(forward, pos);
    if (!candidate.ok()) return candidate.status();
    ODE_ASSIGN_OR_RETURN(bool match, Matches(*candidate));
    pos = candidate->oid;
    if (match) {
      current_ = candidate->oid;
      return std::move(*candidate);
    }
  }
}

Result<ObjectBuffer> ObjectCursor::TakeNext(bool forward,
                                            const std::optional<Oid>& pos) {
  if (!pos.has_value()) {
    Result<Oid> edge = forward ? db_->FirstObject(class_name_)
                               : db_->LastObject(class_name_);
    if (!edge.ok()) {
      return Status::OutOfRange("cluster '" + class_name_ + "' is empty");
    }
    return db_->GetObject(*edge);
  }
  uint64_t epoch = db_->mutation_epoch();
  bool usable = lookahead_pos_ < lookahead_.size() &&
                lookahead_forward_ == forward && lookahead_epoch_ == epoch &&
                lookahead_anchor_ == pos;
  if (!usable) {
    // Record the epoch before fetching: a mutation racing the fetch
    // then invalidates the batch on the next step.
    lookahead_.clear();
    lookahead_pos_ = 0;
    lookahead_epoch_ = epoch;
    lookahead_forward_ = forward;
    lookahead_anchor_ = pos;
    Result<std::vector<ObjectBuffer>> batch =
        forward ? db_->NextObjectBuffers(*pos, kCursorLookahead)
                : db_->PrevObjectBuffers(*pos, kCursorLookahead);
    if (!batch.ok()) return batch.status();
    lookahead_ = std::move(*batch);
  }
  ObjectBuffer out = std::move(lookahead_[lookahead_pos_]);
  ++lookahead_pos_;
  lookahead_anchor_ = out.oid;
  return out;
}

Result<ObjectBuffer> ObjectCursor::Next() { return Step(/*forward=*/true); }

Result<ObjectBuffer> ObjectCursor::Prev() { return Step(/*forward=*/false); }

Status ObjectCursor::Seek(Oid oid) {
  ODE_ASSIGN_OR_RETURN(ObjectBuffer buffer, db_->GetObject(oid));
  if (buffer.class_name != class_name_) {
    return Status::InvalidArgument("object " + oid.ToString() +
                                   " is not in cluster '" + class_name_ +
                                   "'");
  }
  ODE_ASSIGN_OR_RETURN(bool match, Matches(buffer));
  if (!match) {
    return Status::InvalidArgument("object " + oid.ToString() +
                                   " does not satisfy the cursor predicate");
  }
  current_ = oid;
  return Status::OK();
}

}  // namespace ode::odb
