// Section 5.2 (extension): selection — predicate parsing, evaluation,
// and object-manager filtering across cluster sizes and selectivities.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "odb/exec/executor.h"
#include "odb/predicate.h"

namespace ode::bench {
namespace {

LabSession BigLab(int employees) {
  odb::LabDbConfig config;
  config.employees = employees;
  config.managers = 8;
  config.departments = 8;
  return LabSession::Create(config);
}

void BM_PredicateParse(benchmark::State& state) {
  const char* text =
      "age > 30 && (salary >= 60000 || name contains \"ra\") && "
      "title != \"manager\"";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(odb::ParsePredicate(text), "parse"));
  }
}
BENCHMARK(BM_PredicateParse);

void BM_PredicateEvaluate(benchmark::State& state) {
  LabSession session = LabSession::Create();
  odb::Predicate p = ValueOrDie(
      odb::ParsePredicate("age > 30 && salary >= 60000"), "parse");
  odb::ObjectBuffer emp = ValueOrDie(
      session.db->GetObject(
          ValueOrDie(session.db->FirstObject("employee"), "first")),
      "get");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie(p.Evaluate(emp.value), "eval"));
  }
}
BENCHMARK(BM_PredicateEvaluate);

void BM_SelectBySelectivity(benchmark::State& state) {
  // Ages are uniform in [25, 65): the cutoff controls selectivity.
  int cutoff = static_cast<int>(state.range(0));
  LabSession session = BigLab(2000);
  odb::Predicate p = ValueOrDie(
      odb::ParsePredicate("age >= " + std::to_string(cutoff)), "parse");
  size_t selected = 0;
  for (auto _ : state) {
    std::vector<odb::Oid> result =
        ValueOrDie(session.db->Select("employee", p), "select");
    selected = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["cluster"] = 2000;
  state.counters["selected"] = static_cast<double>(selected);
}
BENCHMARK(BM_SelectBySelectivity)->Arg(25)->Arg(45)->Arg(60)->Arg(65);

void BM_SelectByClusterSize(benchmark::State& state) {
  int employees = static_cast<int>(state.range(0));
  LabSession session = BigLab(employees);
  odb::Predicate p =
      ValueOrDie(odb::ParsePredicate("age >= 45"), "parse");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(session.db->Select("employee", p), "select"));
  }
  state.SetItemsProcessed(state.iterations() * employees);
  state.counters["cluster"] = employees;
}
BENCHMARK(BM_SelectByClusterSize)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ParallelSelect(benchmark::State& state) {
  // The batched executor's partitioned scan: same 10k-object cluster
  // and predicate at 1 / 2 / 4 worker threads. Speedup tracks physical
  // cores; on a single-core host the three arms should roughly tie.
  int parallelism = static_cast<int>(state.range(0));
  LabSession session = BigLab(10000);
  odb::Predicate p =
      ValueOrDie(odb::ParsePredicate("age >= 45"), "parse");
  odb::exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &p;
  spec.parallelism = parallelism;
  for (auto _ : state) {
    odb::exec::ScanResult result =
        ValueOrDie(odb::exec::ExecuteScan(session.db.get(), spec),
                   "scan");
    benchmark::DoNotOptimize(result.rows.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  state.counters["threads"] = parallelism;
}
BENCHMARK(BM_ParallelSelect)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_FilteredSequencing(benchmark::State& state) {
  // The user-visible behaviour: `next` skips non-matching objects.
  LabSession session = BigLab(2000);
  CheckOk(session.interactor->ApplyConditionBox("employee", "age >= 60"),
          "apply");
  view::BrowseNode* node = session.interactor->FindObjectSet("employee");
  for (auto _ : state) {
    if (!node->Next().ok()) CheckOk(node->Reset(), "reset");
  }
}
BENCHMARK(BM_FilteredSequencing);

void BM_MenuBuiltVersusTypedPredicate(benchmark::State& state) {
  // Both §5.2 schemes produce the same predicate; verify equal cost.
  bool menu_built = state.range(0) == 1;
  LabSession session = LabSession::Create();
  odb::Predicate typed = ValueOrDie(
      odb::ParsePredicate("age >= 40 && salary < 120000"), "parse");
  odb::Predicate built = odb::Predicate::And(
      odb::Predicate::Compare(odb::Operand::Attribute("age"),
                              odb::CompareOp::kGe,
                              odb::Operand::Literal(odb::Value::Int(40))),
      odb::Predicate::Compare(
          odb::Operand::Attribute("salary"), odb::CompareOp::kLt,
          odb::Operand::Literal(odb::Value::Int(120000))));
  const odb::Predicate& p = menu_built ? built : typed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(session.db->Select("employee", p), "select"));
  }
  state.SetLabel(menu_built ? "menu-built" : "condition-box");
}
BENCHMARK(BM_MenuBuiltVersusTypedPredicate)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
