#ifndef ODEVIEW_DYNLINK_SYNTHESIZED_H_
#define ODEVIEW_DYNLINK_SYNTHESIZED_H_

#include <string>
#include <vector>

#include "dynlink/protocol.h"
#include "odb/schema.h"

namespace ode::dynlink {

/// Synthesized fallbacks, per the paper: "If the display function is
/// not provided, then OdeView will synthesize a display function,
/// possibly a rudimentary one" (§4.1), and likewise for `displaylist`
/// and `selectlist` (§5).

/// A rudimentary textual display function for `class_name`:
/// one scrollable text window showing, for each selected attribute,
/// `name: value` with nested structures indented and sets listed.
/// Honors encapsulation: only public data members are shown unless
/// `privileged` (the paper's debug mode that "selectively violates"
/// encapsulation).
DisplayFunction SynthesizeDisplayFunction(const odb::Schema& schema,
                                          const std::string& class_name,
                                          bool privileged = false);

/// Default displaylist: the public data members (own + inherited).
Result<std::vector<std::string>> SynthesizeDisplayList(
    const odb::Schema& schema, const std::string& class_name);

/// Default selectlist: public scalar members (int/real/bool/string) —
/// the attribute kinds the predicate language can compare.
Result<std::vector<std::string>> SynthesizeSelectList(
    const odb::Schema& schema, const std::string& class_name);

/// Renders the attribute lines the synthesized display shows (shared
/// with designer-written text displays and tests).
Result<std::string> FormatObjectText(const odb::Schema& schema,
                                     const odb::ObjectBuffer& object,
                                     const std::vector<std::string>& attrs,
                                     const std::vector<bool>& mask,
                                     bool privileged);

}  // namespace ode::dynlink

#endif  // ODEVIEW_DYNLINK_SYNTHESIZED_H_
