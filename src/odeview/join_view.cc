#include "odeview/join_view.h"

#include "common/strings.h"
#include "dynlink/synthesized.h"
#include "odb/exec/executor.h"
#include "owl/widgets.h"

namespace ode::view {

namespace {
constexpr owl::Size kSideWindowSize{40, 12};
}  // namespace

JoinView::JoinView(BrowseContext* context, std::string left_class,
                   std::string right_class, odb::Predicate predicate,
                   std::string predicate_text)
    : context_(context),
      left_class_(std::move(left_class)),
      right_class_(std::move(right_class)),
      predicate_(std::move(predicate)),
      predicate_text_(std::move(predicate_text)) {}

JoinView::~JoinView() {
  for (owl::WindowId id : {left_window_, right_window_, panel_window_}) {
    if (id != owl::kNoWindow) (void)context_->server->DestroyWindow(id);
  }
}

Result<std::unique_ptr<JoinView>> JoinView::Create(
    BrowseContext* context, const std::string& left_class,
    const std::string& right_class, odb::Predicate predicate,
    std::string predicate_text) {
  ODE_RETURN_IF_ERROR(context->db->GetClass(left_class).status());
  ODE_RETURN_IF_ERROR(context->db->GetClass(right_class).status());
  for (const std::string& path : predicate.AttributePaths()) {
    std::string first = Split(path, '.').front();
    if (first != "left" && first != "right") {
      return Status::InvalidArgument(
          "join predicates reference attributes as left.<attr> / "
          "right.<attr>; got '" +
          path + "'");
    }
  }
  std::unique_ptr<JoinView> view(
      new JoinView(context, left_class, right_class, std::move(predicate),
                   std::move(predicate_text)));
  ODE_RETURN_IF_ERROR(view->Materialize());
  ODE_RETURN_IF_ERROR(view->BuildPanel());
  return view;
}

Status JoinView::Materialize() {
  // Batched executor: hash join on an equality conjunct when one
  // exists, batched nested loop otherwise — replacing the per-pair
  // GetObject + combined-struct cross product. The view keeps the
  // separation principle: it receives only the sequenced pair list.
  odb::exec::JoinSpec spec;
  spec.left_class = left_class_;
  spec.right_class = right_class_;
  spec.predicate = &predicate_;
  ODE_ASSIGN_OR_RETURN(odb::exec::JoinResult result,
                       odb::exec::ExecuteJoin(context_->db, spec));
  pairs_ = std::move(result.pairs);
  return Status::OK();
}

Status JoinView::BuildPanel() {
  owl::Window* window = context_->server->CreateWindow(
      left_class_ + " x " + right_class_ + " join",
      owl::Server::kAutoPlace, owl::Size{52, 4});
  panel_window_ = window->id();
  owl::Widget* root = window->root();
  auto* reset = static_cast<owl::Button*>(
      root->AddChild(std::make_unique<owl::Button>(
          "reset", "reset", [this](owl::Button&) { (void)Reset(); })));
  reset->set_rect(owl::Rect{0, 0, 8, 1});
  auto* next = static_cast<owl::Button*>(
      root->AddChild(std::make_unique<owl::Button>(
          "next", "next", [this](owl::Button&) { (void)Next(); })));
  next->set_rect(owl::Rect{9, 0, 7, 1});
  auto* prev = static_cast<owl::Button*>(
      root->AddChild(std::make_unique<owl::Button>(
          "previous", "previous",
          [this](owl::Button&) { (void)Prev(); })));
  prev->set_rect(owl::Rect{17, 0, 11, 1});
  auto* label = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>(
          "pair-label", "0/" + std::to_string(pairs_.size()) +
                            " where " + predicate_text_)));
  label->set_rect(owl::Rect{0, 1, 52, 1});
  auto* status = static_cast<owl::Label*>(
      root->AddChild(std::make_unique<owl::Label>("status", "")));
  status->set_rect(owl::Rect{0, 2, 52, 1});
  return Status::OK();
}

Result<std::pair<odb::ObjectBuffer, odb::ObjectBuffer>> JoinView::Current()
    const {
  if (index_ < 0) {
    return Status::FailedPrecondition("join view has no current pair");
  }
  const auto& [left, right] = pairs_[static_cast<size_t>(index_)];
  ODE_ASSIGN_OR_RETURN(odb::ObjectBuffer lbuf,
                       context_->db->GetObject(left));
  ODE_ASSIGN_OR_RETURN(odb::ObjectBuffer rbuf,
                       context_->db->GetObject(right));
  return std::make_pair(std::move(lbuf), std::move(rbuf));
}

Status JoinView::Next() {
  if (index_ + 1 >= static_cast<int>(pairs_.size())) {
    return Status::OutOfRange("no more pairs in the join");
  }
  ++index_;
  return RefreshDisplays();
}

Status JoinView::Prev() {
  if (index_ <= 0) {
    return Status::OutOfRange("no pair before the current one");
  }
  --index_;
  return RefreshDisplays();
}

Status JoinView::Reset() {
  index_ = -1;
  if (owl::Window* window = context_->server->FindWindow(panel_window_)) {
    if (auto* label = dynamic_cast<owl::Label*>(
            window->FindWidget("pair-label"))) {
      label->set_text("0/" + std::to_string(pairs_.size()) + " where " +
                      predicate_text_);
    }
  }
  return Status::OK();
}

Status JoinView::RenderSide(const odb::ObjectBuffer& object, bool left) {
  // Resolve that side's own display function — "each displayed using
  // the corresponding display function" (inherited modules included).
  std::vector<std::string> formats =
      context_->repository->InheritedFormatsFor(
          context_->db->schema(), context_->db_name, object.class_name);
  dynlink::DisplayFunction synthesized;
  const dynlink::DisplayFunction* fn = nullptr;
  std::string format = formats.empty() ? "text" : formats.front();
  if (formats.empty()) {
    synthesized = dynlink::SynthesizeDisplayFunction(
        context_->db->schema(), object.class_name);
    fn = &synthesized;
  } else {
    ODE_ASSIGN_OR_RETURN(
        const dynlink::DisplayModule* module,
        context_->repository->FindInherited(context_->db->schema(),
                                            context_->db_name,
                                            object.class_name, format));
    ODE_ASSIGN_OR_RETURN(
        fn, context_->linker->Load(context_->db_name, module->class_name,
                                   format));
  }
  ODE_ASSIGN_OR_RETURN(dynlink::DisplayResources resources,
                       (*fn)(object, {}, {}));
  if (resources.windows.empty()) {
    return Status::DisplayFault("display function produced no windows");
  }
  const dynlink::WindowSpec& spec = resources.windows.front();
  owl::WindowId* slot = left ? &left_window_ : &right_window_;
  owl::Window* window =
      *slot == owl::kNoWindow ? nullptr
                              : context_->server->FindWindow(*slot);
  if (window == nullptr) {
    window = context_->server->CreateWindow(
        spec.title, owl::Server::kAutoPlace, kSideWindowSize);
    *slot = window->id();
    auto text = std::make_unique<owl::ScrollText>(
        "content", std::vector<std::string>{});
    text->set_rect(owl::Rect{0, 0, kSideWindowSize.width,
                             kSideWindowSize.height});
    window->root()->AddChild(std::move(text));
  }
  window->set_title(spec.title);
  window->set_open(true);
  if (auto* text =
          dynamic_cast<owl::ScrollText*>(window->FindWidget("content"))) {
    if (spec.kind == dynlink::WindowKind::kRasterImage) {
      text->set_lines({"<raster display: " +
                       std::to_string(spec.image_pbm.size()) +
                       "B bitmap>"});
    } else {
      text->set_lines(Split(spec.text, '\n'));
    }
  }
  return Status::OK();
}

Status JoinView::RefreshDisplays() {
  ODE_ASSIGN_OR_RETURN(auto pair, Current());
  ODE_RETURN_IF_ERROR(RenderSide(pair.first, /*left=*/true));
  ODE_RETURN_IF_ERROR(RenderSide(pair.second, /*left=*/false));
  if (owl::Window* window = context_->server->FindWindow(panel_window_)) {
    if (auto* label = dynamic_cast<owl::Label*>(
            window->FindWidget("pair-label"))) {
      label->set_text(std::to_string(index_ + 1) + "/" +
                      std::to_string(pairs_.size()) + " where " +
                      predicate_text_);
    }
  }
  return Status::OK();
}

}  // namespace ode::view
