#include "odb/pager.h"

#include <sys/stat.h>

namespace ode::odb {

Result<PageId> MemPager::Allocate() {
  auto page = std::make_unique<Page>();
  page->Zero();
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPager::Read(PageId id, Page* page) {
  if (id >= pages_.size()) {
    return Status::IOError("read of unallocated page " + std::to_string(id));
  }
  *page = *pages_[id];
  return Status::OK();
}

Status MemPager::Write(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::IOError("write of unallocated page " +
                           std::to_string(id));
  }
  *pages_[id] = page;
  return Status::OK();
}

uint32_t MemPager::page_count() const {
  return static_cast<uint32_t>(pages_.size());
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path,
                                                   bool create) {
  std::FILE* file = std::fopen(path.c_str(), create ? "w+b" : "r+b");
  if (file == nullptr) {
    return Status::IOError("cannot open database file '" + path + "'");
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IOError("cannot seek in '" + path + "'");
  }
  long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return Status::IOError("cannot stat '" + path + "'");
  }
  if (static_cast<size_t>(size) % kPageSize != 0) {
    std::fclose(file);
    return Status::Corruption("database file '" + path +
                              "' is not page-aligned");
  }
  auto count = static_cast<uint32_t>(static_cast<size_t>(size) / kPageSize);
  return std::unique_ptr<FilePager>(new FilePager(file, count, path));
}

FilePager::~FilePager() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<PageId> FilePager::Allocate() {
  Page zero;
  zero.Zero();
  PageId id = page_count_;
  ODE_RETURN_IF_ERROR(Write(id, zero));  // Write checks id < count+1 below
  return id;
}

Status FilePager::Read(PageId id, Page* page) {
  if (id >= page_count_) {
    return Status::IOError("read of unallocated page " + std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed in '" + path_ + "'");
  }
  if (std::fread(page->bytes(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short read of page " + std::to_string(id));
  }
  return Status::OK();
}

Status FilePager::Write(PageId id, const Page& page) {
  if (id > page_count_) {
    return Status::IOError("write of unallocated page " +
                           std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed in '" + path_ + "'");
  }
  if (std::fwrite(page.bytes(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short write of page " + std::to_string(id));
  }
  if (id == page_count_) ++page_count_;
  return Status::OK();
}

uint32_t FilePager::page_count() const { return page_count_; }

Status FilePager::Sync() {
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed for '" + path_ + "'");
  }
  return Status::OK();
}

}  // namespace ode::odb
