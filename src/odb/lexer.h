#ifndef ODEVIEW_ODB_LEXER_H_
#define ODEVIEW_ODB_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ode::odb {

/// Token categories produced by `Lexer`.
enum class TokenKind : uint8_t {
  kEnd = 0,
  kIdent,    ///< identifier or keyword
  kInt,      ///< integer literal
  kReal,     ///< floating literal
  kString,   ///< double-quoted string (text() has quotes stripped)
  kPunct,    ///< punctuation / operator, possibly multi-char ("==", "&&")
};

/// One lexical token with its source location.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< spelling (unescaped for strings)
  size_t offset = 0;    ///< byte offset of the token start in the input
  size_t length = 0;    ///< byte length in the input
  int line = 1;         ///< 1-based line number

  bool Is(TokenKind k) const { return kind == k; }
  bool IsPunct(std::string_view p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  bool IsIdent(std::string_view id) const {
    return kind == TokenKind::kIdent && text == id;
  }
};

/// A small hand-written lexer for the O++ schema subset and the
/// selection-predicate language. Handles `//` and `/* */` comments,
/// multi-character operators (== != <= >= && ||), and string escapes.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Tokenizes the whole input; fails on unterminated strings/comments
  /// or bytes outside the language alphabet.
  Result<std::vector<Token>> Tokenize();

  /// The raw input (for slicing source text by token offsets).
  std::string_view input() const { return input_; }

 private:
  std::string_view input_;
};

/// Sequential cursor over a token vector with convenience checks.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Next();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  size_t position() const { return pos_; }
  void Rewind(size_t position) { pos_ = position; }

  /// Consumes the next token if it matches; returns whether it did.
  bool TryConsumePunct(std::string_view p);
  bool TryConsumeIdent(std::string_view id);

  /// Consumes a required token or fails with a located message.
  Status ExpectPunct(std::string_view p);
  Status ExpectIdent(std::string_view id);
  Result<std::string> ExpectAnyIdent();

  /// Formats "line N: msg" using the current token's location.
  Status ErrorHere(const std::string& msg) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_LEXER_H_
