// lab_session: a faithful replay of the paper's Section 3 "A Sample
// Session", printing an ASCII rendering of the screen after each step
// so every figure of the paper (Figs. 1-10) can be compared against
// this program's output.

#include <cstdio>
#include <string>

#include "dynlink/lab_modules.h"
#include "odb/database.h"
#include "odb/labdb.h"
#include "odeview/app.h"
#include "owl/widgets.h"

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::ode::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

#define CHECK_ASSIGN(lhs, expr)                                     \
  auto lhs##_result = (expr);                                       \
  if (!lhs##_result.ok()) {                                         \
    std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                 lhs##_result.status().ToString().c_str());         \
    return 1;                                                       \
  }                                                                 \
  auto& lhs = *lhs##_result

void Figure(const char* id, const char* caption) {
  std::printf("\n================ %s: %s ================\n", id, caption);
}

void Screen(ode::view::OdeViewApp& app) {
  std::fputs(app.Screenshot().c_str(), stdout);
}

}  // namespace

int main() {
  using namespace ode;

  // The lab database: 55 employees, 7 managers, as in the paper.
  CHECK_ASSIGN(db, odb::Database::CreateInMemory("lab"));
  CHECK_OK(odb::BuildLabDatabase(db.get()));

  view::OdeViewApp app(150, 56);
  CHECK_OK(dynlink::RegisterLabDisplayModules(app.repository(), "lab",
                                              db->schema()));
  CHECK_OK(app.AddDatabaseBorrowed(db.get()));

  // ---- Figure 1: Initial Display -------------------------------------
  Figure("Figure 1", "Initial Display (the database window)");
  CHECK_OK(app.OpenInitialWindow());
  Screen(app);

  // ---- Figure 2: Lab Database (schema window) ------------------------
  Figure("Figure 2", "Lab Database - class relationship window");
  CHECK_OK(app.server()->ClickWidget(app.initial_window(), "db:lab"));
  view::DbInteractor* lab = app.FindInteractor("lab");
  if (lab == nullptr) return 1;
  std::printf("(DAG placement: %llu edge crossings)\n",
              static_cast<unsigned long long>(
                  lab->dag_view()->layout().crossings));
  Screen(app);

  // ---- Figure 3: Class Information Window for Employee ----------------
  Figure("Figure 3", "Class Information Window for employee");
  CHECK_OK(lab->OpenClassInfo("employee"));
  Screen(app);

  // ---- Figure 4: Class Definition --------------------------------------
  Figure("Figure 4", "Class Definition window for employee");
  CHECK_OK(app.server()->ClickWidget(lab->class_info_window("employee"),
                                     "definition"));
  Screen(app);

  // ---- Figure 5: Class Information Window for Manager -------------------
  Figure("Figure 5", "Class Information Window for manager");
  // The paper clicks manager in employee's subclass list.
  {
    owl::Window* info =
        app.server()->FindWindow(lab->class_info_window("employee"));
    auto* subs = dynamic_cast<owl::Menu*>(info->FindWidget("subs-menu"));
    CHECK_OK(subs->SelectItem("manager"));
  }
  Screen(app);

  // ---- Figure 6: Employee Object (text + picture) ------------------------
  Figure("Figure 6", "Employee object displayed in text and picture form");
  CHECK_OK(app.server()->ClickWidget(lab->class_info_window("employee"),
                                     "objects"));
  view::BrowseNode* employees = lab->FindObjectSet("employee");
  if (employees == nullptr) return 1;
  CHECK_OK(app.server()->ClickWidget(employees->panel_window(), "next"));
  CHECK_OK(app.server()->ClickWidget(employees->panel_window(),
                                     "fmt:text"));
  CHECK_OK(app.server()->ClickWidget(employees->panel_window(),
                                     "fmt:picture"));
  Screen(app);

  // ---- Figure 7: Employee's Department -------------------------------------
  Figure("Figure 7", "Employee's department via the dept button");
  CHECK_OK(app.server()->ClickWidget(employees->panel_window(),
                                     "ref:dept"));
  view::BrowseNode* dept = employees->FindChild("dept");
  if (dept == nullptr) return 1;
  CHECK_OK(dept->ToggleFormat("text"));
  Screen(app);

  // ---- Figure 8: Employee's Colleague -----------------------------------------
  Figure("Figure 8", "A colleague working in the same department");
  CHECK_OK(app.server()->ClickWidget(dept->panel_window(),
                                     "set:employees"));
  view::BrowseNode* colleagues = dept->FindChild("employees");
  if (colleagues == nullptr) return 1;
  CHECK_OK(colleagues->ToggleFormat("text"));
  CHECK_OK(app.server()->ClickWidget(colleagues->panel_window(), "next"));
  Screen(app);

  // ---- Figure 9: Employee's Manager ---------------------------------------------
  Figure("Figure 9", "Chain of references: employee -> dept -> manager");
  CHECK_OK(app.server()->ClickWidget(dept->panel_window(), "ref:head"));
  view::BrowseNode* head = dept->FindChild("head");
  if (head == nullptr) return 1;
  CHECK_OK(head->ToggleFormat("text"));
  Screen(app);

  // ---- Figure 10: Synchronized Display ---------------------------------------------
  Figure("Figure 10",
         "After `next` on the employee set: the whole chain refreshed");
  CHECK_ASSIGN(before, dept->Current());
  CHECK_OK(app.server()->ClickWidget(employees->panel_window(), "next"));
  CHECK_ASSIGN(emp_now, employees->Current());
  CHECK_ASSIGN(dept_now, dept->Current());
  CHECK_ASSIGN(head_now, head->Current());
  std::printf(
      "(employee is now %s; department window follows to %s; manager "
      "window follows to %s — department changed: %s)\n",
      emp_now.value.FindField("name")->AsString().c_str(),
      dept_now.value.FindField("name")->AsString().c_str(),
      head_now.value.FindField("name")->AsString().c_str(),
      dept_now.oid == before.oid ? "no" : "yes");
  Screen(app);

  std::printf("\nsession complete: %zu windows, %llu events dispatched\n",
              app.server()->window_count(),
              static_cast<unsigned long long>(
                  app.server()->stats().events_dispatched));
  return 0;
}
