// Figure 7: following an embedded reference (employee -> department):
// lazy loading of the referenced object and its object window.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace ode::bench {
namespace {

void BM_ReferenceResolution(benchmark::State& state) {
  // The object-manager path: fetch employee, chase dept, fetch dept.
  LabSession session = LabSession::Create();
  odb::Database* db = session.db.get();
  std::vector<odb::Oid> employees =
      ValueOrDie(db->ScanCluster("employee"), "scan");
  size_t i = 0;
  for (auto _ : state) {
    odb::ObjectBuffer emp = ValueOrDie(
        db->GetObject(employees[i++ % employees.size()]), "employee");
    odb::Oid dept = emp.value.FindField("dept")->AsRef();
    benchmark::DoNotOptimize(ValueOrDie(db->GetObject(dept), "dept"));
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two object fetches
}
BENCHMARK(BM_ReferenceResolution);

void BM_FollowReferenceWindow(benchmark::State& state) {
  // The full Fig. 7 interaction: click the dept button — an object
  // window is created and bound to the referenced department.
  LabSession session = LabSession::Create();
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(node->Next(), "next");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(node->FollowReference("dept"), "follow"));
    state.PauseTiming();
    // Recreate the object-set tree so the next follow is cold.
    CheckOk(session.interactor->CloseObjectSet("employee"), "close");
    node = ValueOrDie(session.interactor->OpenObjectSet("employee"),
                      "reopen");
    CheckOk(node->Next(), "next");
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FollowReferenceWindow);

void BM_FollowReferenceIdempotent(benchmark::State& state) {
  // Re-clicking the dept button reuses the existing window.
  LabSession session = LabSession::Create();
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(node->Next(), "next");
  (void)ValueOrDie(node->FollowReference("dept"), "first follow");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(node->FollowReference("dept"), "refind"));
  }
}
BENCHMARK(BM_FollowReferenceIdempotent);

void BM_NullReferenceHandling(benchmark::State& state) {
  // Chasing a null reference must stay cheap (shows "<no object>").
  LabSession session = LabSession::Create();
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("department"), "set");
  CheckOk(node->Next(), "next");
  // department.head is set; employee.boss of managers is null — use a
  // manager's own "boss" instead.
  view::BrowseNode* managers =
      ValueOrDie(session.interactor->OpenObjectSet("manager"), "managers");
  CheckOk(managers->Next(), "next");
  view::BrowseNode* boss =
      ValueOrDie(managers->FollowReference("boss"), "follow");
  for (auto _ : state) {
    CheckOk(boss->RefreshSubtree(), "refresh");
    benchmark::DoNotOptimize(boss->has_current());
  }
}
BENCHMARK(BM_NullReferenceHandling);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
