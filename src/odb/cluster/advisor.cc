#include "odb/cluster/advisor.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "odb/page.h"
#include "odb/slotted_page.h"

namespace ode::odb::cluster {
namespace {

/// Unordered pair of local ids within one cluster (key.first < key.second).
using IdPair = std::pair<uint64_t, uint64_t>;

IdPair MakePair(uint64_t a, uint64_t b) {
  return a < b ? IdPair{a, b} : IdPair{b, a};
}

/// Co-location votes per cluster: id pair -> accumulated weight.
using PairWeights = std::map<IdPair, uint64_t>;

/// One sibling reference hanging off a hub object: a record of
/// `cluster` reached from the hub `count` times.
struct Sibling {
  uint64_t cluster = 0;
  uint64_t local = 0;
  uint64_t count = 0;
};

/// Accumulates direct and induced co-location votes from the edge list.
///
/// Direct: an intra-cluster edge is a vote between its endpoints.
/// Induced: records referenced from the same other object (all
/// employees of one department) are sorted by traversal count and
/// chained pairwise — linear in the sibling count, so a hub with a
/// thousand references never induces a half-million-pair clique.
std::map<ClusterId, PairWeights> AccumulateVotes(
    const std::vector<obs::AffinityEdge>& edges, uint64_t min_edge_weight,
    uint64_t* edges_considered) {
  std::map<ClusterId, PairWeights> votes;
  /// hub (cluster, local) -> records it references / is referenced by.
  std::map<IdPair, std::vector<Sibling>> hubs;
  for (const obs::AffinityEdge& edge : edges) {
    if (edge.count < min_edge_weight) continue;
    ++*edges_considered;
    if (edge.src_cluster == edge.dst_cluster) {
      if (edge.src_local == edge.dst_local) continue;
      votes[static_cast<ClusterId>(edge.src_cluster)]
           [MakePair(edge.src_local, edge.dst_local)] += edge.count;
      continue;
    }
    hubs[{edge.src_cluster, edge.src_local}].push_back(
        Sibling{edge.dst_cluster, edge.dst_local, edge.count});
    hubs[{edge.dst_cluster, edge.dst_local}].push_back(
        Sibling{edge.src_cluster, edge.src_local, edge.count});
  }
  for (auto& [hub, siblings] : hubs) {
    // Group the hub's references by the cluster they land in, then
    // chain each group's members strongest-first.
    std::sort(siblings.begin(), siblings.end(),
              [](const Sibling& a, const Sibling& b) {
                return std::tie(a.cluster, b.count, a.local) <
                       std::tie(b.cluster, a.count, b.local);
              });
    for (size_t i = 0; i + 1 < siblings.size(); ++i) {
      const Sibling& a = siblings[i];
      const Sibling& b = siblings[i + 1];
      if (a.cluster != b.cluster || a.local == b.local) continue;
      votes[static_cast<ClusterId>(a.cluster)][MakePair(a.local, b.local)] +=
          std::min(a.count, b.count);
    }
  }
  return votes;
}

/// On-page cost of keeping one record in a group.
uint64_t RecordCost(const HeapFile::Placement& placement) {
  return placement.stored_bytes + SlottedPage::kSlotSize;
}

/// Plans one cluster: greedy byte-budgeted grouping over its votes.
ClusterPlanEntry PlanCluster(ClusterId cluster, std::string class_name,
                             const PairWeights& votes,
                             const std::vector<HeapFile::Placement>& current) {
  ClusterPlanEntry entry;
  entry.cluster = cluster;
  entry.class_name = std::move(class_name);

  std::unordered_map<uint64_t, const HeapFile::Placement*> placed;
  placed.reserve(current.size());
  for (const HeapFile::Placement& p : current) placed[p.local_id] = &p;

  // Strongest votes first; endpoints deleted since the profile was
  // taken (no placement) drop out here.
  struct Vote {
    IdPair pair;
    uint64_t weight;
  };
  std::vector<Vote> ordered;
  ordered.reserve(votes.size());
  for (const auto& [pair, weight] : votes) {
    if (placed.count(pair.first) == 0 || placed.count(pair.second) == 0) {
      continue;
    }
    ordered.push_back(Vote{pair, weight});
  }
  std::sort(ordered.begin(), ordered.end(), [](const Vote& a, const Vote& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.pair < b.pair;
  });

  // A group never outgrows one slotted page's usable space.
  constexpr uint64_t kBudget = kPageUsableSize - SlottedPage::kHeaderSize;
  std::vector<PageGroup> groups;
  std::unordered_map<uint64_t, size_t> group_of;
  auto append = [&](size_t g, uint64_t id) {
    groups[g].members.push_back(id);
    groups[g].bytes += RecordCost(*placed[id]);
    group_of[id] = g;
  };
  for (const Vote& vote : ordered) {
    auto [a, b] = vote.pair;
    auto ita = group_of.find(a);
    auto itb = group_of.find(b);
    if (ita == group_of.end() && itb == group_of.end()) {
      uint64_t bytes = RecordCost(*placed[a]) + RecordCost(*placed[b]);
      if (bytes > kBudget) continue;
      groups.push_back(PageGroup{});
      append(groups.size() - 1, a);
      append(groups.size() - 1, b);
    } else if (ita == group_of.end() || itb == group_of.end()) {
      size_t g = ita == group_of.end() ? itb->second : ita->second;
      uint64_t id = ita == group_of.end() ? a : b;
      if (groups[g].bytes + RecordCost(*placed[id]) > kBudget) continue;
      append(g, id);
    } else if (ita->second != itb->second) {
      size_t ga = ita->second, gb = itb->second;
      if (groups[ga].bytes + groups[gb].bytes > kBudget) continue;
      if (groups[ga].members.size() < groups[gb].members.size()) {
        std::swap(ga, gb);
      }
      for (uint64_t id : groups[gb].members) {
        groups[ga].members.push_back(id);
        group_of[id] = ga;
      }
      groups[ga].bytes += groups[gb].bytes;
      groups[gb].members.clear();
      groups[gb].bytes = 0;
    }
  }

  // Compact away groups emptied by merging; singletons cannot occur
  // (groups start with two members and only ever grow).
  for (PageGroup& group : groups) {
    if (group.members.size() < 2) continue;
    entry.groups.push_back(std::move(group));
  }

  // Cost model: affinity weight crossing a page boundary now vs. under
  // the plan. A kept group becomes one page; everything else keeps its
  // current placement.
  std::unordered_map<uint64_t, size_t> final_group;
  for (size_t g = 0; g < entry.groups.size(); ++g) {
    for (uint64_t id : entry.groups[g].members) final_group[id] = g;
  }
  auto planned_page = [&](uint64_t id) -> std::pair<bool, uint64_t> {
    auto it = final_group.find(id);
    if (it != final_group.end()) return {true, it->second};
    return {false, placed[id]->page};
  };
  for (const Vote& vote : ordered) {
    auto [a, b] = vote.pair;
    if (placed[a]->page != placed[b]->page) {
      entry.cross_page_before += vote.weight;
    }
    if (planned_page(a) != planned_page(b)) {
      entry.cross_page_after += vote.weight;
    }
  }
  return entry;
}

}  // namespace

Result<ClusterPlan> BuildClusterPlan(Database* db,
                                     const obs::AccessProfile& profile,
                                     const AdvisorOptions& options) {
  ClusterPlan plan;
  std::map<ClusterId, PairWeights> votes = AccumulateVotes(
      profile.edges, options.min_edge_weight, &plan.edges_considered);
  for (const auto& [cluster, pair_weights] : votes) {
    ODE_ASSIGN_OR_RETURN(std::string class_name, db->ClassOfCluster(cluster));
    ODE_ASSIGN_OR_RETURN(std::vector<HeapFile::Placement> current,
                         db->ClusterPlacements(class_name));
    ClusterPlanEntry entry =
        PlanCluster(cluster, std::move(class_name), pair_weights, current);
    if (entry.groups.empty()) continue;
    plan.cross_page_before += entry.cross_page_before;
    plan.cross_page_after += entry.cross_page_after;
    for (const PageGroup& group : entry.groups) {
      plan.planned_moves += group.members.size();
    }
    plan.clusters.push_back(std::move(entry));
  }
  static obs::Counter* builds =
      obs::Registry::Global().counter("cluster.plan.builds");
  builds->Increment();
  return plan;
}

Result<ClusterPlan> BuildClusterPlanFromTrace(Database* db,
                                              const std::string& trace_path,
                                              const AdvisorOptions& options) {
  ODE_ASSIGN_OR_RETURN(obs::AccessTrace trace,
                       obs::ReadAccessTrace(trace_path));
  // Fold the capture's affinity records into an edge list; event
  // records only feed heat, which the advisor does not use.
  std::map<std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>, uint64_t>
      counts;
  for (const obs::AccessTraceRecord& record : trace.records) {
    if (record.kind != obs::AccessTraceRecord::Kind::kAffinity) continue;
    counts[{record.src_cluster, record.src_local, record.dst_cluster,
            record.dst_local}] += 1;
  }
  obs::AccessProfile profile;
  profile.edges.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    obs::AffinityEdge edge;
    edge.src_cluster = std::get<0>(key);
    edge.src_local = std::get<1>(key);
    edge.dst_cluster = std::get<2>(key);
    edge.dst_local = std::get<3>(key);
    edge.count = count;
    profile.edges.push_back(edge);
  }
  return BuildClusterPlan(db, profile, options);
}

std::string ClusterPlan::Summary() const {
  std::ostringstream os;
  size_t groups = 0;
  for (const ClusterPlanEntry& entry : clusters) groups += entry.groups.size();
  os << "clustering plan: " << clusters.size() << " cluster(s), " << groups
     << " page group(s), " << planned_moves << " move(s) planned\n";
  os << "  cross-page affinity: before=" << cross_page_before
     << " after=" << cross_page_after << " predicted_saving="
     << static_cast<int>(PredictedSavingRatio() * 100.0 + 0.5) << "%\n";
  for (const ClusterPlanEntry& entry : clusters) {
    size_t moves = 0;
    for (const PageGroup& group : entry.groups) moves += group.members.size();
    os << "  " << entry.class_name << ": " << entry.groups.size()
       << " group(s), " << moves << " move(s), before="
       << entry.cross_page_before << " after=" << entry.cross_page_after
       << "\n";
  }
  return os.str();
}

}  // namespace ode::odb::cluster
