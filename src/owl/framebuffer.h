#ifndef ODEVIEW_OWL_FRAMEBUFFER_H_
#define ODEVIEW_OWL_FRAMEBUFFER_H_

#include <string>
#include <string_view>
#include <vector>

#include "owl/bitmap.h"
#include "owl/geometry.h"

namespace ode::owl {

/// A character-cell frame buffer the headless server composes windows
/// into. Tests and examples assert on / print its `ToString()`.
class Framebuffer {
 public:
  Framebuffer(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Fills the whole buffer with `fill`.
  void Clear(char fill = ' ');

  /// Single-cell write; out-of-bounds writes are clipped.
  void Put(int x, int y, char c);
  char At(int x, int y) const;  ///< out-of-bounds reads return ' '

  /// Writes `text` starting at (x, y), clipped to the row.
  void DrawText(int x, int y, std::string_view text);

  /// Horizontal / vertical runs of `c`.
  void DrawHLine(int x, int y, int length, char c = '-');
  void DrawVLine(int x, int y, int length, char c = '|');

  /// Box outline with '+' corners.
  void DrawBox(const Rect& rect);

  /// Fills a rectangle with `c`.
  void FillRect(const Rect& rect, char c);

  /// Blits a bitmap using `on`/`off` characters at (x, y).
  void DrawBitmap(int x, int y, const Bitmap& bitmap, char on = '#',
                  char off = ' ');

  /// The full buffer as newline-separated rows (trailing spaces kept,
  /// so output is rectangular and diffable).
  std::string ToString() const;

  /// One row (for targeted assertions).
  std::string Row(int y) const;

 private:
  int width_;
  int height_;
  std::vector<char> cells_;
};

}  // namespace ode::owl

#endif  // ODEVIEW_OWL_FRAMEBUFFER_H_
