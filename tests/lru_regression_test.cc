// Pins down the sharded pool's per-shard replacement semantics: LRU
// eviction order, pin-blocks-eviction, and the shard-count policy.
// These are single-threaded regression tests — the concurrency battery
// lives in concurrency_test.cc.
#include <cstring>

#include <gtest/gtest.h>

#include "odb/buffer_pool.h"
#include "odb/pager.h"

namespace ode::odb {
namespace {

void AllocatePages(MemPager* pager, int n) {
  for (int i = 0; i < n; ++i) EXPECT_TRUE(pager->Allocate().ok());
}

// --- Shard-count policy ------------------------------------------------

TEST(LruRegressionTest, SmallPoolsStaySingleSharded) {
  MemPager pager;
  AllocatePages(&pager, 1);
  EXPECT_EQ(BufferPool(&pager, 1).shard_count(), 1u);
  EXPECT_EQ(BufferPool(&pager, 8).shard_count(), 1u);
  EXPECT_EQ(BufferPool(&pager, 32).shard_count(), 1u);
}

TEST(LruRegressionTest, LargePoolsShardUpToEight) {
  MemPager pager;
  AllocatePages(&pager, 1);
  EXPECT_EQ(BufferPool(&pager, 64).shard_count(), 2u);
  EXPECT_EQ(BufferPool(&pager, 256).shard_count(), 8u);
  EXPECT_EQ(BufferPool(&pager, 4096).shard_count(), 8u);
}

TEST(LruRegressionTest, ExplicitShardsClampedToCapacity) {
  MemPager pager;
  AllocatePages(&pager, 1);
  EXPECT_EQ(BufferPool(&pager, 1, /*shards=*/8).shard_count(), 1u);
  EXPECT_EQ(BufferPool(&pager, 3, /*shards=*/8).shard_count(), 3u);
  EXPECT_EQ(BufferPool(&pager, 16, /*shards=*/4).shard_count(), 4u);
}

// --- Single shard: seed-identical LRU ----------------------------------

// Capacity 3, one shard: fetching a fourth page evicts the
// least-recently-used of the first three; re-touching changes the order.
TEST(LruRegressionTest, SingleShardEvictsColdestFirst) {
  MemPager pager;
  AllocatePages(&pager, 5);
  BufferPool pool(&pager, /*capacity=*/3, /*shards=*/1);

  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(2).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // 0 now hottest; order: 0,2,1

  ASSERT_TRUE(pool.Fetch(3).ok());  // evicts 1
  EXPECT_FALSE(pool.Cached(1));
  EXPECT_TRUE(pool.Cached(0));
  EXPECT_TRUE(pool.Cached(2));

  ASSERT_TRUE(pool.Fetch(4).ok());  // evicts 2
  EXPECT_FALSE(pool.Cached(2));
  EXPECT_TRUE(pool.Cached(0));
  EXPECT_EQ(pool.stats().evictions, 2u);
}

// --- Per-shard independence -------------------------------------------

// Capacity 4 over 2 shards (2 frames each); page id % 2 picks the
// shard. Filling the even shard must not evict odd-shard residents.
TEST(LruRegressionTest, EvictionIsPerShard) {
  MemPager pager;
  AllocatePages(&pager, 10);
  BufferPool pool(&pager, /*capacity=*/4, /*shards=*/2);

  ASSERT_TRUE(pool.Fetch(1).ok());  // odd shard
  ASSERT_TRUE(pool.Fetch(3).ok());  // odd shard now full

  // Churn the even shard well past its 2 frames.
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(2).ok());
  ASSERT_TRUE(pool.Fetch(4).ok());
  ASSERT_TRUE(pool.Fetch(6).ok());
  ASSERT_TRUE(pool.Fetch(8).ok());

  // Odd residents survived the even-shard churn.
  EXPECT_TRUE(pool.Cached(1));
  EXPECT_TRUE(pool.Cached(3));
  // Even shard holds its own LRU tail only.
  EXPECT_FALSE(pool.Cached(0));
  EXPECT_TRUE(pool.Cached(6));
  EXPECT_TRUE(pool.Cached(8));
}

// Capacity 2 over 2 shards: one pinned page exhausts its whole shard,
// so a second page of the same shard fails FailedPrecondition while the
// other shard keeps working.
TEST(LruRegressionTest, PinBlocksEvictionPerShard) {
  MemPager pager;
  AllocatePages(&pager, 6);
  BufferPool pool(&pager, /*capacity=*/2, /*shards=*/2);

  Result<PageHandle> pinned = pool.Fetch(0);  // even shard's only frame
  ASSERT_TRUE(pinned.ok());

  Result<PageHandle> blocked = pool.Fetch(2);  // same shard, all pinned
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);

  // The odd shard is unaffected: fetch + churn both fine.
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(3).ok());
  ASSERT_TRUE(pool.Fetch(5).ok());

  pinned->Release();
  EXPECT_TRUE(pool.Fetch(2).ok());  // now evictable
}

// Dirty frames evicted from one shard are written back, and writebacks
// are counted.
TEST(LruRegressionTest, DirtyEvictionWritesBackPerShard) {
  MemPager pager;
  AllocatePages(&pager, 6);
  BufferPool pool(&pager, /*capacity=*/2, /*shards=*/2);

  {
    Result<PageHandle> handle = pool.Fetch(0, PageIntent::kWrite);
    ASSERT_TRUE(handle.ok());
    handle->page()->bytes()[0] = 'X';
    handle->MarkDirty();
  }
  ASSERT_TRUE(pool.Fetch(2).ok());  // evicts dirty page 0

  Page page;
  ASSERT_TRUE(pager.Read(0, &page).ok());
  EXPECT_EQ(page.bytes()[0], 'X');
  EXPECT_GE(pool.stats().writebacks, 1u);
}

}  // namespace
}  // namespace ode::odb
