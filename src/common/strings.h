#ifndef ODEVIEW_COMMON_STRINGS_H_
#define ODEVIEW_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ode {

/// Removes ASCII whitespace from both ends of `s`.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` begins with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy of `s`.
std::string ToLower(std::string_view s);

/// Pads or truncates `s` to exactly `width` characters (left-aligned).
std::string PadTo(std::string_view s, size_t width);

/// Wraps `text` into lines at most `width` characters long, breaking at
/// spaces when possible. Existing newlines are honored.
std::vector<std::string> WrapText(std::string_view text, size_t width);

}  // namespace ode

#endif  // ODEVIEW_COMMON_STRINGS_H_
