#include "odeview/display_state.h"

#include <algorithm>

namespace ode::view {

bool ClusterDisplayState::IsOpen(std::string_view format) const {
  for (const std::string& f : open_formats) {
    if (f == format) return true;
  }
  return false;
}

bool ClusterDisplayState::Toggle(const std::string& format) {
  auto it = std::find(open_formats.begin(), open_formats.end(), format);
  if (it != open_formats.end()) {
    open_formats.erase(it);
    return false;
  }
  open_formats.push_back(format);
  return true;
}

ClusterDisplayState* DisplayStateRegistry::StateFor(
    const std::string& db_name, const std::string& class_name) {
  return &states_[{db_name, class_name}];
}

const ClusterDisplayState* DisplayStateRegistry::FindState(
    const std::string& db_name, const std::string& class_name) const {
  auto it = states_.find({db_name, class_name});
  return it == states_.end() ? nullptr : &it->second;
}

std::vector<bool> BuildProjectionMask(
    const std::vector<std::string>& displaylist,
    const std::vector<std::string>& chosen) {
  std::vector<bool> mask(displaylist.size(), false);
  for (size_t i = 0; i < displaylist.size(); ++i) {
    for (const std::string& c : chosen) {
      if (displaylist[i] == c) {
        mask[i] = true;
        break;
      }
    }
  }
  return mask;
}

}  // namespace ode::view
