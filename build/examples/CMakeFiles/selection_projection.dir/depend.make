# Empty dependencies file for selection_projection.
# This may be replaced when dependencies are built.
