# Empty compiler generated dependencies file for bench_fig07_reference_chase.
# This may be replaced when dependencies are built.
