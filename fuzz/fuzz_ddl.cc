/// Fuzzes the O++ DDL front end (lexer + schema parser) — schema text
/// arrives from users and from stored catalogs, so arbitrarily nested
/// `set<array<...>>` types, unterminated tokens, and garbage bytes
/// must all come back as InvalidArgument, never as a crash or a stack
/// overflow.

#include <cstdint>
#include <string_view>

#include "odb/ddl_parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view source(reinterpret_cast<const char*>(data), size);
  (void)ode::odb::ParseSchema(source);
  (void)ode::odb::ParseClassDef(source);
  return 0;
}
