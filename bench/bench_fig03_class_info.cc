// Figures 3 & 5: class-information windows — superclasses, subclasses,
// and metadata (object counts), for employee (single inheritance) and
// manager (multiple inheritance).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "odb/ddl_parser.h"

namespace ode::bench {
namespace {

void BM_ClassInfoOpen(benchmark::State& state) {
  LabSession session = LabSession::Create();
  const char* cls = state.range(0) == 0 ? "employee" : "manager";
  for (auto _ : state) {
    CheckOk(session.interactor->OpenClassInfo(cls), "open info");
    state.PauseTiming();
    // OnClassChanged destroys the window so the next open is cold.
    CheckOk(session.interactor->OnClassChanged(cls), "reset");
    state.ResumeTiming();
  }
  state.SetLabel(cls);
}
BENCHMARK(BM_ClassInfoOpen)->Arg(0)->Arg(1);

void BM_ClassInfoReopenWarm(benchmark::State& state) {
  LabSession session = LabSession::Create();
  CheckOk(session.interactor->OpenClassInfo("employee"), "first open");
  for (auto _ : state) {
    CheckOk(session.interactor->OpenClassInfo("employee"), "reopen");
  }
}
BENCHMARK(BM_ClassInfoReopenWarm);

void BM_ClassMetadataQueries(benchmark::State& state) {
  // The data the info window shows: supers, subs, and object count.
  LabSession session = LabSession::Create();
  odb::Database* db = session.db.get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(db->schema().DirectSuperclasses("manager"), "supers"));
    benchmark::DoNotOptimize(
        ValueOrDie(db->schema().DirectSubclasses("employee"), "subs"));
    benchmark::DoNotOptimize(
        ValueOrDie(db->ClusterCount("employee"), "count"));
  }
}
BENCHMARK(BM_ClassMetadataQueries);

void BM_SubclassScanVsSchemaSize(benchmark::State& state) {
  // DirectSubclasses scans every class definition; show the growth.
  int classes = static_cast<int>(state.range(0));
  odb::Schema schema = ValueOrDie(
      odb::ParseSchema(odb::SyntheticSchemaDdl(classes, 2, 3)), "parse");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(schema.DirectSubclasses("cls_0"), "subs"));
  }
  state.counters["classes"] = classes;
}
BENCHMARK(BM_SubclassScanVsSchemaSize)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
