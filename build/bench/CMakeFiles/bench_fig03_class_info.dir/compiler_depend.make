# Empty compiler generated dependencies file for bench_fig03_class_info.
# This may be replaced when dependencies are built.
