#ifndef ODEVIEW_ODB_HEAP_FILE_H_
#define ODEVIEW_ODB_HEAP_FILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/access_log.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading.h"
#include "odb/buffer_pool.h"
#include "odb/catalog.h"
#include "odb/page.h"

namespace ode::odb {

/// A chain of slotted pages storing the records of one cluster.
///
/// Records are keyed by a 64-bit logical id (the `Oid::local` part).
/// Each stored record is `varint(local_id) || flag || body`, so the
/// id→location directory can be rebuilt by scanning the chain at open.
/// Small payloads are stored inline (flag 0); payloads that do not fit
/// a page spill to an overflow blob chain (flag 1, body = head page +
/// size) allocated from the shared free list — a large object (e.g. a
/// department whose `employees` set holds thousands of references) is
/// transparent to callers. Iteration order is ascending logical id,
/// which equals creation order because ids are assigned monotonically —
/// this is the order the paper's `next` / `previous` buttons sequence
/// through a cluster.
///
/// Thread-safety: every public method locks an internal reader/writer
/// lock — lookups and sequencing run shared (concurrent scans proceed
/// in parallel), mutations run exclusive. Page content is additionally
/// protected by the buffer pool's per-frame latches, so several heaps
/// sharing one pool are safe too. Sequencing (`NextId` / `PrevId`)
/// schedules the following heap page on the pool's prefetch thread,
/// accelerating `reset`/`next`/`previous` control-panel traffic.
class HeapFile {
 public:
  /// Physical address of a record.
  struct Location {
    PageId page = kNoPage;
    uint16_t slot = 0;
  };

  /// One record's payload inside a caller-supplied arena (see
  /// `NextRecordsInto`).
  struct RecordSpan {
    uint64_t local_id = 0;
    size_t offset = 0;
    size_t length = 0;
  };

  /// One record's current physical placement plus its stored (on-page)
  /// size — the clustering advisor's packing input.
  struct Placement {
    uint64_t local_id = 0;
    PageId page = kNoPage;
    uint16_t slot = 0;
    uint32_t stored_bytes = 0;  ///< bytes the record occupies on-page
  };

  /// Creates an empty heap (allocates the first page). `free_list`
  /// supplies/reclaims overflow pages and must outlive the heap.
  static Result<HeapFile> Create(BufferPool* pool, FreeList* free_list);

  /// Opens an existing heap rooted at `first_page`, rebuilding the
  /// directory by scanning the chain.
  static Result<HeapFile> Open(BufferPool* pool, FreeList* free_list,
                               PageId first_page);

  HeapFile(HeapFile&&) = default;
  HeapFile& operator=(HeapFile&&) = default;
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  PageId first_page() const { return first_page_; }
  uint64_t count() const;

  /// Inserts the record for `local_id`; the id must be fresh.
  Status Insert(uint64_t local_id, std::string_view payload);

  /// Copies out the payload for `local_id`.
  Result<std::string> Get(uint64_t local_id) const;

  /// Replaces the payload (relocating the record when it grew).
  Status Update(uint64_t local_id, std::string_view payload);

  /// Removes the record.
  Status Delete(uint64_t local_id);

  bool Contains(uint64_t local_id) const;

  /// Sequencing in ascending-id order; all fail with NotFound on an
  /// empty heap / OutOfRange past either end.
  Result<uint64_t> FirstId() const;
  Result<uint64_t> LastId() const;
  Result<uint64_t> NextId(uint64_t after) const;
  Result<uint64_t> PrevId(uint64_t before) const;

  /// Fused sequencing + fetch: up to `limit` (id, payload) pairs
  /// following `after` (ascending) / preceding `before` (descending),
  /// under a single lock round-trip. Consecutive records on one page
  /// share a single pool fetch, so a batched scan costs a fraction of
  /// the equivalent NextId/PrevId + Get sequence. Fails with
  /// OutOfRange when no record exists past the bound.
  Result<std::vector<std::pair<uint64_t, std::string>>> NextRecords(
      uint64_t after, size_t limit) const;
  Result<std::vector<std::pair<uint64_t, std::string>>> PrevRecords(
      uint64_t before, size_t limit) const;

  /// Allocation-free variant of `NextRecords` for the batched
  /// executor: payloads are appended to `*arena` back to back and
  /// described by spans, so a warm caller that reuses the arena pays
  /// zero heap allocations per batch instead of one per record. Both
  /// outputs are cleared first (capacity retained). Same OutOfRange
  /// contract as `NextRecords`.
  Status NextRecordsInto(uint64_t after, size_t limit, std::string* arena,
                         std::vector<RecordSpan>* spans) const;

  /// All ids in ascending order (for tests and bulk operations).
  std::vector<uint64_t> AllIds() const;

  /// Current placement (page, slot, stored size) of every record,
  /// ascending id — the snapshot the clustering advisor packs from.
  Result<std::vector<Placement>> RecordPlacements() const;

  /// Moves the record for `local_id` onto `target_page` (which must be
  /// a chain page with room). The record is inserted on the target
  /// first and tombstoned at its old location second, and the OID stays
  /// valid throughout because lookups go via the id→location directory
  /// — the move is invisible to readers. No-op when the record already
  /// lives on `target_page`. Fails OutOfRange when the target page is
  /// full (the reorganizer then asks for a fresh tail page).
  Status RelocateRecord(uint64_t local_id, PageId target_page);

  /// Appends a fresh empty page to the chain (even when the current
  /// tail still has room) and returns its id — the reorganizer's
  /// destination allocator, so each plan group starts on its own page.
  Result<PageId> AllocateTailPage();

  /// Number of pages in the chain.
  Result<uint32_t> PageCount() const;

  /// Count of records currently stored out-of-line (for tests/stats).
  Result<uint64_t> OverflowCount() const;

  /// Wires this heap to the access observatory: subsequent record
  /// operations are charged to (`cluster`, `class_label`) by the
  /// sampled access recorder. `class_label` must have static storage
  /// duration (use `obs::Journal::InternLabel`). The database sets
  /// this before publishing the heap, so no synchronization beyond the
  /// publication's happens-before is needed; an unwired heap (tests,
  /// bootstrap) records nothing.
  void SetAccessAttribution(uint64_t cluster, const char* class_label) {
    access_cluster_ = cluster;
    access_label_ = class_label;
  }

 private:
  HeapFile(BufferPool* pool, FreeList* free_list, PageId first_page)
      : pool_(pool),
        free_list_(free_list),
        first_page_(first_page),
        mu_(std::make_unique<SharedMutex>(LockRank::kHeapFile)) {}

  Status ScanChain() ODE_REQUIRES(*mu_);
  /// Unlocked implementations; callers hold `mu_` as noted.
  Result<uint64_t> NextIdLocked(uint64_t after) const
      ODE_REQUIRES_SHARED(*mu_);
  Result<uint64_t> PrevIdLocked(uint64_t before) const
      ODE_REQUIRES_SHARED(*mu_);
  Result<std::string> GetLocked(uint64_t local_id) const
      ODE_REQUIRES_SHARED(*mu_);
  /// Reads one record, reusing `*handle` when the record lives on the
  /// page already held (`*held`); releases the handle before chasing
  /// an overflow chain so at most one page is latched at a time.
  Result<std::string> ReadRecordLocked(uint64_t local_id,
                                       const Location& loc,
                                       PageHandle* handle,
                                       PageId* held) const
      ODE_REQUIRES_SHARED(*mu_);
  /// `ReadRecordLocked` into an arena: appends the payload to `*arena`
  /// and returns its length, avoiding a per-record string.
  Result<size_t> AppendRecordLocked(uint64_t local_id, const Location& loc,
                                    PageHandle* handle, PageId* held,
                                    std::string* arena) const
      ODE_REQUIRES_SHARED(*mu_);
  Status UpdateLocked(uint64_t local_id, std::string_view payload)
      ODE_REQUIRES(*mu_);
  Status DeleteLocked(uint64_t local_id) ODE_REQUIRES(*mu_);
  /// Finds a page with room for `needed` bytes, extending the chain if
  /// necessary; returns the page id.
  Result<PageId> FindPageWithRoom(size_t needed) ODE_REQUIRES(*mu_);
  /// Builds the stored record for `payload` (inline or spilled).
  Result<std::string> MakeStoredRecord(uint64_t local_id,
                                       std::string_view payload);
  /// Frees the overflow chain of a stored record, if it has one.
  Status ReleaseOverflow(std::string_view stored_record);

  /// Charges one sampled access event for `local_id` at `page`.
  void ChargeAccess(obs::AccessOp op, uint64_t local_id, PageId page) const;

  BufferPool* pool_;
  FreeList* free_list_;
  PageId first_page_;
  /// Access-observatory attribution (0/null until wired; see
  /// `SetAccessAttribution`).
  uint64_t access_cluster_ = 0;
  const char* access_label_ = nullptr;
  /// Readers share, writers exclude. Held in a unique_ptr so the heap
  /// stays movable (it lives by value in Database's cluster map).
  /// Rank kHeapFile (30): held across free-list calls (50) and page
  /// fetches (60/70), so it sits near the bottom of the lock order.
  mutable std::unique_ptr<SharedMutex> mu_;
  PageId last_page_ ODE_GUARDED_BY(*mu_) = kNoPage;
  std::map<uint64_t, Location> directory_ ODE_GUARDED_BY(*mu_);
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_HEAP_FILE_H_
