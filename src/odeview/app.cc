#include "odeview/app.h"

#include "common/metrics.h"
#include "common/strings.h"
#include "owl/widgets.h"

namespace ode::view {

OdeViewApp::OdeViewApp(int screen_width, int screen_height)
    : server_(screen_width, screen_height) {}

OdeViewApp::~OdeViewApp() {
  interactors_.clear();  // interactors close their windows first
}

Status OdeViewApp::AddDatabase(std::unique_ptr<odb::Database> db) {
  ODE_RETURN_IF_ERROR(AddDatabaseBorrowed(db.get()));
  owned_databases_.push_back(std::move(db));
  return Status::OK();
}

Status OdeViewApp::AddDatabaseBorrowed(odb::Database* db) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (databases_.count(db->name()) != 0) {
    return Status::AlreadyExists("database '" + db->name() +
                                 "' already registered");
  }
  databases_[db->name()] = db;
  return Status::OK();
}

std::vector<std::string> OdeViewApp::DatabaseNames() const {
  std::vector<std::string> out;
  out.reserve(databases_.size());
  for (const auto& [name, db] : databases_) out.push_back(name);
  return out;
}

Result<odb::Database*> OdeViewApp::FindDatabase(
    const std::string& name) const {
  auto it = databases_.find(name);
  if (it == databases_.end()) {
    return Status::NotFound("database '" + name + "'");
  }
  return it->second;
}

Status OdeViewApp::OpenInitialWindow() {
  if (initial_window_ != owl::kNoWindow) {
    if (owl::Window* window = server_.FindWindow(initial_window_)) {
      window->set_open(true);
      return Status::OK();
    }
  }
  int rows = static_cast<int>(databases_.size());
  owl::Size size{36, std::max(3, rows + 2)};
  owl::Window* window =
      server_.CreateWindow("Ode databases", owl::Server::kAutoPlace, size);
  initial_window_ = window->id();
  auto* header = static_cast<owl::Label*>(window->root()->AddChild(
      std::make_unique<owl::Label>("header", "click a database icon:")));
  header->set_rect(owl::Rect{0, 0, size.width, 1});
  int y = 1;
  for (const auto& [name, db] : databases_) {
    auto* button = static_cast<owl::Button*>(window->root()->AddChild(
        std::make_unique<owl::Button>(
            "db:" + name, "() " + name, [this, name = name](owl::Button&) {
              (void)OpenDatabase(name);
            })));
    button->set_rect(owl::Rect{1, y, size.width - 2, 1});
    ++y;
  }
  return Status::OK();
}

Result<DbInteractor*> OdeViewApp::OpenDatabase(const std::string& name) {
  auto existing = interactors_.find(name);
  if (existing != interactors_.end()) {
    ODE_RETURN_IF_ERROR(existing->second->OpenSchemaWindow());
    return existing->second.get();
  }
  ODE_ASSIGN_OR_RETURN(odb::Database * db, FindDatabase(name));
  auto interactor = std::make_unique<DbInteractor>(
      &server_, &repository_, &display_states_, db);
  ODE_RETURN_IF_ERROR(interactor->OpenSchemaWindow());
  DbInteractor* raw = interactor.get();
  interactors_[name] = std::move(interactor);
  return raw;
}

DbInteractor* OdeViewApp::FindInteractor(const std::string& name) {
  auto it = interactors_.find(name);
  return it == interactors_.end() ? nullptr : it->second.get();
}

Status OdeViewApp::OpenStatsWindow() {
  constexpr owl::Size kStatsSize{64, 24};
  owl::Window* window = nullptr;
  if (stats_window_ != owl::kNoWindow) {
    window = server_.FindWindow(stats_window_);
  }
  if (window == nullptr) {
    window = server_.CreateWindow("Ode statistics", owl::Server::kAutoPlace,
                                  kStatsSize);
    stats_window_ = window->id();
    auto text = std::make_unique<owl::ScrollText>(
        "content", std::vector<std::string>{});
    text->set_rect(owl::Rect{0, 0, kStatsSize.width, kStatsSize.height});
    window->root()->AddChild(std::move(text));
  }
  window->set_open(true);
  return RefreshStatsWindow();
}

Status OdeViewApp::RefreshStatsWindow() {
  if (stats_window_ == owl::kNoWindow) {
    return Status::FailedPrecondition("stats window was never opened");
  }
  owl::Window* window = server_.FindWindow(stats_window_);
  if (window == nullptr) {
    return Status::NotFound("stats window has been destroyed");
  }
  auto* text =
      dynamic_cast<owl::ScrollText*>(window->FindWidget("content"));
  if (text == nullptr) {
    return Status::Internal("stats window lost its content widget");
  }
  text->set_lines(Split(obs::Registry::Global().RenderText(), '\n'));
  return Status::OK();
}

Status OdeViewApp::CloseDatabase(const std::string& name) {
  auto it = interactors_.find(name);
  if (it == interactors_.end()) {
    return Status::NotFound("database '" + name + "' is not open");
  }
  interactors_.erase(it);
  return Status::OK();
}

}  // namespace ode::view
