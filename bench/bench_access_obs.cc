// Overhead matrix for the access-pattern recorder.
//
// The reference-chase-style workload (point reads + a batched scan)
// runs in four flavors:
//   BM_ChaseControl      — recorder never started this flavor: each
//     charge site costs one relaxed load. CI gates
//     BM_ChaseRecorderOff : BM_ChaseControl at 1.05x — stopping the
//     recorder must return the engine to its undisturbed cost.
//   BM_ChaseRecorderOff  — recorder started then stopped before the
//     timed loop (tables allocated, counters warm, still one load).
//   BM_ChaseRecorderSampled — recorder on at 1-in-16 sampling, the
//     always-on production posture.
//   BM_ChaseRecorderFull — recorder on unsampled: every access pays
//     the ring append + heat-table CAS. CI gates Full : Off at 1.5x.
// Plus the scrape side: BM_HeatmapRender / BM_ProfileSnapshot against
// a populated recorder.

#include <benchmark/benchmark.h>

#include "bench/bench_scatter.h"
#include "bench/bench_util.h"
#include "common/access_log.h"

namespace ode::bench {
namespace {

odb::LabDbConfig BenchConfig() {
  odb::LabDbConfig config;
  config.employees = 400;
  return config;
}

/// One "chase": a handful of point reads plus a short batched scan —
/// the access mix a browse cascade generates.
void RunChase(odb::Session& session, const std::vector<odb::Oid>& oids) {
  for (size_t i = 0; i < 8 && i < oids.size(); ++i) {
    benchmark::DoNotOptimize(ValueOrDie(session.GetObject(oids[i]), "get"));
  }
  benchmark::DoNotOptimize(
      ValueOrDie(session.NextObjectBuffers(oids.front(), 16), "scan"));
}

std::vector<odb::Oid> ChaseOids(odb::Database* db) {
  std::vector<odb::Oid> oids;
  odb::Oid at = ValueOrDie(db->FirstObject("employee"), "first");
  oids.push_back(at);
  for (int i = 0; i < 15; ++i) {
    Result<odb::Oid> next = db->NextObject(at);
    if (!next.ok()) break;
    at = *next;
    oids.push_back(at);
  }
  return oids;
}

void BM_ChaseControl(benchmark::State& state) {
  obs::AccessLog::Global().ResetForTest();  // recorder off, tables cold
  LabSession session = LabSession::Create(BenchConfig());
  std::vector<odb::Oid> oids = ChaseOids(session.db.get());
  odb::Session db_session = session.db->OpenSession();
  for (auto _ : state) {
    RunChase(db_session, oids);
  }
}
BENCHMARK(BM_ChaseControl);

void BM_ChaseRecorderOff(benchmark::State& state) {
  obs::AccessLog& log = obs::AccessLog::Global();
  log.ResetForTest();
  LabSession session = LabSession::Create(BenchConfig());
  std::vector<odb::Oid> oids = ChaseOids(session.db.get());
  odb::Session db_session = session.db->OpenSession();
  // Exercise then stop: a recorder that has run must cost the same as
  // one that never did.
  log.Start();
  RunChase(db_session, oids);
  log.Stop();
  for (auto _ : state) {
    RunChase(db_session, oids);
  }
}
BENCHMARK(BM_ChaseRecorderOff);

void BM_ChaseRecorderSampled(benchmark::State& state) {
  obs::AccessLog& log = obs::AccessLog::Global();
  log.ResetForTest();
  LabSession session = LabSession::Create(BenchConfig());
  std::vector<odb::Oid> oids = ChaseOids(session.db.get());
  odb::Session db_session = session.db->OpenSession();
  log.Start(/*sample_period=*/16);
  for (auto _ : state) {
    RunChase(db_session, oids);
  }
  state.counters["recorded"] = static_cast<double>(log.recorded());
  log.Stop();
}
BENCHMARK(BM_ChaseRecorderSampled);

void BM_ChaseRecorderFull(benchmark::State& state) {
  obs::AccessLog& log = obs::AccessLog::Global();
  log.ResetForTest();
  LabSession session = LabSession::Create(BenchConfig());
  std::vector<odb::Oid> oids = ChaseOids(session.db.get());
  odb::Session db_session = session.db->OpenSession();
  log.Start(/*sample_period=*/1);
  for (auto _ : state) {
    RunChase(db_session, oids);
  }
  state.counters["recorded"] = static_cast<double>(log.recorded());
  state.counters["overwritten"] = static_cast<double>(log.overwritten());
  log.Stop();
}
BENCHMARK(BM_ChaseRecorderFull);

/// Scrape cost against a recorder populated by a full-rate run.
void BM_HeatmapRender(benchmark::State& state) {
  obs::AccessLog& log = obs::AccessLog::Global();
  log.ResetForTest();
  LabSession session = LabSession::Create(BenchConfig());
  std::vector<odb::Oid> oids = ChaseOids(session.db.get());
  odb::Session db_session = session.db->OpenSession();
  log.Start();
  for (int i = 0; i < 64; ++i) RunChase(db_session, oids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.RenderHeatmapJson());
  }
  log.Stop();
}
BENCHMARK(BM_HeatmapRender);

void BM_ProfileSnapshot(benchmark::State& state) {
  obs::AccessLog& log = obs::AccessLog::Global();
  log.ResetForTest();
  LabSession session = LabSession::Create(BenchConfig());
  std::vector<odb::Oid> oids = ChaseOids(session.db.get());
  odb::Session db_session = session.db->OpenSession();
  log.Start();
  for (int i = 0; i < 64; ++i) RunChase(db_session, oids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.SnapshotProfile());
  }
  log.Stop();
}
BENCHMARK(BM_ProfileSnapshot);

/// Full-rate recorder over the scattered hot-chain chase — the exact
/// workload whose profile feeds the clustering advisor. Uses the same
/// fixture as bench_cluster_reorg.cc so recorder overhead and reorg
/// payoff are measured against an identical layout.
void BM_ScatteredChaseRecorderFull(benchmark::State& state) {
  obs::AccessLog& log = obs::AccessLog::Global();
  log.ResetForTest();
  ScatteredBenchDb lab =
      MakeScatteredBenchDb(/*hot_count=*/64, /*cold_per_hot=*/4,
                           /*pool_pages=*/16);
  odb::Session db_session = lab.db->OpenSession();
  log.Start(/*sample_period=*/1);
  for (auto _ : state) {
    ChaseHotChain(db_session, lab.hot);
  }
  state.counters["recorded"] = static_cast<double>(log.recorded());
  log.Stop();
}
BENCHMARK(BM_ScatteredChaseRecorderFull);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
