
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/owl/bitmap.cc" "src/owl/CMakeFiles/ode_owl.dir/bitmap.cc.o" "gcc" "src/owl/CMakeFiles/ode_owl.dir/bitmap.cc.o.d"
  "/root/repo/src/owl/framebuffer.cc" "src/owl/CMakeFiles/ode_owl.dir/framebuffer.cc.o" "gcc" "src/owl/CMakeFiles/ode_owl.dir/framebuffer.cc.o.d"
  "/root/repo/src/owl/server.cc" "src/owl/CMakeFiles/ode_owl.dir/server.cc.o" "gcc" "src/owl/CMakeFiles/ode_owl.dir/server.cc.o.d"
  "/root/repo/src/owl/widget.cc" "src/owl/CMakeFiles/ode_owl.dir/widget.cc.o" "gcc" "src/owl/CMakeFiles/ode_owl.dir/widget.cc.o.d"
  "/root/repo/src/owl/widgets.cc" "src/owl/CMakeFiles/ode_owl.dir/widgets.cc.o" "gcc" "src/owl/CMakeFiles/ode_owl.dir/widgets.cc.o.d"
  "/root/repo/src/owl/window.cc" "src/owl/CMakeFiles/ode_owl.dir/window.cc.o" "gcc" "src/owl/CMakeFiles/ode_owl.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ode_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
