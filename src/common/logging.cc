#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "common/threading.h"

namespace ode {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<LogSink> g_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }
void SetLogSink(LogSink sink) { g_sink.store(sink); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_level.load()) return;
  if (LogSink sink = g_sink.load()) {
    sink(level, message);
    return;
  }
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm tm_buf;
  localtime_r(&seconds, &tm_buf);
  char when[16];
  std::strftime(when, sizeof(when), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s %s.%03d t%u %s:%d] %s\n", LevelName(level), when,
               static_cast<int>(millis), CurrentThreadId(), file, line,
               message.c_str());
}

}  // namespace ode
