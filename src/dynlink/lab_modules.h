#ifndef ODEVIEW_DYNLINK_LAB_MODULES_H_
#define ODEVIEW_DYNLINK_LAB_MODULES_H_

#include <string>

#include "common/status.h"
#include "dynlink/repository.h"
#include "odb/schema.h"

namespace ode::dynlink {

/// Registers the class-designer display modules for the lab database
/// (the compiled functions the paper's dynamic linker would load):
///  * employee: "text" (formatted attributes) and "picture" (the
///    portrait bitmap) — the two buttons of Fig. 6;
///  * manager: "text" and "picture" (inherits employee's media);
///  * department / project: "text";
///  * document: "text", "postscript", and "bitmap" (§4.1's multiple
///    media example).
///
/// `schema` must outlive the repository entries (the functions hold a
/// pointer to it for member/access metadata).
Status RegisterLabDisplayModules(ModuleRepository* repository,
                                 const std::string& db_name,
                                 const odb::Schema& schema);

/// Registers a deliberately buggy module (format "crash") for
/// `class_name`: it always returns a DisplayFault. Used to exercise
/// the fault-isolation behaviour of object-interactors (§4.6).
Status RegisterFaultyDisplayModule(ModuleRepository* repository,
                                   const std::string& db_name,
                                   const std::string& class_name);

}  // namespace ode::dynlink

#endif  // ODEVIEW_DYNLINK_LAB_MODULES_H_
