#include "odb/buffer_pool.h"

#include <cassert>

namespace ode::odb {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.id_ = kNoPage;
    other.dirty_ = false;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, dirty_);
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  if (capacity == 0) capacity = 1;
  frames_.resize(capacity);
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    TouchLru(it->second);
    return PageHandle(this, id, &frame.page);
  }
  ++stats_.misses;
  ODE_ASSIGN_OR_RETURN(size_t idx, AcquireFrame());
  Frame& frame = frames_[idx];
  ODE_RETURN_IF_ERROR(pager_->Read(id, &frame.page));
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.in_use = true;
  page_to_frame_[id] = idx;
  TouchLru(idx);
  return PageHandle(this, id, &frame.page);
}

Result<PageHandle> BufferPool::NewPage() {
  ODE_ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
  ODE_ASSIGN_OR_RETURN(size_t idx, AcquireFrame());
  Frame& frame = frames_[idx];
  frame.page.Zero();
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = true;  // ensure the zeroed page reaches the backend
  frame.in_use = true;
  page_to_frame_[id] = idx;
  TouchLru(idx);
  return PageHandle(this, id, &frame.page);
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) {
      ODE_RETURN_IF_ERROR(pager_->Write(frame.id, frame.page));
      frame.dirty = false;
      ++stats_.writebacks;
    }
  }
  return Status::OK();
}

Status BufferPool::Sync() {
  ODE_RETURN_IF_ERROR(FlushAll());
  return pager_->Sync();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = page_to_frame_.find(id);
  assert(it != page_to_frame_.end());
  if (it == page_to_frame_.end()) return;
  Frame& frame = frames_[it->second];
  assert(frame.pin_count > 0);
  if (frame.pin_count > 0) --frame.pin_count;
  if (dirty) frame.dirty = true;
}

Result<size_t> BufferPool::AcquireFrame() {
  // Unused frame first.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].in_use) return i;
  }
  // Evict the least recently used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t idx = *it;
    Frame& frame = frames_[idx];
    if (frame.pin_count > 0) continue;
    if (frame.dirty) {
      ODE_RETURN_IF_ERROR(pager_->Write(frame.id, frame.page));
      ++stats_.writebacks;
    }
    page_to_frame_.erase(frame.id);
    auto pos = lru_pos_.find(idx);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
    frame.in_use = false;
    frame.id = kNoPage;
    frame.dirty = false;
    ++stats_.evictions;
    return idx;
  }
  return Status::FailedPrecondition(
      "buffer pool exhausted: all frames pinned");
}

void BufferPool::TouchLru(size_t frame_index) {
  auto pos = lru_pos_.find(frame_index);
  if (pos != lru_pos_.end()) lru_.erase(pos->second);
  lru_.push_front(frame_index);
  lru_pos_[frame_index] = lru_.begin();
}

}  // namespace ode::odb
