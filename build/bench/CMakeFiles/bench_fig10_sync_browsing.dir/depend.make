# Empty dependencies file for bench_fig10_sync_browsing.
# This may be replaced when dependencies are built.
