#ifndef ODEVIEW_ODEVIEW_JOIN_VIEW_H_
#define ODEVIEW_ODEVIEW_JOIN_VIEW_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "odb/predicate.h"
#include "odeview/browse_node.h"

namespace ode::view {

/// A view over the join of two classes (§5.3).
///
/// "We have decided to display all the objects involved in the join
/// simultaneously — each displayed using the corresponding display
/// function." A JoinView sequences over the matching (left, right)
/// pairs; each step refreshes one display window per side, rendered by
/// that side's own class display function.
///
/// The join predicate is evaluated over a combined object
/// `{left: <left object>, right: <right object>}`, so condition-box
/// text like `left.dept == right.name` or `left.age > right.reports`
/// works unchanged through the ordinary predicate language.
class JoinView {
 public:
  /// Builds the join (nested-loop, materialized at creation) and its
  /// panel window. Fails if either class is unknown or the predicate
  /// references attributes outside `left.*` / `right.*`.
  static Result<std::unique_ptr<JoinView>> Create(
      BrowseContext* context, const std::string& left_class,
      const std::string& right_class, odb::Predicate predicate,
      std::string predicate_text);

  ~JoinView();
  JoinView(const JoinView&) = delete;
  JoinView& operator=(const JoinView&) = delete;

  const std::string& left_class() const { return left_class_; }
  const std::string& right_class() const { return right_class_; }
  const std::string& predicate_text() const { return predicate_text_; }

  /// Number of matching pairs.
  size_t pair_count() const { return pairs_.size(); }
  bool has_current() const { return index_ >= 0; }
  Result<std::pair<odb::ObjectBuffer, odb::ObjectBuffer>> Current() const;

  /// Sequencing over the pair list; both sides' windows refresh.
  Status Next();
  Status Prev();
  Status Reset();

  owl::WindowId panel_window() const { return panel_window_; }
  owl::WindowId left_window() const { return left_window_; }
  owl::WindowId right_window() const { return right_window_; }

 private:
  JoinView(BrowseContext* context, std::string left_class,
           std::string right_class, odb::Predicate predicate,
           std::string predicate_text);

  Status Materialize();
  Status BuildPanel();
  Status RefreshDisplays();
  /// Renders one side into its window via that class's display
  /// function (or the synthesized fallback).
  Status RenderSide(const odb::ObjectBuffer& object, bool left);

  BrowseContext* context_;
  std::string left_class_;
  std::string right_class_;
  odb::Predicate predicate_;
  std::string predicate_text_;
  std::vector<std::pair<odb::Oid, odb::Oid>> pairs_;
  int index_ = -1;
  owl::WindowId panel_window_ = owl::kNoWindow;
  owl::WindowId left_window_ = owl::kNoWindow;
  owl::WindowId right_window_ = owl::kNoWindow;
};

}  // namespace ode::view

#endif  // ODEVIEW_ODEVIEW_JOIN_VIEW_H_
