#include "odb/slotted_page.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace ode::odb {

namespace {
void StoreU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}
void StoreU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
}  // namespace

void SlottedPage::Init() {
  page_->Zero();
  set_next_page(kNoPage);
  set_slot_count(0);
  set_free_end(static_cast<uint16_t>(kPageUsableSize));
  set_live_count(0);
}

Status SlottedPage::Validate() const {
  const size_t count = slot_count();
  const size_t slots_end = kHeaderSize + count * kSlotSize;
  const size_t end = free_end();
  if (end > kPageUsableSize) {
    return Status::Corruption("slotted page free_end " +
                              std::to_string(end) + " beyond usable size");
  }
  if (slots_end > end) {
    return Status::Corruption("slotted page slot array (" +
                              std::to_string(count) +
                              " slots) overlaps the record area");
  }
  size_t live = 0;
  for (size_t s = 0; s < count; ++s) {
    const size_t offset = slot_offset(static_cast<uint16_t>(s));
    if (offset == 0) continue;  // tombstone
    const size_t length = slot_length(static_cast<uint16_t>(s));
    if (offset < slots_end || offset + length > kPageUsableSize) {
      return Status::Corruption("slot " + std::to_string(s) + " [" +
                                std::to_string(offset) + ", " +
                                std::to_string(offset + length) +
                                ") outside the record area");
    }
    if (offset < end) {
      return Status::Corruption("slot " + std::to_string(s) +
                                " starts below free_end");
    }
    ++live;
  }
  if (live != live_count()) {
    return Status::Corruption("live_count " + std::to_string(live_count()) +
                              " != " + std::to_string(live) + " live slots");
  }
  return Status::OK();
}

PageId SlottedPage::next_page() const {
  return DecodeFixed32(page_->bytes());
}

void SlottedPage::set_next_page(PageId id) {
  StoreU32(page_->bytes(), id);
}

uint16_t SlottedPage::slot_count() const {
  return DecodeFixed16(page_->bytes() + 4);
}

uint16_t SlottedPage::bounded_slot_count() const {
  const uint16_t count = slot_count();
  return count > kMaxSlotCount ? static_cast<uint16_t>(kMaxSlotCount)
                               : count;
}

void SlottedPage::set_slot_count(uint16_t v) {
  StoreU16(page_->bytes() + 4, v);
}

uint16_t SlottedPage::free_end() const {
  return DecodeFixed16(page_->bytes() + 6);
}

void SlottedPage::set_free_end(uint16_t v) {
  StoreU16(page_->bytes() + 6, v);
}

uint16_t SlottedPage::live_count() const {
  return DecodeFixed16(page_->bytes() + 8);
}

void SlottedPage::set_live_count(uint16_t v) {
  StoreU16(page_->bytes() + 8, v);
}

uint16_t SlottedPage::slot_offset(uint16_t slot) const {
  return DecodeFixed16(page_->bytes() + kHeaderSize + slot * kSlotSize);
}

uint16_t SlottedPage::slot_length(uint16_t slot) const {
  return DecodeFixed16(page_->bytes() + kHeaderSize + slot * kSlotSize + 2);
}

void SlottedPage::set_slot(uint16_t slot, uint16_t offset, uint16_t length) {
  StoreU16(page_->bytes() + kHeaderSize + slot * kSlotSize, offset);
  StoreU16(page_->bytes() + kHeaderSize + slot * kSlotSize + 2, length);
}

size_t SlottedPage::ContiguousFreeSpace() const {
  size_t slots_end = kHeaderSize + bounded_slot_count() * kSlotSize;
  size_t end = free_end();
  return end > slots_end ? end - slots_end : 0;
}

size_t SlottedPage::FreeSpace() const {
  // Live bytes + slot array + header subtracted from the page: the
  // space Compact() can recover.
  size_t live_bytes = 0;
  for (uint16_t s = 0; s < bounded_slot_count(); ++s) {
    if (slot_offset(s) != 0) live_bytes += slot_length(s);
  }
  size_t used = kHeaderSize + bounded_slot_count() * kSlotSize + live_bytes;
  return used < kPageUsableSize ? kPageUsableSize - used : 0;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record exceeds page capacity (" +
                                   std::to_string(record.size()) + "B)");
  }
  size_t needed = record.size() + kSlotSize;
  // Reuse a tombstone slot when possible (no new slot entry needed).
  int reuse = -1;
  for (uint16_t s = 0; s < bounded_slot_count(); ++s) {
    if (slot_offset(s) == 0) {
      reuse = s;
      needed = record.size();
      break;
    }
  }
  if (needed > FreeSpace()) {
    return Status::OutOfRange("page full");
  }
  if (record.size() + (reuse < 0 ? kSlotSize : 0) >
      ContiguousFreeSpace()) {
    Compact();
  }
  uint16_t slot;
  if (reuse >= 0) {
    slot = static_cast<uint16_t>(reuse);
  } else {
    slot = slot_count();
    set_slot_count(static_cast<uint16_t>(slot + 1));
  }
  auto offset = static_cast<uint16_t>(free_end() - record.size());
  std::memcpy(page_->bytes() + offset, record.data(), record.size());
  set_slot(slot, offset, static_cast<uint16_t>(record.size()));
  set_free_end(offset);
  set_live_count(static_cast<uint16_t>(live_count() + 1));
  return slot;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (slot >= bounded_slot_count()) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " out of range");
  }
  uint16_t offset = slot_offset(slot);
  if (offset == 0) {
    return Status::NotFound("slot " + std::to_string(slot) + " deleted");
  }
  const size_t length = slot_length(slot);
  if (offset < kHeaderSize || offset + length > kPageUsableSize) {
    return Status::Corruption("slot " + std::to_string(slot) + " [" +
                              std::to_string(offset) + ", " +
                              std::to_string(offset + length) +
                              ") outside the page");
  }
  return std::string_view(page_->bytes() + offset, length);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= bounded_slot_count()) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " out of range");
  }
  if (slot_offset(slot) == 0) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " already deleted");
  }
  set_slot(slot, 0, 0);
  set_live_count(static_cast<uint16_t>(live_count() - 1));
  return Status::OK();
}

Status SlottedPage::Update(uint16_t slot, std::string_view record) {
  if (slot >= bounded_slot_count() || slot_offset(slot) == 0) {
    return Status::NotFound("slot " + std::to_string(slot) + " not live");
  }
  uint16_t old_len = slot_length(slot);
  uint16_t offset = slot_offset(slot);
  if (record.size() <= old_len) {
    // Write at the tail of the old region so offsets stay in-bounds.
    auto new_offset =
        static_cast<uint16_t>(offset + (old_len - record.size()));
    std::memmove(page_->bytes() + new_offset, record.data(), record.size());
    set_slot(slot, new_offset, static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  // Grow: free the old bytes, then try an insert into this page while
  // keeping the same slot id.
  set_slot(slot, 0, 0);
  if (record.size() > FreeSpace() || record.size() > kMaxRecordSize) {
    // Roll back the tombstone so the caller still sees the old record.
    set_slot(slot, offset, old_len);
    return Status::OutOfRange("page full");
  }
  if (record.size() > ContiguousFreeSpace()) Compact();
  auto new_offset = static_cast<uint16_t>(free_end() - record.size());
  std::memcpy(page_->bytes() + new_offset, record.data(), record.size());
  set_slot(slot, new_offset, static_cast<uint16_t>(record.size()));
  set_free_end(new_offset);
  return Status::OK();
}

void SlottedPage::Compact() {
  struct LiveRecord {
    uint16_t slot;
    std::string bytes;
  };
  std::vector<LiveRecord> live;
  live.reserve(live_count());
  for (uint16_t s = 0; s < bounded_slot_count(); ++s) {
    if (slot_offset(s) != 0) {
      live.push_back(
          {s, std::string(page_->bytes() + slot_offset(s),
                          slot_length(s))});
    }
  }
  uint16_t cursor = static_cast<uint16_t>(kPageUsableSize);
  for (const LiveRecord& rec : live) {
    cursor = static_cast<uint16_t>(cursor - rec.bytes.size());
    std::memcpy(page_->bytes() + cursor, rec.bytes.data(),
                rec.bytes.size());
    set_slot(rec.slot, cursor, static_cast<uint16_t>(rec.bytes.size()));
  }
  set_free_end(cursor);
}

}  // namespace ode::odb
