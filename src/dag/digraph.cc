#include "dag/digraph.h"

#include <deque>

namespace ode::dag {

Result<NodeId> Digraph::AddNode(std::string label) {
  if (index_.count(label) != 0) {
    return Status::AlreadyExists("node '" + label + "'");
  }
  NodeId id = node_count();
  index_[label] = id;
  labels_.push_back(std::move(label));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

NodeId Digraph::EnsureNode(std::string_view label) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  return *AddNode(std::string(label));
}

Result<NodeId> Digraph::FindNode(std::string_view label) const {
  auto it = index_.find(std::string(label));
  if (it == index_.end()) {
    return Status::NotFound("node '" + std::string(label) + "'");
  }
  return it->second;
}

Status Digraph::AddEdge(NodeId from, NodeId to) {
  if (from < 0 || to < 0 || from >= node_count() || to >= node_count()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self loop on '" + labels_[from] + "'");
  }
  if (HasEdge(from, to)) {
    return Status::AlreadyExists("edge " + labels_[from] + " -> " +
                                 labels_[to]);
  }
  out_[from].push_back(to);
  in_[to].push_back(from);
  edges_.emplace_back(from, to);
  ++edge_count_;
  return Status::OK();
}

bool Digraph::HasEdge(NodeId from, NodeId to) const {
  if (from < 0 || from >= node_count()) return false;
  for (NodeId n : out_[from]) {
    if (n == to) return true;
  }
  return false;
}

bool Digraph::IsAcyclic() const {
  std::vector<int> in_degree(static_cast<size_t>(node_count()), 0);
  for (const auto& [from, to] : edges_) ++in_degree[to];
  std::deque<NodeId> ready;
  for (NodeId n = 0; n < node_count(); ++n) {
    if (in_degree[n] == 0) ready.push_back(n);
  }
  int processed = 0;
  while (!ready.empty()) {
    NodeId n = ready.front();
    ready.pop_front();
    ++processed;
    for (NodeId m : out_[n]) {
      if (--in_degree[m] == 0) ready.push_back(m);
    }
  }
  return processed == node_count();
}

Digraph Digraph::FromEdges(
    const std::vector<std::pair<std::string, std::string>>& edges) {
  Digraph graph;
  for (const auto& [from, to] : edges) {
    NodeId f = graph.EnsureNode(from);
    NodeId t = graph.EnsureNode(to);
    (void)graph.AddEdge(f, t);  // duplicates silently ignored
  }
  return graph;
}

}  // namespace ode::dag
