file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_chain_setup.dir/bench_fig09_chain_setup.cc.o"
  "CMakeFiles/bench_fig09_chain_setup.dir/bench_fig09_chain_setup.cc.o.d"
  "bench_fig09_chain_setup"
  "bench_fig09_chain_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_chain_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
