#ifndef ODEVIEW_ODB_SLOTTED_PAGE_H_
#define ODEVIEW_ODB_SLOTTED_PAGE_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "odb/page.h"

namespace ode::odb {

/// View over a `Page` formatted as a slotted data page.
///
/// Layout:
/// ```
/// [ header 12B | slot array ->   ...free...   <- record data ]
/// header: next_page u32 | slot_count u16 | free_end u16 | live u16 | pad
/// slot:   offset u16 | length u16        (offset 0 == tombstone)
/// ```
/// Records grow from the page end downward; the slot array grows
/// forward. Deleting leaves a tombstone slot (slot indexes are stable
/// because heap-file directories point at them); `Compact()` squeezes
/// out dead record bytes but keeps tombstone slots.
class SlottedPage {
 public:
  static constexpr size_t kHeaderSize = 12;
  static constexpr size_t kSlotSize = 4;
  /// Most slots a page can physically hold; any stored `slot_count`
  /// beyond this is a forgery, and accessors clamp to it so that even
  /// an unvalidated page never drives a slot-array read off the page.
  static constexpr size_t kMaxSlotCount =
      (kPageUsableSize - kHeaderSize) / kSlotSize;
  /// Largest record a single page can hold. Record data stops at
  /// `kPageUsableSize`: the page's LSN trailer is not ours to use.
  static constexpr size_t kMaxRecordSize =
      kPageUsableSize - kHeaderSize - kSlotSize;

  /// Wraps `page` without validating; call `Init()` on fresh pages.
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats the page as empty.
  void Init();

  /// Structural check of an untrusted page image (a page read from
  /// disk, a WAL redo image, a wire-transferred page): header fields
  /// in range, the slot array ending before the record area, and every
  /// live slot's [offset, offset+length) inside the record area.
  /// Accessors assume a validated page; `Get()` additionally re-checks
  /// the one slot it touches (defense in depth — a page can be
  /// corrupted after load by a buggy writer).
  Status Validate() const;

  /// Chain pointer used by heap files; `kNoPage` terminates the chain.
  PageId next_page() const;
  void set_next_page(PageId id);

  /// Number of slots ever created (including tombstones).
  uint16_t slot_count() const;
  /// Number of live (non-tombstone) records.
  uint16_t live_count() const;

  /// Bytes available for one more record (incl. its slot entry),
  /// assuming a compaction is allowed.
  size_t FreeSpace() const;
  /// Contiguous free bytes without compaction.
  size_t ContiguousFreeSpace() const;

  /// Inserts `record`, compacting if fragmentation requires it.
  /// Fails with OutOfRange when the page cannot hold the record.
  Result<uint16_t> Insert(std::string_view record);

  /// Returns the record bytes in slot `slot` (view into the page).
  Result<std::string_view> Get(uint16_t slot) const;

  /// Tombstones slot `slot`.
  Status Delete(uint16_t slot);

  /// Replaces slot `slot` with `record`. Succeeds in place when the new
  /// record is not larger; otherwise tries delete+reinsert on this page
  /// and fails with OutOfRange when it does not fit (the caller then
  /// relocates to another page).
  Status Update(uint16_t slot, std::string_view record);

  /// Rewrites the record area dropping dead bytes. Slot ids unchanged.
  void Compact();

 private:
  /// `slot_count()` clamped to what fits in the page; iteration and
  /// per-slot bounds checks use this, never the raw header field.
  uint16_t bounded_slot_count() const;
  uint16_t slot_offset(uint16_t slot) const;
  uint16_t slot_length(uint16_t slot) const;
  void set_slot(uint16_t slot, uint16_t offset, uint16_t length);
  uint16_t free_end() const;           // lowest used record offset
  void set_free_end(uint16_t v);
  void set_slot_count(uint16_t v);
  void set_live_count(uint16_t v);

  Page* page_;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_SLOTTED_PAGE_H_
