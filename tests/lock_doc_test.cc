/// Keeps docs/LOCKING.md's rank table in lockstep with the code table
/// in `src/common/lock_rank.cc`. The markdown is the prose copy the
/// analyzer (`tools/ode_lint`) and humans read; this test makes doc
/// drift a build failure instead of a surprise during a deadlock
/// postmortem. It parses the `| rank | name | ... |` rows out of the
/// markdown and requires an exact rank<->name bijection with
/// `LockRankTable()`.

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/lock_rank.h"

#ifndef ODE_SOURCE_DIR
#error "ODE_SOURCE_DIR must point at the repository root"
#endif

namespace ode {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Extracts `rank -> name` from markdown table rows shaped
/// `| 75 | `wal.buffer_lock` | ... |`. Rows whose first cell is not
/// an integer (the header, the separator) are skipped.
std::map<unsigned, std::string> ParseDocRankTable(const std::string& doc) {
  std::map<unsigned, std::string> ranks;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    std::istringstream cells(line.substr(1));
    std::string rank_cell, name_cell;
    if (!std::getline(cells, rank_cell, '|') ||
        !std::getline(cells, name_cell, '|')) {
      continue;
    }
    // Trim and require a pure integer rank cell.
    size_t begin = rank_cell.find_first_not_of(" \t");
    size_t end = rank_cell.find_last_not_of(" \t");
    if (begin == std::string::npos) continue;
    std::string rank_text = rank_cell.substr(begin, end - begin + 1);
    if (rank_text.find_first_not_of("0123456789") != std::string::npos ||
        rank_text.empty()) {
      continue;
    }
    unsigned rank = static_cast<unsigned>(std::stoul(rank_text));
    // The name sits in backticks: strip everything outside them.
    size_t tick1 = name_cell.find('`');
    size_t tick2 = name_cell.rfind('`');
    if (tick1 == std::string::npos || tick1 == tick2) {
      ADD_FAILURE() << "malformed name cell in row: " << line;
      continue;
    }
    std::string name = name_cell.substr(tick1 + 1, tick2 - tick1 - 1);
    EXPECT_EQ(ranks.count(rank), 0u)
        << "rank " << rank << " documented twice";
    ranks[rank] = name;
  }
  return ranks;
}

TEST(LockDocTest, RankTableMatchesLockingMd) {
  const std::string doc =
      ReadFileOrDie(std::string(ODE_SOURCE_DIR) + "/docs/LOCKING.md");
  std::map<unsigned, std::string> documented = ParseDocRankTable(doc);
  ASSERT_FALSE(documented.empty()) << "no rank table rows parsed";

  const std::vector<LockRankInfo>& code = LockRankTable();
  EXPECT_EQ(documented.size(), code.size())
      << "docs/LOCKING.md documents " << documented.size()
      << " ranks but LockRankTable() has " << code.size()
      << " — update both together";

  for (const LockRankInfo& info : code) {
    const auto rank = static_cast<unsigned>(info.rank);
    auto it = documented.find(rank);
    ASSERT_NE(it, documented.end())
        << "rank " << rank << " (" << info.name
        << ") missing from docs/LOCKING.md";
    EXPECT_EQ(it->second, info.name)
        << "rank " << rank << " named '" << it->second
        << "' in docs/LOCKING.md but '" << info.name << "' in code";
  }
}

}  // namespace
}  // namespace ode
