// Tests for the lock-rank validator: the rank table's integrity, the
// runtime detection modes (count vs abort), and absence of false
// positives under the legal acquisition orders the engine uses.
//
// Note on build flavors: the repo's default RelWithDebInfo defines
// NDEBUG, so the validator starts in kCount mode here; every test pins
// the mode it needs explicitly.

#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/journal.h"
#include "common/threading.h"

namespace ode {
namespace {

/// Restores the validator mode on scope exit so one test's mode never
/// leaks into another when several run in one process.
class ScopedValidatorMode {
 public:
  explicit ScopedValidatorMode(LockRankValidator::Mode mode)
      : previous_(LockRankValidator::mode()) {
    LockRankValidator::SetMode(mode);
  }
  ~ScopedValidatorMode() { LockRankValidator::SetMode(previous_); }

 private:
  LockRankValidator::Mode previous_;
};

/// Every LockRank enumerator. Extend this list (and LockRankTable(),
/// and docs/LOCKING.md) together when adding a lock.
const std::vector<LockRank>& AllRanks() {
  static const std::vector<LockRank>* ranks = new std::vector<LockRank>{
      LockRank::kDbSchema,        LockRank::kWalTxn,
      LockRank::kDbHeaps,         LockRank::kHeapFile,
      LockRank::kCatalogId,       LockRank::kDbTrigger,
      LockRank::kDbPredicate,     LockRank::kFreeList,
      LockRank::kPoolFrameLatch,  LockRank::kClusterPrefetchSource,
      LockRank::kPoolShard,
      LockRank::kWal,             LockRank::kWalStore,
      LockRank::kPager,
      LockRank::kBackgroundWorker, LockRank::kWatchdogScan,
      LockRank::kWatchdogWake,    LockRank::kWatchdogRefresh,
      LockRank::kTimeSeries,      LockRank::kAccessCapture,
      LockRank::kSessionRegistry, LockRank::kSlowOpLog,
      LockRank::kMetricsRegistry, LockRank::kTraceDirectory,
      LockRank::kTraceBuffer,     LockRank::kJournalIntern,
  };
  return *ranks;
}

TEST(LockRankTableTest, EveryRankHasCompleteMetadata) {
  EXPECT_EQ(LockRankTable().size(), AllRanks().size());
  for (LockRank rank : AllRanks()) {
    const LockRankInfo* info = FindLockRankInfo(rank);
    ASSERT_NE(info, nullptr)
        << "rank " << static_cast<unsigned>(rank) << " missing from table";
    EXPECT_EQ(info->rank, rank);
    ASSERT_NE(info->name, nullptr);
    EXPECT_STRNE(info->name, "");
    EXPECT_STREQ(LockRankName(rank), info->name);
  }
}

TEST(LockRankTableTest, TableIsAscendingWithUniqueNames) {
  std::set<std::string> names;
  uint16_t previous = 0;
  for (const LockRankInfo& info : LockRankTable()) {
    EXPECT_GT(static_cast<uint16_t>(info.rank), previous)
        << "table must be strictly ascending";
    previous = static_cast<uint16_t>(info.rank);
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate lock name " << info.name;
  }
  EXPECT_EQ(FindLockRankInfo(static_cast<LockRank>(9999)), nullptr);
  EXPECT_STREQ(LockRankName(static_cast<LockRank>(9999)), "unknown");
}

TEST(LockRankValidatorDeathTest, OutOfOrderAcquireAbortsWithHeldDump) {
  // The child process flips to kAbort, then acquires a heap lock (rank
  // 30) while holding a pool shard (rank 70). The abort message must
  // carry the held-lock stack and the journal tail including the
  // freshly appended lockrank_violation record.
  EXPECT_DEATH(
      {
        LockRankValidator::SetMode(LockRankValidator::Mode::kAbort);
        Mutex shard(LockRank::kPoolShard);
        Mutex heap(LockRank::kHeapFile);
        shard.Lock();
        heap.Lock();
      },
      "out-of-order acquire(.|\n)*heap\\.rwlock(.|\n)*-- held locks "
      "(.|\n)*pool\\.shard_lock(.|\n)*-- journal tail "
      "--(.|\n)*lockrank_violation");
}

TEST(LockRankValidatorDeathTest, RecursiveExclusiveAcquireAborts) {
  EXPECT_DEATH(
      {
        LockRankValidator::SetMode(LockRankValidator::Mode::kAbort);
        int instance = 0;
        LockRankValidator::OnAcquire(LockRank::kPager, "pager.lock",
                                     &instance);
        LockRankValidator::OnAcquire(LockRank::kPager, "pager.lock",
                                     &instance);
      },
      "recursive acquire(.|\n)*pager\\.lock");
}

TEST(LockRankValidatorTest, CountModeRecordsViolationWithoutAborting) {
  ScopedValidatorMode mode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();
  Mutex pager(LockRank::kPager);
  Mutex shard(LockRank::kPoolShard);
  pager.Lock();
  shard.Lock();  // rank 70 under rank 80: out of order
  shard.Unlock();
  pager.Unlock();
  EXPECT_EQ(LockRankValidator::violations(), before + 1);
  EXPECT_EQ(LockRankValidator::HeldCount(), 0u);

  // The flight recorder carries the near-deadlock: arg0 = acquired
  // rank, arg1 = held rank, detail = acquired lock's name.
  bool journaled = false;
  for (const obs::JournalRecord& r : obs::Journal::Global().Snapshot()) {
    if (r.type == obs::JournalEvent::kLockRankViolation && r.arg0 == 70 &&
        r.arg1 == 80) {
      journaled = true;
      ASSERT_NE(r.detail, nullptr);
      EXPECT_STREQ(r.detail, "pool.shard_lock");
    }
  }
  EXPECT_TRUE(journaled);
}

TEST(LockRankValidatorTest, TryAcquireSkipsOrderCheck) {
  ScopedValidatorMode mode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();
  Mutex pager(LockRank::kPager);
  Mutex shard(LockRank::kPoolShard);
  pager.Lock();
  // Non-blocking acquisition cannot deadlock, so taking a lower rank
  // via TryLock is legal — and must still balance the held stack.
  ASSERT_TRUE(shard.TryLock());
  EXPECT_EQ(LockRankValidator::HeldCount(), 2u);
  shard.Unlock();
  pager.Unlock();
  EXPECT_EQ(LockRankValidator::violations(), before);
  EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
}

TEST(LockRankValidatorTest, SameRankStackingFollowsTableFlag) {
  ScopedValidatorMode mode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();
  // Frame latches allow same-rank stacking (multi-handle callers).
  SharedMutex latch_a(LockRank::kPoolFrameLatch);
  SharedMutex latch_b(LockRank::kPoolFrameLatch);
  latch_a.Lock();
  latch_b.Lock();
  latch_b.Unlock();
  latch_a.Unlock();
  EXPECT_EQ(LockRankValidator::violations(), before);
  // Pool shards do not.
  Mutex shard_a(LockRank::kPoolShard);
  Mutex shard_b(LockRank::kPoolShard);
  shard_a.Lock();
  shard_b.Lock();
  shard_b.Unlock();
  shard_a.Unlock();
  EXPECT_EQ(LockRankValidator::violations(), before + 1);
}

TEST(LockRankValidatorTest, SharedReacquireToleratedOnStackableRank) {
  ScopedValidatorMode mode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();
  int instance = 0;
  // A reader re-entering the same frame latch through two handles (the
  // single-threaded fuzz pattern) is tolerated when both holds are
  // shared...
  LockRankValidator::OnAcquire(LockRank::kPoolFrameLatch,
                               "pool.frame_latch", &instance,
                               /*exclusive=*/false);
  LockRankValidator::OnAcquire(LockRank::kPoolFrameLatch,
                               "pool.frame_latch", &instance,
                               /*exclusive=*/false);
  EXPECT_EQ(LockRankValidator::violations(), before);
  // ...but any exclusive involvement is recursion.
  LockRankValidator::OnAcquire(LockRank::kPoolFrameLatch,
                               "pool.frame_latch", &instance,
                               /*exclusive=*/true);
  EXPECT_EQ(LockRankValidator::violations(), before + 1);
  LockRankValidator::OnRelease(&instance);
  LockRankValidator::OnRelease(&instance);
  LockRankValidator::OnRelease(&instance);
  EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
}

TEST(LockRankValidatorTest, CondVarWaitReturnsHoldDuringBlock) {
  ScopedValidatorMode mode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();
  Mutex mu(LockRank::kBackgroundWorker);
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(LockRankValidator::HeldCount(), 1u);
  // A timed wait drops the validator entry while parked and reclaims
  // it on wake, so a lower-rank acquisition by the wait internals never
  // trips the order check.
  (void)cv.WaitFor(lock, std::chrono::milliseconds(1));
  EXPECT_EQ(LockRankValidator::HeldCount(), 1u);
  EXPECT_EQ(LockRankValidator::violations(), before);
}

TEST(LockRankStressTest, EightThreadsLegalOrderNoFalsePositives) {
  ScopedValidatorMode mode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();
  SharedMutex schema(LockRank::kDbSchema);
  Mutex heaps(LockRank::kDbHeaps);
  SharedMutex heap(LockRank::kHeapFile);
  Mutex shard(LockRank::kPoolShard);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if ((i + t) % 16 == 0) {
          // Occasional writer takes the full exclusive chain.
          WriterMutexLock w(schema);
          MutexLock h(heaps);
          WriterMutexLock hf(heap);
          MutexLock s(shard);
        } else {
          ReaderMutexLock r(schema);
          ReaderMutexLock hf(heap);
          MutexLock s(shard);
        }
      }
      EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(LockRankValidator::violations(), before)
      << "legal acquisition order produced validator noise";
}

}  // namespace
}  // namespace ode
