file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_schema_dag.dir/bench_fig02_schema_dag.cc.o"
  "CMakeFiles/bench_fig02_schema_dag.dir/bench_fig02_schema_dag.cc.o.d"
  "bench_fig02_schema_dag"
  "bench_fig02_schema_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_schema_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
