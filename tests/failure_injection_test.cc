// Failure injection: a pager decorator with several failure models
// (operation budget, sync-only failures, torn sector writes),
// verifying that I/O errors propagate as Status through every storage
// layer instead of crashing or corrupting state — and that the WAL
// turns the surviving failure modes back into consistent state.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "odb/buffer_pool.h"
#include "odb/catalog.h"
#include "odb/heap_file.h"
#include "odb/pager.h"
#include "odb/wal.h"

namespace ode::odb {
namespace {

/// Wraps a MemPager with an injectable failure model:
///  - kFailOps: after `budget` successful operations every call fails
///    with IOError (a full disk / dead device).
///  - kSyncFail: reads/writes succeed but `Sync()` fails — a device
///    that acknowledges writes it cannot make durable.
///  - kTornWrite: `Write()` persists only the first `kTornBytes` of
///    the page and reports success — a power cut mid-sector.
class FlakyPager final : public Pager {
 public:
  enum class Mode { kFailOps, kSyncFail, kTornWrite };
  static constexpr size_t kTornBytes = 512;

  explicit FlakyPager(int budget) : budget_(budget) {}

  void set_budget(int budget) { budget_ = budget; }
  void set_mode(Mode mode) { mode_ = mode; }

  Result<PageId> Allocate() override {
    ODE_RETURN_IF_ERROR(Spend());
    return inner_.Allocate();
  }
  Status Read(PageId id, Page* page) override {
    ODE_RETURN_IF_ERROR(Spend());
    return inner_.Read(id, page);
  }
  Status Write(PageId id, const Page& page) override {
    ODE_RETURN_IF_ERROR(Spend());
    if (mode_ == Mode::kTornWrite) {
      // Persist a torn image: old (or zero) content with only the
      // first kTornBytes of the new page applied.
      Page merged;
      merged.Zero();
      if (id < inner_.page_count()) {
        ODE_RETURN_IF_ERROR(inner_.Read(id, &merged));
      }
      std::memcpy(merged.bytes(), page.bytes(), kTornBytes);
      return inner_.Write(id, merged);
    }
    return inner_.Write(id, page);
  }
  uint32_t page_count() const override { return inner_.page_count(); }
  Status Sync() override {
    if (mode_ == Mode::kSyncFail) {
      return Status::IOError("injected fsync failure");
    }
    ODE_RETURN_IF_ERROR(Spend());
    return inner_.Sync();
  }

 private:
  Status Spend() {
    if (mode_ != Mode::kFailOps) return Status::OK();
    if (budget_ <= 0) return Status::IOError("injected device failure");
    --budget_;
    return Status::OK();
  }

  MemPager inner_;
  Mode mode_ = Mode::kFailOps;
  int budget_;
};

TEST(FailureInjectionTest, FetchSurfacesReadErrors) {
  FlakyPager pager(1);
  BufferPool pool(&pager, 4);
  PageId id = *pager.Allocate();  // spends the budget
  Result<PageHandle> handle = pool.Fetch(id);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kIOError);
}

TEST(FailureInjectionTest, EvictionWritebackFailureSurfaces) {
  FlakyPager pager(1000);
  BufferPool pool(&pager, 1);
  PageId a = *pager.Allocate();
  PageId b = *pager.Allocate();
  {
    PageHandle handle = *pool.Fetch(a);
    handle.page()->bytes()[0] = 'x';
    handle.MarkDirty();
  }
  pager.set_budget(0);  // the write-back during eviction must fail
  Result<PageHandle> handle = pool.Fetch(b);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kIOError);
  // After the device "recovers", the dirty page is still intact in the
  // pool and can be flushed.
  pager.set_budget(1000);
  ASSERT_TRUE(pool.FlushAll().ok());
  Page raw;
  ASSERT_TRUE(pager.Read(a, &raw).ok());
  EXPECT_EQ(raw.bytes()[0], 'x');
}

TEST(FailureInjectionTest, HeapOperationsPropagateErrors) {
  FlakyPager pager(1000);
  BufferPool pool(&pager, 4);
  FreeList free_list(&pool, kNoPage);
  HeapFile heap = *HeapFile::Create(&pool, &free_list);
  ASSERT_TRUE(heap.Insert(1, "payload").ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  pager.set_budget(0);
  // Reads may still hit the pool cache; force a miss by exceeding
  // capacity with inserts, which must fail cleanly.
  Status status = Status::OK();
  for (int i = 2; i < 200 && status.ok(); ++i) {
    status = heap.Insert(static_cast<uint64_t>(i), std::string(800, 'x'));
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // Recovery: once I/O works again, the heap keeps functioning.
  pager.set_budget(100000);
  EXPECT_TRUE(heap.Insert(9999, "after recovery").ok());
  EXPECT_EQ(*heap.Get(9999), "after recovery");
}

TEST(FailureInjectionTest, CatalogPersistFailureSurfaces) {
  FlakyPager pager(1000);
  BufferPool pool(&pager, 8);
  Catalog catalog = *Catalog::Format(&pool, "flaky");
  ClassDef def;
  def.name = "c";
  ASSERT_TRUE(catalog.mutable_schema()->AddClass(def).ok());
  pager.set_budget(0);
  // Persist needs fresh pages for the catalog blob once the pool's
  // frames are exhausted; with a dead device it must fail, not crash.
  Status status = Status::OK();
  for (int i = 0; i < 64 && status.ok(); ++i) {
    ClassDef more;
    more.name = "filler_" + std::to_string(i);
    // Bloat the schema so the blob spans several fresh pages.
    more.source = std::string(2048, 's');
    ASSERT_TRUE(catalog.mutable_schema()->AddClass(more).ok());
    status = catalog.Persist();
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// --- WAL-aware durability cases --------------------------------------------

/// Builds a MemWalStore preloaded with `bytes` (the crash image a
/// power loss would leave behind) for handing to recovery.
std::unique_ptr<MemWalStore> CrashImageStore(const std::string& bytes) {
  auto store = std::make_unique<MemWalStore>();
  EXPECT_TRUE(store->Append(bytes).ok());
  return store;
}

TEST(WalFailureInjectionTest, CommitNotClaimedUntilFsync) {
  // A commit whose fsync fails must surface IOError, and a crash at
  // that point must lose the transaction: durability is claimed only
  // after the log sync succeeded.
  auto store = std::make_unique<MemWalStore>();
  MemWalStore* raw = store.get();
  WalOptions wal_options;
  auto wal = *Wal::Create(std::move(store), wal_options);

  MemPager pager;
  BufferPool pool(&pager, 8);
  pool.SetWal(wal.get());

  raw->set_fail_syncs(true);
  {
    WalTransactionScope txn(wal.get(), /*txn_mu=*/nullptr);
    PageHandle handle = *pool.NewPage();
    handle.page()->bytes()[0] = 'd';
    handle.MarkDirty();
    handle.Release();
    Status committed = txn.Commit();
    ASSERT_FALSE(committed.ok());
    EXPECT_EQ(committed.code(), StatusCode::kIOError);
  }

  // Power loss now: only the synced prefix (the file header written at
  // Create) survives. Recovery must find zero committed transactions.
  {
    MemPager crash_pager;
    WalRecoveryStats stats;
    auto recovered = Wal::OpenAndRecover(CrashImageStore(raw->durable_bytes()),
                                         &crash_pager, wal_options, &stats);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(stats.committed_txns, 0u);
    EXPECT_EQ(stats.pages_redone, 0u);
  }

  // The device recovers; the already-appended records become durable
  // and a crash after that point preserves the transaction.
  raw->set_fail_syncs(false);
  ASSERT_TRUE(wal->WaitCommitDurable(wal->next_lsn()).ok());
  {
    MemPager crash_pager;
    WalRecoveryStats stats;
    auto recovered = Wal::OpenAndRecover(CrashImageStore(raw->durable_bytes()),
                                         &crash_pager, wal_options, &stats);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(stats.committed_txns, 1u);
    EXPECT_EQ(stats.pages_redone, 1u);
    Page raw_page;
    ASSERT_TRUE(crash_pager.Read(0, &raw_page).ok());
    EXPECT_EQ(raw_page.bytes()[0], 'd');
  }
}

TEST(WalFailureInjectionTest, DataFileSyncFailureSurfaces) {
  // A data-file fsync failure must propagate out of pool.Sync() rather
  // than being swallowed (writes alone do not make pages durable).
  FlakyPager pager(1 << 30);
  BufferPool pool(&pager, 4);
  {
    PageHandle handle = *pool.NewPage();
    handle.page()->bytes()[0] = 's';
    handle.MarkDirty();
  }
  pager.set_mode(FlakyPager::Mode::kSyncFail);
  Status status = pool.Sync();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  pager.set_mode(FlakyPager::Mode::kFailOps);
  EXPECT_TRUE(pool.Sync().ok());
}

TEST(WalFailureInjectionTest, TornDataPageRepairedByReplay) {
  // A torn data-page write (power cut mid-sector) is invisible to the
  // writer — the pager reports success. Replaying the committed
  // after-image from the log must restore the full page.
  auto store = std::make_unique<MemWalStore>();
  MemWalStore* raw = store.get();
  WalOptions wal_options;
  auto wal = *Wal::Create(std::move(store), wal_options);

  FlakyPager pager(1 << 30);
  BufferPool pool(&pager, 4);
  pool.SetWal(wal.get());

  PageId id = kNoPage;
  {
    WalTransactionScope txn(wal.get(), /*txn_mu=*/nullptr);
    PageHandle handle = *pool.NewPage();
    id = handle.id();
    for (size_t i = 0; i < kPageUsableSize; ++i) {
      handle.page()->bytes()[i] = static_cast<char>('a' + i % 23);
    }
    handle.MarkDirty();
    handle.Release();
    ASSERT_TRUE(txn.Commit().ok());
  }

  // The flush tears the page: only the first 512 bytes reach "disk".
  pager.set_mode(FlakyPager::Mode::kTornWrite);
  ASSERT_TRUE(pool.FlushAll().ok());
  pager.set_mode(FlakyPager::Mode::kFailOps);
  {
    Page torn;
    ASSERT_TRUE(pager.Read(id, &torn).ok());
    EXPECT_EQ(torn.bytes()[FlakyPager::kTornBytes], '\0')
        << "test premise: the tail of the page must have been lost";
  }

  // Crash + restart: recovery replays the committed image over the
  // torn page.
  WalRecoveryStats stats;
  auto recovered = Wal::OpenAndRecover(CrashImageStore(raw->contents()),
                                       &pager, wal_options, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_GE(stats.pages_redone, 1u);
  Page repaired;
  ASSERT_TRUE(pager.Read(id, &repaired).ok());
  for (size_t i = 0; i < kPageUsableSize; ++i) {
    ASSERT_EQ(repaired.bytes()[i], static_cast<char>('a' + i % 23))
        << "byte " << i << " not restored";
  }
}

TEST(WalFailureInjectionTest, PerCommitFsyncModeStillDurable) {
  // group_commit=false (the bench baseline) must still make every
  // commit durable before returning.
  auto store = std::make_unique<MemWalStore>();
  MemWalStore* raw = store.get();
  WalOptions wal_options;
  wal_options.group_commit = false;
  auto wal = *Wal::Create(std::move(store), wal_options);
  MemPager pager;
  BufferPool pool(&pager, 4);
  pool.SetWal(wal.get());
  {
    WalTransactionScope txn(wal.get(), /*txn_mu=*/nullptr);
    PageHandle handle = *pool.NewPage();
    handle.page()->bytes()[7] = 'g';
    handle.MarkDirty();
    handle.Release();
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(wal->durable_lsn(), wal->next_lsn());
  EXPECT_EQ(raw->durable_bytes().size(), raw->contents().size());
}

}  // namespace
}  // namespace ode::odb
