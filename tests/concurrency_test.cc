// Thread-stress battery for the concurrent storage engine: sharded
// BufferPool, thread-safe HeapFile, and multi-session Database. These
// tests are the ones CI runs under TSan; they must be deterministic in
// outcome (assertions) even though interleavings vary.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/lock_rank.h"
#include "common/timeseries.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/telemetry_http.h"
#include "common/trace.h"
#include "common/watchdog.h"
#include "odb/buffer_pool.h"
#include "odb/cluster/advisor.h"
#include "odb/cluster/plan.h"
#include "odb/database.h"
#include "odb/exec/executor.h"
#include "odb/exec/explain.h"
#include "odb/heap_file.h"
#include "odb/integrity.h"
#include "odb/labdb.h"
#include "odb/pager.h"
#include "odb/predicate.h"

namespace ode::odb {
namespace {

constexpr int kThreads = 8;

/// Deterministic per-thread xorshift so runs are reproducible.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed * 2654435769u + 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

std::string PayloadFor(uint64_t id) {
  std::string payload((id % 50) + 1, static_cast<char>('a' + id % 26));
  payload += std::to_string(id);
  return payload;
}

// --- BufferPool under contention --------------------------------------

// 8 threads hammer one sharded pool with a mix of pinned reads, writes,
// and eviction pressure (capacity < working set). Each page holds one
// u64 slot per thread; a thread only ever writes its own slot, so after
// a flush every slot must equal the number of increments that thread
// performed on that page — any torn or lost write breaks the tally.
TEST(PoolConcurrencyTest, MixedPinReadWriteEvictNoLostWrites) {
  constexpr int kPages = 24;
  constexpr int kOpsPerThread = 2000;

  MemPager pager;
  for (int i = 0; i < kPages; ++i) ASSERT_TRUE(pager.Allocate().ok());
  BufferPool pool(&pager, /*capacity=*/8, /*shards=*/4);

  // increments[t][p] = how often thread t bumped its slot on page p.
  std::vector<std::vector<uint64_t>> increments(
      kThreads, std::vector<uint64_t>(kPages, 0));

  // With 8 threads pinning against 2-frame shards, a shard can be
  // transiently exhausted (every frame pinned by a peer) — that is
  // correct pool behavior, so fetches retry on FailedPrecondition.
  auto fetch_retry = [&pool](PageId id,
                             PageIntent intent) -> Result<PageHandle> {
    while (true) {
      Result<PageHandle> handle = pool.Fetch(id, intent);
      if (handle.ok() ||
          handle.status().code() != StatusCode::kFailedPrecondition) {
        return handle;
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&increments, &fetch_retry, t] {
      Rng rng(0xC0FFEE + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        PageId id = static_cast<PageId>(rng.Below(kPages));
        if (rng.Below(4) == 0) {
          // Shared read: sum all slots; the latch guarantees we never
          // observe a torn u64.
          Result<PageHandle> handle = fetch_retry(id, PageIntent::kRead);
          ASSERT_TRUE(handle.ok()) << handle.status().ToString();
          uint64_t sum = 0;
          for (int s = 0; s < kThreads; ++s) {
            uint64_t v = 0;
            std::memcpy(&v, handle->page()->bytes() + s * sizeof(uint64_t),
                        sizeof(uint64_t));
            sum += v;
          }
          (void)sum;
        } else {
          Result<PageHandle> handle = fetch_retry(id, PageIntent::kWrite);
          ASSERT_TRUE(handle.ok()) << handle.status().ToString();
          uint64_t v = 0;
          char* slot = handle->page()->bytes() + t * sizeof(uint64_t);
          std::memcpy(&v, slot, sizeof(uint64_t));
          ++v;
          std::memcpy(slot, &v, sizeof(uint64_t));
          handle->MarkDirty();
          ++increments[t][id];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  ASSERT_TRUE(pool.FlushAll().ok());
  for (int p = 0; p < kPages; ++p) {
    Page page;
    ASSERT_TRUE(pager.Read(static_cast<PageId>(p), &page).ok());
    for (int t = 0; t < kThreads; ++t) {
      uint64_t v = 0;
      std::memcpy(&v, page.bytes() + t * sizeof(uint64_t), sizeof(uint64_t));
      EXPECT_EQ(v, increments[t][p])
          << "thread " << t << " page " << p << " lost writes";
    }
  }

  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_GE(stats.lookups,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GT(stats.evictions, 0u);  // capacity 8 < 24 hot pages
}

// Pins from several threads must never allow eviction of a held frame:
// every handle's bytes stay coherent for its lifetime.
TEST(PoolConcurrencyTest, ConcurrentPinsBlockEviction) {
  constexpr int kPages = 16;
  MemPager pager;
  for (int i = 0; i < kPages; ++i) ASSERT_TRUE(pager.Allocate().ok());
  BufferPool pool(&pager, /*capacity=*/kPages, /*shards=*/4);

  // Stamp each page with its id so readers can verify identity.
  for (PageId id = 0; id < kPages; ++id) {
    Result<PageHandle> handle = pool.Fetch(id, PageIntent::kWrite);
    ASSERT_TRUE(handle.ok());
    std::memcpy(handle->page()->bytes(), &id, sizeof(id));
    handle->MarkDirty();
  }

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, t] {
      Rng rng(17 + t);
      for (int op = 0; op < 3000; ++op) {
        PageId id = static_cast<PageId>(rng.Below(kPages));
        Result<PageHandle> handle = pool.Fetch(id, PageIntent::kRead);
        while (!handle.ok() &&
               handle.status().code() == StatusCode::kFailedPrecondition) {
          std::this_thread::yield();  // shard transiently exhausted
          handle = pool.Fetch(id, PageIntent::kRead);
        }
        ASSERT_TRUE(handle.ok()) << handle.status().ToString();
        PageId stamped = kNoPage;
        std::memcpy(&stamped, handle->page()->bytes(), sizeof(stamped));
        ASSERT_EQ(stamped, id) << "frame recycled while pinned";
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

// --- HeapFile: parallel scans racing an inserter -----------------------

TEST(HeapConcurrencyTest, ConcurrentScansDuringInserts) {
  constexpr uint64_t kRecords = 300;

  MemPager pager;
  BufferPool pool(&pager, /*capacity=*/64);
  FreeList free_list(&pool, kNoPage);
  Result<HeapFile> created = HeapFile::Create(&pool, &free_list);
  ASSERT_TRUE(created.ok());
  HeapFile heap = std::move(*created);

  std::atomic<bool> done{false};
  std::thread writer([&heap, &done] {
    for (uint64_t id = 1; id <= kRecords; ++id) {
      ASSERT_TRUE(heap.Insert(id, PayloadFor(id)).ok());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&heap, &done, t] {
      Rng rng(31 * (t + 1));
      while (!done.load(std::memory_order_acquire)) {
        // A scan sees some prefix-closed subset of the inserts; every
        // visible record must read back intact.
        std::vector<uint64_t> ids = heap.AllIds();
        for (uint64_t id : ids) {
          Result<std::string> payload = heap.Get(id);
          ASSERT_TRUE(payload.ok()) << payload.status().ToString();
          ASSERT_EQ(*payload, PayloadFor(id));
        }
        // Random point lookups race the writer too.
        uint64_t probe = rng.Below(kRecords) + 1;
        Result<std::string> payload = heap.Get(probe);
        if (payload.ok()) {
          ASSERT_EQ(*payload, PayloadFor(probe));
        }
        std::this_thread::yield();
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(heap.count(), kRecords);
  // Full sequencing pass over the final heap.
  Result<uint64_t> id = heap.FirstId();
  uint64_t seen = 0;
  while (id.ok()) {
    ++seen;
    EXPECT_EQ(*heap.Get(*id), PayloadFor(*id));
    id = heap.NextId(*id);
  }
  EXPECT_EQ(seen, kRecords);
}

// --- Database: many sessions, one engine ------------------------------

TEST(DatabaseConcurrencyTest, MultiSessionCreateAndRead) {
  constexpr int kPerSession = 50;
  constexpr char kSchema[] = R"(
persistent class person {
public:
  string name;
  int age;
  constraint age >= 0;
};
)";

  auto db = std::move(*Database::CreateInMemory("stress"));
  ASSERT_TRUE(db->DefineSchema(kSchema).ok());

  std::vector<std::thread> workers;
  std::vector<std::vector<Oid>> created(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, &created, t] {
      Session session = db->OpenSession();
      for (int i = 0; i < kPerSession; ++i) {
        std::string name =
            "p" + std::to_string(t) + "_" + std::to_string(i);
        Result<Oid> oid = session.CreateObject(
            "person", Value::Struct({{"name", Value::String(name)},
                                     {"age", Value::Int(t * 100 + i)}}));
        ASSERT_TRUE(oid.ok()) << oid.status().ToString();
        created[t].push_back(*oid);
        // Read our own write back through the same session.
        Result<ObjectBuffer> buffer = session.GetObject(*oid);
        ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
        ASSERT_EQ(buffer->value.FindField("name")->AsString(), name);
        // And sequence/scan while others insert.
        if (i % 10 == 0) {
          Result<std::vector<Oid>> scan = session.ScanCluster("person");
          ASSERT_TRUE(scan.ok());
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(*db->ClusterCount("person"),
            static_cast<uint64_t>(kThreads) * kPerSession);
  EXPECT_EQ(db->active_sessions(), 0);  // all sessions closed

  // Ids must be unique across sessions.
  std::vector<uint64_t> locals;
  for (const auto& per_thread : created) {
    for (Oid oid : per_thread) locals.push_back(oid.local);
  }
  std::sort(locals.begin(), locals.end());
  EXPECT_EQ(std::adjacent_find(locals.begin(), locals.end()), locals.end());

  // Every object reads back with the value its creator stored.
  Session session = db->OpenSession();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerSession; ++i) {
      Result<ObjectBuffer> buffer = session.GetObject(created[t][i]);
      ASSERT_TRUE(buffer.ok());
      EXPECT_EQ(buffer->value.FindField("age")->AsInt(), t * 100 + i);
    }
  }
}

TEST(DatabaseConcurrencyTest, ConcurrentUpdatesDontLoseObjects) {
  constexpr char kSchema[] = R"(
persistent class counter {
public:
  int value;
};
)";
  auto db = std::move(*Database::CreateInMemory("updates"));
  ASSERT_TRUE(db->DefineSchema(kSchema).ok());

  // One object per thread: updates to distinct objects must all stick.
  std::vector<Oid> oids;
  for (int t = 0; t < kThreads; ++t) {
    oids.push_back(*db->CreateObject(
        "counter", Value::Struct({{"value", Value::Int(0)}})));
  }

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, &oids, t] {
      Session session = db->OpenSession();
      for (int i = 1; i <= 100; ++i) {
        ASSERT_TRUE(session
                        .UpdateObject(oids[t], Value::Struct({{"value",
                                                  Value::Int(i)}}))
                        .ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    ObjectBuffer buffer = *db->GetObject(oids[t]);
    EXPECT_EQ(buffer.value.FindField("value")->AsInt(), 100);
    EXPECT_EQ(buffer.version, 101u);
  }
}

// --- Prefetcher --------------------------------------------------------

TEST(PrefetchTest, PrefetchWarmsPages) {
  constexpr int kPages = 32;
  MemPager pager;
  for (int i = 0; i < kPages; ++i) ASSERT_TRUE(pager.Allocate().ok());
  BufferPool pool(&pager, /*capacity=*/kPages);

  for (PageId id = 0; id < kPages; ++id) pool.Prefetch(id);
  pool.WaitForPrefetches();

  for (PageId id = 0; id < kPages; ++id) {
    EXPECT_TRUE(pool.Cached(id)) << "page " << id << " not prefetched";
  }
  BufferPool::Stats stats = pool.stats();
  EXPECT_GT(stats.prefetches, 0u);

  // Every fetch is now a hit.
  uint64_t misses_before = stats.misses;
  for (PageId id = 0; id < kPages; ++id) {
    ASSERT_TRUE(pool.Fetch(id).ok());
  }
  EXPECT_EQ(pool.stats().misses, misses_before);
}

TEST(PrefetchTest, HeapSequencingSchedulesReadAhead) {
  MemPager pager;
  // Pool smaller than the heap so sequencing actually crosses pages
  // that fell out of the cache (a warm pool schedules nothing).
  BufferPool pool(&pager, /*capacity=*/4);
  FreeList free_list(&pool, kNoPage);
  HeapFile heap = std::move(*HeapFile::Create(&pool, &free_list));

  // Enough records that the heap far outgrows the pool, so NextId's
  // read-ahead targets are genuinely cold.
  constexpr uint64_t kRecords = 2000;
  for (uint64_t id = 1; id <= kRecords; ++id) {
    ASSERT_TRUE(heap.Insert(id, PayloadFor(id)).ok());
  }
  ASSERT_GT(*heap.PageCount(), 8u);

  Result<uint64_t> id = heap.FirstId();
  while (id.ok()) id = heap.NextId(*id);
  pool.WaitForPrefetches();
  EXPECT_GT(pool.stats().prefetches, 0u)
      << "sequencing a multi-page heap should schedule read-ahead";
}

// --- Scaling smoke test ------------------------------------------------

// Reports read throughput single- vs multi-threaded. Logged rather than
// asserted: CI machines vary too much for a hard ratio check, but the
// numbers make regressions visible in the test record.
TEST(ScalingTest, ParallelScanThroughput) {
  constexpr int kPages = 64;
  MemPager pager;
  for (int i = 0; i < kPages; ++i) ASSERT_TRUE(pager.Allocate().ok());
  BufferPool pool(&pager, /*capacity=*/kPages, /*shards=*/8);
  for (PageId id = 0; id < kPages; ++id) {
    ASSERT_TRUE(pool.Fetch(id).ok());  // warm
  }

  auto run = [&pool](int threads, int ops_per_thread) {
    std::vector<std::thread> workers;
    auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&pool, t, ops_per_thread] {
        Rng rng(97 + t);
        for (int op = 0; op < ops_per_thread; ++op) {
          Result<PageHandle> handle =
              pool.Fetch(static_cast<PageId>(rng.Below(kPages)));
          ASSERT_TRUE(handle.ok());
        }
      });
    }
    for (std::thread& w : workers) w.join();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  constexpr int kOps = 50000;
  double single = run(1, kOps * 4);
  double multi = run(4, kOps);
  ::testing::Test::RecordProperty("single_thread_seconds", single);
  ::testing::Test::RecordProperty("four_thread_seconds", multi);
  // Same total work; multi should not be dramatically slower.
  EXPECT_GT(single, 0.0);
  EXPECT_GT(multi, 0.0);
}

// --- Observability under contention -----------------------------------

// Writers hammer shared counters/histograms and emit trace spans, other
// threads churn owned instruments (exercising the retiring deleters),
// and a reader thread concurrently snapshots and renders every export
// format. TSan is the real assertion here; the tallies at the end catch
// lost updates.
TEST(ObsStressTest, MetricsAndSpansUnderConcurrentExport) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter* shared_counter =
      registry.counter("concurrency_test.obs.counter");
  obs::Histogram* shared_hist =
      registry.histogram("concurrency_test.obs.hist");
  obs::Tracing::Clear();
  obs::Tracing::Enable();
  // Run the whole stress with the flight recorder live: a fast-scan
  // watchdog reading open spans and journal appends racing the span
  // writers. TSan checks the cross-component interactions.
  obs::WatchdogOptions watchdog_options;
  watchdog_options.scan_interval = std::chrono::milliseconds(5);
  watchdog_options.span_deadline = std::chrono::milliseconds(10000);
  watchdog_options.hold_deadline = std::chrono::milliseconds(10000);
  watchdog_options.install_crash_handler = false;
  obs::Watchdog stress_watchdog;
  ASSERT_TRUE(stress_watchdog.Start(watchdog_options).ok());

  constexpr int kOpsPerThread = 4000;
  constexpr int kOwnerRounds = 200;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> owned_total{0};
  std::vector<std::thread> workers;

  // Writers: shared instruments + trace spans.
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([shared_counter, shared_hist, t] {
      Rng rng(131 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        ODE_TRACE_SPAN("concurrency_test.obs.span");
        shared_counter->Increment();
        shared_hist->Record(rng.Below(1 << 20));
        if (op % 64 == 0) {
          obs::Journal::Global().Append(obs::JournalEvent::kMark, op, t);
        }
      }
    });
  }
  // Owner churners: create, bump, and destroy owned instruments so the
  // retiring deleters race against the snapshot reader.
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&registry, &owned_total, t] {
      Rng rng(977 + t);
      for (int round = 0; round < kOwnerRounds; ++round) {
        auto counter =
            registry.NewOwnedCounter("concurrency_test.obs.owned");
        auto hist =
            registry.NewOwnedHistogram("concurrency_test.obs.owned_hist");
        uint64_t bumps = rng.Below(16) + 1;
        counter->Add(bumps);
        hist->Record(bumps);
        owned_total.fetch_add(bumps, std::memory_order_relaxed);
      }
    });
  }
  // Reader: exports everything, repeatedly, while the above runs.
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<obs::MetricSample> samples = registry.Snapshot();
      EXPECT_FALSE(samples.empty());
      EXPECT_FALSE(registry.RenderJson().empty());
      EXPECT_FALSE(registry.RenderPrometheus().empty());
      EXPECT_FALSE(obs::Tracing::ExportChromeJson().empty());
      EXPECT_FALSE(obs::Journal::Global().ExportJsonLines().empty());
    }
  });

  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  stress_watchdog.Stop();
  obs::Tracing::Disable();

  EXPECT_EQ(shared_counter->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(shared_hist->count(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // Every owned bump must be visible post-retirement (all owners died).
  uint64_t exported = 0;
  uint64_t exported_hist_count = 0;
  for (const obs::MetricSample& s : registry.Snapshot()) {
    if (s.name == "concurrency_test.obs.owned") {
      exported = static_cast<uint64_t>(s.value);
    }
    if (s.name == "concurrency_test.obs.owned_hist") {
      exported_hist_count = s.count;
    }
  }
  EXPECT_EQ(exported, owned_total.load());
  EXPECT_EQ(exported_hist_count, 2u * kOwnerRounds);
  // Spans either landed in a ring buffer or were counted as dropped.
  EXPECT_EQ(obs::Tracing::CapturedCount() + obs::Tracing::DroppedCount(),
            static_cast<size_t>(kThreads) * kOpsPerThread);
  obs::Tracing::Clear();
}

// The journal ring under concurrent producers and a racing consumer:
// appends never block or tear, the retained tail is a strictly
// increasing run of sequence numbers no longer than one ring, and
// every append is accounted for (committed or counted dropped).
TEST(ObsStressTest, JournalConcurrentWritersAndWrap) {
  obs::Journal journal(/*capacity=*/256);
  constexpr int kAppendsPerThread = 5000;
  std::atomic<bool> stop{false};

  std::thread reader([&journal, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<obs::JournalRecord> tail = journal.Snapshot();
      EXPECT_LE(tail.size(), journal.capacity());
      for (size_t i = 1; i < tail.size(); ++i) {
        EXPECT_LT(tail[i - 1].seq, tail[i].seq);
      }
      (void)journal.ExportJsonLines();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&journal, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        journal.Append(obs::JournalEvent::kMark, i, t);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(journal.appended(),
            static_cast<uint64_t>(kThreads) * kAppendsPerThread);
  std::vector<obs::JournalRecord> tail = journal.Snapshot();
  EXPECT_LE(tail.size(), journal.capacity());
  EXPECT_GE(tail.size() + journal.dropped(), journal.capacity());
  for (size_t i = 1; i < tail.size(); ++i) {
    EXPECT_LT(tail[i - 1].seq, tail[i].seq);
  }
  // The newest retained record is from the final ring generation (the
  // very last append may itself have lost its claim race and dropped).
  if (!tail.empty()) {
    EXPECT_LE(tail.back().seq, journal.appended());
    EXPECT_GE(tail.back().seq + journal.capacity(), journal.appended());
  }
}

// --- Lock-rank validator under the full engine ------------------------

// The whole battery above exercises every lock in the engine; this case
// drives a representative multi-session DDL+DML mix and asserts that the
// rank validator saw *zero* violations — i.e. the engine's real
// acquisition orders all fit the documented partial order. Runs in
// kCount mode so an ordering bug fails the assertion (with the journal
// carrying the record) instead of aborting the battery.
TEST(LockRankBatteryTest, EngineWorkloadProducesNoRankViolations) {
  LockRankValidator::SetMode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();

  auto db_or = Database::CreateInMemory("rankdb");
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Database* db = db_or->get();
  ASSERT_TRUE(db->DefineSchema("persistent class Item { int n; };").ok());

  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([db, t] {
      Session session = db->OpenSession();
      Rng rng(static_cast<uint64_t>(t) + 99);
      std::vector<Oid> mine;
      for (int i = 0; i < kPerThread; ++i) {
        switch (rng.Below(4)) {
          case 0: {
            auto oid = session.CreateObject(
                "Item", Value::Struct({{"n", Value::Int(i)}}));
            if (oid.ok()) mine.push_back(*oid);
            break;
          }
          case 1:
            if (!mine.empty()) {
              (void)session.GetObject(mine[rng.Below(mine.size())]);
            }
            break;
          case 2:
            if (!mine.empty()) {
              (void)session.UpdateObject(
                  mine[rng.Below(mine.size())],
                  Value::Struct({{"n", Value::Int(-i)}}));
            }
            break;
          default:
            (void)session.ScanCluster("Item");
            break;
        }
      }
      EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(db->Sync().ok());

  EXPECT_EQ(LockRankValidator::violations(), before)
      << "engine workload broke the documented lock order; check the "
         "lockrank_violation records in the journal";
}

// --- Batched executor under concurrency --------------------------------

// Parallel partitioned scans race against writers creating, updating,
// and deleting objects in the scanned cluster. Outcomes depend on the
// interleaving, so the assertions check invariants instead of counts:
// every result is sorted by id with no duplicates, every matched row
// actually satisfies the predicate (updates write non-matching values,
// so a torn read would surface here), and the partition workers honor
// the documented lock order. CI runs this binary under TSan.
TEST(ExecConcurrencyTest, ParallelScansDuringMutationsStayConsistent) {
  LockRankValidator::SetMode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();

  auto db_or = Database::CreateInMemory("execdb");
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Database* db = db_or->get();
  ASSERT_TRUE(
      db->DefineSchema("persistent class Item { int n; string tag; };").ok());
  {
    Session session = db->OpenSession();
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(session
                      .CreateObject("Item",
                                    Value::Struct(
                                        {{"n", Value::Int(i)},
                                         {"tag", Value::String(
                                                     PayloadFor(i))}}))
                      .ok());
    }
  }

  auto predicate_or = ParsePredicate("n >= 0");
  ASSERT_TRUE(predicate_or.ok());
  const Predicate predicate = *predicate_or;

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([db, t, &stop] {
      Session session = db->OpenSession();
      Rng rng(static_cast<uint64_t>(t) + 4242);
      std::vector<Oid> mine;
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        switch (rng.Below(3)) {
          case 0: {
            auto oid = session.CreateObject(
                "Item",
                Value::Struct({{"n", Value::Int(static_cast<int64_t>(i))},
                               {"tag", Value::String(PayloadFor(i))}}));
            if (oid.ok()) mine.push_back(*oid);
            break;
          }
          case 1:
            if (!mine.empty()) {
              // Non-matching value: a scan must never return it.
              (void)session.UpdateObject(
                  mine[rng.Below(mine.size())],
                  Value::Struct(
                      {{"n", Value::Int(-1 - static_cast<int64_t>(i))},
                       {"tag", Value::String("updated")}}));
            }
            break;
          default:
            if (!mine.empty()) {
              size_t at = rng.Below(mine.size());
              (void)session.DeleteObject(mine[at]);
              mine.erase(mine.begin() + static_cast<ptrdiff_t>(at));
            }
            break;
        }
      }
    });
  }

  std::vector<std::thread> scanners;
  for (int t = 0; t < 4; ++t) {
    scanners.emplace_back([db, &predicate] {
      for (int iter = 0; iter < 25; ++iter) {
        exec::ScanSpec spec;
        spec.class_name = "Item";
        spec.predicate = &predicate;
        spec.project_all = true;
        spec.batch_size = 16;
        spec.parallelism = 4;
        auto result = exec::ExecuteScan(db, spec);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        Oid previous = Oid::Null();
        for (const exec::ScanRow& row : result->rows) {
          EXPECT_TRUE(previous < row.oid);  // sorted, no duplicates
          previous = row.oid;
          const Value* n = row.value.FindField("n");
          ASSERT_NE(n, nullptr);
          EXPECT_GE(n->AsInt(), 0);
        }
        EXPECT_EQ(result->stats.rows_matched, result->rows.size());
      }
      EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
    });
  }

  for (std::thread& s : scanners) s.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(LockRankValidator::violations(), before)
      << "parallel partitioned scans broke the documented lock order";
}

// --- WAL: group commit, checkpoints, and eviction under fire -----------

// Per-pool instruments are owned counters; only the registry snapshot
// sees their sum (the shared `counter()` instance stays at zero).
int64_t SnapshotCounter(const std::string& name) {
  for (const obs::MetricSample& sample :
       obs::Registry::Global().Snapshot()) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

TEST(WalConcurrencyTest, GroupCommitCheckpointsEvictionNoRankViolations) {
  const uint64_t violations_before = LockRankValidator::violations();
  const uint64_t commits_before =
      obs::Registry::Global().counter("wal.commits")->value();
  const uint64_t fsyncs_before =
      obs::Registry::Global().counter("wal.fsyncs")->value();
  const int64_t evictions_before = SnapshotCounter("pool.evictions");

  const std::string path = testing::TempDir() + "/odeview_wal_stress.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  DatabaseOptions options;
  // Small enough that the ~500-page working set churns through the pool
  // (eviction must ride the WAL flush gate), but a shard still has to
  // hold one transaction's pinned pages plus its no-steal frames — 16
  // was below that floor and writers saw transient shard exhaustion.
  options.buffer_pool_pages = 64;
  options.wal_checkpoint_bytes = 256 * 1024;  // frequent auto-checkpoints
  {
    auto db = std::move(*Database::CreateOnDisk(path, "walstress", options));
    ASSERT_TRUE(db->DefineSchema(R"(
persistent class item {
public:
  string payload;
};
)")
                    .ok());

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> created{0};
    std::atomic<uint64_t> deleted{0};
    // A dedicated thread forces explicit two-phase checkpoints while
    // writers hold group-commit leadership and eviction gates on the
    // log — the cross-product the rank order must keep deadlock-free.
    std::thread checkpointer([&db, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ASSERT_TRUE(db->Checkpoint().ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&db, &created, &deleted, t] {
        Rng rng(1000 + static_cast<uint64_t>(t));
        Session session = db->OpenSession();
        std::vector<Oid> mine;
        for (int i = 0; i < 120; ++i) {
          uint64_t op = rng.Next() % 10;
          if (op < 6 || mine.empty()) {
            // Occasional multi-page payloads route the commit through
            // several captured frames.
            size_t size = (rng.Next() % 7 == 0) ? 3000 : 80;
            Result<Oid> oid = session.CreateObject(
                "item", Value::Struct({{"payload",
                                        Value::String(std::string(
                                            size,
                                            static_cast<char>('a' + t)))}}));
            ASSERT_TRUE(oid.ok()) << oid.status().ToString();
            mine.push_back(*oid);
            created.fetch_add(1, std::memory_order_relaxed);
          } else if (op < 8) {
            Oid victim = mine[rng.Next() % mine.size()];
            Status updated = session.UpdateObject(
                victim,
                Value::Struct({{"payload", Value::String("upd")}}));
            ASSERT_TRUE(updated.ok()) << updated.ToString();
          } else {
            size_t index = rng.Next() % mine.size();
            Status removed = session.DeleteObject(mine[index]);
            ASSERT_TRUE(removed.ok()) << removed.ToString();
            mine.erase(mine.begin() + static_cast<long>(index));
            deleted.fetch_add(1, std::memory_order_relaxed);
          }
          EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    stop.store(true, std::memory_order_relaxed);
    checkpointer.join();

    EXPECT_EQ(*db->ClusterCount("item"), created.load() - deleted.load());
    EXPECT_EQ(LockRankValidator::violations(), violations_before)
        << "group commit / checkpoint / eviction broke the lock order";

    // The commit path went through the WAL, and group commit actually
    // batched: strictly fewer fsyncs than commits would mean nothing
    // here (checkpoints sync too), but both instruments must move.
    EXPECT_GT(obs::Registry::Global().counter("wal.commits")->value(),
              commits_before);
    EXPECT_GT(obs::Registry::Global().counter("wal.fsyncs")->value(),
              fsyncs_before);
    // The pool really churned: the WAL-before-data eviction gate was
    // exercised, not just clean-frame recycling.
    EXPECT_GT(SnapshotCounter("pool.evictions"), evictions_before);
  }

  // Crash-less reopen still runs restart recovery on whatever tail the
  // last checkpoint left; the surviving state must be consistent.
  auto reopened = Database::OpenOnDisk(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT(*(*reopened)->ClusterCount("item"), 0u);
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// --- Profiled queries under concurrency --------------------------------

// The acceptance battery for the profiling layer: 8 sessions run
// profiled queries (plain ops, parallel scans, EXPLAIN ANALYZE) with
// the slow-op threshold at 1 ns so *every* op takes the SlowOpLog
// mutex, while a scraper thread concurrently renders /sessions and
// /slow the way the telemetry endpoint does. TSan checks the memory
// model; the rank validator checks that the two new obs locks slot
// into the documented order with zero violations.
TEST(ProfiledQueryBatteryTest, EightProfiledSessionsUnderConcurrentScrapes) {
  LockRankValidator::SetMode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();

  auto db_or = Database::CreateInMemory("profdb");
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Database* db = db_or->get();
  LabDbConfig config;
  config.employees = 120;
  ASSERT_TRUE(BuildLabDatabase(db, config).ok());

  obs::SlowOpLog::Global().ResetForTest();
  const uint64_t threshold_before = obs::SlowOpLog::Global().threshold_ns();
  obs::SlowOpLog::Global().set_threshold_ns(1);

  Predicate predicate = *ParsePredicate("age > 40");
  std::atomic<bool> stop{false};
  std::thread scraper([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string sessions = obs::SessionRegistry::Global().RenderJson();
      EXPECT_NE(sessions.find('['), std::string::npos);
      (void)obs::SessionRegistry::Global().Snapshot();
      std::string slow = obs::SlowOpLog::Global().RenderJson();
      EXPECT_NE(slow.find('['), std::string::npos);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([db, &predicate, t] {
      Session session = db->OpenSession();
      Rng rng(7000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 60; ++i) {
        switch (rng.Below(4)) {
          case 0: {
            auto ids = session.Select("employee", predicate);
            ASSERT_TRUE(ids.ok()) << ids.status().ToString();
            break;
          }
          case 1: {
            auto first = session.FirstObject("employee");
            if (first.ok()) (void)session.GetObject(*first);
            break;
          }
          case 2: {
            auto explained =
                db->ExplainSelect("employee", predicate, /*analyze=*/true);
            ASSERT_TRUE(explained.ok()) << explained.status().ToString();
            EXPECT_GT(explained->totals.rows_scanned, 0u);
            break;
          }
          default: {
            exec::ScanSpec spec;
            spec.class_name = "employee";
            spec.predicate = &predicate;
            spec.parallelism = 4;
            obs::ProfiledOp op(session.entry(), "parallel_scan");
            auto result = exec::ExecuteScan(db, spec);
            ASSERT_TRUE(result.ok()) << result.status().ToString();
            break;
          }
        }
        EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
      }
      EXPECT_GE(session.entry()->ops_completed(), 1u);
      EXPECT_GT(session.entry()->totals().Snapshot().rows_scanned, 0u);
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GE(obs::SlowOpLog::Global().recorded(), 1u);
  obs::SlowOpLog::Global().set_threshold_ns(threshold_before);
  obs::SlowOpLog::Global().ResetForTest();

  EXPECT_EQ(LockRankValidator::violations(), before)
      << "profiled queries broke the documented lock order";
}

// --- Telemetry endpoint shutdown race -----------------------------------

namespace {
std::string ScrapeOnce(uint16_t port, const char* path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[2048];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}
}  // namespace

// Scrapers hammer every endpoint while the main thread stops the
// server. Scrapes racing the shutdown may fail to connect or read a
// short response — both fine — but the Stop must fully join the accept
// thread with no use-after-free or leaked socket (TSan + ASan CI).
TEST(TelemetryShutdownTest, ConcurrentScrapesDuringStop) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  const uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_scrapes{0};
  const char* kPaths[] = {"/metrics", "/metrics.json", "/sessions",
                          "/slow",    "/healthz",      "/nope"};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      uint64_t i = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        std::string response = ScrapeOnce(port, kPaths[i++ % 6]);
        if (response.find("HTTP/1.0") != std::string::npos) {
          ok_scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Let the scrapers land some successful requests first.
  while (ok_scrapes.load(std::memory_order_relaxed) < 8) {
    std::this_thread::yield();
  }
  server.Stop();  // races in-flight accepts/responses
  stop.store(true, std::memory_order_release);
  for (std::thread& s : scrapers) s.join();
  EXPECT_GE(ok_scrapes.load(), 8u);

  // Stop is idempotent and the port is genuinely released: a second
  // server can bind it immediately.
  server.Stop();
  obs::TelemetryServer second;
  ASSERT_TRUE(second.Start(port).ok());
  EXPECT_NE(ScrapeOnce(port, "/healthz").find("200 OK"), std::string::npos);
  second.Stop();
}

// The access observatory under fire: real sessions charging the global
// recorder through heap/pool (holding engine locks), direct recorder
// traffic, a live capture file, and scrapers pulling heat maps, ring
// snapshots, and time-series folds the whole time. TSan checks the
// lock-free structures; the rank validator must see zero violations —
// i.e. the capture mutex (rank 185) and time-series mutex (rank 182)
// really do sit above every engine lock a charge site can hold.
TEST(ObsStressTest, AccessRecorderAndScrapersUnderLoad) {
  LockRankValidator::SetMode(LockRankValidator::Mode::kCount);
  const uint64_t violations_before = LockRankValidator::violations();

  obs::AccessLog& log = obs::AccessLog::Global();
  log.ResetForTest();
  std::string capture_path =
      testing::TempDir() + "/ode_access_stress.trace";
  ASSERT_TRUE(log.StartCapture(capture_path).ok());
  log.Start(/*sample_period=*/2);

  obs::TimeSeriesStore store(/*resolution_ns=*/1000 * 1000, /*slots=*/32);
  store.Start();

  auto db_or = Database::CreateInMemory("obsstress");
  ASSERT_TRUE(db_or.ok());
  Database* db = db_or->get();
  ASSERT_TRUE(
      db->DefineSchema("persistent class Item { int n; };").ok());

  constexpr int kPerThread = 400;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;

  // Engine writers: sessions create/read/scan, charging the recorder
  // from inside heap and pool code paths.
  for (int t = 0; t < kThreads / 2; ++t) {
    workers.emplace_back([db, t] {
      Session session = db->OpenSession();
      Rng rng(311 + t);
      std::vector<Oid> mine;
      for (int i = 0; i < kPerThread; ++i) {
        switch (rng.Below(3)) {
          case 0: {
            auto oid = session.CreateObject(
                "Item", Value::Struct({{"n", Value::Int(i)}}));
            if (oid.ok()) mine.push_back(*oid);
            break;
          }
          case 1:
            if (!mine.empty()) {
              (void)session.GetObject(mine[rng.Below(mine.size())]);
            }
            break;
          default:
            (void)session.ScanCluster("Item");
            break;
        }
      }
    });
  }
  // Direct recorder writers: raw events, page touches, affinity edges.
  const char* stress_label = obs::Journal::InternLabel("stress.direct");
  for (int t = 0; t < kThreads / 2; ++t) {
    workers.emplace_back([&log, stress_label, t] {
      Rng rng(733 + t);
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(static_cast<obs::AccessOp>(rng.Below(5)), 90 + t,
                   rng.Below(64), stress_label, rng.Below(32));
        log.RecordPageTouch(rng.Below(32));
        if (i % 16 == 0) {
          log.RecordAffinity(90 + t, rng.Below(8), stress_label, 91,
                             rng.Below(8), stress_label);
        }
      }
    });
  }
  // Scrapers: everything a telemetry client or shell can pull, pulled
  // continuously while writers run.
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&log, &store, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_FALSE(log.RenderHeatmapJson().empty());
        (void)log.SnapshotProfile(/*top_pages=*/16, /*top_edges=*/16);
        (void)log.SnapshotRing();
        EXPECT_FALSE(store.RenderJson().empty());
        store.TickOnce();
      }
    });
  }

  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& s : scrapers) s.join();
  store.Stop();

  Result<uint64_t> written = log.StopCapture();
  ASSERT_TRUE(written.ok());
  EXPECT_GT(*written, 0u);
  EXPECT_GT(log.recorded(), 0u);
  // The captured file reads back cleanly even after concurrent writes.
  Result<obs::AccessTrace> trace = obs::ReadAccessTrace(capture_path);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->torn_tail_bytes, 0u);
  EXPECT_FALSE(trace->records.empty());

  EXPECT_EQ(LockRankValidator::violations(), violations_before)
      << "recorder/scraper stress broke the documented lock order";
  log.ResetForTest();
  std::remove(capture_path.c_str());
}

// --- Online re-clustering under load -----------------------------------

// A recluster thread repeatedly plans and applies page-group moves
// while readers chase the same objects and a writer churns the tail of
// the cluster. Relocation must be invisible to every other session:
// GetObject on a moved oid keeps returning the stored payload, scans
// never see duplicates, and the lock-rank validator records zero
// violations (Recluster holds the schema lock shared, then the per-heap
// lock, then pool latches — the documented order). CI runs this binary
// under TSan, so torn reads of a half-relocated record would also
// surface here.
TEST(ClusterConcurrencyTest, ReclusterDuringReadsAndWritesStaysCoherent) {
  LockRankValidator::SetMode(LockRankValidator::Mode::kCount);
  const uint64_t before = LockRankValidator::violations();

  auto db_or = Database::CreateInMemory("reclusterdb");
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Database* db = db_or->get();
  ASSERT_TRUE(db->DefineSchema(R"(
persistent class rec {
public:
  int idx;
  string pad;
};
)")
                  .ok());

  // Seed a multi-page cluster: fat pads force records onto many pages
  // so there is always something worth regrouping.
  constexpr int kSeed = 64;
  std::vector<Oid> seeded;
  for (int i = 0; i < kSeed; ++i) {
    std::string pad((i % 2) ? 700 : 40, 'x');
    seeded.push_back(*db->CreateObject(
        "rec", Value::Struct({{"idx", Value::Int(i)},
                              {"pad", Value::String(pad)}})));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reclusters{0};
  std::vector<std::thread> threads;

  // Recluster thread: plan from a synthetic affinity chain over the
  // seeded oids (consecutive pairs), apply, repeat. Alternating the
  // chain offset keeps every round planning real moves.
  threads.emplace_back([db, &seeded, &stop, &reclusters] {
    for (int round = 0; !stop.load(std::memory_order_relaxed); ++round) {
      obs::AccessProfile profile;
      const size_t offset = static_cast<size_t>(round % 2);
      for (size_t i = offset; i + 1 < seeded.size(); i += 2) {
        obs::AffinityEdge edge;
        edge.src_cluster = seeded[i].cluster;
        edge.src_local = seeded[i].local;
        edge.dst_cluster = seeded[i + 1].cluster;
        edge.dst_local = seeded[i + 1].local;
        edge.count = 8;
        profile.edges.push_back(edge);
      }
      auto plan = cluster::BuildClusterPlan(db, profile);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      Status applied = db->Recluster(*plan);
      ASSERT_TRUE(applied.ok()) << applied.ToString();
      reclusters.fetch_add(1, std::memory_order_relaxed);
      EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
    }
  });

  // Reader threads: chase seeded objects and scan while pages move
  // underneath them. A moved oid must keep resolving to its payload.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([db, &seeded, &stop, t] {
      Session session = db->OpenSession();
      Rng rng(static_cast<uint64_t>(t) + 1234);
      while (!stop.load(std::memory_order_relaxed)) {
        Oid oid = seeded[rng.Below(seeded.size())];
        Result<ObjectBuffer> buffer = session.GetObject(oid);
        ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
        int64_t idx = buffer->value.FindField("idx")->AsInt();
        size_t pad_len = buffer->value.FindField("pad")->AsString().size();
        EXPECT_EQ(pad_len, (idx % 2) ? 700u : 40u)
            << "relocated record returned a foreign payload";
        if (rng.Below(32) == 0) {
          Result<std::vector<Oid>> scan = session.ScanCluster("rec");
          ASSERT_TRUE(scan.ok());
          std::vector<uint64_t> locals;
          for (Oid o : *scan) locals.push_back(o.local);
          std::sort(locals.begin(), locals.end());
          EXPECT_EQ(std::adjacent_find(locals.begin(), locals.end()),
                    locals.end())
              << "scan saw a record twice mid-relocation";
        }
      }
      EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
    });
  }

  // Writer thread: churn objects beyond the seeded set so relocation
  // races insert/delete on the same heap's free list and tail pages.
  threads.emplace_back([db, &stop] {
    Session session = db->OpenSession();
    Rng rng(777);
    std::vector<Oid> mine;
    while (!stop.load(std::memory_order_relaxed)) {
      if (mine.size() < 16 || rng.Below(2) == 0) {
        auto oid = session.CreateObject(
            "rec",
            Value::Struct({{"idx", Value::Int(1000)},
                           {"pad", Value::String(std::string(40, 'w'))}}));
        ASSERT_TRUE(oid.ok()) << oid.status().ToString();
        mine.push_back(*oid);
      } else {
        Oid victim = mine.back();
        mine.pop_back();
        ASSERT_TRUE(session.DeleteObject(victim).ok());
      }
    }
    for (Oid oid : mine) ASSERT_TRUE(session.DeleteObject(oid).ok());
    EXPECT_EQ(LockRankValidator::HeldCount(), 0u);
  });

  // Let the battery run until the recluster thread has applied a
  // meaningful number of rounds (bounded by a wall-clock escape hatch
  // so a stuck build fails rather than hangs).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (reclusters.load(std::memory_order_relaxed) < 12 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  EXPECT_GE(reclusters.load(), 12u) << "recluster thread made no progress";

  // Every seeded object survived every move with its payload intact.
  Session session = db->OpenSession();
  for (int i = 0; i < kSeed; ++i) {
    Result<ObjectBuffer> buffer = session.GetObject(seeded[i]);
    ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
    EXPECT_EQ(buffer->value.FindField("idx")->AsInt(), i);
  }
  EXPECT_EQ(*db->ClusterCount("rec"), static_cast<uint64_t>(kSeed));
  Result<std::vector<IntegrityIssue>> issues = CheckIntegrity(db);
  ASSERT_TRUE(issues.ok()) << issues.status().ToString();
  EXPECT_TRUE(issues->empty());

  EXPECT_EQ(LockRankValidator::violations(), before)
      << "recluster broke the documented lock order; check the "
         "lockrank_violation records in the journal";
}

}  // namespace
}  // namespace ode::odb
