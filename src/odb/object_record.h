#ifndef ODEVIEW_ODB_OBJECT_RECORD_H_
#define ODEVIEW_ODB_OBJECT_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "odb/value.h"

namespace ode::odb {

/// Stored object record:
///   varint current_version
///   varint history_count
///   repeat: varint version || length-prefixed value bytes
///   current value bytes (to end of record)
struct ObjectRecord {
  uint32_t version = 1;
  std::vector<std::pair<uint32_t, Value>> history;  // oldest first
  Value value;
};

std::string EncodeObjectRecord(const ObjectRecord& record);
Result<ObjectRecord> DecodeObjectRecord(std::string_view bytes);

/// The set of top-level attributes a projected decode materializes.
/// Built from a displaylist or from the attribute paths of a
/// predicate; a dotted path ("dept.name") keeps its top-level
/// attribute ("dept") because the codec frames structs per top-level
/// field.
class ProjectionMask {
 public:
  ProjectionMask() = default;

  /// Mask keeping exactly `names` (top-level attribute names).
  static ProjectionMask Of(std::vector<std::string> names);

  /// Mask keeping the top-level prefix of each dotted path.
  static ProjectionMask FromPaths(const std::vector<std::string>& paths);

  /// Adds the top-level prefix of one dotted path.
  void AddPath(std::string_view path);

  bool contains(std::string_view name) const;
  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;  // sorted, unique
};

/// A record decoded under a projection mask: version history entries
/// are skipped wholesale (their framing is length-prefixed, so they
/// cost O(1) each) and top-level struct fields outside the mask are
/// skipped via `SkipValue` instead of materialized. `skipped_fields`
/// counts the fields whose decode was avoided, feeding the
/// `exec.rows.skipped_decode` counter.
struct ProjectedRecord {
  uint32_t version = 1;
  Value value;
  uint32_t skipped_fields = 0;
};

/// Decodes `bytes` keeping only masked top-level fields. A null
/// `mask` decodes the current value fully (history is still skipped).
/// Non-struct current values are always decoded fully — there is no
/// per-field framing to prune.
Result<ProjectedRecord> DecodeObjectRecordProjected(
    std::string_view bytes, const ProjectionMask* mask);

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_OBJECT_RECORD_H_
