// Stateful property tests: random operation sequences against the
// storage engine, checked after every step against a trivial
// in-memory reference model. Runs with a tiny buffer pool so eviction
// and write-back paths are constantly exercised.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "odb/buffer_pool.h"
#include "odb/heap_file.h"
#include "odb/pager.h"
#include "odb/slotted_page.h"

namespace ode::odb {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2 + 1) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  uint64_t Below(uint64_t bound) { return bound ? Next() % bound : 0; }

 private:
  uint64_t state_;
};

std::string RandomPayload(Rng* rng, size_t max_size) {
  std::string out(rng->Below(max_size), '\0');
  for (char& c : out) {
    c = static_cast<char>('a' + rng->Below(26));
  }
  return out;
}

// --- Heap file vs. std::map ------------------------------------------------

class HeapFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapFuzz, MatchesReferenceModel) {
  MemPager pager;
  BufferPool pool(&pager, 6);  // tiny: constant eviction
  FreeList free_list(&pool, kNoPage);
  HeapFile heap = *HeapFile::Create(&pool, &free_list);
  std::map<uint64_t, std::string> model;
  Rng rng(GetParam());
  uint64_t next_id = 1;

  for (int step = 0; step < 1200; ++step) {
    int op = static_cast<int>(rng.Below(10));
    if (op < 4) {  // insert (occasionally bigger than a page)
      uint64_t id = next_id++;
      std::string payload =
          RandomPayload(&rng, rng.Below(8) == 0 ? 9000 : 900);
      ASSERT_TRUE(heap.Insert(id, payload).ok()) << "step " << step;
      model[id] = payload;
    } else if (op < 6 && !model.empty()) {  // update (inline <-> spill)
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      std::string payload =
          RandomPayload(&rng, rng.Below(6) == 0 ? 12000 : 1800);
      ASSERT_TRUE(heap.Update(it->first, payload).ok()) << "step " << step;
      it->second = payload;
    } else if (op < 8 && !model.empty()) {  // delete
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      ASSERT_TRUE(heap.Delete(it->first).ok()) << "step " << step;
      model.erase(it);
    } else if (!model.empty()) {  // point lookup
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      Result<std::string> got = heap.Get(it->first);
      ASSERT_TRUE(got.ok()) << "step " << step;
      ASSERT_EQ(*got, it->second) << "step " << step;
    }
    // Cheap global invariants every step.
    ASSERT_EQ(heap.count(), model.size()) << "step " << step;
  }
  // Full verification: contents and iteration order.
  std::vector<uint64_t> ids = heap.AllIds();
  ASSERT_EQ(ids.size(), model.size());
  size_t i = 0;
  for (const auto& [id, payload] : model) {
    EXPECT_EQ(ids[i++], id);
    EXPECT_EQ(*heap.Get(id), payload);
  }
  // Reopen from the chain: the rebuilt directory matches too.
  ASSERT_TRUE(pool.FlushAll().ok());
  HeapFile reopened = *HeapFile::Open(&pool, &free_list, heap.first_page());
  EXPECT_EQ(reopened.count(), model.size());
  for (const auto& [id, payload] : model) {
    EXPECT_EQ(*reopened.Get(id), payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Slotted page vs. std::map -----------------------------------------------

class SlottedFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlottedFuzz, MatchesReferenceModel) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  std::map<uint16_t, std::string> model;  // slot -> payload
  Rng rng(GetParam() * 977);

  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng.Below(10));
    if (op < 5) {  // insert (may fail when full — then model intact)
      std::string payload = RandomPayload(&rng, 300);
      Result<uint16_t> slot = sp.Insert(payload);
      if (slot.ok()) {
        ASSERT_EQ(model.count(*slot), 0u) << "live slot reused";
        model[*slot] = payload;
      } else {
        ASSERT_TRUE(slot.status().IsOutOfRange()) << "step " << step;
      }
    } else if (op < 7 && !model.empty()) {  // update
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      std::string payload = RandomPayload(&rng, 400);
      Status updated = sp.Update(it->first, payload);
      if (updated.ok()) {
        it->second = payload;
      } else {
        ASSERT_TRUE(updated.IsOutOfRange()) << "step " << step;
        // Failed grow keeps the old record readable.
        ASSERT_EQ(*sp.Get(it->first), it->second);
      }
    } else if (!model.empty()) {  // delete
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      ASSERT_TRUE(sp.Delete(it->first).ok());
      model.erase(it);
    }
    ASSERT_EQ(sp.live_count(), model.size()) << "step " << step;
  }
  for (const auto& [slot, payload] : model) {
    EXPECT_EQ(*sp.Get(slot), payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- Buffer pool under random pin patterns ---------------------------------------

class PoolFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolFuzz, NeverCorruptsPages) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  constexpr int kPages = 24;
  for (int i = 0; i < kPages; ++i) {
    PageHandle handle = *pool.NewPage();
    handle.page()->bytes()[0] = static_cast<char>(i);
    handle.MarkDirty();
  }
  Rng rng(GetParam());
  std::vector<PageHandle> pins;
  for (int step = 0; step < 3000; ++step) {
    int op = static_cast<int>(rng.Below(4));
    if (op == 0 && pins.size() < 3) {
      auto id = static_cast<PageId>(rng.Below(kPages));
      Result<PageHandle> handle = pool.Fetch(id);
      ASSERT_TRUE(handle.ok());
      ASSERT_EQ(handle->page()->bytes()[0], static_cast<char>(id));
      pins.push_back(std::move(*handle));
    } else if (op == 1 && !pins.empty()) {
      pins.erase(pins.begin() +
                 static_cast<long>(rng.Below(pins.size())));
    } else {
      auto id = static_cast<PageId>(rng.Below(kPages));
      Result<PageHandle> handle = pool.Fetch(id);
      if (handle.ok()) {  // may fail when all frames pinned
        ASSERT_EQ(handle->page()->bytes()[0], static_cast<char>(id));
      }
    }
  }
  pins.clear();
  ASSERT_TRUE(pool.FlushAll().ok());
  for (int i = 0; i < kPages; ++i) {
    Page raw;
    ASSERT_TRUE(pager.Read(static_cast<PageId>(i), &raw).ok());
    EXPECT_EQ(raw.bytes()[0], static_cast<char>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolFuzz, ::testing::Values(9, 18, 27));

}  // namespace
}  // namespace ode::odb
