# Empty dependencies file for ode_dynlink.
# This may be replaced when dependencies are built.
