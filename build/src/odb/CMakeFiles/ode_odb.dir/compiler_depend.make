# Empty compiler generated dependencies file for ode_odb.
# This may be replaced when dependencies are built.
