file(REMOVE_RECURSE
  "CMakeFiles/ode_dag.dir/digraph.cc.o"
  "CMakeFiles/ode_dag.dir/digraph.cc.o.d"
  "CMakeFiles/ode_dag.dir/layout.cc.o"
  "CMakeFiles/ode_dag.dir/layout.cc.o.d"
  "libode_dag.a"
  "libode_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
