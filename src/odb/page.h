#ifndef ODEVIEW_ODB_PAGE_H_
#define ODEVIEW_ODB_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace ode::odb {

/// Size of every database page in bytes.
inline constexpr size_t kPageSize = 4096;

/// Every page reserves its last 8 bytes for the page LSN: the log
/// sequence number of the WAL record carrying this page's latest
/// image. Stamped when a dirtied page is captured into the log;
/// recovery and tooling read it to tell how current an on-disk page
/// is. Layouts (slotted pages, blob pages, the superblock) must stay
/// inside the usable prefix.
inline constexpr size_t kPageLsnSize = 8;
inline constexpr size_t kPageLsnOffset = kPageSize - kPageLsnSize;
inline constexpr size_t kPageUsableSize = kPageLsnOffset;

/// Page number within a database file. Page 0 is the superblock.
using PageId = uint32_t;

/// Sentinel meaning "no page" (end of a chain, empty free list...).
inline constexpr PageId kNoPage = 0xFFFFFFFFu;

/// A raw database page. Interpretation (superblock, slotted data page,
/// blob page) is up to the layer using it.
struct Page {
  std::array<char, kPageSize> data;

  void Zero() { data.fill(0); }
  char* bytes() { return data.data(); }
  const char* bytes() const { return data.data(); }

  /// The LSN trailer (0 on pages never captured into a WAL).
  uint64_t lsn() const {
    uint64_t v = 0;
    std::memcpy(&v, data.data() + kPageLsnOffset, sizeof(v));
    return v;
  }
  void set_lsn(uint64_t v) {
    std::memcpy(data.data() + kPageLsnOffset, &v, sizeof(v));
  }
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_PAGE_H_
