# Empty dependencies file for bench_fig01_initial_display.
# This may be replaced when dependencies are built.
