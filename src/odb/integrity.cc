#include "odb/integrity.h"

#include "odb/typecheck.h"

namespace ode::odb {

namespace {

std::string_view KindName(IntegrityIssue::Kind kind) {
  switch (kind) {
    case IntegrityIssue::Kind::kDanglingReference:
      return "dangling reference";
    case IntegrityIssue::Kind::kWrongClassReference:
      return "wrong-class reference";
    case IntegrityIssue::Kind::kTypeMismatch:
      return "type mismatch";
  }
  return "?";
}

/// Recursively walks `value` collecting reference issues.
Status WalkValue(Database* db, Oid holder, const std::string& path,
                 const Value& value, std::vector<IntegrityIssue>* issues) {
  switch (value.kind()) {
    case ValueKind::kRef: {
      if (value.AsRef().IsNull()) return Status::OK();
      Result<ObjectBuffer> target = db->GetObject(value.AsRef());
      if (!target.ok()) {
        issues->push_back(IntegrityIssue{
            IntegrityIssue::Kind::kDanglingReference, holder, path,
            value.AsRef(), target.status().message()});
        return Status::OK();
      }
      // The stored ref class should equal the target's actual class or
      // one of its ancestors (the ref may be held through a base type).
      if (target->class_name != value.RefClass()) {
        Result<std::vector<std::string>> ancestors =
            db->schema().Ancestors(target->class_name);
        bool compatible = false;
        if (ancestors.ok()) {
          for (const std::string& a : *ancestors) {
            compatible = compatible || a == value.RefClass();
          }
        }
        if (!compatible) {
          issues->push_back(IntegrityIssue{
              IntegrityIssue::Kind::kWrongClassReference, holder, path,
              value.AsRef(),
              "stored as " + value.RefClass() + " but target is " +
                  target->class_name});
        }
      }
      return Status::OK();
    }
    case ValueKind::kStruct:
      for (const Value::Field& field : value.fields()) {
        ODE_RETURN_IF_ERROR(WalkValue(
            db, holder, path.empty() ? field.name : path + "." + field.name,
            field.value, issues));
      }
      return Status::OK();
    case ValueKind::kArray:
    case ValueKind::kSet: {
      int i = 0;
      for (const Value& element : value.elements()) {
        ODE_RETURN_IF_ERROR(WalkValue(db, holder,
                                      path + "[" + std::to_string(i++) +
                                          "]",
                                      element, issues));
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

}  // namespace

std::string IntegrityIssue::ToString() const {
  std::string out(KindName(kind));
  out += " in " + holder.ToString() + " at " + member;
  if (!target.IsNull()) out += " -> " + target.ToString();
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

Result<std::vector<IntegrityIssue>> CheckIntegrity(Database* db) {
  std::vector<IntegrityIssue> issues;
  for (const ClassDef& def : db->schema().classes()) {
    if (!def.persistent) continue;
    Result<std::vector<Oid>> oids = db->ScanCluster(def.name);
    if (!oids.ok()) continue;  // class with no cluster yet
    for (Oid oid : *oids) {
      ODE_ASSIGN_OR_RETURN(ObjectBuffer buffer, db->GetObject(oid));
      Status typed = TypeCheckObject(db->schema(), def.name, buffer.value);
      if (!typed.ok()) {
        issues.push_back(IntegrityIssue{IntegrityIssue::Kind::kTypeMismatch,
                                        oid, "", Oid::Null(),
                                        typed.message()});
      }
      ODE_RETURN_IF_ERROR(WalkValue(db, oid, "", buffer.value, &issues));
    }
  }
  return issues;
}

}  // namespace ode::odb
