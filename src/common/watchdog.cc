#include "common/watchdog.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/threading.h"
#include "common/trace.h"

namespace ode::obs {

namespace {

obs::Counter& StallsTotal() {
  static Counter* c = [] {
    Registry& registry = Registry::Global();
    registry.SetHelp("watchdog.stalls.total",
                     "Open spans and latch holds flagged as stalled "
                     "by the watchdog");
    return registry.counter("watchdog.stalls.total");
  }();
  return *c;
}

// ---------------------------------------------------------------------------
// Hold registry storage: a fixed array of atomic slots, claimable and
// scannable without locks (and readable from a signal handler).

struct HoldSlot {
  std::atomic<const char*> what{nullptr};
  std::atomic<uint64_t> since_ns{0};
  std::atomic<uint32_t> thread_id{0};
};

HoldSlot g_hold_slots[HoldRegistry::kSlots];
std::atomic<uint32_t> g_hold_hint{0};

// ---------------------------------------------------------------------------
// Crash-dump support. The handler must not allocate or take locks, so
// the watchdog pre-renders a metrics snapshot into a fixed buffer,
// published with a seqlock (even version = stable).

constexpr size_t kCrashSnapshotSize = 16384;
char g_metrics_snapshot[kCrashSnapshotSize];
std::atomic<uint32_t> g_snapshot_version{0};

void WriteAll(int fd, const char* data, size_t len) {
  ssize_t ignored = ::write(fd, data, len);
  (void)ignored;
}

void WriteStr(int fd, const char* s) { WriteAll(fd, s, std::strlen(s)); }

void CrashHandler(int sig) {
  char header[96];
  int n = std::snprintf(header, sizeof(header),
                        "\n=== ode flight recorder (fatal signal %d) ===\n",
                        sig);
  if (n > 0) WriteAll(STDERR_FILENO, header, static_cast<size_t>(n));
  WriteStr(STDERR_FILENO, "-- journal tail --\n");
  Journal::Global().DumpTail(STDERR_FILENO);
  WriteStr(STDERR_FILENO, "-- open spans --\n");
  Tracing::DumpOpenSpans(STDERR_FILENO);
  WriteStr(STDERR_FILENO, "-- in-flight holds --\n");
  HoldRegistry::Dump(STDERR_FILENO);
  WriteStr(STDERR_FILENO, "-- metrics snapshot --\n");
  // Seqlock read of the pre-rendered snapshot; give up after a few
  // attempts rather than spin against a wedged writer.
  static char copy[kCrashSnapshotSize];
  for (int attempt = 0; attempt < 4; ++attempt) {
    uint32_t before = g_snapshot_version.load(std::memory_order_acquire);
    if (before % 2 != 0) continue;
    std::memcpy(copy, g_metrics_snapshot, sizeof(copy));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (g_snapshot_version.load(std::memory_order_acquire) == before) {
      copy[sizeof(copy) - 1] = '\0';
      WriteStr(STDERR_FILENO, copy);
      break;
    }
  }
  WriteStr(STDERR_FILENO, "=== end flight recorder ===\n");
  // SA_RESETHAND restored the default disposition on handler entry, so
  // re-raising terminates with the original signal.
  ::raise(sig);
}

}  // namespace

int HoldRegistry::Claim(const char* what) {
  uint32_t start = g_hold_hint.fetch_add(1, std::memory_order_relaxed);
  for (int probe = 0; probe < kSlots; ++probe) {
    int slot = static_cast<int>((start + static_cast<uint32_t>(probe)) %
                                static_cast<uint32_t>(kSlots));
    const char* expected = nullptr;
    if (g_hold_slots[slot].what.compare_exchange_strong(
            expected, what, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      g_hold_slots[slot].thread_id.store(CurrentThreadId(),
                                         std::memory_order_relaxed);
      // `since` published last: readers skip slots still showing 0.
      g_hold_slots[slot].since_ns.store(Tracing::NowNanos(),
                                        std::memory_order_release);
      return slot;
    }
  }
  return -1;  // table full — hold goes untracked
}

void HoldRegistry::Release(int slot) {
  if (slot < 0) return;
  g_hold_slots[slot].since_ns.store(0, std::memory_order_relaxed);
  g_hold_slots[slot].what.store(nullptr, std::memory_order_release);
}

std::vector<HoldRegistry::HoldInfo> HoldRegistry::Snapshot() {
  std::vector<HoldInfo> out;
  for (const HoldSlot& slot : g_hold_slots) {
    const char* what = slot.what.load(std::memory_order_acquire);
    uint64_t since = slot.since_ns.load(std::memory_order_acquire);
    if (what == nullptr || since == 0) continue;
    HoldInfo info;
    info.what = what;
    info.since_ns = since;
    info.thread_id = slot.thread_id.load(std::memory_order_relaxed);
    out.push_back(info);
  }
  return out;
}

void HoldRegistry::Dump(int fd) {
  char line[160];
  uint64_t now = Tracing::NowNanos();
  for (const HoldSlot& slot : g_hold_slots) {
    const char* what = slot.what.load(std::memory_order_acquire);
    uint64_t since = slot.since_ns.load(std::memory_order_acquire);
    if (what == nullptr || since == 0) continue;
    int n = std::snprintf(
        line, sizeof(line), "  hold %-24s thread=%u age_ns=%llu\n", what,
        slot.thread_id.load(std::memory_order_relaxed),
        static_cast<unsigned long long>(now - since));
    if (n > 0) WriteAll(fd, line, static_cast<size_t>(n));
  }
}

Watchdog::~Watchdog() { Stop(); }

Watchdog& Watchdog::Global() {
  // Leaked: the scanner may outlive static destruction of callers.
  static Watchdog* watchdog = new Watchdog();
  return *watchdog;
}

Status Watchdog::Start(WatchdogOptions options) {
  if (running_.load(std::memory_order_relaxed)) {
    return Status::AlreadyExists("watchdog already running");
  }
  options_ = options;
  // Open spans are the watchdog's data source.
  Tracing::Enable();
  if (options_.install_crash_handler) InstallCrashHandler();
  RefreshCrashSnapshot();
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Watchdog::Stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    MutexLock lock(wake_mu_);
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void Watchdog::Run() {
  MutexLock lock(wake_mu_);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    lock.Unlock();
    ScanOnce();
    RefreshCrashSnapshot();
    lock.Lock();
    // A spurious wakeup just rescans a little early; Stop() notifies
    // under the lock, so the flag check above cannot miss it.
    wake_cv_.WaitFor(lock, options_.scan_interval);
  }
}

void Watchdog::ScanOnce() {
  MutexLock lock(scan_mu_);
  uint64_t now = Tracing::NowNanos();
  auto span_deadline = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.span_deadline)
          .count());
  auto hold_deadline = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.hold_deadline)
          .count());

  std::unordered_set<uint64_t> still_open;
  for (const OpenSpanInfo& span : Tracing::OpenSpans()) {
    still_open.insert(span.span_id);
    if (flagged_spans_.count(span.span_id) != 0) continue;
    uint64_t age = now > span.start_ns ? now - span.start_ns : 0;
    uint64_t idle = now > span.thread_last_activity_ns
                        ? now - span.thread_last_activity_ns
                        : 0;
    // Both conditions: an old span whose thread keeps opening/closing
    // children is progressing, not stalled.
    if (age <= span_deadline || idle <= span_deadline) continue;
    flagged_spans_.insert(span.span_id);
    StallsTotal().Increment();
    Journal::Global().Append(JournalEvent::kWatchdogStall,
                             static_cast<int64_t>(age), /*arg1=*/0,
                             span.name);
  }
  // Forget spans that have since closed so the flag set stays bounded.
  std::erase_if(flagged_spans_, [&still_open](uint64_t id) {
    return still_open.count(id) == 0;
  });

  std::unordered_set<uint64_t> live_holds;
  for (const HoldRegistry::HoldInfo& hold : HoldRegistry::Snapshot()) {
    // A hold's identity is its claim timestamp (unique enough: two
    // claims in the same nanosecond are indistinguishable but also
    // equally stalled).
    live_holds.insert(hold.since_ns);
    if (flagged_holds_.count(hold.since_ns) != 0) continue;
    uint64_t age = now > hold.since_ns ? now - hold.since_ns : 0;
    if (age <= hold_deadline) continue;
    flagged_holds_.insert(hold.since_ns);
    StallsTotal().Increment();
    Journal::Global().Append(JournalEvent::kWatchdogStall,
                             static_cast<int64_t>(age), /*arg1=*/1,
                             hold.what);
  }
  std::erase_if(flagged_holds_, [&live_holds](uint64_t id) {
    return live_holds.count(id) == 0;
  });
}

uint64_t Watchdog::stalls() const { return StallsTotal().value(); }

std::string Watchdog::StatusReport() const {
  std::ostringstream os;
  os << "-- watchdog --\n"
     << "  running: " << (running() ? "yes" : "no") << "\n"
     << "  scan_interval_ms: " << options_.scan_interval.count() << "\n"
     << "  span_deadline_ms: " << options_.span_deadline.count() << "\n"
     << "  hold_deadline_ms: " << options_.hold_deadline.count() << "\n"
     << "  stalls_total: " << stalls() << "\n";
  std::vector<OpenSpanInfo> spans = Tracing::OpenSpans();
  os << "  open_spans: " << spans.size() << "\n";
  uint64_t now = Tracing::NowNanos();
  for (const OpenSpanInfo& span : spans) {
    os << "    " << span.name << " thread=" << span.thread_id
       << " age_ms=" << (now - span.start_ns) / 1000000
       << " trace=" << span.trace_id << "\n";
  }
  std::vector<HoldRegistry::HoldInfo> holds = HoldRegistry::Snapshot();
  os << "  holds: " << holds.size() << "\n";
  for (const HoldRegistry::HoldInfo& hold : holds) {
    os << "    " << hold.what << " thread=" << hold.thread_id
       << " age_ms=" << (now - hold.since_ns) / 1000000 << "\n";
  }
  return os.str();
}

void Watchdog::InstallCrashHandler() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashHandler;
  sigemptyset(&action.sa_mask);
  // Reset to default on entry so the handler's re-raise terminates.
  action.sa_flags = SA_RESETHAND | SA_NODEFER;
  for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &action, nullptr);
  }
}

void Watchdog::RefreshCrashSnapshot() {
  // Serialize writers (several watchdog instances can exist in tests);
  // the seqlock below is for the lock-free crash-handler reader.
  static Mutex* refresh_mu = new Mutex(LockRank::kWatchdogRefresh);
  MutexLock refresh_lock(*refresh_mu);
  std::string text = Registry::Global().RenderText();
  uint32_t version =
      g_snapshot_version.fetch_add(1, std::memory_order_acq_rel);
  (void)version;  // now odd: readers back off
  size_t n = text.size() < kCrashSnapshotSize - 1 ? text.size()
                                                  : kCrashSnapshotSize - 1;
  std::memcpy(g_metrics_snapshot, text.data(), n);
  g_metrics_snapshot[n] = '\0';
  g_snapshot_version.fetch_add(1, std::memory_order_release);
}

}  // namespace ode::obs
