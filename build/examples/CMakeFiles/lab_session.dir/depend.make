# Empty dependencies file for lab_session.
# This may be replaced when dependencies are built.
