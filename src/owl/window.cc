#include "owl/window.h"

namespace ode::owl {

Window::Window(WindowId id, std::string title, Point origin,
               Size content_size)
    : id_(id),
      title_(std::move(title)),
      origin_(origin),
      content_size_(content_size),
      root_(std::make_unique<Widget>("root")) {
  root_->set_rect(Rect{0, 0, content_size_.width, content_size_.height});
}

void Window::set_content_size(Size size) {
  content_size_ = size;
  root_->set_rect(Rect{0, 0, size.width, size.height});
}

bool Window::HandleEvent(const Event& event) {
  switch (event.type) {
    case EventType::kMouseClick: {
      if (!open_) return false;
      Point content{event.position.x - 1, event.position.y - 1};
      if (content.x < 0 || content.y < 0 ||
          content.x >= content_size_.width ||
          content.y >= content_size_.height) {
        return false;
      }
      return root_->DispatchClick(content);
    }
    case EventType::kScroll: {
      if (!open_) return false;
      Point content{event.position.x - 1, event.position.y - 1};
      return root_->DispatchScroll(content, event.amount);
    }
    case EventType::kKeyPress: {
      if (!open_ || focus_ == nullptr) return false;
      return focus_->OnKey(event.text);
    }
    case EventType::kCloseRequest:
      open_ = false;
      if (on_close_) on_close_();
      return true;
    case EventType::kExpose:
      return true;  // headless: nothing to do, repaint is on demand
  }
  return false;
}

void Window::Render(Framebuffer* fb) const {
  if (!open_) return;
  Rect frame = FrameRect();
  // Blank the window area (windows are opaque).
  fb->FillRect(frame, ' ');
  fb->DrawBox(frame);
  if (!title_.empty() && frame.width > 4) {
    std::string text = "[ " + title_ + " ]";
    fb->DrawText(frame.x + 1, frame.y,
                 std::string_view(text).substr(
                     0, static_cast<size_t>(frame.width - 2)));
  }
  root_->Render(fb, Point{frame.x + 1, frame.y + 1});
}

}  // namespace ode::owl
