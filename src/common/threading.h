#ifndef ODEVIEW_COMMON_THREADING_H_
#define ODEVIEW_COMMON_THREADING_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace ode {

/// A small dense id for the calling thread (1, 2, 3, ... in first-use
/// order), cached thread-locally. Used by log records and trace events,
/// where `std::thread::id` is too opaque to read.
uint32_t CurrentThreadId();

/// A single worker thread draining a FIFO of closures.
///
/// The thread is spawned lazily on the first `Submit()` so idle owners
/// (e.g. a buffer pool that never prefetches) cost nothing. `Stop()`
/// drops pending tasks and joins; after `Stop()` further submissions
/// are ignored. All methods are thread-safe.
class BackgroundWorker {
 public:
  BackgroundWorker() = default;
  ~BackgroundWorker() { Stop(); }

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  /// Enqueues `task`; starts the worker thread on first use.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Drain();

  /// Drops pending tasks, asks the worker to exit, and joins it.
  void Stop();

  /// Tasks queued but not yet started (approximate, for backpressure).
  size_t pending() const;

 private:
  void Loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes the worker
  std::condition_variable idle_cv_;  ///< wakes Drain()
  std::deque<std::function<void()>> queue_;
  std::thread thread_;
  bool started_ = false;
  bool stopping_ = false;
  bool busy_ = false;
};

}  // namespace ode

#endif  // ODEVIEW_COMMON_THREADING_H_
