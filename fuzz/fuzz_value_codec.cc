/// Fuzzes the value codec — the innermost untrusted-byte boundary:
/// every stored record, WAL payload, and wire value funnels through
/// DecodeValue. A successful decode must round-trip byte-exactly
/// through EncodeValue (the codec's documented invariant), and
/// SkipValue must agree with DecodeValue on how many bytes one value
/// occupies.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/coding.h"
#include "odb/value_codec.h"

using ode::Decoder;
using ode::Result;
using ode::Status;
using ode::odb::DecodeValue;
using ode::odb::EncodeValueToString;
using ode::odb::SkipValue;
using ode::odb::Value;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  Decoder decoder(bytes);
  Result<Value> value = DecodeValue(&decoder);
  if (value.ok()) {
    const size_t consumed = size - decoder.remaining().size();
    // Skip must walk the same framing decode walked.
    Decoder skipper(bytes);
    Status skipped = SkipValue(&skipper);
    if (!skipped.ok() ||
        size - skipper.remaining().size() != consumed) {
      __builtin_trap();
    }
    // Decoded values re-encode, and the re-encoding decodes back.
    std::string encoded = EncodeValueToString(*value);
    Result<Value> again = DecodeValue(encoded);
    if (!again.ok() || !(*again == *value)) __builtin_trap();
  }
  return 0;
}
