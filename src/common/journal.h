#ifndef ODEVIEW_COMMON_JOURNAL_H_
#define ODEVIEW_COMMON_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ode::obs {

/// What happened. Typed (not stringly) so post-mortem tooling can
/// filter without parsing; `JournalEventName` gives the wire name.
enum class JournalEvent : uint32_t {
  kSessionOpen = 0,      ///< arg0 = session id
  kSessionClose = 1,     ///< arg0 = session id
  kEpochBump = 2,        ///< arg0 = new mutation epoch
  kCascadeStart = 3,     ///< arg0 = fan-out (subtree size), arg1 = depth
  kCascadeEnd = 4,       ///< arg0 = fan-out, arg1 = 0 ok / 1 failed
  kEvictionPressure = 5, ///< arg0 = shard frame count (pool exhausted)
  kDynlinkFault = 6,     ///< detail = class name
  kWatchdogStall = 7,    ///< arg0 = age ns; arg1 = 0 span / 1 latch hold
  kMark = 8,             ///< free-form annotation (detail = label)
  kLockRankViolation = 9,  ///< arg0 = acquired rank, arg1 = held rank,
                           ///< detail = acquired lock name
  kExecScan = 10,          ///< arg0 = rows scanned, arg1 = rows matched
  kExecJoin = 11,          ///< arg0 = build rows, arg1 = result pairs
  kWalRecoveryStart = 12,  ///< arg0 = log bytes scanned
  kWalRecoveryEnd = 13,    ///< arg0 = pages redone, arg1 = committed txns
  kWalCheckpoint = 14,     ///< arg0 = log bytes released
  kWalTornTail = 15,       ///< arg0 = bytes truncated from the log tail
  kSlowOp = 16,            ///< arg0 = duration ns, arg1 = session id,
                           ///< detail = op name
  kAccessRecorderStart = 17,  ///< arg0 = sample period
  kAccessRecorderStop = 18,   ///< arg0 = events recorded so far
  kAccessRingOverflow = 19,   ///< arg0 = ring capacity (first wrap only)
  kReclusterStart = 20,       ///< arg0 = planned moves, detail = class
  kReclusterEnd = 21,         ///< arg0 = moves applied, arg1 = 0 ok /
                              ///< 1 failed, detail = class
  kPrefetchIssued = 22,       ///< arg0 = pages scheduled, arg1 = source
                              ///< page (affinity read-ahead batch)
};

/// Wire name of a journal event type ("session_open", ...).
const char* JournalEventName(JournalEvent type);

/// One journal record. `detail` is a pointer to a string with static
/// storage duration (a literal or an interned label) — records are
/// fixed-size PODs so the ring stays lock-free.
struct JournalRecord {
  uint64_t seq = 0;    ///< 1-based global sequence number
  uint64_t ts_ns = 0;  ///< Tracing::NowNanos() time base
  JournalEvent type = JournalEvent::kMark;
  uint32_t thread_id = 0;
  uint64_t trace_id = 0;  ///< causal context at append time (0 = none)
  uint64_t span_id = 0;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  const char* detail = nullptr;  ///< optional static/interned label
};

/// A bounded lock-free MPSC flight-recorder ring of typed records.
///
/// Producers (any thread) append with a handful of atomic operations
/// and never block; when the ring is full the oldest records are
/// overwritten, so the journal always retains the most recent tail —
/// the part a post-mortem wants. The consumer (exports, the telemetry
/// endpoint, crash dumps) reads a consistent snapshot: each slot is
/// claimed by compare-and-swap and published with a release store of
/// its sequence number, so a half-written slot is never observed. A
/// producer that loses the claim race for a slot (it lagged a full
/// ring generation behind) drops its record and counts it.
class Journal {
 public:
  /// `capacity` is rounded up to a power of two; minimum 8.
  explicit Journal(size_t capacity = kDefaultCapacity);
  ~Journal() = default;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// The process-wide journal (leaked; always on).
  static Journal& Global();

  /// Appends one record, stamping time, thread, and the calling
  /// thread's current trace context. `detail`, if given, must have
  /// static storage duration (use `InternLabel` for dynamic strings).
  void Append(JournalEvent type, int64_t arg0 = 0, int64_t arg1 = 0,
              const char* detail = nullptr);

  /// Records ever appended (including overwritten and dropped ones).
  uint64_t appended() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  /// Records dropped because the producer lost a slot-claim race.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Records overwritten by a newer ring generation (the ring wrapped).
  uint64_t overwritten() const {
    return overwritten_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  /// Mirrors the loss accounting into `obs.journal.appended/dropped/
  /// overwritten` registry counters. Deliberately *not* done inside
  /// `Append` — the journal is the lock-rank violation reporter's sink
  /// and must never acquire the metrics registry lock itself. Export
  /// paths (the `/journal` endpoint, `--journal-out`) call this from
  /// lock-free contexts. No-op for non-global instances.
  void PublishLossMetrics() const;

  /// The retained tail, oldest first. Safe against concurrent writers
  /// (slots being overwritten mid-read are skipped).
  std::vector<JournalRecord> Snapshot() const;

  /// JSON-lines export: one JSON object per record, newline-separated.
  std::string ExportJsonLines() const;

  /// Human-readable tail (newest `max_records`), for the shell.
  std::string RenderText(size_t max_records = 32) const;

  /// Best-effort tail dump to `fd` for crash handlers: fixed buffers,
  /// no allocation, atomic reads only.
  void DumpTail(int fd, size_t max_records = 64) const;

  /// Returns a stable pointer for `label`, suitable for `detail`.
  /// Interning takes a mutex — keep off hot paths (fault paths only).
  static const char* InternLabel(std::string_view label);

 private:
  static constexpr size_t kDefaultCapacity = 4096;
  /// Claim marker: a slot being written. Distinct from any sequence
  /// number a reader would accept.
  static constexpr uint64_t kBusy = ~uint64_t{0};

  /// One ring slot. `commit` holds the sequence number of the fully
  /// written record (0 = never used, kBusy = being written); payload
  /// fields are atomics so concurrent overwrite/read stays defined.
  struct Slot {
    std::atomic<uint64_t> commit{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint32_t> type{0};
    std::atomic<uint32_t> thread_id{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<int64_t> arg0{0};
    std::atomic<int64_t> arg1{0};
    std::atomic<const char*> detail{nullptr};
  };

  /// Reads `slots_[seq & mask_]` into `out` iff it holds exactly
  /// `seq`'s fully committed record.
  bool ReadSlot(uint64_t seq, JournalRecord* out) const;

  size_t capacity_ = 0;
  uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> overwritten_{0};
};

}  // namespace ode::obs

#endif  // ODEVIEW_COMMON_JOURNAL_H_
