#include <gtest/gtest.h>

#include "dynlink/lab_modules.h"
#include "odb/labdb.h"
#include "odb/typecheck.h"
#include "odeview/app.h"
#include "owl/widgets.h"

namespace ode::view {
namespace {

/// Shared fixture: a lab database opened in OdeView, as the paper's
/// sample session (Section 3) begins.
class OdeViewSession : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::move(*odb::Database::CreateInMemory("lab"));
    ASSERT_TRUE(odb::BuildLabDatabase(db_.get()).ok());
    app_ = std::make_unique<OdeViewApp>(200, 80);
    ASSERT_TRUE(dynlink::RegisterLabDisplayModules(app_->repository(),
                                                   "lab", db_->schema())
                    .ok());
    ASSERT_TRUE(app_->AddDatabaseBorrowed(db_.get()).ok());
    ASSERT_TRUE(app_->OpenInitialWindow().ok());
  }

  DbInteractor* OpenLab() {
    Result<DbInteractor*> interactor = app_->OpenDatabase("lab");
    EXPECT_TRUE(interactor.ok());
    return *interactor;
  }

  owl::Window* Win(owl::WindowId id) { return app_->server()->FindWindow(id); }

  std::string ScrollTextContent(owl::WindowId id,
                                const std::string& widget = "content") {
    owl::Window* window = Win(id);
    if (window == nullptr) return "<no window>";
    auto* text =
        dynamic_cast<owl::ScrollText*>(window->FindWidget(widget));
    if (text == nullptr) return "<no widget>";
    std::string out;
    for (const std::string& line : text->lines()) {
      out += line;
      out += "\n";
    }
    return out;
  }

  std::unique_ptr<odb::Database> db_;
  std::unique_ptr<OdeViewApp> app_;
};

// --- Fig. 1: the initial database window -------------------------------------

TEST_F(OdeViewSession, InitialWindowListsDatabases) {
  owl::Window* window = Win(app_->initial_window());
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->title(), "Ode databases");
  EXPECT_NE(window->FindWidget("db:lab"), nullptr);
}

TEST_F(OdeViewSession, ClickingIconOpensDbInteractor) {
  ASSERT_TRUE(
      app_->server()->ClickWidget(app_->initial_window(), "db:lab").ok());
  DbInteractor* interactor = app_->FindInteractor("lab");
  ASSERT_NE(interactor, nullptr);
  EXPECT_NE(interactor->schema_window(), owl::kNoWindow);
  EXPECT_NE(Win(interactor->schema_window()), nullptr);
}

TEST_F(OdeViewSession, MultipleDatabasesSimultaneously) {
  auto db2 = std::move(*odb::Database::CreateInMemory("lab2"));
  odb::LabDbConfig small;
  small.employees = 3;
  small.managers = 1;
  ASSERT_TRUE(odb::BuildLabDatabase(db2.get(), small).ok());
  ASSERT_TRUE(app_->AddDatabase(std::move(db2)).ok());
  ASSERT_TRUE(app_->OpenDatabase("lab").ok());
  ASSERT_TRUE(app_->OpenDatabase("lab2").ok());
  EXPECT_NE(app_->FindInteractor("lab"), nullptr);
  EXPECT_NE(app_->FindInteractor("lab2"), nullptr);
  // Both schemas browsable at once.
  EXPECT_TRUE(app_->FindInteractor("lab2")->OpenClassInfo("employee").ok());
  EXPECT_TRUE(app_->FindInteractor("lab")->OpenClassInfo("manager").ok());
}

// --- Fig. 2: the schema window ------------------------------------------------

TEST_F(OdeViewSession, SchemaWindowShowsDagWithoutCrossings) {
  DbInteractor* interactor = OpenLab();
  DagView* view = interactor->dag_view();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->layout().crossings, 0u);
  EXPECT_EQ(view->graph().node_count(), 5);
  // Rendering mentions every class.
  std::string rendered;
  for (const std::string& line : view->RenderLines()) rendered += line + "\n";
  for (const char* cls :
       {"employee", "department", "manager", "project", "document"}) {
    EXPECT_NE(rendered.find(cls), std::string::npos) << cls;
  }
}

TEST_F(OdeViewSession, ZoomChangesDetailLevel) {
  DbInteractor* interactor = OpenLab();
  DagView* view = interactor->dag_view();
  int full_width = view->layout().width;
  ASSERT_TRUE(interactor->ZoomOut().ok());
  EXPECT_EQ(view->zoom(), 1);
  EXPECT_LT(view->layout().width, full_width);
  ASSERT_TRUE(interactor->ZoomOut().ok());
  EXPECT_EQ(view->zoom(), 2);
  ASSERT_TRUE(interactor->ZoomIn().ok());
  ASSERT_TRUE(interactor->ZoomIn().ok());
  EXPECT_EQ(view->zoom(), 0);
  ASSERT_TRUE(interactor->ZoomIn().ok());  // clamped at full detail
  EXPECT_EQ(view->zoom(), 0);
  EXPECT_EQ(view->layout().width, full_width);
}

TEST_F(OdeViewSession, ClickingDagNodeOpensClassInfo) {
  DbInteractor* interactor = OpenLab();
  DagView* view = interactor->dag_view();
  // Find employee's box in diagram coordinates and click it.
  dag::NodeId node = *view->graph().FindNode("employee");
  const dag::PlacedNode& placed = view->layout().nodes[node];
  EXPECT_TRUE(view->DispatchClick(owl::Point{placed.x + 1, placed.y}));
  EXPECT_NE(interactor->class_info_window("employee"), owl::kNoWindow);
}

// --- Figs. 3 & 5: class information windows -------------------------------------

TEST_F(OdeViewSession, EmployeeClassInfoMatchesPaper) {
  DbInteractor* interactor = OpenLab();
  ASSERT_TRUE(interactor->OpenClassInfo("employee").ok());
  owl::Window* window = Win(interactor->class_info_window("employee"));
  ASSERT_NE(window, nullptr);
  auto* supers =
      dynamic_cast<owl::Menu*>(window->FindWidget("supers-menu"));
  auto* subs = dynamic_cast<owl::Menu*>(window->FindWidget("subs-menu"));
  ASSERT_NE(supers, nullptr);
  ASSERT_NE(subs, nullptr);
  EXPECT_EQ(supers->items(), (std::vector<std::string>{"<none>"}));
  EXPECT_EQ(subs->items(), (std::vector<std::string>{"manager"}));
  // "there are 55 objects in the employee cluster" (Fig. 3).
  EXPECT_NE(
      ScrollTextContent(window->id(), "meta").find(
          "objects in cluster: 55"),
      std::string::npos);
}

TEST_F(OdeViewSession, ManagerClassInfoMatchesPaper) {
  DbInteractor* interactor = OpenLab();
  ASSERT_TRUE(interactor->OpenClassInfo("manager").ok());
  owl::Window* window = Win(interactor->class_info_window("manager"));
  auto* supers =
      dynamic_cast<owl::Menu*>(window->FindWidget("supers-menu"));
  EXPECT_EQ(supers->items(),
            (std::vector<std::string>{"employee", "department"}));
  EXPECT_NE(
      ScrollTextContent(window->id(), "meta").find("objects in cluster: 7"),
      std::string::npos);
}

TEST_F(OdeViewSession, BrowsingMixesInfoWindowsFreely) {
  // Paper: clicking "manager" in employee's subclass list opens the
  // manager info window.
  DbInteractor* interactor = OpenLab();
  ASSERT_TRUE(interactor->OpenClassInfo("employee").ok());
  owl::Window* window = Win(interactor->class_info_window("employee"));
  auto* subs = dynamic_cast<owl::Menu*>(window->FindWidget("subs-menu"));
  ASSERT_TRUE(subs->SelectItem("manager").ok());
  EXPECT_NE(interactor->class_info_window("manager"), owl::kNoWindow);
}

TEST_F(OdeViewSession, UnknownClassRejected) {
  DbInteractor* interactor = OpenLab();
  EXPECT_TRUE(interactor->OpenClassInfo("ghost").IsNotFound());
}

// --- Fig. 4: the class definition window -----------------------------------------

TEST_F(OdeViewSession, DefinitionButtonShowsSource) {
  DbInteractor* interactor = OpenLab();
  ASSERT_TRUE(interactor->OpenClassInfo("employee").ok());
  ASSERT_TRUE(app_->server()
                  ->ClickWidget(interactor->class_info_window("employee"),
                                "definition")
                  .ok());
  owl::WindowId def_window = interactor->class_def_window("employee");
  ASSERT_NE(def_window, owl::kNoWindow);
  std::string source = ScrollTextContent(def_window, "source");
  EXPECT_NE(source.find("persistent class employee"), std::string::npos);
  EXPECT_NE(source.find("department* dept;"), std::string::npos);
  EXPECT_NE(source.find("constraint age >= 18;"), std::string::npos);
}

// --- Fig. 6: object browsing with display state -------------------------------------

TEST_F(OdeViewSession, ObjectsButtonOpensObjectSetWindow) {
  DbInteractor* interactor = OpenLab();
  ASSERT_TRUE(interactor->OpenClassInfo("employee").ok());
  ASSERT_TRUE(app_->server()
                  ->ClickWidget(interactor->class_info_window("employee"),
                                "objects")
                  .ok());
  BrowseNode* node = interactor->FindObjectSet("employee");
  ASSERT_NE(node, nullptr);
  owl::Window* panel = Win(node->panel_window());
  ASSERT_NE(panel, nullptr);
  EXPECT_NE(panel->FindWidget("reset"), nullptr);
  EXPECT_NE(panel->FindWidget("next"), nullptr);
  EXPECT_NE(panel->FindWidget("previous"), nullptr);
  EXPECT_NE(panel->FindWidget("fmt:text"), nullptr);
  EXPECT_NE(panel->FindWidget("fmt:picture"), nullptr);
  EXPECT_NE(panel->FindWidget("ref:dept"), nullptr);
  EXPECT_NE(panel->FindWidget("ref:boss"), nullptr);
}

TEST_F(OdeViewSession, TextAndPictureDisplays) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  ASSERT_TRUE(node->ToggleFormat("picture").ok());
  owl::WindowId text_window = node->DisplayWindow("text");
  owl::WindowId picture_window = node->DisplayWindow("picture");
  ASSERT_NE(text_window, owl::kNoWindow);
  ASSERT_NE(picture_window, owl::kNoWindow);
  EXPECT_NE(ScrollTextContent(text_window).find("rakesh"),
            std::string::npos);
  auto* raster = dynamic_cast<owl::RasterView*>(
      Win(picture_window)->FindWidget("image"));
  ASSERT_NE(raster, nullptr);
  EXPECT_FALSE(raster->bitmap().empty());
}

TEST_F(OdeViewSession, SequencingUpdatesOpenDisplays) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  std::string first = ScrollTextContent(node->DisplayWindow("text"));
  ASSERT_TRUE(node->Next().ok());
  std::string second = ScrollTextContent(node->DisplayWindow("text"));
  EXPECT_NE(first, second);
  EXPECT_NE(second.find("narain"), std::string::npos);
  ASSERT_TRUE(node->Prev().ok());
  EXPECT_EQ(ScrollTextContent(node->DisplayWindow("text")), first);
}

TEST_F(OdeViewSession, DisplayStateRememberedPerCluster) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  ASSERT_TRUE(node->ToggleFormat("picture").ok());
  // Closing the text display changes the cluster's display state...
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  EXPECT_FALSE(node->IsFormatOpen("text"));
  EXPECT_TRUE(node->IsFormatOpen("picture"));
  // ...and the state is shared with any other window on this cluster.
  const ClusterDisplayState* state =
      app_->display_states()->FindState("lab", "employee");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->open_formats, (std::vector<std::string>{"picture"}));
}

TEST_F(OdeViewSession, SequencingPastEndsReportsOutOfRange) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("manager");
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(node->Next().ok()) << i;
  }
  EXPECT_TRUE(node->Next().IsOutOfRange());
  // Position unchanged after hitting the end.
  EXPECT_TRUE(node->has_current());
  ASSERT_TRUE(node->Reset().ok());
  EXPECT_FALSE(node->has_current());
  EXPECT_TRUE(node->Prev().ok());  // wraps to the last object
}

TEST_F(OdeViewSession, UnknownFormatRejected) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  EXPECT_TRUE(node->ToggleFormat("postscript").IsNotFound());
}

// --- Figs. 7 & 8: complex objects ----------------------------------------------------

TEST_F(OdeViewSession, FollowSingleReference) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  Result<BrowseNode*> dept = node->FollowReference("dept");
  ASSERT_TRUE(dept.ok()) << dept.status().ToString();
  EXPECT_EQ((*dept)->kind(), BrowseNodeKind::kReference);
  EXPECT_EQ((*dept)->class_name(), "department");
  ASSERT_TRUE((*dept)->has_current());
  EXPECT_EQ((*dept)->Current()->value.FindField("name")->AsString(),
            "research");
  // Object windows have no sequencing controls.
  EXPECT_FALSE((*dept)->CanSequence());
  EXPECT_EQ((*dept)->Next().code(), StatusCode::kFailedPrecondition);
}

TEST_F(OdeViewSession, FollowReferenceSet) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());  // rakesh
  BrowseNode* dept = *node->FollowReference("dept");
  Result<BrowseNode*> colleagues = dept->FollowReferenceSet("employees");
  ASSERT_TRUE(colleagues.ok()) << colleagues.status().ToString();
  EXPECT_EQ((*colleagues)->kind(), BrowseNodeKind::kReferenceSet);
  EXPECT_EQ((*colleagues)->class_name(), "employee");
  // The set window resolves to the first colleague immediately and can
  // sequence through the rest (Fig. 8).
  ASSERT_TRUE((*colleagues)->has_current());
  ASSERT_TRUE((*colleagues)->Next().ok());
  EXPECT_TRUE((*colleagues)->Prev().ok());
}

TEST_F(OdeViewSession, FollowReferenceRequiresCurrentObject) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  EXPECT_EQ(node->FollowReference("dept").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(OdeViewSession, NonReferenceMemberRejected) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  EXPECT_TRUE(node->FollowReference("name").status().IsInvalidArgument());
  EXPECT_TRUE(
      node->FollowReferenceSet("dept").status().IsInvalidArgument());
}

TEST_F(OdeViewSession, LazyLoading) {
  // Opening an object set fetches nothing until sequencing; following
  // a reference creates exactly one child node.
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  EXPECT_FALSE(node->has_current());
  EXPECT_TRUE(node->children().empty());
  ASSERT_TRUE(node->Next().ok());
  BrowseNode* dept1 = *node->FollowReference("dept");
  BrowseNode* dept2 = *node->FollowReference("dept");
  EXPECT_EQ(dept1, dept2);  // idempotent
  EXPECT_EQ(node->SubtreeSize(), 2);
}

// --- Figs. 9 & 10: synchronized browsing ------------------------------------------------

TEST_F(OdeViewSession, SynchronizedChainRefreshes) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  // Chain: employee -> dept -> head (the employee's manager via the
  // department, as in Fig. 9).
  BrowseNode* dept = *node->FollowReference("dept");
  BrowseNode* head = *dept->FollowReference("head");
  ASSERT_TRUE(head->has_current());
  odb::Oid dept_before = dept->Current()->oid;
  odb::Oid head_before = head->Current()->oid;
  // Advance the employee until one lands in a different department.
  bool changed = false;
  for (int i = 0; i < 54 && !changed; ++i) {
    ASSERT_TRUE(node->Next().ok());
    changed = dept->Current()->oid != dept_before;
  }
  ASSERT_TRUE(changed) << "no employee in another department?";
  // The manager window followed the department automatically (Fig. 10).
  EXPECT_NE(head->Current()->oid, head_before);
  EXPECT_EQ(head->Current()->oid,
            dept->Current()->value.FindField("head")->AsRef());
}

TEST_F(OdeViewSession, ClosedWindowsRefreshToo) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  BrowseNode* dept = *node->FollowReference("dept");
  ASSERT_TRUE(dept->ToggleFormat("text").ok());
  owl::WindowId text_window = dept->DisplayWindow("text");
  std::string before = ScrollTextContent(text_window);
  // The user closes the department display window...
  Win(text_window)->set_open(false);
  // ...sequences the employee to one in another department...
  std::string after = before;
  for (int i = 0; i < 54 && after == before; ++i) {
    ASSERT_TRUE(node->Next().ok());
    after = ScrollTextContent(text_window);
  }
  // ...and the *closed* window's content was refreshed anyway (§4.4).
  EXPECT_NE(after, before);
}

TEST_F(OdeViewSession, SequencingSetWindowDoesNotDisturbParent) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  odb::Oid employee_before = node->Current()->oid;
  BrowseNode* dept = *node->FollowReference("dept");
  BrowseNode* colleagues = *dept->FollowReferenceSet("employees");
  ASSERT_TRUE(colleagues->Next().ok());
  ASSERT_TRUE(colleagues->Next().ok());
  // Sequencing a child only propagates downward, never upward.
  EXPECT_EQ(node->Current()->oid, employee_before);
}

TEST_F(OdeViewSession, ResetPropagatesEmptinessDownChain) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  BrowseNode* dept = *node->FollowReference("dept");
  ASSERT_TRUE(dept->has_current());
  ASSERT_TRUE(node->Reset().ok());
  EXPECT_FALSE(node->has_current());
  EXPECT_FALSE(dept->has_current());
}

// --- §5.1: projection ---------------------------------------------------------------------

TEST_F(OdeViewSession, ProjectionLimitsDisplayedAttributes) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  std::string full = ScrollTextContent(node->DisplayWindow("text"));
  EXPECT_NE(full.find("age:"), std::string::npos);
  ASSERT_TRUE(node->SetProjection({"name"}).ok());
  std::string projected = ScrollTextContent(node->DisplayWindow("text"));
  EXPECT_NE(projected.find("name:"), std::string::npos);
  EXPECT_EQ(projected.find("age:"), std::string::npos);
  ASSERT_TRUE(node->ClearProjection().ok());
  EXPECT_NE(ScrollTextContent(node->DisplayWindow("text")).find("age:"),
            std::string::npos);
}

TEST_F(OdeViewSession, ProjectionValidatesAgainstDisplayList) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  EXPECT_TRUE(node->SetProjection({"no_such_attr"}).IsInvalidArgument());
}

TEST_F(OdeViewSession, ProjectionDialogAppliesChoices) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  ASSERT_TRUE(interactor->OpenProjectionDialog("employee").ok());
  owl::WindowId dialog = interactor->projection_dialog("employee");
  ASSERT_NE(dialog, owl::kNoWindow);
  ASSERT_TRUE(app_->server()->ClickWidget(dialog, "attr:name").ok());
  ASSERT_TRUE(app_->server()->ClickWidget(dialog, "apply").ok());
  std::string projected = ScrollTextContent(node->DisplayWindow("text"));
  EXPECT_EQ(projected.find("age:"), std::string::npos);
  // The ALL button lifts the projection.
  ASSERT_TRUE(app_->server()->ClickWidget(dialog, "ALL").ok());
  EXPECT_NE(ScrollTextContent(node->DisplayWindow("text")).find("age:"),
            std::string::npos);
}

TEST_F(OdeViewSession, DisplayListComesFromClassDefinition) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  // employee declares: displaylist name, age, title, salary.
  EXPECT_EQ(*node->DisplayList(),
            (std::vector<std::string>{"name", "age", "title", "salary"}));
}

// --- §5.2: selection ------------------------------------------------------------------------

TEST_F(OdeViewSession, ConditionBoxFiltersSequencing) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(
      interactor->ApplyConditionBox("employee", "age >= 50").ok());
  EXPECT_TRUE(node->has_selection());
  int count = 0;
  while (node->Next().ok()) {
    EXPECT_GE(node->Current()->value.FindField("age")->AsInt(), 50);
    ++count;
  }
  // Matches the database contents exactly.
  odb::Predicate p = *odb::ParsePredicate("age >= 50");
  EXPECT_EQ(static_cast<size_t>(count),
            db_->Select("employee", p)->size());
  ASSERT_TRUE(interactor->ClearSelection("employee").ok());
  EXPECT_FALSE(node->has_selection());
}

TEST_F(OdeViewSession, SelectionValidatesAgainstSelectList) {
  DbInteractor* interactor = OpenLab();
  (void)*interactor->OpenObjectSet("employee");
  // "picture" is not in employee's selectlist (name, age, salary).
  EXPECT_TRUE(interactor->ApplyConditionBox("employee", "title == \"MTS\"")
                  .IsInvalidArgument());
}

TEST_F(OdeViewSession, SelectionDialogMenuFlow) {
  DbInteractor* interactor = OpenLab();
  ASSERT_TRUE(interactor->OpenSelectionDialog("employee").ok());
  owl::WindowId dialog = interactor->selection_dialog("employee");
  ASSERT_NE(dialog, owl::kNoWindow);
  owl::Window* window = Win(dialog);
  auto* attr_menu =
      dynamic_cast<owl::Menu*>(window->FindWidget("attr-menu"));
  auto* op_menu = dynamic_cast<owl::Menu*>(window->FindWidget("op-menu"));
  auto* value =
      dynamic_cast<owl::TextInput*>(window->FindWidget("value"));
  ASSERT_NE(attr_menu, nullptr);
  // The attribute menu lists exactly the selectlist.
  EXPECT_EQ(attr_menu->items(),
            (std::vector<std::string>{"name", "age", "salary"}));
  ASSERT_TRUE(attr_menu->SelectItem("age").ok());
  ASSERT_TRUE(op_menu->SelectItem(">=").ok());
  value->set_text("60");
  ASSERT_TRUE(app_->server()->ClickWidget(dialog, "add-and").ok());
  ASSERT_TRUE(app_->server()->ClickWidget(dialog, "apply").ok());
  BrowseNode* node = interactor->FindObjectSet("employee");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->has_selection());
  while (node->Next().ok()) {
    EXPECT_GE(node->Current()->value.FindField("age")->AsInt(), 60);
  }
}

TEST_F(OdeViewSession, ConditionBoxSyntaxErrorsSurfaceInDialog) {
  DbInteractor* interactor = OpenLab();
  ASSERT_TRUE(interactor->OpenSelectionDialog("employee").ok());
  EXPECT_FALSE(
      interactor->ApplyConditionBox("employee", "age >>> 3").ok());
  owl::Window* window = Win(interactor->selection_dialog("employee"));
  auto* status = dynamic_cast<owl::Label*>(window->FindWidget("status"));
  ASSERT_NE(status, nullptr);
  EXPECT_NE(status->text().find("invalid argument"), std::string::npos);
}

// --- §4.6: fault isolation ---------------------------------------------------------------------

TEST_F(OdeViewSession, DisplayFaultKillsOnlyThatInteractor) {
  ASSERT_TRUE(dynlink::RegisterFaultyDisplayModule(app_->repository(),
                                                   "lab", "project")
                  .ok());
  DbInteractor* interactor = OpenLab();
  BrowseNode* broken = *interactor->OpenObjectSet("project");
  ASSERT_TRUE(broken->Next().ok());
  ASSERT_TRUE(broken->ToggleFormat("crash").ok());
  EXPECT_TRUE(broken->faulted());
  EXPECT_NE(broken->fault_message().find("simulated crash"),
            std::string::npos);
  // Further operations on the dead interactor fail gracefully...
  EXPECT_EQ(broken->Next().code(), StatusCode::kFailedPrecondition);
  // ...while the rest of OdeView keeps working.
  BrowseNode* employees = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(employees->Next().ok());
  ASSERT_TRUE(employees->ToggleFormat("text").ok());
  EXPECT_FALSE(employees->faulted());
  // The dead interactor can be restarted.
  ASSERT_TRUE(broken->Restart().ok());
  EXPECT_FALSE(broken->faulted());
  ASSERT_TRUE(broken->Next().ok());
}

TEST_F(OdeViewSession, FaultInChildDoesNotKillParent) {
  ASSERT_TRUE(dynlink::RegisterFaultyDisplayModule(app_->repository(),
                                                   "lab", "department")
                  .ok());
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  BrowseNode* dept = *node->FollowReference("dept");
  ASSERT_TRUE(dept->ToggleFormat("crash").ok());
  EXPECT_TRUE(dept->faulted());
  // The parent still sequences; the faulted child is skipped silently.
  EXPECT_TRUE(node->Next().ok());
  EXPECT_FALSE(node->faulted());
}

// --- §4.5: schema change without recompilation ---------------------------------------------------

TEST_F(OdeViewSession, SchemaChangeInvalidatesLoadedDisplayFunctions) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  EXPECT_TRUE(interactor->linker()->IsLoaded("lab", "employee", "text"));
  // A class designer ships a new display function...
  dynlink::DisplayFunction patched =
      [](const odb::ObjectBuffer& object, const std::vector<std::string>&,
         const std::vector<bool>&)
      -> Result<dynlink::DisplayResources> {
    dynlink::DisplayResources resources;
    dynlink::WindowSpec window;
    window.kind = dynlink::WindowKind::kScrollText;
    window.format = "text";
    window.title = "patched";
    window.text = "PATCHED DISPLAY for " + object.oid.ToString();
    resources.windows.push_back(window);
    return resources;
  };
  ASSERT_TRUE(app_->repository()
                  ->Register(dynlink::DisplayModule{
                      "lab", "employee", "text", patched, 1024})
                  .ok());
  // ...OdeView is told the class changed; no recompilation, just
  // dynamic re-linking (the refresh reloads the new module at once).
  uint64_t loads_before = interactor->linker()->stats().loads;
  ASSERT_TRUE(interactor->OnClassChanged("employee").ok());
  EXPECT_EQ(interactor->linker()->stats().invalidations, 1u);
  EXPECT_GT(interactor->linker()->stats().loads, loads_before);
  ASSERT_TRUE(node->Next().ok());
  EXPECT_NE(ScrollTextContent(node->DisplayWindow("text"))
                .find("PATCHED DISPLAY"),
            std::string::npos);
}

// --- Synthesized display for classes without modules ----------------------------------------------

TEST_F(OdeViewSession, ClassWithoutModulesGetsSynthesizedText) {
  // Define a fresh class with no registered display modules.
  ASSERT_TRUE(db_->DefineSchema(R"(
class gadget {
public:
  string label;
  int weight;
};
)")
                  .ok());
  Result<odb::Oid> oid = db_->CreateObject(
      "gadget", odb::Value::Struct({{"label", odb::Value::String("g1")},
                                    {"weight", odb::Value::Int(3)}}));
  ASSERT_TRUE(oid.ok());
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("gadget");
  EXPECT_EQ(node->AvailableFormats(), (std::vector<std::string>{"text"}));
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  std::string text = ScrollTextContent(node->DisplayWindow("text"));
  EXPECT_NE(text.find("label: \"g1\""), std::string::npos);
  EXPECT_NE(text.find("weight: 3"), std::string::npos);
}

TEST_F(OdeViewSession, SubclassInheritsDisplayModules) {
  // A new employee subclass with no modules of its own: its object-set
  // window still offers employee's text + picture displays, rendered
  // by the inherited member functions.
  ASSERT_TRUE(db_->DefineSchema(R"(
persistent class intern : public employee {
public:
  string mentor_name;
};
)")
                  .ok());
  odb::Value intern = *odb::DefaultInstance(db_->schema(), "intern");
  *intern.FindMutableField("name") = odb::Value::String("zelda");
  *intern.FindMutableField("age") = odb::Value::Int(22);
  *intern.FindMutableField("picture") =
      odb::Value::Blob("P1 2 2\n1 0\n0 1\n");
  ASSERT_TRUE(db_->CreateObject("intern", intern).ok());
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("intern");
  EXPECT_EQ(node->AvailableFormats(),
            (std::vector<std::string>{"text", "picture"}));
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  EXPECT_NE(ScrollTextContent(node->DisplayWindow("text")).find("zelda"),
            std::string::npos);
  ASSERT_TRUE(node->ToggleFormat("picture").ok());
  EXPECT_NE(node->DisplayWindow("picture"), owl::kNoWindow);
}

// --- Window hygiene ---------------------------------------------------------------------------------

TEST_F(OdeViewSession, ClosingObjectSetDestroysItsWindows) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  (void)*node->FollowReference("dept");
  size_t windows_before = app_->server()->window_count();
  ASSERT_TRUE(interactor->CloseObjectSet("employee").ok());
  EXPECT_LT(app_->server()->window_count(), windows_before);
  EXPECT_EQ(interactor->FindObjectSet("employee"), nullptr);
  EXPECT_TRUE(interactor->CloseObjectSet("employee").IsNotFound());
}

TEST_F(OdeViewSession, CloseDatabaseTearsDownEverything) {
  DbInteractor* interactor = OpenLab();
  (void)*interactor->OpenObjectSet("employee");
  ASSERT_TRUE(interactor->OpenClassInfo("employee").ok());
  ASSERT_TRUE(app_->CloseDatabase("lab").ok());
  EXPECT_EQ(app_->FindInteractor("lab"), nullptr);
  // Only the initial database window remains.
  EXPECT_EQ(app_->server()->window_count(), 1u);
  EXPECT_TRUE(app_->CloseDatabase("lab").IsNotFound());
}

TEST_F(OdeViewSession, ScreenshotRendersSession) {
  DbInteractor* interactor = OpenLab();
  BrowseNode* node = *interactor->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  std::string screen = app_->Screenshot();
  EXPECT_NE(screen.find("Ode databases"), std::string::npos);
  EXPECT_NE(screen.find("lab schema"), std::string::npos);
  EXPECT_NE(screen.find("employee object set"), std::string::npos);
}

}  // namespace
}  // namespace ode::view
