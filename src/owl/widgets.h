#ifndef ODEVIEW_OWL_WIDGETS_H_
#define ODEVIEW_OWL_WIDGETS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "owl/bitmap.h"
#include "owl/widget.h"

namespace ode::owl {

/// A single-line text label.
class Label : public Widget {
 public:
  Label(std::string name, std::string text)
      : Widget(std::move(name)), text_(std::move(text)) {}

  std::string_view TypeName() const override { return "label"; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

 protected:
  void RenderSelf(Framebuffer* fb, Point origin) const override;

 private:
  std::string text_;
};

/// A clickable push button rendered as `[label]`. In toggle mode the
/// button keeps an on/off state (rendered `[*label]` when on) — the
/// paper's display-format buttons behave this way (clicking `text`
/// opens the text display; clicking again closes it).
class Button : public Widget {
 public:
  using Callback = std::function<void(Button&)>;

  Button(std::string name, std::string label, Callback on_click = {})
      : Widget(std::move(name)),
        label_(std::move(label)),
        on_click_(std::move(on_click)) {}

  std::string_view TypeName() const override { return "button"; }
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }
  void set_on_click(Callback cb) { on_click_ = std::move(cb); }

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Toggle mode: clicking flips `toggled()` before the callback runs.
  void set_toggle_mode(bool toggle) { toggle_mode_ = toggle; }
  bool toggled() const { return toggled_; }
  void set_toggled(bool toggled) { toggled_ = toggled; }

  int click_count() const { return click_count_; }

  /// Programmatic press (used by the server's ClickButton).
  void Press();

 protected:
  void RenderSelf(Framebuffer* fb, Point origin) const override;
  bool OnClick(Point local) override;

 private:
  std::string label_;
  Callback on_click_;
  bool enabled_ = true;
  bool toggle_mode_ = false;
  bool toggled_ = false;
  int click_count_ = 0;
};

/// Multi-line static text, word-wrapped to the widget width — the
/// protocol's "static text window".
class StaticText : public Widget {
 public:
  StaticText(std::string name, std::string text)
      : Widget(std::move(name)), text_(std::move(text)) {}

  std::string_view TypeName() const override { return "statictext"; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

 protected:
  void RenderSelf(Framebuffer* fb, Point origin) const override;

 private:
  std::string text_;
};

/// Scrollable text with vertical + horizontal scroll state — the
/// protocol's "static text window with horizontal and vertical scroll
/// bars" (used for class definitions and long object displays).
class ScrollText : public Widget {
 public:
  ScrollText(std::string name, std::vector<std::string> lines)
      : Widget(std::move(name)), lines_(std::move(lines)) {}

  std::string_view TypeName() const override { return "scrolltext"; }

  const std::vector<std::string>& lines() const { return lines_; }
  void set_lines(std::vector<std::string> lines);

  int scroll_y() const { return scroll_y_; }
  int scroll_x() const { return scroll_x_; }
  void ScrollTo(int x, int y);
  /// Scrolls by `amount` lines (positive = down), clamped.
  void ScrollBy(int amount);
  void ScrollHorizontallyBy(int amount);

  /// Rows of text visible at the current scroll position.
  std::vector<std::string> VisibleLines() const;

 protected:
  void RenderSelf(Framebuffer* fb, Point origin) const override;
  bool OnScroll(Point local, int amount) override;
  bool OnClick(Point local) override;  ///< clicks on scrollbar arrows

 private:
  int MaxScrollY() const;
  int MaxScrollX() const;
  int ContentWidth() const;   ///< widget width minus scrollbar column
  int ContentHeight() const;  ///< widget height minus scrollbar row

  std::vector<std::string> lines_;
  int scroll_y_ = 0;
  int scroll_x_ = 0;
};

/// Raster (bitmap) display — the protocol's "raster image window".
/// The bitmap is rescaled with the box filter to fit the widget.
class RasterView : public Widget {
 public:
  RasterView(std::string name, Bitmap bitmap)
      : Widget(std::move(name)), bitmap_(std::move(bitmap)) {}

  std::string_view TypeName() const override { return "raster"; }

  const Bitmap& bitmap() const { return bitmap_; }
  void set_bitmap(Bitmap bitmap) { bitmap_ = std::move(bitmap); }

  /// When true (default) the bitmap is scaled to the widget size with
  /// the box filter; otherwise drawn 1:1 and clipped.
  void set_scale_to_fit(bool scale) { scale_to_fit_ = scale; }

 protected:
  void RenderSelf(Framebuffer* fb, Point origin) const override;

 private:
  Bitmap bitmap_;
  bool scale_to_fit_ = true;
};

/// A container with an optional border and title.
class Panel : public Widget {
 public:
  explicit Panel(std::string name, std::string title = {})
      : Widget(std::move(name)), title_(std::move(title)) {}

  std::string_view TypeName() const override { return "panel"; }
  const std::string& title() const { return title_; }
  void set_border(bool border) { border_ = border; }

 protected:
  void RenderSelf(Framebuffer* fb, Point origin) const override;

 private:
  std::string title_;
  bool border_ = true;
};

/// A pop-up menu: a vertical list of items; clicking one invokes the
/// callback with its index. Used by the selection predicate builder
/// (attribute / operator menus).
class Menu : public Widget {
 public:
  using Callback = std::function<void(int index, const std::string& item)>;

  Menu(std::string name, std::vector<std::string> items,
       Callback on_select = {})
      : Widget(std::move(name)),
        items_(std::move(items)),
        on_select_(std::move(on_select)) {}

  std::string_view TypeName() const override { return "menu"; }
  const std::vector<std::string>& items() const { return items_; }
  int selected() const { return selected_; }

  /// Programmatic selection (also used by the server).
  Status SelectItem(int index);
  Status SelectItem(std::string_view item);

 protected:
  void RenderSelf(Framebuffer* fb, Point origin) const override;
  bool OnClick(Point local) override;

 private:
  std::vector<std::string> items_;
  Callback on_select_;
  int selected_ = -1;
};

/// A one-line text input (the §5.2 condition box / value entry).
/// Printable key events append; "\b" erases; "\n" submits.
class TextInput : public Widget {
 public:
  using SubmitCallback = std::function<void(const std::string& text)>;

  explicit TextInput(std::string name, SubmitCallback on_submit = {})
      : Widget(std::move(name)), on_submit_(std::move(on_submit)) {}

  std::string_view TypeName() const override { return "textinput"; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  bool OnKey(std::string_view text) override;

 protected:
  void RenderSelf(Framebuffer* fb, Point origin) const override;

 private:
  std::string text_;
  SubmitCallback on_submit_;
};

}  // namespace ode::owl

#endif  // ODEVIEW_OWL_WIDGETS_H_
