#ifndef ODEVIEW_COMMON_TRACE_H_
#define ODEVIEW_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ode::obs {

/// One completed span, recorded when its `TraceSpan` leaves scope.
struct TraceEvent {
  const char* name = nullptr;  ///< static string (the span label)
  uint64_t start_ns = 0;       ///< steady-clock, relative to process start
  uint64_t duration_ns = 0;
  uint32_t thread_id = 0;  ///< small dense id (see CurrentThreadId)
  uint32_t depth = 0;      ///< nesting depth within this thread (0 = root)
  uint64_t trace_id = 0;   ///< causal tree this span belongs to (0 = none)
  uint64_t span_id = 0;    ///< unique id of this span
  uint64_t parent_id = 0;  ///< span id of the causal parent (0 = root)
};

/// The causal position of the executing code: which trace tree it is
/// part of and which span new children should parent to. Each thread
/// carries a current context (maintained by `TraceSpan` nesting);
/// crossing a thread boundary requires an explicit hand-off:
///
///   TraceContext ctx = CurrentTraceContext();     // capture (producer)
///   worker.Submit([ctx] {
///     TraceContextScope adopt(ctx);               // adopt (consumer)
///     ODE_TRACE_SPAN("pool.fetch");               // child of ctx.span_id
///   });
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = detached (spans start a fresh trace)
  uint64_t span_id = 0;   ///< parent for spans opened under this context

  bool valid() const { return trace_id != 0; }
};

/// Captures the calling thread's current causal context.
TraceContext CurrentTraceContext();

/// RAII adoption of a captured context: installs `ctx` as the calling
/// thread's current context and restores the previous one on scope
/// exit. Adopting a default-constructed context detaches the scope
/// (spans inside start fresh traces) — useful for making each user
/// gesture a causal root regardless of the caller's context.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// A span that is currently open (its `TraceSpan` has not left scope),
/// as seen by the watchdog and crash dumps.
struct OpenSpanInfo {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint32_t thread_id = 0;
  /// Last time the owning thread opened or closed any span — a thread
  /// making progress inside a long parent span keeps this fresh, which
  /// is how the watchdog avoids flagging long-but-progressing work.
  uint64_t thread_last_activity_ns = 0;
};

/// Process-wide tracing control. Spans are collected into per-thread
/// ring buffers (each guarded by its own — effectively uncontended —
/// mutex, so collection is TSan-clean even while another thread
/// exports). Tracing is disabled by default: a span on a disabled
/// process costs one relaxed atomic load.
class Tracing {
 public:
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Events currently retained across all thread buffers.
  static size_t CapturedCount();
  /// Events overwritten because a ring buffer wrapped.
  static uint64_t DroppedCount();
  /// Drops every retained event (buffers stay registered).
  static void Clear();

  /// Chrome `trace_event` JSON (the "traceEvents" array format):
  /// complete events (ph "X") with microsecond timestamps, loadable
  /// directly in chrome://tracing and Perfetto. Each event's `args`
  /// carries `trace`, `span`, and `parent` ids so the causal tree can
  /// be rebuilt from the export.
  static std::string ExportChromeJson();

  /// All retained events (export order). Test hook: assertions on
  /// parent links are easier on structs than on JSON.
  static std::vector<TraceEvent> SnapshotEvents();

  /// Spans currently open across all threads (watchdog data source).
  static std::vector<OpenSpanInfo> OpenSpans();

  /// Appends one completed span with explicit causal ids to the
  /// calling thread's buffer. Normally called by ~TraceSpan; public
  /// for tests and for anchor events (e.g. the zero-length
  /// `db.session` span that roots a session's causal tree).
  static void Record(const char* name, uint64_t start_ns,
                     uint64_t duration_ns, uint32_t depth, uint64_t trace_id,
                     uint64_t span_id, uint64_t parent_id);
  /// Legacy arity (no causal ids); kept for existing callers/tests.
  static void Record(const char* name, uint64_t start_ns,
                     uint64_t duration_ns, uint32_t depth) {
    Record(name, start_ns, duration_ns, depth, 0, 0, 0);
  }

  /// A fresh context rooted in a brand-new trace (unique trace and
  /// span ids). Use for long-lived causal anchors such as sessions.
  static TraceContext NewRootContext();

  /// Best-effort dump of open spans to `fd` (async-signal context:
  /// buffers are try-locked, never blocked on; allocation-free).
  static void DumpOpenSpans(int fd);

  /// Nanoseconds since process start on the steady clock (the spans'
  /// time base).
  static uint64_t NowNanos();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII scope measuring one span. Use via ODE_TRACE_SPAN:
///
///   Result<PageHandle> BufferPool::Fetch(...) {
///     ODE_TRACE_SPAN("pool.fetch");
///     ...
///   }
///
/// While the span is open it is the thread's current context, so
/// nested spans (and journal records) parent to it; the previous
/// context is restored on scope exit. The name must be a string with
/// static storage duration (a literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null when tracing was off at entry
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  TraceContext parent_;  ///< context to restore (and parent link)
};

}  // namespace ode::obs

#define ODE_OBS_CONCAT_INNER(a, b) a##b
#define ODE_OBS_CONCAT(a, b) ODE_OBS_CONCAT_INNER(a, b)
#define ODE_TRACE_SPAN(name) \
  ::ode::obs::TraceSpan ODE_OBS_CONCAT(ode_trace_span_, __LINE__)(name)

#endif  // ODEVIEW_COMMON_TRACE_H_
