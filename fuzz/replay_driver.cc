/// Standalone main() for the fuzz harnesses. libFuzzer supplies its
/// own main when a target is built with -fsanitize=fuzzer; every other
/// build (GCC, plain ASan, Release) links this driver instead, so the
/// committed corpus — including every past crasher — replays as an
/// ordinary ctest case.
///
/// Usage: <harness>_replay FILE-OR-DIR...
/// Directories are walked non-recursively; each regular file is fed to
/// LLVMFuzzerTestOneInput once. Exit 0 iff every input was processed
/// (a harness that crashes or trips a sanitizer never returns).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE-OR-DIR...\n", argv[0]);
    return 2;
  }
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Sort so a crash report names a deterministic input.
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (!ReplayFile(file)) return 1;
        ++replayed;
      }
    } else {
      if (!ReplayFile(arg)) return 1;
      ++replayed;
    }
  }
  std::printf("replayed %zu inputs\n", replayed);
  return 0;
}
