# Empty compiler generated dependencies file for bench_ext_projection.
# This may be replaced when dependencies are built.
