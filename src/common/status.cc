#include "common/status.h"

namespace ode {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIOError:
      return "I/O error";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kConstraintViolation:
      return "constraint violation";
    case StatusCode::kDisplayFault:
      return "display fault";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace ode
