#include "owl/server.h"

#include <algorithm>

namespace ode::owl {

Server::Server(int screen_width, int screen_height)
    : screen_width_(std::max(16, screen_width)),
      screen_height_(std::max(8, screen_height)) {}

Window* Server::CreateWindow(std::string title, Point origin,
                             Size content_size) {
  if (origin == kAutoPlace) origin = NextAutoPlacement(content_size);
  auto window = std::make_unique<Window>(next_id_++, std::move(title),
                                         origin, content_size);
  windows_.push_back(std::move(window));
  ++stats_.windows_created;
  return windows_.back().get();
}

Status Server::DestroyWindow(WindowId id) {
  for (size_t i = 0; i < windows_.size(); ++i) {
    if (windows_[i]->id() == id) {
      windows_.erase(windows_.begin() + static_cast<long>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("window " + std::to_string(id));
}

Window* Server::FindWindow(WindowId id) {
  for (const auto& w : windows_) {
    if (w->id() == id) return w.get();
  }
  return nullptr;
}

Window* Server::FindWindowByTitle(std::string_view title) {
  for (const auto& w : windows_) {
    if (w->title() == title) return w.get();
  }
  return nullptr;
}

std::vector<Window*> Server::windows() {
  std::vector<Window*> out;
  out.reserve(windows_.size());
  for (const auto& w : windows_) out.push_back(w.get());
  return out;
}

void Server::PostEvent(Event event) {
  queue_.push_back(std::move(event));
  ++stats_.events_posted;
}

int Server::RunLoop(int max_events) {
  int dispatched = 0;
  while (!queue_.empty() && dispatched < max_events) {
    Event event = std::move(queue_.front());
    queue_.pop_front();
    if (Window* window = FindWindow(event.window)) {
      window->HandleEvent(event);
    }
    ++dispatched;
    ++stats_.events_dispatched;
  }
  return dispatched;
}

Status Server::ClickWidget(WindowId window_id,
                           std::string_view widget_name) {
  Window* window = FindWindow(window_id);
  if (window == nullptr) {
    return Status::NotFound("window " + std::to_string(window_id));
  }
  Widget* widget = window->FindWidget(widget_name);
  if (widget == nullptr) {
    return Status::NotFound("widget '" + std::string(widget_name) +
                            "' in window '" + window->title() + "'");
  }
  Point abs = widget->AbsoluteOrigin();
  Point center{abs.x + std::max(0, widget->rect().width / 2),
               abs.y + std::max(0, widget->rect().height / 2)};
  // Content coordinates -> window-local (frame offset +1).
  Event event =
      Event::MouseClick(window_id, Point{center.x + 1, center.y + 1});
  ++stats_.events_dispatched;
  if (!window->HandleEvent(event)) {
    return Status::FailedPrecondition("widget '" +
                                      std::string(widget_name) +
                                      "' did not consume the click");
  }
  return Status::OK();
}

Status Server::ClickAt(WindowId window_id, Point window_local) {
  Window* window = FindWindow(window_id);
  if (window == nullptr) {
    return Status::NotFound("window " + std::to_string(window_id));
  }
  ++stats_.events_dispatched;
  window->HandleEvent(Event::MouseClick(window_id, window_local));
  return Status::OK();
}

Status Server::SendKeys(WindowId window_id, std::string_view text) {
  Window* window = FindWindow(window_id);
  if (window == nullptr) {
    return Status::NotFound("window " + std::to_string(window_id));
  }
  ++stats_.events_dispatched;
  window->HandleEvent(Event::KeyPress(window_id, std::string(text)));
  return Status::OK();
}

Framebuffer Server::Composite() const {
  Framebuffer fb(screen_width_, screen_height_);
  for (const auto& window : windows_) {
    window->Render(&fb);
  }
  return fb;
}

Point Server::NextAutoPlacement(Size content_size) {
  // Shelf packing: place windows left-to-right in rows; wrap to a new
  // shelf when the right edge is reached, and cascade diagonally once
  // the screen is full.
  int width = content_size.width + 2;
  int height = content_size.height + 2;
  if (place_x_ + width > screen_width_) {
    place_x_ = 0;
    place_y_ += shelf_height_ + 1;
    shelf_height_ = 0;
  }
  if (place_y_ + height > screen_height_) {
    // Screen exhausted: cascade from the top-left with a small offset.
    int slot = auto_place_count_++;
    place_x_ = 2 * (slot % 12);
    place_y_ = 2 * (slot % 8);
    shelf_height_ = 0;
  }
  Point origin{place_x_, place_y_};
  place_x_ += width + 1;
  shelf_height_ = std::max(shelf_height_, height);
  return origin;
}

}  // namespace ode::owl
