file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_projection.dir/bench_ext_projection.cc.o"
  "CMakeFiles/bench_ext_projection.dir/bench_ext_projection.cc.o.d"
  "bench_ext_projection"
  "bench_ext_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
