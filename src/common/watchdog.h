#ifndef ODEVIEW_COMMON_WATCHDOG_H_
#define ODEVIEW_COMMON_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading.h"

namespace ode::obs {

/// Fixed-size registry of in-flight lock/latch holds the watchdog can
/// scan. Claim/release are a few atomic operations — cheap enough for
/// write-latch acquisition paths; the table is bounded, so under
/// extreme load extra holds simply go untracked (never blocked).
class HoldRegistry {
 public:
  static constexpr int kSlots = 128;

  struct HoldInfo {
    const char* what = nullptr;  ///< static label ("pool.frame_latch", ...)
    uint64_t since_ns = 0;       ///< Tracing::NowNanos() at claim
    uint32_t thread_id = 0;
  };

  /// Claims a slot for a hold named `what` (static string). Returns
  /// the slot index, or -1 when the table is full (hold untracked).
  static int Claim(const char* what);
  /// Releases a slot previously claimed; -1 is a no-op.
  static void Release(int slot);

  /// Currently tracked holds (watchdog data source).
  static std::vector<HoldInfo> Snapshot();

  /// Best-effort dump to `fd` (async-signal safe: atomic reads only).
  static void Dump(int fd);
};

/// RAII hold tracking for code that is not behind an `ode::Mutex`
/// (annotated mutexes whose rank is watchdog-visible claim their hold
/// slot automatically):
///
///   {
///     ScopedHold hold("test.stuck_latch");
///     ...
///   }
class ScopedHold {
 public:
  explicit ScopedHold(const char* what) : slot_(HoldRegistry::Claim(what)) {}
  ~ScopedHold() { HoldRegistry::Release(slot_); }

  ScopedHold(const ScopedHold&) = delete;
  ScopedHold& operator=(const ScopedHold&) = delete;

 private:
  int slot_;
};

/// Stall-detection deadlines. A span (or hold) is flagged once when it
/// has been open longer than its deadline *and* — for spans — its
/// thread has shown no activity (opened or closed no span) for the
/// same deadline, so a long-but-progressing parent span is never a
/// false positive.
struct WatchdogOptions {
  std::chrono::milliseconds scan_interval{100};
  std::chrono::milliseconds span_deadline{1000};
  std::chrono::milliseconds hold_deadline{500};
  /// Install fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/SIGABRT)
  /// that dump the flight recorder to stderr before re-raising.
  bool install_crash_handler = true;
};

/// Background thread scanning open trace spans and in-flight latch
/// holds against the configured deadlines. Each detected stall bumps
/// the `watchdog.stalls.total` counter (exported to Prometheus as
/// `watchdog_stalls_total`) and appends a `watchdog_stall` journal
/// record. Starting the watchdog enables tracing (open spans are its
/// data source).
class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// The process-wide watchdog instance.
  static Watchdog& Global();

  /// Starts the scanner thread; AlreadyExists if running.
  Status Start(WatchdogOptions options = {});
  /// Stops and joins the scanner thread (idempotent).
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }
  const WatchdogOptions& options() const { return options_; }

  /// One synchronous scan pass over open spans and holds. The scanner
  /// thread calls this every `scan_interval`; tests call it directly
  /// for deterministic stall checks.
  void ScanOnce();

  /// Total stalls flagged by this process (the counter's value).
  uint64_t stalls() const;

  /// Human-readable status (running, deadlines, stall count, current
  /// open spans and holds) for the shell's `watchdog` command.
  std::string StatusReport() const;

  /// Installs the fatal-signal dump handlers. Idempotent; normally
  /// done by `Start()`. The dump (journal tail, open spans, metrics
  /// snapshot) goes to stderr, then the signal is re-raised with the
  /// default disposition.
  static void InstallCrashHandler();

 private:
  void Run();
  /// Refreshes the pre-rendered metrics snapshot the (allocation-free)
  /// crash handler copies from.
  static void RefreshCrashSnapshot();

  WatchdogOptions options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  Mutex wake_mu_{LockRank::kWatchdogWake};
  CondVar wake_cv_;
  /// Span ids / hold identities already flagged (each stall reported
  /// exactly once). Only touched by ScanOnce callers.
  Mutex scan_mu_{LockRank::kWatchdogScan};
  std::unordered_set<uint64_t> flagged_spans_ ODE_GUARDED_BY(scan_mu_);
  std::unordered_set<uint64_t> flagged_holds_ ODE_GUARDED_BY(scan_mu_);
};

}  // namespace ode::obs

#endif  // ODEVIEW_COMMON_WATCHDOG_H_
