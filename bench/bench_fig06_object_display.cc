// Figure 6: displaying an employee object in text and picture form —
// the display-function protocol, dynamic linking (cold vs. warm), and
// bitmap scaling.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dynlink/linker.h"
#include "owl/bitmap.h"

namespace ode::bench {
namespace {

void BM_DynamicLinkCold(benchmark::State& state) {
  LabSession session = LabSession::Create();
  dynlink::DynamicLinker* linker = session.interactor->linker();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(linker->Load("lab", "employee", "text"), "load"));
    state.PauseTiming();
    linker->Invalidate("lab", "employee");
    state.ResumeTiming();
  }
  state.SetLabel("every display load pays the dynamic-link cost");
}
BENCHMARK(BM_DynamicLinkCold);

void BM_DynamicLinkWarm(benchmark::State& state) {
  LabSession session = LabSession::Create();
  dynlink::DynamicLinker* linker = session.interactor->linker();
  (void)ValueOrDie(linker->Load("lab", "employee", "text"), "preload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(linker->Load("lab", "employee", "text"), "load"));
  }
  state.SetLabel("cache hit after the first load (the paper's design)");
}
BENCHMARK(BM_DynamicLinkWarm);

void BM_DisplayFunctionText(benchmark::State& state) {
  LabSession session = LabSession::Create();
  dynlink::DynamicLinker* linker = session.interactor->linker();
  const dynlink::DisplayFunction* fn =
      ValueOrDie(linker->Load("lab", "employee", "text"), "load");
  odb::ObjectBuffer emp = ValueOrDie(
      session.db->GetObject(
          ValueOrDie(session.db->FirstObject("employee"), "first")),
      "get");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie((*fn)(emp, {}, {}), "display"));
  }
}
BENCHMARK(BM_DisplayFunctionText);

void BM_DisplayFunctionPicture(benchmark::State& state) {
  LabSession session = LabSession::Create();
  dynlink::DynamicLinker* linker = session.interactor->linker();
  const dynlink::DisplayFunction* fn =
      ValueOrDie(linker->Load("lab", "employee", "picture"), "load");
  odb::ObjectBuffer emp = ValueOrDie(
      session.db->GetObject(
          ValueOrDie(session.db->FirstObject("employee"), "first")),
      "get");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie((*fn)(emp, {}, {}), "display"));
  }
}
BENCHMARK(BM_DisplayFunctionPicture);

void BM_ToggleBothFormats(benchmark::State& state) {
  // The full Fig. 6 interaction: click text, click picture — windows
  // created, contents rendered.
  LabSession session = LabSession::Create();
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(node->Next(), "next");
  for (auto _ : state) {
    CheckOk(node->ToggleFormat("text"), "text on");
    CheckOk(node->ToggleFormat("picture"), "picture on");
    CheckOk(node->ToggleFormat("text"), "text off");
    CheckOk(node->ToggleFormat("picture"), "picture off");
  }
}
BENCHMARK(BM_ToggleBothFormats);

void BM_BitmapScaling(benchmark::State& state) {
  int target = static_cast<int>(state.range(0));
  owl::Bitmap source(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) source.Set(x, y, (x * 31 + y * 17) % 3 == 0);
  }
  bool box = state.range(1) == 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(box ? source.ScaledBox(target, target)
                                 : source.ScaledNearest(target, target));
  }
  state.SetLabel(box ? "box filter" : "nearest");
  state.counters["target_px"] = target;
}
BENCHMARK(BM_BitmapScaling)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
