#ifndef ODEVIEW_OWL_SERVER_H_
#define ODEVIEW_OWL_SERVER_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "owl/event.h"
#include "owl/framebuffer.h"
#include "owl/window.h"

namespace ode::owl {

/// The headless display server — the stand-in for X11 + HP-Xwidgets.
///
/// It owns top-level windows (z-order = creation order, newest on
/// top), keeps an event queue, dispatches events to windows (the
/// paper's `XtMainLoop()` becomes `RunLoop()`), and composites all open
/// windows into a character framebuffer for tests/examples.
class Server {
 public:
  struct Stats {
    uint64_t events_posted = 0;
    uint64_t events_dispatched = 0;
    uint64_t windows_created = 0;
  };

  explicit Server(int screen_width = 132, int screen_height = 50);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int screen_width() const { return screen_width_; }
  int screen_height() const { return screen_height_; }

  /// Creates a window. Pass `kAutoPlace` as origin to let the server
  /// cascade windows (the alternative the paper discusses: OdeView
  /// found automatic placement hard, so both modes exist).
  static constexpr Point kAutoPlace{-1, -1};
  Window* CreateWindow(std::string title, Point origin, Size content_size);

  /// Destroys the window entirely (distinct from closing it).
  Status DestroyWindow(WindowId id);

  Window* FindWindow(WindowId id);
  /// First window whose title matches (creation order).
  Window* FindWindowByTitle(std::string_view title);

  /// All windows in z-order (back to front), including closed ones.
  std::vector<Window*> windows();
  size_t window_count() const { return windows_.size(); }

  /// Queues an event for dispatch.
  void PostEvent(Event event);

  /// Dispatches queued events until the queue is empty (events posted
  /// by handlers are processed too). Returns events dispatched.
  int RunLoop(int max_events = 100000);

  /// Synthesizes a click on the named widget in a window (the widget's
  /// center), posts nothing — dispatches immediately.
  Status ClickWidget(WindowId window, std::string_view widget_name);
  /// Immediate click at window-local coordinates.
  Status ClickAt(WindowId window, Point window_local);
  /// Immediate key delivery to the window's focus widget.
  Status SendKeys(WindowId window, std::string_view text);

  /// Renders all open windows back-to-front onto the screen.
  Framebuffer Composite() const;

  const Stats& stats() const { return stats_; }

 private:
  Point NextAutoPlacement(Size content_size);

  int screen_width_;
  int screen_height_;
  std::vector<std::unique_ptr<Window>> windows_;
  std::deque<Event> queue_;
  WindowId next_id_ = 1;
  int auto_place_count_ = 0;
  int place_x_ = 0;
  int place_y_ = 0;
  int shelf_height_ = 0;
  Stats stats_;
};

}  // namespace ode::owl

#endif  // ODEVIEW_OWL_SERVER_H_
