#include "odb/buffer_pool.h"

#include <cassert>
#include <vector>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/op_profile.h"
#include "common/trace.h"
#include "common/watchdog.h"
#include "odb/wal.h"

namespace ode::odb {

namespace {

/// Auto shard-count policy: one shard per 32 frames, capped at 8, so
/// tiny pools behave exactly like the unsharded seed pool.
constexpr size_t kFramesPerAutoShard = 32;
constexpr size_t kMaxAutoShards = 8;

/// Prefetch queue backpressure: beyond this many pending pages new
/// prefetch requests are dropped rather than queued.
constexpr size_t kMaxPendingPrefetches = 64;

/// Affinity read-ahead fan-out per fetch miss. Small on purpose: each
/// neighbor costs a pool frame, and a mispredicted batch must not
/// evict the working set it was meant to serve.
constexpr size_t kAffinityReadAheadFanout = 4;

size_t ResolveShardCount(size_t capacity, size_t requested) {
  if (requested == 0) {
    requested = capacity / kFramesPerAutoShard;
    if (requested > kMaxAutoShards) requested = kMaxAutoShards;
  }
  if (requested < 1) requested = 1;
  if (requested > capacity) requested = capacity;
  return requested;
}

/// Latches `frame` in `intent` mode and leaves it held for the
/// returned PageHandle. Not analyzed: the latch intentionally outlives
/// this function (ownership transfers to the handle); see
/// docs/LOCKING.md §escape-hatches. Try-latch first so the uncontended
/// path (including single-threaded callers holding several handles,
/// where frame latches are taken in arbitrary order) never registers a
/// blocking hold-and-wait.
void LatchFrame(internal::Frame* frame,
                PageIntent intent) ODE_NO_THREAD_SAFETY_ANALYSIS;
void LatchFrame(internal::Frame* frame, PageIntent intent) {
  if (intent == PageIntent::kWrite) {
    if (!frame->latch.TryLock()) frame->latch.Lock();
  } else {
    if (!frame->latch.TryLockShared()) frame->latch.LockShared();
  }
}

}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    page_ = other.page_;
    intent_ = other.intent_;
    dirty_ = other.dirty_;
    other.frame_ = nullptr;
    other.page_ = nullptr;
    other.id_ = kNoPage;
    other.dirty_ = false;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (frame_ != nullptr) {
    pool_->ReleaseHandle(frame_, dirty_, intent_);
    frame_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }
}

void BufferPool::ReleaseHandle(internal::Frame* frame, bool dirty,
                               PageIntent intent) {
  if (intent == PageIntent::kWrite && dirty && wal_ != nullptr) {
    // Capture the after-image while the exclusive latch is still held:
    // the logged bytes are exactly what the writer produced, and the
    // latch + pin exclude concurrent flush/eviction of the frame until
    // its WAL flags are set.
    WalTransactionScope* scope = WalTransactionScope::Current();
    if (scope != nullptr && scope->wal() == wal_) {
      Result<uint64_t> lsn =
          wal_->AppendPageImage(scope->txn_id(), frame->id, &frame->page);
      if (lsn.ok()) {
        frame->page_lsn.store(*lsn, std::memory_order_relaxed);
        frame->wal_uncommitted.store(true, std::memory_order_release);
        scope->RecordCapturedFrame(
            {&frame->page_lsn, &frame->wal_uncommitted});
      } else {
        scope->NoteCaptureFailure(lsn.status());
      }
    }
  }
  if (intent == PageIntent::kWrite) {
    frame->latch.Unlock();
  } else {
    frame->latch.UnlockShared();
  }
  if (dirty) frame->dirty.store(true, std::memory_order_relaxed);
  // Release ordering publishes the page content and dirty flag to the
  // evictor, which observes pin_count == 0 with acquire.
  frame->pin_count.fetch_sub(1, std::memory_order_release);
}

BufferPool::BufferPool(Pager* pager, size_t capacity, size_t shards)
    : pager_(pager) {
  if (capacity == 0) capacity = 1;
  capacity_ = capacity;
  shard_count_ = ResolveShardCount(capacity, shards);
  shards_ = std::make_unique<Shard[]>(shard_count_);
  size_t base = capacity / shard_count_;
  size_t extra = capacity % shard_count_;
  obs::Registry& registry = obs::Registry::Global();
  for (size_t i = 0; i < shard_count_; ++i) {
    size_t n = base + (i < extra ? 1 : 0);
    shards_[i].frames = std::make_unique<internal::Frame[]>(n);
    shards_[i].frame_count = n;
    shards_[i].lookups = registry.NewOwnedCounter("pool.fetch.lookups");
    shards_[i].hits = registry.NewOwnedCounter("pool.fetch.hits");
    shards_[i].misses = registry.NewOwnedCounter("pool.fetch.misses");
    shards_[i].evictions = registry.NewOwnedCounter("pool.evictions");
    shards_[i].writebacks = registry.NewOwnedCounter("pool.writebacks");
  }
  prefetches_ = registry.NewOwnedCounter("pool.prefetches");
  cluster_prefetch_issued_ =
      registry.NewOwnedCounter("cluster.prefetch.issued");
  fetch_latency_ = registry.NewOwnedHistogram("pool.fetch.latency_ns");
}

BufferPool::~BufferPool() { prefetcher_.Stop(); }

Result<PageHandle> BufferPool::Fetch(PageId id, PageIntent intent) {
  return FetchInternal(id, intent, /*allow_read_ahead=*/true);
}

Result<PageHandle> BufferPool::FetchInternal(PageId id, PageIntent intent,
                                             bool allow_read_ahead) {
  ODE_TRACE_SPAN("pool.fetch");
  obs::ScopedLatencyTimer timer(fetch_latency_.get());
  Shard& shard = ShardOf(id);
  internal::Frame* frame = nullptr;
  bool hit = false;
  {
    MutexLock lock(shard.mu);
    shard.lookups->Increment();
    auto it = shard.page_to_frame.find(id);
    if (it != shard.page_to_frame.end()) {
      shard.hits->Increment();
      hit = true;
      frame = &shard.frames[it->second];
      frame->pin_count.fetch_add(1, std::memory_order_relaxed);
      TouchLru(shard, it->second);
    } else {
      shard.misses->Increment();
      ODE_ASSIGN_OR_RETURN(size_t idx, AcquireFrame(shard));
      frame = &shard.frames[idx];
      ODE_RETURN_IF_ERROR(pager_->Read(id, &frame->page));
      frame->id = id;
      frame->pin_count.store(1, std::memory_order_relaxed);
      frame->dirty.store(false, std::memory_order_relaxed);
      frame->page_lsn.store(frame->page.lsn(), std::memory_order_relaxed);
      frame->wal_uncommitted.store(false, std::memory_order_relaxed);
      frame->in_use = true;
      shard.page_to_frame[id] = idx;
      TouchLru(shard, idx);
    }
  }
  if (auto* profile = obs::CurrentOpProfile()) profile->ChargePoolFetch(hit);
  obs::AccessLog::Global().RecordPageTouch(id);
  // Affinity read-ahead rides on fetch misses: the page just faulted
  // is the signal that its chase-neighbors come next. No locks are
  // held here (the shard block above closed; the latch comes below),
  // and prefetcher-initiated fetches pass allow_read_ahead = false so
  // speculation never cascades.
  if (!hit && allow_read_ahead &&
      read_ahead_policy() == ReadAheadPolicy::kAffinity) {
    AffinityReadAhead(id);
  }
  // Latch outside the shard lock: a blocked latch acquisition must not
  // stall unrelated fetches in this shard, and the documented rank
  // order (frame latch 60 < shard 70) forbids blocking on a latch
  // while inside the shard — a latch holder may legally enter another
  // page's shard. The pin taken above keeps the frame from being
  // evicted or repurposed meanwhile. Exclusive latch holds are
  // watchdog-visible via the SharedMutex wrapper: a writer wedged on a
  // page surfaces as a stalled `pool.frame_latch` hold.
  LatchFrame(frame, intent);
  return PageHandle(this, frame, id, &frame->page, intent);
}

Result<PageHandle> BufferPool::NewPage() {
  ODE_ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
  Shard& shard = ShardOf(id);
  internal::Frame* frame = nullptr;
  {
    MutexLock lock(shard.mu);
    ODE_ASSIGN_OR_RETURN(size_t idx, AcquireFrame(shard));
    frame = &shard.frames[idx];
    frame->page.Zero();
    frame->id = id;
    frame->pin_count.store(1, std::memory_order_relaxed);
    // Dirty so the zeroed page reaches the backend.
    frame->dirty.store(true, std::memory_order_relaxed);
    frame->page_lsn.store(0, std::memory_order_relaxed);
    frame->wal_uncommitted.store(false, std::memory_order_relaxed);
    frame->in_use = true;
    shard.page_to_frame[id] = idx;
    TouchLru(shard, idx);
  }
  LatchFrame(frame, PageIntent::kWrite);
  return PageHandle(this, frame, id, &frame->page, PageIntent::kWrite);
}

Status BufferPool::FlushAll() {
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    // Pin every dirty frame under the shard lock, then write back
    // outside it under a shared latch (so in-flight writers are
    // excluded without risking a latch-vs-shard-lock deadlock).
    std::vector<internal::Frame*> to_flush;
    {
      MutexLock lock(shard.mu);
      for (size_t i = 0; i < shard.frame_count; ++i) {
        internal::Frame& frame = shard.frames[i];
        if (frame.in_use && frame.dirty.load(std::memory_order_relaxed)) {
          frame.pin_count.fetch_add(1, std::memory_order_relaxed);
          to_flush.push_back(&frame);
        }
      }
    }
    Status failure = Status::OK();
    for (internal::Frame* frame : to_flush) {
      if (failure.ok()) {
        frame->latch.LockShared();
        // No-steal: frames of unsealed transactions stay dirty in
        // memory (the acquire pairs with the capture/publish stores).
        if (frame->wal_uncommitted.load(std::memory_order_acquire)) {
          frame->latch.UnlockShared();
          frame->pin_count.fetch_sub(1, std::memory_order_release);
          continue;
        }
        if (frame->dirty.load(std::memory_order_acquire)) {
          // WAL-before-data: the log must cover this image first.
          Status gated = Status::OK();
          if (wal_ != nullptr) {
            gated = wal_->FlushUntil(
                frame->page_lsn.load(std::memory_order_relaxed));
          }
          if (gated.ok()) {
            Status written = pager_->Write(frame->id, frame->page);
            if (written.ok()) {
              frame->dirty.store(false, std::memory_order_relaxed);
              shard.writebacks->Increment();
            } else {
              failure = written;
            }
          } else {
            failure = gated;
          }
        }
        frame->latch.UnlockShared();
      }
      frame->pin_count.fetch_sub(1, std::memory_order_release);
    }
    ODE_RETURN_IF_ERROR(failure);
  }
  return Status::OK();
}

Status BufferPool::Sync() {
  ODE_RETURN_IF_ERROR(FlushAll());
  return pager_->Sync();
}

void BufferPool::Prefetch(PageId id) {
  if (id == kNoPage || Cached(id)) return;
  if (prefetcher_.pending() >= kMaxPendingPrefetches) return;
  prefetches_->Increment();
  // Capture the caller's causal context so the prefetch fetch spans
  // attach to the scan/cascade that requested them, not to a detached
  // worker-thread root. The op profile rides along the same way, so
  // read-ahead I/O is billed to the operation that asked for it.
  obs::TraceContext ctx = obs::CurrentTraceContext();
  obs::OpProfile* profile = obs::CurrentOpProfile();
  prefetcher_.Submit([this, id, ctx, profile] {
    obs::TraceContextScope adopt(ctx);
    obs::OpProfileScope adopt_profile(profile);
    // Pin briefly with read intent so the page lands in its shard;
    // errors (e.g. a speculative id past the end) are ignored. The
    // fetch never triggers further read-ahead (no cascades).
    Result<PageHandle> handle =
        FetchInternal(id, PageIntent::kRead, /*allow_read_ahead=*/false);
    (void)handle;
  });
}

void BufferPool::ReadAhead(PageId next_sequential, bool point_lookup) {
  ReadAheadPolicy policy = read_ahead_policy();
  if (policy == ReadAheadPolicy::kOff) return;
  // Point lookups never warm the next chain page: a browse cascade
  // resolving one reference has no sequential future, so the seed's
  // unconditional prefetch only polluted the pool. Their locality is
  // served by the kAffinity fetch-miss trigger instead.
  if (point_lookup) return;
  Prefetch(next_sequential);
}

void BufferPool::SetPrefetchSource(
    std::shared_ptr<const PrefetchSource> source) {
  MutexLock lock(prefetch_source_mu_);
  prefetch_source_ = std::move(source);
}

void BufferPool::AffinityReadAhead(PageId page) {
  std::shared_ptr<const PrefetchSource> source;
  {
    MutexLock lock(prefetch_source_mu_);
    source = prefetch_source_;
  }
  if (source == nullptr) return;
  PageId neighbors[kAffinityReadAheadFanout];
  size_t n = source->TopNeighbors(page, neighbors,
                                  kAffinityReadAheadFanout);
  if (n == 0) return;
  size_t issued = 0;
  for (size_t i = 0; i < n; ++i) {
    if (neighbors[i] == kNoPage || neighbors[i] == page) continue;
    if (Cached(neighbors[i])) continue;
    Prefetch(neighbors[i]);
    ++issued;
  }
  if (issued == 0) return;
  cluster_prefetch_issued_->Add(issued);
  if (auto* profile = obs::CurrentOpProfile()) {
    profile->ChargeClusterPrefetch(issued);
  }
  obs::Journal::Global().Append(obs::JournalEvent::kPrefetchIssued,
                                static_cast<int64_t>(issued),
                                static_cast<int64_t>(page));
}

void BufferPool::WaitForPrefetches() { prefetcher_.Drain(); }

bool BufferPool::Cached(PageId id) const {
  const Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  return shard.page_to_frame.find(id) != shard.page_to_frame.end();
}

BufferPool::Stats BufferPool::stats() const {
  Stats total;
  for (size_t i = 0; i < shard_count_; ++i) {
    const Shard& shard = shards_[i];
    total.lookups += shard.lookups->value();
    total.hits += shard.hits->value();
    total.misses += shard.misses->value();
    total.evictions += shard.evictions->value();
    total.writebacks += shard.writebacks->value();
  }
  total.prefetches = prefetches_->value();
  total.cluster_prefetches = cluster_prefetch_issued_->value();
  return total;
}

Result<size_t> BufferPool::AcquireFrame(Shard& shard) {
  // Unused frame first.
  for (size_t i = 0; i < shard.frame_count; ++i) {
    if (!shard.frames[i].in_use) return i;
  }
  // Evict the least recently used unpinned frame.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    size_t idx = *it;
    internal::Frame& frame = shard.frames[idx];
    // Acquire pairs with the releasing unpin: a zero pin count means
    // the last holder's page writes and dirty flag are visible here.
    if (frame.pin_count.load(std::memory_order_acquire) > 0) continue;
    // No-steal: never evict a frame whose image belongs to an unsealed
    // transaction (its bytes are not yet redo-able from the log).
    if (frame.wal_uncommitted.load(std::memory_order_acquire)) continue;
    if (frame.dirty.load(std::memory_order_relaxed)) {
      if (wal_ != nullptr) {
        // WAL-before-data. FlushUntil (rank kWal, 75) from inside the
        // shard mutex (70) follows the lock order.
        ODE_RETURN_IF_ERROR(wal_->FlushUntil(
            frame.page_lsn.load(std::memory_order_relaxed)));
      }
      ODE_RETURN_IF_ERROR(pager_->Write(frame.id, frame.page));
      shard.writebacks->Increment();
    }
    shard.page_to_frame.erase(frame.id);
    auto pos = shard.lru_pos.find(idx);
    if (pos != shard.lru_pos.end()) {
      shard.lru.erase(pos->second);
      shard.lru_pos.erase(pos);
    }
    frame.in_use = false;
    frame.id = kNoPage;
    frame.dirty.store(false, std::memory_order_relaxed);
    shard.evictions->Increment();
    return idx;
  }
  // Pool pressure is a flight-recorder event: every frame of the shard
  // is pinned, so the fetch that needed a frame fails.
  obs::Journal::Global().Append(obs::JournalEvent::kEvictionPressure,
                                static_cast<int64_t>(shard.frame_count));
  return Status::FailedPrecondition(
      "buffer pool exhausted: all frames of the shard pinned");
}

void BufferPool::TouchLru(Shard& shard, size_t frame_index) {
  auto pos = shard.lru_pos.find(frame_index);
  if (pos != shard.lru_pos.end()) shard.lru.erase(pos->second);
  shard.lru.push_front(frame_index);
  shard.lru_pos[frame_index] = shard.lru.begin();
}

}  // namespace ode::odb
