#ifndef ODEVIEW_ODB_EXEC_EXECUTOR_H_
#define ODEVIEW_ODB_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/op_profile.h"
#include "common/result.h"
#include "odb/exec/batch_scanner.h"
#include "odb/oid.h"
#include "odb/predicate.h"
#include "odb/value.h"

namespace ode::odb {
class Database;
}  // namespace ode::odb

namespace ode::odb::exec {

/// One batched scan: which cluster, what to keep, how to run.
struct ScanSpec {
  std::string class_name;
  /// Filter; null (or `Predicate::True`) scans everything.
  const Predicate* predicate = nullptr;
  /// Extra attribute paths to materialize beyond the predicate's own
  /// (e.g. a displaylist). The mask is the union of both; with neither
  /// — and no filter — the scan returns ids without decoding records.
  const std::vector<std::string>* projection = nullptr;
  /// Decode records fully, ignoring the mask (legacy-shaped values).
  bool project_all = false;
  /// When false, matched rows carry only oid + version — the decoded
  /// value stays in the batch buffer (for id-only consumers like
  /// `Select`, which still need the decode for filtering).
  bool emit_values = true;
  size_t batch_size = kDefaultBatchSize;
  /// Worker threads; ids are split into this many contiguous
  /// partitions scanned concurrently (1 = inline on the caller).
  int parallelism = 1;
  /// Test/demo hook: sleep this long after each batch, making the scan
  /// predictably slow (slow-op log demos, CI latency assertions).
  uint64_t injected_delay_ns_per_batch = 0;
};

struct ScanRow {
  Oid oid;
  uint32_t version = 0;
  /// Projected value (only masked attributes present); empty struct
  /// on the ids-only fast path.
  Value value;
};

struct ScanStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t batches = 0;
  uint64_t skipped_fields = 0;   ///< attribute decodes avoided
  uint64_t predicate_evals = 0;  ///< rows pushed through the filter
  uint64_t arena_bytes = 0;      ///< raw record bytes decoded
  int partitions = 1;
};

struct ScanResult {
  std::vector<ScanRow> rows;  ///< ascending local id
  ScanStats stats;
};

/// Runs a batched, optionally parallel, filtered + projected scan.
/// Rows come back in ascending id order regardless of parallelism
/// (partitions are contiguous id ranges concatenated in order).
Result<ScanResult> ExecuteScan(Database* db, const ScanSpec& spec);

/// One join: predicate over `left.<attr>` / `right.<attr>` paths.
struct JoinSpec {
  std::string left_class;
  std::string right_class;
  const Predicate* predicate = nullptr;  ///< null joins every pair
  size_t batch_size = kDefaultBatchSize;
};

struct JoinStats {
  uint64_t build_rows = 0;  ///< hash-table entries (0 for nested loop)
  uint64_t probe_rows = 0;
  uint64_t pairs = 0;
  bool hash_join = false;
  bool built_left = false;  ///< which side the hash table held
};

struct JoinResult {
  /// Matching (left oid, right oid) pairs, sorted by (left id,
  /// right id) — the legacy nested-loop order.
  std::vector<std::pair<Oid, Oid>> pairs;
  JoinStats stats;
};

/// Per-phase actuals for EXPLAIN ANALYZE: wall time and resource
/// profile of the two input scans and the match phase. Filled only
/// when a caller passes it to `ExecuteJoin`; each phase runs under its
/// own nested `OpProfile`, which merges back into the caller's current
/// profile so session totals stay exact.
struct JoinPhaseActuals {
  ScanStats left_scan;
  ScanStats right_scan;
  uint64_t left_ns = 0;
  uint64_t right_ns = 0;
  uint64_t match_ns = 0;
  obs::OpProfileStats left_profile;
  obs::OpProfileStats right_profile;
  obs::OpProfileStats match_profile;
};

/// Joins two clusters. An equality conjunct between one left and one
/// right attribute selects a hash join (build the smaller side, probe
/// the larger, re-check the full predicate on candidates); otherwise —
/// or when a key turns out non-scalar or NaN at runtime — a batched
/// nested loop evaluates the compiled predicate over every pair.
/// `actuals`, if non-null, receives per-phase timings and profiles.
Result<JoinResult> ExecuteJoin(Database* db, const JoinSpec& spec,
                               JoinPhaseActuals* actuals = nullptr);

}  // namespace ode::odb::exec

#endif  // ODEVIEW_ODB_EXEC_EXECUTOR_H_
