#ifndef ODEVIEW_BENCH_BENCH_UTIL_H_
#define ODEVIEW_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>

#include "dynlink/lab_modules.h"
#include "odb/database.h"
#include "odb/labdb.h"
#include "odeview/app.h"

namespace ode::bench {

/// Aborts the benchmark binary on an unexpected error — benchmarks
/// must not silently measure failure paths.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// A ready-to-browse OdeView session over the lab database.
struct LabSession {
  std::unique_ptr<odb::Database> db;
  std::unique_ptr<view::OdeViewApp> app;
  view::DbInteractor* interactor = nullptr;

  static LabSession Create(const odb::LabDbConfig& config = {}) {
    LabSession session;
    session.db = ValueOrDie(odb::Database::CreateInMemory("lab"),
                            "create db");
    CheckOk(odb::BuildLabDatabase(session.db.get(), config), "build lab");
    session.app = std::make_unique<view::OdeViewApp>(240, 100);
    CheckOk(dynlink::RegisterLabDisplayModules(session.app->repository(),
                                               "lab", session.db->schema()),
            "register modules");
    CheckOk(session.app->AddDatabaseBorrowed(session.db.get()), "add db");
    CheckOk(session.app->OpenInitialWindow(), "initial window");
    session.interactor =
        ValueOrDie(session.app->OpenDatabase("lab"), "open db");
    return session;
  }
};

}  // namespace ode::bench

#endif  // ODEVIEW_BENCH_BENCH_UTIL_H_
