# Empty compiler generated dependencies file for bench_fig09_chain_setup.
# This may be replaced when dependencies are built.
