#include <gtest/gtest.h>

#include "odb/ddl_parser.h"
#include "odb/labdb.h"

namespace ode::odb {
namespace {

// --- Basic parsing ------------------------------------------------------

TEST(DdlParserTest, MinimalClass) {
  Result<ClassDef> def = ParseClassDef("class point { };");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->name, "point");
  EXPECT_TRUE(def->persistent);  // persistent unless marked transient
  EXPECT_FALSE(def->versioned);
  EXPECT_TRUE(def->members.empty());
}

TEST(DdlParserTest, Modifiers) {
  EXPECT_TRUE(ParseClassDef("persistent class a {};")->persistent);
  EXPECT_FALSE(ParseClassDef("transient class a {};")->persistent);
  EXPECT_TRUE(ParseClassDef("versioned class a {};")->versioned);
  EXPECT_TRUE(
      ParseClassDef("persistent versioned class a {};")->versioned);
  EXPECT_TRUE(
      ParseClassDef("versioned persistent class a {};")->persistent);
  EXPECT_FALSE(
      ParseClassDef("persistent transient class a {};").ok());
}

TEST(DdlParserTest, MemberTypes) {
  Result<ClassDef> def = ParseClassDef(R"(
class kitchen_sink {
public:
  int i;
  real r;
  double d;
  float f;
  bool b;
  string s;
  char* cs;
  blob data;
  other* ref;
  other embedded;
  set<other*> refs;
  set<int> ints;
  array<real, 3> triple;
  int matrix[9];
  int open_array[];
};
)");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  const auto& m = def->members;
  ASSERT_EQ(m.size(), 15u);
  EXPECT_EQ(m[0].type.kind, TypeRef::Kind::kInt);
  EXPECT_EQ(m[1].type.kind, TypeRef::Kind::kReal);
  EXPECT_EQ(m[2].type.kind, TypeRef::Kind::kReal);
  EXPECT_EQ(m[3].type.kind, TypeRef::Kind::kReal);
  EXPECT_EQ(m[4].type.kind, TypeRef::Kind::kBool);
  EXPECT_EQ(m[5].type.kind, TypeRef::Kind::kString);
  EXPECT_EQ(m[6].type.kind, TypeRef::Kind::kString);  // char*
  EXPECT_EQ(m[7].type.kind, TypeRef::Kind::kBlob);
  EXPECT_EQ(m[8].type.kind, TypeRef::Kind::kRef);
  EXPECT_EQ(m[8].type.class_name, "other");
  EXPECT_EQ(m[9].type.kind, TypeRef::Kind::kClass);
  EXPECT_EQ(m[10].type.ToString(), "set<other*>");
  EXPECT_EQ(m[11].type.ToString(), "set<int>");
  EXPECT_EQ(m[12].type.ToString(), "real[3]");
  EXPECT_EQ(m[13].type.ToString(), "int[9]");
  EXPECT_EQ(m[14].type.array_size, 0u);
}

TEST(DdlParserTest, AccessSections) {
  Result<ClassDef> def = ParseClassDef(R"(
class c {
  int implicit_private;
public:
  int pub;
protected:
  int prot;
private:
  int priv;
};
)");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->members[0].access, Access::kPrivate);  // C++ default
  EXPECT_EQ(def->members[1].access, Access::kPublic);
  EXPECT_EQ(def->members[2].access, Access::kProtected);
  EXPECT_EQ(def->members[3].access, Access::kPrivate);
}

TEST(DdlParserTest, Inheritance) {
  Result<ClassDef> def = ParseClassDef(
      "class manager : public employee, department {};");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->bases,
            (std::vector<std::string>{"employee", "department"}));
}

TEST(DdlParserTest, Methods) {
  Result<ClassDef> def = ParseClassDef(R"(
class c {
public:
  void raise_salary(int pct);
  real salary() const;
  int complex_args(set<int> xs, other* o);
};
)");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  ASSERT_EQ(def->methods.size(), 3u);
  EXPECT_EQ(def->methods[0].name, "raise_salary");
  EXPECT_EQ(def->methods[0].return_type, "void");
  EXPECT_EQ(def->methods[0].params, "int pct");
  EXPECT_EQ(def->methods[1].params, "");
  EXPECT_EQ(def->methods[2].params, "set<int> xs, other* o");
  EXPECT_TRUE(def->members.empty());
}

TEST(DdlParserTest, OdeViewClauses) {
  Result<ClassDef> def = ParseClassDef(R"(
class c {
public:
  int x;
  display text, picture;
  displaylist x, derived_attr;
  selectlist x;
};
)");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->display_formats,
            (std::vector<std::string>{"text", "picture"}));
  EXPECT_EQ(def->displaylist,
            (std::vector<std::string>{"x", "derived_attr"}));
  EXPECT_EQ(def->selectlist, (std::vector<std::string>{"x"}));
}

TEST(DdlParserTest, ConstraintsCaptureRawText) {
  Result<ClassDef> def = ParseClassDef(R"(
class c {
public:
  int age;
  constraint age >= 18 && age <= 70;
  constraint age != 13;
};
)");
  ASSERT_TRUE(def.ok());
  ASSERT_EQ(def->constraints.size(), 2u);
  EXPECT_EQ(def->constraints[0].predicate_text, "age >= 18 && age <= 70");
  EXPECT_EQ(def->constraints[1].predicate_text, "age != 13");
}

TEST(DdlParserTest, Triggers) {
  Result<ClassDef> def = ParseClassDef(R"(
class c {
public:
  int n;
  trigger t1: on_create do hello;
  trigger t2: on_update when n > 5 do alert;
  trigger t3: on_delete do cleanup;
};
)");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  ASSERT_EQ(def->triggers.size(), 3u);
  EXPECT_EQ(def->triggers[0].event, TriggerEvent::kCreate);
  EXPECT_TRUE(def->triggers[0].condition_text.empty());
  EXPECT_EQ(def->triggers[1].event, TriggerEvent::kUpdate);
  EXPECT_EQ(def->triggers[1].condition_text, "n > 5");
  EXPECT_EQ(def->triggers[1].action, "alert");
  EXPECT_EQ(def->triggers[2].event, TriggerEvent::kDelete);
}

TEST(DdlParserTest, SourceCapturedVerbatim) {
  std::string_view source = "class tiny {\npublic:\n  int x;\n};";
  Result<ClassDef> def = ParseClassDef(source);
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->source, source);
}

TEST(DdlParserTest, CommentsIgnored) {
  Result<ClassDef> def = ParseClassDef(R"(
// heading comment
class c { /* inline */ public: int x; // trailing
};
)");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->members.size(), 1u);
}

TEST(DdlParserTest, MultipleClassesInSchema) {
  Result<Schema> schema = ParseSchema(R"(
class a { public: int x; };
class b : public a { public: int y; };
)");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->size(), 2u);
  EXPECT_TRUE(schema->Validate().ok());
}

// --- Errors -----------------------------------------------------------

TEST(DdlParserTest, ErrorsIncludeLineNumbers) {
  Result<Schema> schema = ParseSchema("class a {\npublic:\n  int 5x;\n};");
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("line 3"), std::string::npos)
      << schema.status().ToString();
}

TEST(DdlParserTest, MissingSemicolonRejected) {
  EXPECT_FALSE(ParseClassDef("class a { public: int x }").ok());
}

TEST(DdlParserTest, UnterminatedBodyRejected) {
  EXPECT_FALSE(ParseClassDef("class a { public: int x;").ok());
}

TEST(DdlParserTest, DoubleIndirectionRejected) {
  EXPECT_FALSE(ParseClassDef("class a { public: other** p; };").ok());
}

TEST(DdlParserTest, PointerToScalarRejected) {
  EXPECT_FALSE(ParseClassDef("class a { public: int* p; };").ok());
}

TEST(DdlParserTest, BadTriggerEventRejected) {
  EXPECT_FALSE(
      ParseClassDef("class a { trigger t: on_monday do x; };").ok());
}

TEST(DdlParserTest, TrailingInputRejected) {
  EXPECT_FALSE(ParseClassDef("class a {}; class b {};").ok());
}

TEST(DdlParserTest, DuplicateClassRejected) {
  EXPECT_FALSE(ParseSchema("class a {}; class a {};").ok());
}

TEST(DdlParserTest, UnterminatedCommentRejected) {
  EXPECT_FALSE(ParseSchema("class a {}; /* forever").ok());
}

TEST(DdlParserTest, UnterminatedStringRejected) {
  EXPECT_FALSE(ParseSchema("class a { constraint x == \"oops; };").ok());
}

// --- The lab schema ------------------------------------------------------

TEST(DdlParserTest, LabSchemaParsesAndValidates) {
  Result<Schema> schema = ParseSchema(LabSchemaDdl());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_TRUE(schema->Validate().ok()) << schema->Validate().ToString();
  EXPECT_EQ(schema->size(), 5u);
  // manager inherits from both employee and department (paper Fig. 5).
  EXPECT_EQ(*schema->DirectSuperclasses("manager"),
            (std::vector<std::string>{"employee", "department"}));
  // document is versioned and has three display media.
  const ClassDef* doc = *schema->GetClass("document");
  EXPECT_TRUE(doc->versioned);
  EXPECT_EQ(doc->display_formats,
            (std::vector<std::string>{"text", "postscript", "bitmap"}));
}

TEST(DdlParserTest, SyntheticSchemaScales) {
  Result<Schema> schema = ParseSchema(SyntheticSchemaDdl(120, 2, 7));
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->size(), 120u);
  EXPECT_TRUE(schema->Validate().ok());
}

}  // namespace
}  // namespace ode::odb
