#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace ode {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<LogSink> g_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }
void SetLogSink(LogSink sink) { g_sink.store(sink); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_level.load()) return;
  if (LogSink sink = g_sink.load()) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               message.c_str());
}

}  // namespace ode
