#!/usr/bin/env python3
"""Self-tests for ode_lint: each rule must fire on the drift it
guards against. The suite copies the real tree into a scratch root,
re-introduces a historical bug shape (e.g. the raw std::mutex that
MemWalStore actually had before it moved onto the ranked wrappers —
snapshotted in fixtures/wal_raw_mutex_pre_fix.h), and asserts the rule
flags it. Run directly or via ctest (ode_lint_selftest).
"""

import json
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import ode_lint  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def rules_of(findings):
    return {f.rule for f in findings}


class OdeLintTree(unittest.TestCase):
    """Each test gets a disposable copy of the real tree to mutate."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="ode_lint_test_")
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)
        shutil.copytree(os.path.join(REPO, "src"),
                        os.path.join(self.tmp, "src"))
        shutil.copytree(os.path.join(REPO, "docs"),
                        os.path.join(self.tmp, "docs"))
        os.makedirs(os.path.join(self.tmp, "tools", "ode_lint"))
        shutil.copy(
            os.path.join(REPO, "tools", "ode_lint",
                         "no_tsa_inventory.json"),
            os.path.join(self.tmp, "tools", "ode_lint",
                         "no_tsa_inventory.json"))

    def path(self, *parts):
        return os.path.join(self.tmp, *parts)

    def read(self, *parts):
        with open(self.path(*parts), encoding="utf-8") as f:
            return f.read()

    def write(self, content, *parts):
        with open(self.path(*parts), "w", encoding="utf-8") as f:
            f.write(content)

    # --- the tree as committed is clean --------------------------------

    def test_current_tree_has_only_baselined_findings(self):
        findings = ode_lint.run_all(self.tmp)
        baseline = json.load(open(os.path.join(
            REPO, "tools", "ode_lint", "baseline.json"),
            encoding="utf-8"))
        suppressed = set(baseline["suppressed"])
        live = [f for f in findings if f.key() not in suppressed]
        self.assertEqual(
            [], [f"{f.file}:{f.line}: [{f.rule}] {f.message}"
                 for f in live])

    # --- raw-threading-primitive ---------------------------------------

    def test_pre_fix_wal_raw_mutex_is_flagged(self):
        # The exact MemWalStore that shipped before this change: a raw
        # `mutable std::mutex mu_` in src/odb. The rule must flag it.
        fixture = open(os.path.join(
            REPO, "tools", "ode_lint", "fixtures",
            "wal_raw_mutex_pre_fix.h"), encoding="utf-8").read()
        self.write(fixture, "src", "odb", "wal_pre_fix_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "raw-threading-primitive"]
        self.assertTrue(
            any("wal_pre_fix_specimen.h" in f.file and
                "std::mutex" in f.message for f in findings),
            f"raw mutex not flagged; findings: {findings}")

    def test_lock_guard_is_flagged_too(self):
        self.write(
            "#include <mutex>\n"
            "void f() { std::lock_guard<std::mutex> l(m); }\n",
            "src", "odb", "guard_specimen.cc")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "raw-threading-primitive"]
        self.assertTrue(any("guard_specimen" in f.file for f in findings))

    def test_threading_wrapper_files_are_exempt(self):
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "raw-threading-primitive"]
        self.assertFalse(any("threading" in f.file for f in findings))

    def test_commented_mention_is_not_flagged(self):
        self.write("// std::mutex is banned here; see LOCKING.md\n",
                   "src", "odb", "comment_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "raw-threading-primitive" and
                    "comment_specimen" in f.file]
        self.assertEqual([], findings)

    # --- rank-doc-sync -------------------------------------------------

    def test_seeded_doc_rank_rename_is_flagged(self):
        doc = self.read("docs", "LOCKING.md")
        self.write(doc.replace("`wal.store_lock`", "`wal.shop_lock`"),
                   "docs", "LOCKING.md")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "rank-doc-sync"]
        self.assertTrue(
            any("wal.shop_lock" in f.message for f in findings),
            f"doc rename not flagged: {findings}")

    def test_seeded_doc_missing_row_is_flagged(self):
        doc = self.read("docs", "LOCKING.md")
        kept = [l for l in doc.splitlines()
                if not l.startswith("| 78 ")]
        self.write("\n".join(kept), "docs", "LOCKING.md")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "rank-doc-sync"]
        self.assertTrue(any("rank 78" in f.message for f in findings))

    def test_enum_without_table_entry_is_flagged(self):
        cc = self.read("src", "common", "lock_rank.cc")
        # Drop the kWalStore metadata row but keep the enum value.
        kept = [l for l in cc.splitlines()
                if "kWalStore" not in l]
        self.write("\n".join(kept), "src", "common", "lock_rank.cc")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "rank-doc-sync"]
        self.assertTrue(
            any("kWalStore" in f.message and "LockRankTable" in f.message
                for f in findings))

    # --- mutex-rank-known ----------------------------------------------

    def test_unknown_rank_in_mutex_construction_is_flagged(self):
        self.write(
            '#include "common/threading.h"\n'
            "class X {\n"
            "  Mutex mu_{LockRank::kImaginary};\n"
            "};\n",
            "src", "odb", "rank_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "mutex-rank-known"]
        self.assertTrue(any("kImaginary" in f.message for f in findings))

    # --- acquire-order -------------------------------------------------

    def test_inverted_lexical_nesting_is_flagged(self):
        # pager (80) acquired, then wal buffer (75) inside it: inverted.
        self.write(
            "class A {\n"
            "  Mutex pager_mu_{LockRank::kPager};\n"
            "  Mutex wal_mu_{LockRank::kWal};\n"
            "  void f() {\n"
            "    MutexLock outer(pager_mu_);\n"
            "    MutexLock inner(wal_mu_);\n"
            "  }\n"
            "};\n",
            "src", "odb", "order_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "acquire-order" and
                    "order_specimen" in f.file]
        self.assertEqual(1, len(findings), findings)
        self.assertIn("wal_mu_", findings[0].message)

    def test_correct_nesting_is_clean(self):
        self.write(
            "class A {\n"
            "  Mutex wal_mu2_{LockRank::kWal};\n"
            "  Mutex pager_mu2_{LockRank::kPager};\n"
            "  void f() {\n"
            "    MutexLock outer(wal_mu2_);\n"
            "    MutexLock inner(pager_mu2_);\n"
            "  }\n"
            "};\n",
            "src", "odb", "order_ok_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "acquire-order" and
                    "order_ok_specimen" in f.file]
        self.assertEqual([], findings)

    def test_requires_edge_is_checked(self):
        self.write(
            "class A {\n"
            "  Mutex pager_mu3_{LockRank::kPager};\n"
            "  Mutex wal_mu3_{LockRank::kWal};\n"
            "  void f() ODE_REQUIRES(pager_mu3_) {\n"
            "    MutexLock l(wal_mu3_);\n"
            "  }\n"
            "};\n",
            "src", "odb", "requires_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "acquire-order" and
                    "requires_specimen" in f.file]
        self.assertEqual(1, len(findings), findings)

    # --- no-tsa-inventory ----------------------------------------------

    def test_new_escape_is_flagged(self):
        self.write(
            "void f() ODE_NO_THREAD_SAFETY_ANALYSIS;\n",
            "src", "odb", "escape_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "no-tsa-inventory"]
        self.assertTrue(
            any("escape_specimen" in f.file for f in findings))

    def test_escape_count_drift_is_flagged(self):
        wal = self.read("src", "odb", "wal.h")
        self.write(
            wal + "\nvoid extra() ODE_NO_THREAD_SAFETY_ANALYSIS;\n",
            "src", "odb", "wal.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "no-tsa-inventory"]
        self.assertTrue(any("drifted" in f.message for f in findings))

    # --- metric-name ---------------------------------------------------

    def test_bad_metric_name_is_flagged(self):
        self.write(
            'void f() { R().counter("WalFlushes")->Increment(); }\n',
            "src", "odb", "metric_specimen.cc")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "metric-name"]
        self.assertTrue(any("WalFlushes" in f.message for f in findings))

    def test_kind_conflict_is_flagged(self):
        self.write(
            'void f() {\n'
            '  R().counter("wal.conflict.test")->Increment();\n'
            '  R().histogram("wal.conflict.test")->Record(1);\n'
            '}\n',
            "src", "odb", "kind_specimen.cc")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "metric-name"]
        self.assertTrue(
            any("wal.conflict.test" in f.message and "one" in f.message
                for f in findings))

    # --- journal-event-name --------------------------------------------

    def test_duplicate_wire_name_is_flagged(self):
        cc = self.read("src", "common", "journal.cc")
        self.write(cc.replace('return "session_close";',
                              'return "session_open";', 1),
                   "src", "common", "journal.cc")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "journal-event-name"]
        self.assertTrue(
            any("session_open" in f.message and "both" in f.message
                for f in findings))

    # --- include-layering ----------------------------------------------

    def test_upward_include_is_flagged(self):
        self.write('#include "odeview/browse_node.h"\n',
                   "src", "odb", "layering_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "include-layering"]
        self.assertTrue(
            any("layering_specimen" in f.file for f in findings))

    def test_common_including_odb_is_flagged(self):
        self.write('#include "odb/wal.h"\n',
                   "src", "common", "layering_specimen2.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "include-layering"]
        self.assertTrue(
            any("layering_specimen2" in f.file for f in findings))

    def test_core_including_cluster_is_flagged(self):
        # odb/cluster/ is a leaf: the odb core (and every other layer)
        # must reach it through forward declarations only.
        self.write('#include "odb/cluster/plan.h"\n',
                   "src", "odb", "cluster_specimen.h")
        self.write('#include "odb/cluster/advisor.h"\n',
                   "src", "common", "cluster_specimen2.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "include-layering"]
        self.assertTrue(
            any("cluster_specimen.h" in f.file and
                "odb/cluster" in f.message for f in findings))
        self.assertTrue(
            any("cluster_specimen2" in f.file for f in findings))

    def test_cluster_internal_include_is_clean(self):
        # The subsystem's own files may include each other and the core.
        self.write('#include "odb/cluster/plan.h"\n'
                   '#include "odb/database.h"\n',
                   "src", "odb", "cluster", "internal_specimen.h")
        findings = [f for f in ode_lint.run_all(self.tmp)
                    if f.rule == "include-layering"
                    and "internal_specimen" in f.file]
        self.assertEqual(findings, [])


class OdeLintBaseline(unittest.TestCase):
    def test_stale_baseline_entry_is_reported(self):
        import contextlib
        import io
        baseline = json.load(open(os.path.join(
            REPO, "tools", "ode_lint", "baseline.json"),
            encoding="utf-8"))
        baseline["suppressed"].append("metric-name:gone.cc:never")
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump(baseline, f)
            path = f.name
        self.addCleanup(os.unlink, path)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = ode_lint.main(["--root", REPO, "--baseline", path,
                                  "--json"])
        self.assertEqual(1, code)
        findings = json.loads(out.getvalue())["findings"]
        self.assertEqual(["stale-baseline"],
                         [f["rule"] for f in findings])

    def test_committed_baseline_is_clean(self):
        code = ode_lint.main([
            "--root", REPO, "--baseline",
            os.path.join(REPO, "tools", "ode_lint", "baseline.json"),
            "--json"])
        self.assertEqual(0, code)


if __name__ == "__main__":
    unittest.main(verbosity=2)
