
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/odb/buffer_pool.cc" "src/odb/CMakeFiles/ode_odb.dir/buffer_pool.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/buffer_pool.cc.o.d"
  "/root/repo/src/odb/catalog.cc" "src/odb/CMakeFiles/ode_odb.dir/catalog.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/catalog.cc.o.d"
  "/root/repo/src/odb/database.cc" "src/odb/CMakeFiles/ode_odb.dir/database.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/database.cc.o.d"
  "/root/repo/src/odb/ddl_parser.cc" "src/odb/CMakeFiles/ode_odb.dir/ddl_parser.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/ddl_parser.cc.o.d"
  "/root/repo/src/odb/heap_file.cc" "src/odb/CMakeFiles/ode_odb.dir/heap_file.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/heap_file.cc.o.d"
  "/root/repo/src/odb/integrity.cc" "src/odb/CMakeFiles/ode_odb.dir/integrity.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/integrity.cc.o.d"
  "/root/repo/src/odb/labdb.cc" "src/odb/CMakeFiles/ode_odb.dir/labdb.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/labdb.cc.o.d"
  "/root/repo/src/odb/lexer.cc" "src/odb/CMakeFiles/ode_odb.dir/lexer.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/lexer.cc.o.d"
  "/root/repo/src/odb/pager.cc" "src/odb/CMakeFiles/ode_odb.dir/pager.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/pager.cc.o.d"
  "/root/repo/src/odb/predicate.cc" "src/odb/CMakeFiles/ode_odb.dir/predicate.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/predicate.cc.o.d"
  "/root/repo/src/odb/schema.cc" "src/odb/CMakeFiles/ode_odb.dir/schema.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/schema.cc.o.d"
  "/root/repo/src/odb/slotted_page.cc" "src/odb/CMakeFiles/ode_odb.dir/slotted_page.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/slotted_page.cc.o.d"
  "/root/repo/src/odb/typecheck.cc" "src/odb/CMakeFiles/ode_odb.dir/typecheck.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/typecheck.cc.o.d"
  "/root/repo/src/odb/value.cc" "src/odb/CMakeFiles/ode_odb.dir/value.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/value.cc.o.d"
  "/root/repo/src/odb/value_codec.cc" "src/odb/CMakeFiles/ode_odb.dir/value_codec.cc.o" "gcc" "src/odb/CMakeFiles/ode_odb.dir/value_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ode_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
