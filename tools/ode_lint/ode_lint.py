#!/usr/bin/env python3
"""ode-lint: repository invariant checker.

Enforces the cross-cutting conventions that a compiler cannot — the
rules live in docs/STATIC_ANALYSIS.md and each finding carries its
rule id:

  raw-threading-primitive  no std::mutex / std::shared_mutex /
                           std::condition_variable / std::lock_guard /
                           std::unique_lock / std::scoped_lock outside
                           common/threading.{h,cc}; everything else
                           uses the ranked ode:: wrappers.
  rank-doc-sync            the LockRank enum (lock_rank.h), the
                           metadata table (lock_rank.cc), and the prose
                           table in docs/LOCKING.md agree exactly on
                           rank values and names.
  mutex-rank-known         every Mutex/SharedMutex construction names a
                           LockRank that exists in the enum.
  acquire-order            the static acquire graph (lexically nested
                           MutexLock/ReaderLock scopes, plus
                           ODE_REQUIRES edges) is consistent with the
                           runtime rank order: inner rank > outer rank,
                           unless the rank allows same-rank stacking.
  no-tsa-inventory         every ODE_NO_THREAD_SAFETY_ANALYSIS escape
                           matches the committed inventory
                           (tools/ode_lint/no_tsa_inventory.json), so a
                           new escape is a reviewed decision, not an
                           accident.
  metric-name              metric names are literal, follow
                           subsystem.noun.verb (lowercase dotted), and
                           no name is used as two instrument kinds.
  journal-event-name       JournalEventName wire names are snake_case
                           and unique.
  include-layering         common < {odb, dag, owl} < dynlink < odeview;
                           no layer includes a higher layer. The
                           clustering subsystem (odb/cluster/) is a
                           leaf over the odb core: no file outside it
                           may include odb/cluster/ headers.

Usage:
  python3 tools/ode_lint/ode_lint.py [--root REPO] [--json]
                                     [--baseline FILE]

Exits 1 when any finding is not suppressed by the baseline. The
baseline (tools/ode_lint/baseline.json) is a list of finding keys —
commit it to suppress known debt, and shrink it over time. An entry
that no longer matches anything is itself reported (stale-baseline),
so the file cannot rot.

When the `clang.cindex` module and a compile_commands.json are
available, the acquire-order rule additionally cross-checks lock
declarations via libclang; without them (the common case on minimal
containers) the regex engine is authoritative. The regex rules are
deliberately conservative: they parse the narrow idioms this codebase
uses, which CI enforces stay narrow.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from collections import defaultdict
from dataclasses import dataclass, asdict

LAYER_ORDER = {"common": 0, "odb": 1, "dag": 1, "owl": 1, "dynlink": 2,
               "odeview": 3}

RAW_PRIMITIVES = re.compile(
    r"std::(mutex|shared_mutex|condition_variable\w*|lock_guard|"
    r"unique_lock|scoped_lock|recursive_mutex|timed_mutex)\b")

# Files allowed to name the raw primitives: the wrappers themselves and
# the annotation macros.
THREADING_EXEMPT = {
    os.path.join("common", "threading.h"),
    os.path.join("common", "threading.cc"),
    os.path.join("common", "thread_annotations.h"),
}

METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str

    def key(self) -> str:
        """Stable identity for baseline suppression (no line numbers —
        they churn; rule + file + message identifies the finding)."""
        return f"{self.rule}:{self.file}:{self.message}"


def iter_source_files(root):
    for base, dirs, files in os.walk(os.path.join(root, "src")):
        dirs[:] = [d for d in dirs if d not in ("CMakeFiles",)]
        for name in files:
            if name.endswith((".h", ".cc")):
                yield os.path.join(base, name)


def rel(root, path):
    return os.path.relpath(path, root)


def read_text(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        return f.read()


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, keeping
    line structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = None
                out.append(quote)
            else:
                out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


# --- rule: raw-threading-primitive -------------------------------------


def check_raw_primitives(root, findings):
    for path in iter_source_files(root):
        relpath = rel(root, path)
        if os.path.relpath(relpath, "src") in THREADING_EXEMPT:
            continue
        text = strip_comments(read_text(path))
        for lineno, line in enumerate(text.splitlines(), 1):
            m = RAW_PRIMITIVES.search(line)
            if m:
                findings.append(Finding(
                    "raw-threading-primitive", relpath, lineno,
                    f"raw std::{m.group(1)}; use the ranked ode:: "
                    f"wrappers from common/threading.h"))


# --- rank parsing shared by several rules ------------------------------


def parse_enum_ranks(root, findings):
    """LockRank enum: name -> numeric value."""
    path = os.path.join(root, "src", "common", "lock_rank.h")
    text = strip_comments(read_text(path))
    m = re.search(r"enum class LockRank[^{]*\{(.*?)\}\s*;", text, re.S)
    if not m:
        findings.append(Finding("rank-doc-sync", rel(root, path), 1,
                                "cannot locate the LockRank enum"))
        return {}
    ranks = {}
    for name, value in re.findall(r"(k\w+)\s*=\s*(\d+)", m.group(1)):
        ranks[name] = int(value)
    return ranks


def parse_table_ranks(root, findings):
    """lock_rank.cc metadata table:
    numeric rank -> (name, allow_same_rank)."""
    path = os.path.join(root, "src", "common", "lock_rank.cc")
    text = strip_comments(read_text(path))
    table = {}
    pattern = re.compile(
        r"\{\s*LockRank::(k\w+)\s*,\s*\"([^\"]*)\"\s*,\s*(true|false)"
        r"\s*,\s*(true|false)\s*\}")
    # The comment-stripper blanks string contents; re-read raw for the
    # names but keep positions via the raw file (strings here are plain
    # one-line literals).
    raw = read_text(path)
    for m in pattern.finditer(raw):
        table[m.group(1)] = (m.group(2), m.group(3) == "true")
    if not table:
        findings.append(Finding("rank-doc-sync", rel(root, path), 1,
                                "cannot parse LockRankTable entries"))
    return table


def parse_doc_ranks(root, findings):
    """docs/LOCKING.md: numeric rank -> backticked name."""
    path = os.path.join(root, "docs", "LOCKING.md")
    doc = {}
    for lineno, line in enumerate(
            read_text(path).splitlines(), 1):
        m = re.match(r"\|\s*(\d+)\s*\|\s*`([^`]+)`\s*\|", line)
        if m:
            rank = int(m.group(1))
            if rank in doc:
                findings.append(Finding(
                    "rank-doc-sync", rel(root, path), lineno,
                    f"rank {rank} documented twice"))
            doc[rank] = m.group(2)
    return doc


def check_rank_doc_sync(root, findings):
    enum = parse_enum_ranks(root, findings)
    table = parse_table_ranks(root, findings)
    doc = parse_doc_ranks(root, findings)
    if not enum or not table or not doc:
        return enum, table

    hdr = rel(root, os.path.join("src", "common", "lock_rank.h"))
    cc = rel(root, os.path.join("src", "common", "lock_rank.cc"))
    md = rel(root, os.path.join("docs", "LOCKING.md"))

    for enum_name, value in enum.items():
        if enum_name not in table:
            findings.append(Finding(
                "rank-doc-sync", cc, 1,
                f"LockRank::{enum_name} ({value}) missing from "
                f"LockRankTable()"))
        if value not in doc:
            findings.append(Finding(
                "rank-doc-sync", md, 1,
                f"rank {value} (LockRank::{enum_name}) missing from the "
                f"docs/LOCKING.md table"))
    for table_name in table:
        if table_name not in enum:
            findings.append(Finding(
                "rank-doc-sync", hdr, 1,
                f"LockRankTable() entry {table_name} has no enum value"))
    by_value = {v: k for k, v in enum.items()}
    for rank, doc_name in doc.items():
        enum_name = by_value.get(rank)
        if enum_name is None:
            findings.append(Finding(
                "rank-doc-sync", hdr, 1,
                f"docs/LOCKING.md documents rank {rank} (`{doc_name}`) "
                f"which is not in the LockRank enum"))
            continue
        code_name = table.get(enum_name, (None,))[0]
        if code_name is not None and code_name != doc_name:
            findings.append(Finding(
                "rank-doc-sync", md, 1,
                f"rank {rank} named `{doc_name}` in docs but "
                f"\"{code_name}\" in lock_rank.cc"))
    return enum, table


# --- rules: mutex-rank-known + acquire-order ---------------------------

MUTEX_DECL = re.compile(
    r"\b(?:Mutex|SharedMutex)\s+(\w+)\s*\{\s*LockRank::(k\w+)")
LOCK_SCOPE = re.compile(
    r"\b(MutexLock|ReaderMutexLock|SharedLock|WriterLock|ReaderLock)\s+"
    r"\w+\s*[({]\s*[*&]?\s*([\w.\->]+)")
REQUIRES_FN = re.compile(r"ODE_REQUIRES\s*\(\s*[*&]?\s*([\w.\->]+)\s*\)")


def check_mutex_ranks_and_order(root, findings, enum, table):
    """Resolves member mutex -> rank per file, flags unknown ranks, and
    builds the static acquire graph from lexical nesting."""
    # mutex member name -> set of enum rank names (across the repo;
    # names like mu_ repeat, so order edges are only checked when every
    # candidate pair violates — conservative, no false positives).
    decls = defaultdict(set)
    for path in iter_source_files(root):
        relpath = rel(root, path)
        raw = read_text(path)
        for m in MUTEX_DECL.finditer(raw):
            member, rank_name = m.group(1), m.group(2)
            lineno = raw[:m.start()].count("\n") + 1
            if rank_name not in enum:
                findings.append(Finding(
                    "mutex-rank-known", relpath, lineno,
                    f"{member} constructed with LockRank::{rank_name}, "
                    f"which is not in the LockRank enum"))
                continue
            decls[member].add(rank_name)

    def rank_of(expr):
        """Candidate enum ranks for a lock expression like `mu_`,
        `shard.mu`, `*txn_mu_`."""
        member = expr.split(".")[-1].split("->")[-1].lstrip("*&")
        return decls.get(member, set())

    for path in iter_source_files(root):
        if not path.endswith(".cc") and not path.endswith(".h"):
            continue
        relpath = rel(root, path)
        text = strip_comments(read_text(path))
        # Walk lines tracking brace depth; a lock scope guard lives
        # until its depth closes. ODE_REQUIRES on a function head seeds
        # the held set for the body that follows.
        held = []  # (expr, depth_at_acquisition, line)
        pending_requires = []
        depth = 0
        for lineno, line in enumerate(text.splitlines(), 1):
            for m in REQUIRES_FN.finditer(line):
                pending_requires.append((m.group(1), lineno))
            for m in LOCK_SCOPE.finditer(line):
                inner = m.group(2)
                inner_ranks = rank_of(inner)
                if not inner_ranks:
                    continue
                outers = ([(e, l) for e, _, l in held] +
                          [(e, l) for e, l in pending_requires])
                for outer, outer_line in outers:
                    outer_ranks = rank_of(outer)
                    if not outer_ranks:
                        continue
                    # Conservative: only flag when EVERY candidate
                    # rank pairing is out of order.
                    ok = any(
                        enum[i] > enum[o] or
                        (i == o and table.get(i, ("", False))[1])
                        for o in outer_ranks for i in inner_ranks)
                    if not ok:
                        findings.append(Finding(
                            "acquire-order", relpath, lineno,
                            f"acquires {inner} (ranks "
                            f"{sorted(inner_ranks)}) while holding "
                            f"{outer} (ranks {sorted(outer_ranks)}) "
                            f"from line {outer_line}; rank order "
                            f"requires inner > outer"))
                held.append((inner, depth, lineno))
            opens = line.count("{")
            closes = line.count("}")
            depth += opens - closes
            if closes:
                held = [h for h in held if h[1] < depth + 1]
                if depth <= 0:
                    held = []
                    pending_requires = []
                    depth = max(depth, 0)


# --- rule: no-tsa-inventory --------------------------------------------


def check_no_tsa(root, findings):
    inventory_path = os.path.join(root, "tools", "ode_lint",
                                  "no_tsa_inventory.json")
    try:
        with open(inventory_path, encoding="utf-8") as f:
            inventory = json.load(f)
    except FileNotFoundError:
        findings.append(Finding(
            "no-tsa-inventory", rel(root, inventory_path), 1,
            "missing escape inventory file"))
        return
    expected = {entry["file"]: entry["count"] for entry in inventory}
    actual = defaultdict(int)
    for path in iter_source_files(root):
        text = strip_comments(read_text(path))
        hits = len(re.findall(r"\bODE_NO_THREAD_SAFETY_ANALYSIS\b", text))
        if path.endswith(os.path.join("common", "thread_annotations.h")):
            continue  # the definition site
        if hits:
            actual[rel(root, path).replace(os.sep, "/")] += hits
    for file, count in sorted(actual.items()):
        want = expected.get(file)
        if want is None:
            findings.append(Finding(
                "no-tsa-inventory", file, 1,
                f"{count} ODE_NO_THREAD_SAFETY_ANALYSIS escape(s) not in "
                f"the committed inventory — document the justification "
                f"in docs/LOCKING.md and add the file to "
                f"tools/ode_lint/no_tsa_inventory.json"))
        elif want != count:
            findings.append(Finding(
                "no-tsa-inventory", file, 1,
                f"escape count drifted: inventory says {want}, "
                f"source has {count}"))
    for file in expected:
        if file not in actual:
            findings.append(Finding(
                "no-tsa-inventory", file, 1,
                "inventory lists escapes but the file has none — prune "
                "the inventory entry"))


# --- rule: metric-name -------------------------------------------------

METRIC_CALL = re.compile(
    r"\.\s*(counter|gauge|histogram)\s*\(\s*(\"[^\"]*\"|[^)\"]+)")


def check_metric_names(root, findings):
    kinds = defaultdict(set)   # name -> {kind}
    sites = defaultdict(list)  # name -> [(file, line)]
    for path in iter_source_files(root):
        relpath = rel(root, path)
        raw = read_text(path)
        stripped = strip_comments(raw)
        for m in METRIC_CALL.finditer(raw):
            # Only count real call sites (the stripped text still has
            # the call shape there; comments do not).
            lineno = raw[:m.start()].count("\n") + 1
            span_line = stripped.splitlines()[lineno - 1] \
                if lineno <= len(stripped.splitlines()) else ""
            if m.group(1) not in span_line:
                continue
            arg = m.group(2).strip()
            if not arg.startswith('"'):
                # Dynamic name (a variable): allowed only in the
                # metrics/registry implementation itself.
                if "common/metrics" not in relpath.replace(os.sep, "/"):
                    findings.append(Finding(
                        "metric-name", relpath, lineno,
                        f"non-literal metric name `{arg}` — names must "
                        f"be literals so the registry is greppable"))
                continue
            name = arg.strip('"')
            if not METRIC_NAME.match(name):
                findings.append(Finding(
                    "metric-name", relpath, lineno,
                    f"metric name \"{name}\" violates the "
                    f"subsystem.noun.verb convention"))
            kinds[name].add(m.group(1))
            sites[name].append((relpath, lineno))
    for name, used_kinds in sorted(kinds.items()):
        if len(used_kinds) > 1:
            where = ", ".join(f"{f}:{l}" for f, l in sites[name][:4])
            findings.append(Finding(
                "metric-name", sites[name][0][0], sites[name][0][1],
                f"metric \"{name}\" used as {sorted(used_kinds)} — one "
                f"kind per name ({where})"))


# --- rule: journal-event-name ------------------------------------------


def check_journal_events(root, findings):
    path = os.path.join(root, "src", "common", "journal.cc")
    relpath = rel(root, path)
    raw = read_text(path)
    m = re.search(r"JournalEventName[^{]*\{(.*?)\n\}", raw, re.S)
    if not m:
        findings.append(Finding("journal-event-name", relpath, 1,
                                "cannot locate JournalEventName()"))
        return
    seen = {}
    for case in re.finditer(
            r"case JournalEvent::(k\w+):\s*return\s*\"([^\"]*)\"",
            m.group(1)):
        enum_name, wire = case.group(1), case.group(2)
        lineno = raw[:m.start(1) + case.start()].count("\n") + 1
        if not SNAKE_CASE.match(wire):
            findings.append(Finding(
                "journal-event-name", relpath, lineno,
                f"wire name \"{wire}\" for {enum_name} is not "
                f"snake_case"))
        if wire in seen:
            findings.append(Finding(
                "journal-event-name", relpath, lineno,
                f"wire name \"{wire}\" used by both {seen[wire]} and "
                f"{enum_name}"))
        seen[wire] = enum_name


# --- rule: include-layering --------------------------------------------


def check_include_layering(root, findings):
    for path in iter_source_files(root):
        relpath = rel(root, path)
        parts = os.path.relpath(relpath, "src").split(os.sep)
        layer = LAYER_ORDER.get(parts[0])
        if layer is None:
            continue
        # Raw lines: the comment stripper blanks string contents, and
        # the include path lives inside the quotes. A leading-`#` match
        # cannot sit in a comment that matters here.
        in_cluster = parts[:2] == ["odb", "cluster"]
        raw = read_text(path)
        for lineno, line in enumerate(raw.splitlines(), 1):
            # The clustering subsystem is a leaf: it may include the odb
            # core, but no core file (odb, common, or any other layer)
            # may include odb/cluster/ — the core interacts with it only
            # through the forward declarations in database.h.
            if not in_cluster and re.match(
                    r'\s*#\s*include\s*"odb/cluster/', line):
                findings.append(Finding(
                    "include-layering", relpath, lineno,
                    f"{relpath} must not include odb/cluster/ — the "
                    f"clustering subsystem is a leaf over the odb core "
                    f"(core sees it via forward declarations only)"))
                continue
            m = re.match(r'\s*#\s*include\s*"(\w+)/', line)
            if not m:
                continue
            target = LAYER_ORDER.get(m.group(1))
            if target is None:
                continue
            same_tier_cross = (
                target == layer and m.group(1) != parts[0] and layer == 1)
            if target > layer or same_tier_cross:
                findings.append(Finding(
                    "include-layering", relpath, lineno,
                    f"{parts[0]} must not include {m.group(1)} "
                    f"(layering: common < odb|dag|owl < dynlink < "
                    f"odeview)"))


# --- driver ------------------------------------------------------------


def run_all(root):
    findings = []
    check_raw_primitives(root, findings)
    enum, table = check_rank_doc_sync(root, findings)
    if enum:
        check_mutex_ranks_and_order(root, findings, enum, table)
    check_no_tsa(root, findings)
    check_metric_names(root, findings)
    check_journal_events(root, findings)
    check_include_layering(root, findings)
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON of suppressed finding keys")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    findings = run_all(root)

    suppressed = set()
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        suppressed = set(baseline.get("suppressed", []))
        live_keys = {f.key() for f in findings}
        for key in sorted(suppressed - live_keys):
            findings.append(Finding(
                "stale-baseline", args.baseline, 1,
                f"baseline entry matches nothing: {key}"))
        findings = [f for f in findings if f.key() not in suppressed]

    findings.sort(key=lambda f: (f.rule, f.file, f.line))
    if args.json:
        print(json.dumps({"findings": [asdict(f) for f in findings]},
                         indent=2))
    else:
        for f in findings:
            print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
        print(f"ode-lint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
