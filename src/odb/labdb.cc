#include "odb/labdb.h"

#include <array>
#include <sstream>
#include <vector>

namespace ode::odb {

namespace {

/// Deterministic 64-bit generator (splitmix64), independent of the
/// standard library's unspecified distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return bound ? Next() % bound : 0; }

 private:
  uint64_t state_;
};

constexpr std::array<const char*, 60> kFirstNames = {
    "rakesh", "narain", "jerry",  "amy",    "brian",  "carol",  "dan",
    "erin",   "frank",  "gina",   "hank",   "iris",   "jack",   "kara",
    "liam",   "mona",   "ned",    "olga",   "paul",   "quinn",  "rosa",
    "sam",    "tina",   "umar",   "vera",   "walt",   "xena",   "yuri",
    "zoe",    "alan",   "beth",   "carl",   "dina",   "earl",   "faye",
    "glen",   "hope",   "ivan",   "june",   "kent",   "lena",   "mark",
    "nina",   "otis",   "pam",    "raul",   "sara",   "theo",   "uma",
    "vic",    "wendy",  "xander", "yara",   "zack",   "abby",   "boris",
    "cleo",   "drew",   "elsa",   "fred"};

constexpr std::array<const char*, 8> kDepartmentNames = {
    "research",  "databases", "languages", "systems",
    "networks",  "graphics",  "theory",    "hardware"};

constexpr std::array<const char*, 8> kLocations = {
    "murray hill 2C", "murray hill 3D", "holmdel 1A",  "murray hill 5B",
    "holmdel 4C",     "murray hill 6A", "holmdel 2F",  "murray hill 1E"};

constexpr std::array<const char*, 10> kProjectTitles = {
    "ode",        "odeview",  "o++ compiler", "dag layout",
    "sig",        "kiview",   "query engine", "version store",
    "trigger lab", "x widgets"};

/// A tiny deterministic PBM (portable bitmap) "portrait" for an
/// employee — the payload the picture display function renders.
std::string MakePortraitPbm(uint64_t key) {
  constexpr int kW = 16;
  constexpr int kH = 16;
  std::ostringstream out;
  out << "P1 " << kW << " " << kH << "\n";
  Rng rng(key * 7919 + 17);
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      // A symmetric face-like pattern: mirror the left half.
      int xx = x < kW / 2 ? x : kW - 1 - x;
      uint64_t bit = (rng.Next() >> ((xx + y) % 13)) & 1;
      bool border = x == 0 || y == 0 || x == kW - 1 || y == kH - 1;
      out << ((border || bit) ? '1' : '0');
      if (x + 1 < kW) out << ' ';
    }
    out << "\n";
  }
  return out.str();
}

Value MakeRefSet(const std::vector<Oid>& oids, const std::string& cls) {
  std::vector<Value> elements;
  elements.reserve(oids.size());
  for (Oid oid : oids) elements.push_back(Value::Ref(oid, cls));
  return Value::Set(std::move(elements));
}

}  // namespace

std::string LabSchemaDdl() {
  return R"(
// The AT&T research-center "lab" database (paper Section 3).
persistent class employee {
public:
  string name;
  int age;
  string title;
  department* dept;
  manager* boss;
  blob picture;
  void raise_salary(int pct);
  display text, picture;
  displaylist name, age, title, salary;
  selectlist name, age, salary;
  constraint age >= 18;
private:
  real salary;
};

persistent class department {
public:
  string name;
  string location;
  manager* head;
  set<employee*> employees;
  set<project*> projects;
  display text;
  displaylist name, location;
  selectlist name, location;
};

// As the paper's Fig. 5 shows, manager derives from BOTH employee and
// department.
persistent class manager : public employee, public department {
public:
  int reports;
  display text, picture;
  selectlist name, age, reports;
  trigger many_reports: on_update when reports > 30 do notify_hr;
};

persistent class project {
public:
  string title;
  real budget;
  employee* lead;
  set<employee*> members;
  display text;
  selectlist title, budget;
  constraint budget >= 0;
};

// Documents illustrate multiple display media (text / postscript /
// bitmap), as in Section 4.1 item 4 of the paper.
persistent versioned class document {
public:
  string title;
  string body;
  blob postscript;
  blob bitmap;
  set<employee*> authors;
  display text, postscript, bitmap;
  displaylist title, body;
  selectlist title;
};
)";
}

Status BuildLabDatabase(Database* db, const LabDbConfig& config) {
  ODE_RETURN_IF_ERROR(db->DefineSchema(LabSchemaDdl()));
  Rng rng(config.seed);

  if (config.managers > config.employees) {
    return Status::InvalidArgument("more managers than employees");
  }
  if (config.departments < 1 || config.employees < 1) {
    return Status::InvalidArgument("need at least one department/employee");
  }

  // 1. Departments (heads wired up after managers exist).
  std::vector<Oid> departments;
  for (int d = 0; d < config.departments; ++d) {
    std::vector<Value::Field> fields;
    fields.push_back(
        {"name", Value::String(kDepartmentNames[d % kDepartmentNames.size()])});
    fields.push_back(
        {"location", Value::String(kLocations[d % kLocations.size()])});
    fields.push_back({"head", Value::Ref(Oid::Null(), "manager")});
    fields.push_back({"employees", Value::Set({})});
    fields.push_back({"projects", Value::Set({})});
    ODE_ASSIGN_OR_RETURN(
        Oid oid, db->CreateObject("department", Value::Struct(fields)));
    departments.push_back(oid);
  }

  // 2. Employees. The first is rakesh in department 0 ("research").
  std::vector<Oid> employees;
  std::vector<int> employee_dept;
  for (int e = 0; e < config.employees; ++e) {
    int dept = e == 0 ? 0 : static_cast<int>(rng.Below(departments.size()));
    std::vector<Value::Field> fields;
    std::string name = kFirstNames[e % kFirstNames.size()];
    if (e >= static_cast<int>(kFirstNames.size())) {
      name += "_" + std::to_string(e / kFirstNames.size());
    }
    fields.push_back({"name", Value::String(name)});
    fields.push_back(
        {"age", Value::Int(25 + static_cast<int64_t>(rng.Below(40)))});
    fields.push_back({"title", Value::String(
        e % 5 == 0 ? "MTS" : (e % 5 == 1 ? "DMTS" : "researcher"))});
    fields.push_back({"dept", Value::Ref(departments[dept], "department")});
    fields.push_back({"boss", Value::Ref(Oid::Null(), "manager")});
    fields.push_back({"picture", Value::Blob(MakePortraitPbm(
        config.seed * 1000 + static_cast<uint64_t>(e)))});
    fields.push_back(
        {"salary",
         Value::Real(50000 + static_cast<double>(rng.Below(90000)))});
    ODE_ASSIGN_OR_RETURN(Oid oid,
                         db->CreateObject("employee", Value::Struct(fields)));
    employees.push_back(oid);
    employee_dept.push_back(dept);
  }

  // 3. Managers (their own cluster; inherit employee + department
  //    members). Manager m heads department m % departments.
  std::vector<Oid> managers;
  for (int m = 0; m < config.managers; ++m) {
    int dept = m % config.departments;
    std::vector<Value::Field> fields;
    std::string name =
        std::string("mgr_") + kFirstNames[(m + 13) % kFirstNames.size()];
    // employee base members
    fields.push_back({"name", Value::String(name)});
    fields.push_back(
        {"age", Value::Int(40 + static_cast<int64_t>(rng.Below(25)))});
    fields.push_back({"title", Value::String("manager")});
    fields.push_back({"dept", Value::Ref(departments[dept], "department")});
    fields.push_back({"boss", Value::Ref(Oid::Null(), "manager")});
    fields.push_back({"picture", Value::Blob(MakePortraitPbm(
        config.seed * 2000 + static_cast<uint64_t>(m)))});
    fields.push_back(
        {"salary",
         Value::Real(90000 + static_cast<double>(rng.Below(90000)))});
    // department base members (name shadowed by employee's)
    fields.push_back(
        {"location", Value::String(kLocations[dept % kLocations.size()])});
    fields.push_back({"head", Value::Ref(Oid::Null(), "manager")});
    fields.push_back({"employees", Value::Set({})});
    fields.push_back({"projects", Value::Set({})});
    // own members
    fields.push_back({"reports", Value::Int(0)});
    ODE_ASSIGN_OR_RETURN(Oid oid,
                         db->CreateObject("manager", Value::Struct(fields)));
    managers.push_back(oid);
  }

  // 4. Wire employees' bosses and department rosters.
  std::vector<std::vector<Oid>> dept_rosters(departments.size());
  for (size_t e = 0; e < employees.size(); ++e) {
    int dept = employee_dept[e];
    dept_rosters[static_cast<size_t>(dept)].push_back(employees[e]);
    if (!managers.empty()) {
      Oid boss = managers[static_cast<size_t>(dept) % managers.size()];
      ODE_ASSIGN_OR_RETURN(ObjectBuffer buffer, db->GetObject(employees[e]));
      *buffer.value.FindMutableField("boss") = Value::Ref(boss, "manager");
      ODE_RETURN_IF_ERROR(db->UpdateObject(employees[e], buffer.value));
    }
  }
  for (size_t d = 0; d < departments.size(); ++d) {
    ODE_ASSIGN_OR_RETURN(ObjectBuffer buffer, db->GetObject(departments[d]));
    *buffer.value.FindMutableField("employees") =
        MakeRefSet(dept_rosters[d], "employee");
    if (!managers.empty()) {
      *buffer.value.FindMutableField("head") =
          Value::Ref(managers[d % managers.size()], "manager");
    }
    ODE_RETURN_IF_ERROR(db->UpdateObject(departments[d], buffer.value));
  }
  // Managers' report counts.
  for (size_t m = 0; m < managers.size(); ++m) {
    int64_t reports = 0;
    for (int dept : employee_dept) {
      if (static_cast<size_t>(dept) % managers.size() == m) ++reports;
    }
    ODE_ASSIGN_OR_RETURN(ObjectBuffer buffer, db->GetObject(managers[m]));
    *buffer.value.FindMutableField("reports") = Value::Int(reports);
    ODE_RETURN_IF_ERROR(db->UpdateObject(managers[m], buffer.value));
  }

  // 5. Projects.
  std::vector<Oid> projects;
  for (int p = 0; p < config.projects; ++p) {
    std::vector<Oid> members;
    int member_count = 2 + static_cast<int>(rng.Below(5));
    for (int i = 0; i < member_count; ++i) {
      members.push_back(employees[rng.Below(employees.size())]);
    }
    std::vector<Value::Field> fields;
    fields.push_back({"title", Value::String(
        kProjectTitles[p % kProjectTitles.size()])});
    fields.push_back({"budget", Value::Real(
        10000 + static_cast<double>(rng.Below(500000)))});
    fields.push_back({"lead", Value::Ref(members.front(), "employee")});
    fields.push_back({"members", MakeRefSet(members, "employee")});
    ODE_ASSIGN_OR_RETURN(Oid oid,
                         db->CreateObject("project", Value::Struct(fields)));
    projects.push_back(oid);
  }
  // Attach projects to departments.
  for (size_t p = 0; p < projects.size(); ++p) {
    size_t d = p % departments.size();
    ODE_ASSIGN_OR_RETURN(ObjectBuffer buffer, db->GetObject(departments[d]));
    Value* proj_set = buffer.value.FindMutableField("projects");
    proj_set->mutable_elements().push_back(
        Value::Ref(projects[p], "project"));
    ODE_RETURN_IF_ERROR(db->UpdateObject(departments[d], buffer.value));
  }

  // 6. Documents (multiple display media, versioned).
  for (int doc = 0; doc < config.documents; ++doc) {
    std::vector<Oid> authors;
    authors.push_back(employees[rng.Below(employees.size())]);
    authors.push_back(employees[rng.Below(employees.size())]);
    std::vector<Value::Field> fields;
    fields.push_back({"title", Value::String(
        "tech memo " + std::to_string(1990 + doc))});
    fields.push_back({"body", Value::String(
        "Object-oriented database browsing notes, part " +
        std::to_string(doc + 1) + ".")});
    fields.push_back({"postscript", Value::Blob(
        "%!PS-Adobe-1.0\n% synthetic document " + std::to_string(doc) +
        "\nshowpage\n")});
    fields.push_back({"bitmap", Value::Blob(MakePortraitPbm(
        config.seed * 3000 + static_cast<uint64_t>(doc)))});
    fields.push_back({"authors", MakeRefSet(authors, "employee")});
    ODE_RETURN_IF_ERROR(
        db->CreateObject("document", Value::Struct(fields)).status());
  }

  db->ClearTriggerLog();  // construction-time firings are not interesting
  return db->Sync();
}

std::string SyntheticSchemaDdl(int num_classes, int avg_bases,
                               uint64_t seed) {
  Rng rng(seed);
  std::ostringstream out;
  for (int c = 0; c < num_classes; ++c) {
    out << "persistent class cls_" << c;
    if (c > 0 && avg_bases > 0) {
      int bases = 1 + static_cast<int>(rng.Below(
                          static_cast<uint64_t>(avg_bases)));
      out << " : ";
      // Bases must precede this class to keep the graph acyclic.
      std::vector<int> chosen;
      for (int b = 0; b < bases && static_cast<int>(chosen.size()) < c;
           ++b) {
        int candidate = static_cast<int>(rng.Below(
            static_cast<uint64_t>(c)));
        bool dup = false;
        for (int prev : chosen) dup = dup || prev == candidate;
        if (!dup) chosen.push_back(candidate);
      }
      if (chosen.empty()) chosen.push_back(c - 1);
      for (size_t i = 0; i < chosen.size(); ++i) {
        if (i) out << ", ";
        out << "public cls_" << chosen[i];
      }
    }
    out << " {\npublic:\n  string label;\n  int weight;\n";
    out << "  display text;\n";
    out << "};\n\n";
  }
  return out.str();
}

}  // namespace ode::odb
