file(REMOVE_RECURSE
  "CMakeFiles/bench_dag_ablation.dir/bench_dag_ablation.cc.o"
  "CMakeFiles/bench_dag_ablation.dir/bench_dag_ablation.cc.o.d"
  "bench_dag_ablation"
  "bench_dag_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dag_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
