#ifndef ODEVIEW_ODB_EXEC_EXPLAIN_H_
#define ODEVIEW_ODB_EXEC_EXPLAIN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/op_profile.h"
#include "common/result.h"
#include "odb/exec/executor.h"

namespace ode::odb::exec {

/// One operator of an explained plan. Plain EXPLAIN fills only the
/// static description (`op` + `props`); EXPLAIN ANALYZE additionally
/// runs the query and fills the actuals.
struct PlanNode {
  std::string op;  ///< "scan", "hash-join", "nested-loop-join", ...
  /// Static plan properties, in display order ("class" -> "employee",
  /// "predicate" -> "salary > 50", ...).
  std::vector<std::pair<std::string, std::string>> props;
  std::vector<PlanNode> children;

  // --- Actuals (EXPLAIN ANALYZE only) ---------------------------------
  bool analyzed = false;
  uint64_t time_ns = 0;
  uint64_t rows_out = 0;
  obs::OpProfileStats actual;  ///< resource charges attributed here
};

/// A fully explained query: the operator tree plus (for ANALYZE) the
/// whole-query wall time and resource totals, which equal the sum of
/// the per-operator actuals.
struct ExplainResult {
  PlanNode root;
  bool analyzed = false;
  uint64_t total_ns = 0;
  obs::OpProfileStats totals;

  /// Indented text rendering (the shell's output).
  std::string RenderText() const;
  /// JSON rendering (tooling / the telemetry consumers).
  std::string RenderJson() const;
};

/// Reports whether `predicate` carries a `left.x == right.y` equality
/// conjunct usable as a hash-join key — the strategy EXPLAIN predicts.
/// On success the side-stripped key paths are returned.
bool FindHashJoinKey(const Predicate& predicate, std::string* left_path,
                     std::string* right_path);

/// Explains (and with `analyze` runs) a batched scan. The static plan
/// reports the scan strategy (ids-only fast path vs masked decode),
/// the compiled predicate program size, and the partitioning; ANALYZE
/// adds per-operator rows/pages/time from a nested `OpProfile` that
/// merges back into the caller's current profile.
Result<ExplainResult> ExplainScan(Database* db, const ScanSpec& spec,
                                  bool analyze);

/// Explains (and with `analyze` runs) a join. The plan is a join node
/// over two scan children; ANALYZE attributes each phase's rows,
/// pages, and wall time to its node via `JoinPhaseActuals`.
Result<ExplainResult> ExplainJoin(Database* db, const JoinSpec& spec,
                                  bool analyze);

}  // namespace ode::odb::exec

#endif  // ODEVIEW_ODB_EXEC_EXPLAIN_H_
