// Figure 9: setting up a chain of windows by following embedded
// references (employee -> department -> manager).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace ode::bench {
namespace {

/// Builds an alternating dept/head chain below `node`, `depth` links
/// long (the object graph is cyclic — department.head is a manager
/// whose dept points back — so the *window tree* can be arbitrarily
/// deep, exactly as a user clicking buttons could make it).
view::BrowseNode* BuildChain(view::BrowseNode* node, int depth) {
  for (int i = 0; i < depth; ++i) {
    const char* member = (i % 2 == 0) ? "dept" : "head";
    node = ValueOrDie(node->FollowReference(member), "follow");
  }
  return node;
}

void BM_ChainConstruction(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  LabSession session = LabSession::Create();
  for (auto _ : state) {
    state.PauseTiming();
    if (session.interactor->FindObjectSet("employee") != nullptr) {
      CheckOk(session.interactor->CloseObjectSet("employee"), "close");
    }
    view::BrowseNode* root =
        ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
    CheckOk(root->Next(), "next");
    state.ResumeTiming();
    benchmark::DoNotOptimize(BuildChain(root, depth));
  }
  state.counters["depth"] = depth;
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_ChainConstruction)->Arg(1)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

void BM_ChainWithDisplaysOpen(benchmark::State& state) {
  // The Fig. 9 configuration: employee (text) -> dept (text) ->
  // manager (text), all display windows open.
  LabSession session = LabSession::Create();
  for (auto _ : state) {
    state.PauseTiming();
    if (session.interactor->FindObjectSet("employee") != nullptr) {
      CheckOk(session.interactor->CloseObjectSet("employee"), "close");
    }
    state.ResumeTiming();
    view::BrowseNode* root =
        ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
    CheckOk(root->Next(), "next");
    CheckOk(root->ToggleFormat("text"), "emp text");
    view::BrowseNode* dept =
        ValueOrDie(root->FollowReference("dept"), "dept");
    CheckOk(dept->ToggleFormat("text"), "dept text");
    view::BrowseNode* head =
        ValueOrDie(dept->FollowReference("head"), "head");
    CheckOk(head->ToggleFormat("text"), "head text");
    benchmark::DoNotOptimize(root->SubtreeSize());
  }
}
BENCHMARK(BM_ChainWithDisplaysOpen);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
