#include "odeview/browse_node.h"

#include <algorithm>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "dynlink/synthesized.h"
#include "owl/widgets.h"

namespace ode::view {

namespace {

constexpr int kPanelWidth = 46;

// Synchronized-browsing instruments. Cascades are sequencing
// operations (next/prev/reset) that refresh a whole subtree; fan-out
// and depth histograms characterize how much window tree each cascade
// touches, and the skipped counter measures the lazy-refresh savings
// (display windows that exist but are closed, so they are not
// re-rendered).
obs::Counter& RefreshCascades() {
  static obs::Counter* c =
      obs::Registry::Global().counter("view.refresh.cascades");
  return *c;
}
obs::Counter& RefreshNodes() {
  static obs::Counter* c =
      obs::Registry::Global().counter("view.refresh.nodes");
  return *c;
}
obs::Counter& WindowsRendered() {
  static obs::Counter* c =
      obs::Registry::Global().counter("view.refresh.windows_rendered");
  return *c;
}
obs::Counter& WindowsSkipped() {
  static obs::Counter* c =
      obs::Registry::Global().counter("view.refresh.windows_skipped");
  return *c;
}
obs::Histogram& RefreshFanout() {
  static obs::Histogram* h =
      obs::Registry::Global().histogram("view.refresh.fanout");
  return *h;
}
obs::Histogram& RefreshDepth() {
  static obs::Histogram* h =
      obs::Registry::Global().histogram("view.refresh.depth");
  return *h;
}
obs::Counter& DisplayDispatches() {
  static obs::Counter* c =
      obs::Registry::Global().counter("display.dispatch");
  return *c;
}
obs::Counter& DisplayFaults() {
  static obs::Counter* c = obs::Registry::Global().counter("display.faults");
  return *c;
}

void RecordCascade(const BrowseNode& root) {
  RefreshCascades().Increment();
  RefreshFanout().Record(static_cast<uint64_t>(root.SubtreeSize()));
  RefreshDepth().Record(static_cast<uint64_t>(root.SubtreeDepth()));
}

/// Lays one row of buttons into `parent`, returning the row height (1).
int LayoutButtonRow(owl::Widget* parent, int y,
                    const std::vector<owl::Button*>& buttons) {
  int x = 0;
  for (owl::Button* button : buttons) {
    int width = static_cast<int>(button->label().size()) + 3;
    button->set_rect(owl::Rect{x, y, width, 1});
    x += width + 1;
  }
  (void)parent;
  return 1;
}

}  // namespace

BrowseNode::BrowseNode(BrowseContext* context, BrowseNodeKind kind,
                       std::string class_name)
    : context_(context), kind_(kind), class_name_(std::move(class_name)) {}

BrowseNode::~BrowseNode() {
  children_.clear();  // children release their windows first
  for (const auto& [format, id] : display_windows_) {
    (void)context_->server->DestroyWindow(id);
  }
  if (versions_window_ != owl::kNoWindow) {
    (void)context_->server->DestroyWindow(versions_window_);
  }
  if (panel_window_ != owl::kNoWindow) {
    (void)context_->server->DestroyWindow(panel_window_);
  }
}

Result<std::unique_ptr<BrowseNode>> BrowseNode::CreateClusterSet(
    BrowseContext* context, const std::string& class_name) {
  ODE_RETURN_IF_ERROR(context->db->GetClass(class_name).status());
  ODE_RETURN_IF_ERROR(context->db->ClusterOf(class_name).status());
  std::unique_ptr<BrowseNode> node(
      new BrowseNode(context, BrowseNodeKind::kClusterSet, class_name));
  node->cursor_.emplace(context->db, class_name);
  ODE_RETURN_IF_ERROR(node->BuildPanel());
  return node;
}

Result<odb::ObjectBuffer> BrowseNode::Current() const {
  if (!current_.has_value()) {
    return Status::FailedPrecondition("no current object in this window");
  }
  return *current_;
}

ClusterDisplayState* BrowseNode::state() const {
  return context_->display_states->StateFor(context_->db_name, class_name_);
}

Result<odb::ObjectBuffer> BrowseNode::FetchObject(odb::Oid oid) const {
  if (context_->session != nullptr) return context_->session->GetObject(oid);
  return context_->db->GetObject(oid);
}

Result<odb::ObjectBuffer> BrowseNode::FetchObjectVersion(
    odb::Oid oid, uint32_t version) const {
  if (context_->session != nullptr) {
    return context_->session->GetObjectVersion(oid, version);
  }
  return context_->db->GetObjectVersion(oid, version);
}

Result<std::vector<uint32_t>> BrowseNode::FetchVersionList(
    odb::Oid oid) const {
  if (context_->session != nullptr) {
    return context_->session->ListVersions(oid);
  }
  return context_->db->ListVersions(oid);
}

Status BrowseNode::BuildPanel() {
  std::string title;
  switch (kind_) {
    case BrowseNodeKind::kClusterSet:
      title = class_name_ + " object set";
      break;
    case BrowseNodeKind::kReference:
      title = (parent_ ? parent_->class_name() + "." : "") + member_name_ +
              ": " + class_name_;
      break;
    case BrowseNodeKind::kReferenceSet:
      title = (parent_ ? parent_->class_name() + "." : "") + member_name_ +
              " object set";
      break;
  }
  // Rows: control panel / object label / formats / refs / sets /
  // project / status.
  int height = 8;
  owl::Window* window = context_->server->CreateWindow(
      title, owl::Server::kAutoPlace, owl::Size{kPanelWidth, height});
  panel_window_ = window->id();
  owl::Widget* root = window->root();

  int y = 0;
  if (CanSequence()) {
    std::vector<owl::Button*> buttons;
    auto* reset = static_cast<owl::Button*>(
        root->AddChild(std::make_unique<owl::Button>(
            "reset", "reset", [this](owl::Button&) { (void)Reset(); })));
    auto* next = static_cast<owl::Button*>(
        root->AddChild(std::make_unique<owl::Button>(
            "next", "next", [this](owl::Button&) { (void)Next(); })));
    auto* prev = static_cast<owl::Button*>(
        root->AddChild(std::make_unique<owl::Button>(
            "previous", "previous",
            [this](owl::Button&) { (void)Prev(); })));
    buttons = {reset, next, prev};
    y += LayoutButtonRow(root, y, buttons);
  }
  auto* object_label = static_cast<owl::Label*>(
      root->AddChild(std::make_unique<owl::Label>("object-label",
                                                  "object: <none>")));
  object_label->set_rect(owl::Rect{0, y, kPanelWidth, 1});
  ++y;

  // Format buttons (toggles).
  {
    std::vector<owl::Button*> buttons;
    for (const std::string& format : AvailableFormats()) {
      auto* button = static_cast<owl::Button*>(
          root->AddChild(std::make_unique<owl::Button>(
              "fmt:" + format, format, [this, format](owl::Button&) {
                (void)ToggleFormat(format);
              })));
      button->set_toggle_mode(true);
      buttons.push_back(button);
    }
    y += LayoutButtonRow(root, y, buttons);
  }
  // Reference buttons.
  {
    std::vector<owl::Button*> buttons;
    Result<std::vector<std::string>> refs = ReferenceMembers();
    if (refs.ok()) {
      for (const std::string& member : *refs) {
        buttons.push_back(static_cast<owl::Button*>(
            root->AddChild(std::make_unique<owl::Button>(
                "ref:" + member, member, [this, member](owl::Button&) {
                  (void)FollowReference(member);
                }))));
      }
    }
    y += LayoutButtonRow(root, y, buttons);
  }
  // Set buttons.
  {
    std::vector<owl::Button*> buttons;
    Result<std::vector<std::string>> sets = ReferenceSetMembers();
    if (sets.ok()) {
      for (const std::string& member : *sets) {
        buttons.push_back(static_cast<owl::Button*>(
            root->AddChild(std::make_unique<owl::Button>(
                "set:" + member, member, [this, member](owl::Button&) {
                  (void)FollowReferenceSet(member);
                }))));
      }
    }
    y += LayoutButtonRow(root, y, buttons);
  }
  // Projection button row.
  {
    auto* project = static_cast<owl::Button*>(
        root->AddChild(std::make_unique<owl::Button>(
            "project", "project", [this](owl::Button&) {
              if (context_->on_project_request) {
                context_->on_project_request(class_name_);
              } else if (!projection_mask().empty()) {
                (void)ClearProjection();
              }
            })));
    project->set_rect(owl::Rect{0, y, 12, 1});
    // Versioned classes additionally get a `versions` button.
    Result<const odb::ClassDef*> def =
        context_->db->GetClass(class_name_);
    if (def.ok() && (*def)->versioned) {
      auto* versions = static_cast<owl::Button*>(
          root->AddChild(std::make_unique<owl::Button>(
              "versions", "versions", [this](owl::Button&) {
                (void)OpenVersionsWindow();
              })));
      versions->set_rect(owl::Rect{13, y, 12, 1});
    }
    ++y;
  }
  auto* status = static_cast<owl::Label*>(
      root->AddChild(std::make_unique<owl::Label>("status", "")));
  status->set_rect(owl::Rect{0, y, kPanelWidth, 1});
  return Status::OK();
}

namespace {
void SetLabel(owl::Server* server, owl::WindowId window_id,
              std::string_view widget, std::string text) {
  owl::Window* window = server->FindWindow(window_id);
  if (window == nullptr) return;
  if (auto* label =
          dynamic_cast<owl::Label*>(window->FindWidget(widget))) {
    label->set_text(std::move(text));
  }
}
}  // namespace

std::vector<std::string> BrowseNode::AvailableFormats() const {
  // Display functions are member functions: a class inherits the
  // display media of its ancestors.
  std::vector<std::string> formats =
      context_->repository->InheritedFormatsFor(
          context_->db->schema(), context_->db_name, class_name_);
  if (formats.empty()) formats.push_back("text");  // synthesized
  return formats;
}

Result<std::vector<std::string>> BrowseNode::DisplayList() const {
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> list,
                       context_->db->schema().EffectiveDisplayList(
                           class_name_));
  if (!list.empty()) return list;
  return dynlink::SynthesizeDisplayList(context_->db->schema(),
                                        class_name_);
}

Result<std::vector<std::string>> BrowseNode::SelectList() const {
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> list,
                       context_->db->schema().EffectiveSelectList(
                           class_name_));
  if (!list.empty()) return list;
  return dynlink::SynthesizeSelectList(context_->db->schema(), class_name_);
}

const std::vector<bool>& BrowseNode::projection_mask() const {
  return state()->projection_mask;
}

Status BrowseNode::SetProjection(const std::vector<std::string>& attrs) {
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> list, DisplayList());
  for (const std::string& attr : attrs) {
    if (std::find(list.begin(), list.end(), attr) == list.end()) {
      return Status::InvalidArgument("attribute '" + attr +
                                     "' is not in the displaylist of '" +
                                     class_name_ + "'");
    }
  }
  state()->projection_mask = BuildProjectionMask(list, attrs);
  return RefreshSelf();
}

Status BrowseNode::ClearProjection() {
  state()->projection_mask.clear();
  return RefreshSelf();
}

Status BrowseNode::SetSelection(odb::Predicate predicate,
                                std::string display_text) {
  if (kind_ != BrowseNodeKind::kClusterSet) {
    return Status::FailedPrecondition(
        "selection applies to cluster object-set windows");
  }
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> selectlist, SelectList());
  for (const std::string& path : predicate.AttributePaths()) {
    std::string first = Split(path, '.').front();
    if (std::find(selectlist.begin(), selectlist.end(), first) ==
        selectlist.end()) {
      return Status::InvalidArgument(
          "attribute '" + first + "' is not in the selectlist of '" +
          class_name_ + "'");
    }
  }
  cursor_.emplace(context_->db, class_name_, std::move(predicate));
  has_selection_ = true;
  selection_text_ = std::move(display_text);
  current_.reset();
  ODE_RETURN_IF_ERROR(RefreshSelf());
  for (const auto& child : children_) {
    ODE_RETURN_IF_ERROR(child->RefreshSubtree());
  }
  return Status::OK();
}

Status BrowseNode::ClearSelection() {
  if (kind_ != BrowseNodeKind::kClusterSet) {
    return Status::FailedPrecondition(
        "selection applies to cluster object-set windows");
  }
  cursor_.emplace(context_->db, class_name_);
  has_selection_ = false;
  selection_text_.clear();
  current_.reset();
  ODE_RETURN_IF_ERROR(RefreshSelf());
  for (const auto& child : children_) {
    ODE_RETURN_IF_ERROR(child->RefreshSubtree());
  }
  return Status::OK();
}

Status BrowseNode::Step(bool forward) {
  switch (kind_) {
    case BrowseNodeKind::kClusterSet: {
      Result<odb::ObjectBuffer> buffer =
          forward ? cursor_->Next() : cursor_->Prev();
      if (!buffer.ok()) return buffer.status();
      current_ = std::move(*buffer);
      return Status::OK();
    }
    case BrowseNodeKind::kReferenceSet: {
      int next = set_index_ + (forward ? 1 : -1);
      if (set_index_ < 0 && forward) next = 0;
      if (next < 0 || next >= static_cast<int>(set_targets_.size())) {
        return Status::OutOfRange("no more objects in this set");
      }
      RecordCascadeAffinity(set_targets_[static_cast<size_t>(next)]);
      ODE_ASSIGN_OR_RETURN(
          odb::ObjectBuffer buffer,
          FetchObject(set_targets_[static_cast<size_t>(next)]));
      set_index_ = next;
      current_ = std::move(buffer);
      return Status::OK();
    }
    case BrowseNodeKind::kReference:
      return Status::FailedPrecondition(
          "object windows have no sequencing controls");
  }
  return Status::Internal("unreachable");
}

Status BrowseNode::Next() {
  // Adopt the session's causal anchor for the whole gesture, so the
  // step's object fetches and the refresh cascade land in one trace.
  obs::TraceContextScope adopt(context_->session != nullptr
                                   ? context_->session->trace_context()
                                   : obs::TraceContext{});
  if (faulted_) {
    return Status::FailedPrecondition("object-interactor has terminated: " +
                                      fault_message_);
  }
  Status stepped = Step(/*forward=*/true);
  if (!stepped.ok()) {
    SetLabel(context_->server, panel_window_, "status",
             stepped.IsOutOfRange() ? "at end of object set"
                                    : stepped.ToString());
    return stepped;
  }
  SetLabel(context_->server, panel_window_, "status", "");
  return PropagateCascade();
}

Status BrowseNode::Prev() {
  // Adopt the session's causal anchor for the whole gesture, so the
  // step's object fetches and the refresh cascade land in one trace.
  obs::TraceContextScope adopt(context_->session != nullptr
                                   ? context_->session->trace_context()
                                   : obs::TraceContext{});
  if (faulted_) {
    return Status::FailedPrecondition("object-interactor has terminated: " +
                                      fault_message_);
  }
  Status stepped = Step(/*forward=*/false);
  if (!stepped.ok()) {
    SetLabel(context_->server, panel_window_, "status",
             stepped.IsOutOfRange() ? "at start of object set"
                                    : stepped.ToString());
    return stepped;
  }
  SetLabel(context_->server, panel_window_, "status", "");
  return PropagateCascade();
}

Status BrowseNode::Reset() {
  // Adopt the session's causal anchor for the whole gesture, so the
  // step's object fetches and the refresh cascade land in one trace.
  obs::TraceContextScope adopt(context_->session != nullptr
                                   ? context_->session->trace_context()
                                   : obs::TraceContext{});
  if (faulted_) {
    return Status::FailedPrecondition("object-interactor has terminated: " +
                                      fault_message_);
  }
  switch (kind_) {
    case BrowseNodeKind::kClusterSet:
      cursor_->Reset();
      break;
    case BrowseNodeKind::kReferenceSet:
      set_index_ = -1;
      break;
    case BrowseNodeKind::kReference:
      return Status::FailedPrecondition(
          "object windows have no sequencing controls");
  }
  current_.reset();
  SetLabel(context_->server, panel_window_, "status", "");
  return PropagateCascade();
}

Status BrowseNode::PropagateCascade() {
  // Callers (Next/Prev/Reset) have already adopted the session's trace
  // context, so this span — and every pool/pager span the refreshes
  // below it open — hangs off the user gesture that triggered it.
  ODE_TRACE_SPAN("view.sync_cascade");
  RecordCascade(*this);
  const int fan_out = SubtreeSize();
  obs::Journal::Global().Append(obs::JournalEvent::kCascadeStart, fan_out,
                                SubtreeDepth(),
                                obs::Journal::InternLabel(class_name_));
  Status refreshed = RefreshSelf();
  for (const auto& child : children_) {
    if (!refreshed.ok()) break;
    refreshed = child->RefreshSubtree();
  }
  obs::Journal::Global().Append(obs::JournalEvent::kCascadeEnd, fan_out,
                                refreshed.ok() ? 0 : 1,
                                obs::Journal::InternLabel(class_name_));
  return refreshed;
}

bool BrowseNode::IsFormatOpen(const std::string& format) const {
  return state()->IsOpen(format);
}

owl::WindowId BrowseNode::DisplayWindow(const std::string& format) const {
  auto it = display_windows_.find(format);
  return it == display_windows_.end() ? owl::kNoWindow : it->second;
}

Status BrowseNode::ToggleFormat(const std::string& format) {
  if (faulted_) {
    return Status::FailedPrecondition("object-interactor has terminated: " +
                                      fault_message_);
  }
  std::vector<std::string> formats = AvailableFormats();
  if (std::find(formats.begin(), formats.end(), format) == formats.end()) {
    return Status::NotFound("class '" + class_name_ +
                            "' has no display format '" + format + "'");
  }
  bool now_open = state()->Toggle(format);
  if (!now_open) {
    auto it = display_windows_.find(format);
    if (it != display_windows_.end()) {
      if (owl::Window* window = context_->server->FindWindow(it->second)) {
        window->set_open(false);
      }
    }
    return Status::OK();
  }
  if (!current_.has_value()) return Status::OK();  // shown on next object
  return RenderFormat(format);
}

Status BrowseNode::RenderFormat(const std::string& format) {
  if (!current_.has_value()) return Status::OK();
  ODE_TRACE_SPAN("display.render");
  const std::string& actual_class = current_->class_name;
  dynlink::DisplayFunction synthesized;
  const dynlink::DisplayFunction* fn = nullptr;
  // Resolve the defining class first (a subclass inherits display
  // member functions), then dynamically link that class's module.
  Result<const dynlink::DisplayModule*> module =
      context_->repository->FindInherited(context_->db->schema(),
                                          context_->db_name, actual_class,
                                          format);
  if (module.ok()) {
    ODE_ASSIGN_OR_RETURN(
        fn, context_->linker->Load(context_->db_name,
                                   (*module)->class_name, format));
  } else if (module.status().IsNotFound()) {
    synthesized = dynlink::SynthesizeDisplayFunction(
        context_->db->schema(), actual_class, context_->privileged);
    fn = &synthesized;
  } else {
    return module.status();
  }
  Result<std::vector<std::string>> attrs = DisplayList();
  static const std::vector<std::string> kNoAttrs;
  const std::vector<std::string>& attributes =
      attrs.ok() ? *attrs : kNoAttrs;
  DisplayDispatches().Increment();
  obs::Registry::Global()
      .counter("display.dispatch." + actual_class)
      ->Increment();
  Result<dynlink::DisplayResources> resources =
      (*fn)(*current_, attributes, state()->projection_mask);
  if (!resources.ok()) {
    if (resources.status().IsDisplayFault()) {
      return MarkFaulted(format, resources.status().message());
    }
    return resources.status();
  }
  for (const dynlink::WindowSpec& spec : resources->windows) {
    owl::Size size = spec.size;
    if (size.width <= 0 || size.height <= 0) {
      size = spec.kind == dynlink::WindowKind::kRasterImage
                 ? owl::Size{20, 10}
                 : owl::Size{38, 10};
    }
    owl::Window* window = nullptr;
    auto it = display_windows_.find(format);
    if (it != display_windows_.end()) {
      window = context_->server->FindWindow(it->second);
    }
    if (window == nullptr) {
      owl::Point placement = spec.placement;
      if (placement == owl::Point{-1, -1}) {
        placement = owl::Server::kAutoPlace;
      }
      window = context_->server->CreateWindow(spec.title, placement, size);
      display_windows_[format] = window->id();
      switch (spec.kind) {
        case dynlink::WindowKind::kStaticText: {
          auto text = std::make_unique<owl::StaticText>("content", "");
          text->set_rect(owl::Rect{0, 0, size.width, size.height});
          window->root()->AddChild(std::move(text));
          break;
        }
        case dynlink::WindowKind::kScrollText: {
          auto text = std::make_unique<owl::ScrollText>(
              "content", std::vector<std::string>{});
          text->set_rect(owl::Rect{0, 0, size.width, size.height});
          window->root()->AddChild(std::move(text));
          break;
        }
        case dynlink::WindowKind::kRasterImage: {
          auto raster =
              std::make_unique<owl::RasterView>("image", owl::Bitmap());
          raster->set_rect(owl::Rect{0, 0, size.width, size.height});
          window->root()->AddChild(std::move(raster));
          break;
        }
      }
    }
    window->set_title(spec.title);
    window->set_open(true);
    switch (spec.kind) {
      case dynlink::WindowKind::kStaticText:
        if (auto* text = dynamic_cast<owl::StaticText*>(
                window->FindWidget("content"))) {
          text->set_text(spec.text);
        }
        break;
      case dynlink::WindowKind::kScrollText:
        if (auto* text = dynamic_cast<owl::ScrollText*>(
                window->FindWidget("content"))) {
          text->set_lines(Split(spec.text, '\n'));
        }
        break;
      case dynlink::WindowKind::kRasterImage: {
        Result<owl::Bitmap> bitmap = owl::Bitmap::FromPbm(spec.image_pbm);
        if (!bitmap.ok()) {
          return MarkFaulted(format,
                             "display function produced a bad bitmap: " +
                                 bitmap.status().message());
        }
        if (auto* raster = dynamic_cast<owl::RasterView*>(
                window->FindWidget("image"))) {
          raster->set_bitmap(std::move(*bitmap));
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status BrowseNode::RefreshSelf() {
  std::string label = "object: <none>";
  if (current_.has_value()) {
    label = "object: " + current_->class_name + " " +
            current_->oid.ToString();
    if (kind_ == BrowseNodeKind::kReferenceSet) {
      label += " (" + std::to_string(set_index_ + 1) + "/" +
               std::to_string(set_targets_.size()) + ")";
    }
  }
  if (has_selection_) label += " where " + selection_text_;
  SetLabel(context_->server, panel_window_, "object-label", label);
  if (!current_.has_value()) {
    // Blank open display windows.
    for (const auto& [format, id] : display_windows_) {
      if (owl::Window* window = context_->server->FindWindow(id)) {
        if (auto* text = dynamic_cast<owl::ScrollText*>(
                window->FindWidget("content"))) {
          text->set_lines({"<no object>"});
        }
        if (auto* text = dynamic_cast<owl::StaticText*>(
                window->FindWidget("content"))) {
          text->set_text("<no object>");
        }
      }
    }
    return Status::OK();
  }
  // Mirror the format buttons' toggle state onto the panel.
  if (owl::Window* panel = context_->server->FindWindow(panel_window_)) {
    for (const std::string& format : AvailableFormats()) {
      if (auto* button = dynamic_cast<owl::Button*>(
              panel->FindWidget("fmt:" + format))) {
        button->set_toggled(state()->IsOpen(format));
      }
    }
  }
  // Lazy-refresh savings: display windows that exist but are closed
  // are left stale instead of re-rendered.
  for (const auto& [format, id] : display_windows_) {
    if (!state()->IsOpen(format)) WindowsSkipped().Increment();
  }
  for (const std::string& format : state()->open_formats) {
    ODE_RETURN_IF_ERROR(RenderFormat(format));
    WindowsRendered().Increment();
    if (faulted_) break;
  }
  return Status::OK();
}

Status BrowseNode::OpenVersionsWindow() {
  ODE_ASSIGN_OR_RETURN(const odb::ClassDef* def,
                       context_->db->GetClass(class_name_));
  if (!def->versioned) {
    return Status::NotFound("class '" + class_name_ +
                            "' is not versioned");
  }
  if (!current_.has_value()) {
    return Status::FailedPrecondition(
        "select an object before viewing its versions");
  }
  ODE_ASSIGN_OR_RETURN(std::vector<uint32_t> versions,
                       FetchVersionList(current_->oid));
  std::vector<std::string> lines;
  lines.push_back("versions of " + current_->oid.ToString() + ":");
  for (uint32_t version : versions) {
    ODE_ASSIGN_OR_RETURN(odb::ObjectBuffer buffer,
                         FetchObjectVersion(current_->oid, version));
    std::string marker = version == current_->version ? "*" : " ";
    lines.push_back(marker + "v" + std::to_string(version) + " " +
                    buffer.value.ToString());
  }
  owl::Window* window = nullptr;
  if (versions_window_ != owl::kNoWindow) {
    window = context_->server->FindWindow(versions_window_);
  }
  if (window == nullptr) {
    window = context_->server->CreateWindow(
        class_name_ + " versions", owl::Server::kAutoPlace,
        owl::Size{60, 10});
    versions_window_ = window->id();
    auto text = std::make_unique<owl::ScrollText>(
        "content", std::vector<std::string>{});
    text->set_rect(owl::Rect{0, 0, 60, 10});
    window->root()->AddChild(std::move(text));
  }
  window->set_open(true);
  if (auto* text =
          dynamic_cast<owl::ScrollText*>(window->FindWidget("content"))) {
    text->set_lines(std::move(lines));
  }
  return Status::OK();
}

Result<std::vector<std::string>> BrowseNode::ReferenceMembers() const {
  ODE_ASSIGN_OR_RETURN(std::vector<odb::MemberDef> members,
                       context_->db->schema().AllMembers(class_name_));
  std::vector<std::string> out;
  for (const odb::MemberDef& member : members) {
    if (member.type.kind == odb::TypeRef::Kind::kRef &&
        member.access == odb::Access::kPublic) {
      out.push_back(member.name);
    }
  }
  return out;
}

Result<std::vector<std::string>> BrowseNode::ReferenceSetMembers() const {
  ODE_ASSIGN_OR_RETURN(std::vector<odb::MemberDef> members,
                       context_->db->schema().AllMembers(class_name_));
  std::vector<std::string> out;
  for (const odb::MemberDef& member : members) {
    if (member.type.kind == odb::TypeRef::Kind::kSet &&
        member.type.element != nullptr &&
        member.type.element->kind == odb::TypeRef::Kind::kRef &&
        member.access == odb::Access::kPublic) {
      out.push_back(member.name);
    }
  }
  return out;
}

BrowseNode* BrowseNode::FindChild(std::string_view member) {
  for (const auto& child : children_) {
    if (child->member_name_ == member) return child.get();
  }
  return nullptr;
}

int BrowseNode::SubtreeSize() const {
  int n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

int BrowseNode::SubtreeDepth() const {
  int deepest = 0;
  for (const auto& child : children_) {
    deepest = std::max(deepest, child->SubtreeDepth());
  }
  return deepest + 1;
}

Result<BrowseNode*> BrowseNode::FollowReference(const std::string& member) {
  if (faulted_) {
    return Status::FailedPrecondition("object-interactor has terminated: " +
                                      fault_message_);
  }
  if (BrowseNode* existing = FindChild(member)) return existing;
  if (!current_.has_value()) {
    return Status::FailedPrecondition(
        "select an object before following its references");
  }
  ODE_ASSIGN_OR_RETURN(std::vector<odb::MemberDef> members,
                       context_->db->schema().AllMembers(class_name_));
  const odb::MemberDef* def = nullptr;
  for (const odb::MemberDef& m : members) {
    if (m.name == member) def = &m;
  }
  if (def == nullptr || def->type.kind != odb::TypeRef::Kind::kRef) {
    return Status::InvalidArgument("'" + member +
                                   "' is not a reference member of '" +
                                   class_name_ + "'");
  }
  std::unique_ptr<BrowseNode> child(new BrowseNode(
      context_, BrowseNodeKind::kReference, def->type.class_name));
  child->member_name_ = member;
  child->parent_ = this;
  ODE_RETURN_IF_ERROR(child->BuildPanel());
  ODE_RETURN_IF_ERROR(child->RefreshSubtree());
  children_.push_back(std::move(child));
  return children_.back().get();
}

Result<BrowseNode*> BrowseNode::FollowReferenceSet(
    const std::string& member) {
  if (faulted_) {
    return Status::FailedPrecondition("object-interactor has terminated: " +
                                      fault_message_);
  }
  if (BrowseNode* existing = FindChild(member)) return existing;
  if (!current_.has_value()) {
    return Status::FailedPrecondition(
        "select an object before following its references");
  }
  ODE_ASSIGN_OR_RETURN(std::vector<odb::MemberDef> members,
                       context_->db->schema().AllMembers(class_name_));
  const odb::MemberDef* def = nullptr;
  for (const odb::MemberDef& m : members) {
    if (m.name == member) def = &m;
  }
  if (def == nullptr || def->type.kind != odb::TypeRef::Kind::kSet ||
      def->type.element == nullptr ||
      def->type.element->kind != odb::TypeRef::Kind::kRef) {
    return Status::InvalidArgument(
        "'" + member + "' is not a set-of-references member of '" +
        class_name_ + "'");
  }
  std::unique_ptr<BrowseNode> child(new BrowseNode(
      context_, BrowseNodeKind::kReferenceSet,
      def->type.element->class_name));
  child->member_name_ = member;
  child->parent_ = this;
  ODE_RETURN_IF_ERROR(child->BuildPanel());
  ODE_RETURN_IF_ERROR(child->RefreshSubtree());
  children_.push_back(std::move(child));
  return children_.back().get();
}

void BrowseNode::RecordCascadeAffinity(odb::Oid dst) const {
  obs::AccessLog& log = obs::AccessLog::Global();
  if (!log.enabled()) return;
  if (parent_ == nullptr || !parent_->current_.has_value()) return;
  odb::Oid src = parent_->current_->oid;
  log.RecordAffinity(src.cluster, src.local,
                     obs::Journal::InternLabel(parent_->class_name_),
                     dst.cluster, dst.local,
                     obs::Journal::InternLabel(class_name_));
}

Status BrowseNode::ResolveFromParent() {
  if (parent_ == nullptr || !parent_->current_.has_value()) {
    current_.reset();
    set_targets_.clear();
    set_index_ = -1;
    return Status::OK();
  }
  const odb::Value* field =
      parent_->current_->value.FindField(member_name_);
  if (field == nullptr) {
    current_.reset();
    return Status::OK();
  }
  if (kind_ == BrowseNodeKind::kReference) {
    if (field->kind() != odb::ValueKind::kRef || field->AsRef().IsNull()) {
      current_.reset();
      return Status::OK();
    }
    RecordCascadeAffinity(field->AsRef());
    ODE_ASSIGN_OR_RETURN(odb::ObjectBuffer buffer,
                         FetchObject(field->AsRef()));
    current_ = std::move(buffer);
    return Status::OK();
  }
  // kReferenceSet
  set_targets_.clear();
  if (field->kind() == odb::ValueKind::kSet ||
      field->kind() == odb::ValueKind::kArray) {
    for (const odb::Value& element : field->elements()) {
      if (element.kind() == odb::ValueKind::kRef &&
          !element.AsRef().IsNull()) {
        set_targets_.push_back(element.AsRef());
      }
    }
  }
  if (set_targets_.empty()) {
    set_index_ = -1;
    current_.reset();
    return Status::OK();
  }
  // After the parent sequences, show the first element if this window
  // was already showing one (Fig. 10's synchronized refresh).
  if (set_index_ >= 0 || kind_ == BrowseNodeKind::kReferenceSet) {
    set_index_ = 0;
    RecordCascadeAffinity(set_targets_.front());
    ODE_ASSIGN_OR_RETURN(odb::ObjectBuffer buffer,
                         FetchObject(set_targets_.front()));
    current_ = std::move(buffer);
  }
  return Status::OK();
}

Status BrowseNode::RefreshSubtree() {
  RefreshNodes().Increment();
  if (kind_ != BrowseNodeKind::kClusterSet) {
    ODE_RETURN_IF_ERROR(ResolveFromParent());
  }
  if (!faulted_) {
    ODE_RETURN_IF_ERROR(RefreshSelf());
  }
  for (const auto& child : children_) {
    ODE_RETURN_IF_ERROR(child->RefreshSubtree());
  }
  return Status::OK();
}

Status BrowseNode::MarkFaulted(const std::string& format,
                               const std::string& message) {
  faulted_ = true;
  fault_message_ = message;
  DisplayFaults().Increment();
  obs::Journal::Global().Append(obs::JournalEvent::kDynlinkFault, 0, 0,
                                obs::Journal::InternLabel(class_name_));
  obs::Registry::Global()
      .counter("display.fault." + class_name_)
      ->Increment();
  // The crashed display is no longer part of the cluster's display
  // state (its simulated process died), so a restarted interactor does
  // not immediately crash again.
  if (state()->IsOpen(format)) (void)state()->Toggle(format);
  ODE_LOG(Warning) << "object-interactor fault for class '" << class_name_
                   << "': " << message;
  SetLabel(context_->server, panel_window_, "status",
           "INTERACTOR FAULT: " + message);
  for (const auto& [format, id] : display_windows_) {
    if (owl::Window* window = context_->server->FindWindow(id)) {
      window->set_open(false);
    }
  }
  // The fault is contained: return OK so sibling refreshes continue.
  return Status::OK();
}

Status BrowseNode::Restart() {
  if (!faulted_) return Status::OK();
  faulted_ = false;
  fault_message_.clear();
  SetLabel(context_->server, panel_window_, "status", "restarted");
  return RefreshSubtree();
}

}  // namespace ode::view
