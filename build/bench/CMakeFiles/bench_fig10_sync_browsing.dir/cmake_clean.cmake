file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sync_browsing.dir/bench_fig10_sync_browsing.cc.o"
  "CMakeFiles/bench_fig10_sync_browsing.dir/bench_fig10_sync_browsing.cc.o.d"
  "bench_fig10_sync_browsing"
  "bench_fig10_sync_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sync_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
