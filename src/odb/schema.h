#ifndef ODEVIEW_ODB_SCHEMA_H_
#define ODEVIEW_ODB_SCHEMA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"

namespace ode::odb {

/// Member access levels, as in C++ / O++. Ode classes support data
/// encapsulation; OdeView respects it when building default displays
/// but can "selectively violate" it in privileged (debug) mode.
enum class Access : uint8_t { kPublic = 0, kProtected, kPrivate };

std::string_view AccessName(Access access);

/// Reference to a type in a member declaration.
struct TypeRef {
  enum class Kind : uint8_t {
    kVoid = 0,
    kBool,
    kInt,
    kReal,
    kString,
    kBlob,
    kClass,  ///< embedded object of a named class (by value)
    kRef,    ///< pointer to a persistent object of a named class
    kSet,    ///< set<element>
    kArray,  ///< element[size] (size 0 = unsized)
  };

  Kind kind = Kind::kVoid;
  std::string class_name;            ///< for kClass / kRef
  std::shared_ptr<TypeRef> element;  ///< for kSet / kArray
  uint32_t array_size = 0;           ///< for kArray

  static TypeRef Void() { return TypeRef{Kind::kVoid, {}, nullptr, 0}; }
  static TypeRef Bool() { return TypeRef{Kind::kBool, {}, nullptr, 0}; }
  static TypeRef Int() { return TypeRef{Kind::kInt, {}, nullptr, 0}; }
  static TypeRef Real() { return TypeRef{Kind::kReal, {}, nullptr, 0}; }
  static TypeRef String() { return TypeRef{Kind::kString, {}, nullptr, 0}; }
  static TypeRef Blob() { return TypeRef{Kind::kBlob, {}, nullptr, 0}; }
  static TypeRef Class(std::string name) {
    return TypeRef{Kind::kClass, std::move(name), nullptr, 0};
  }
  static TypeRef Ref(std::string name) {
    return TypeRef{Kind::kRef, std::move(name), nullptr, 0};
  }
  static TypeRef Set(TypeRef element) {
    return TypeRef{Kind::kSet, {},
                   std::make_shared<TypeRef>(std::move(element)), 0};
  }
  static TypeRef Array(TypeRef element, uint32_t size) {
    return TypeRef{Kind::kArray, {},
                   std::make_shared<TypeRef>(std::move(element)), size};
  }

  /// O++ source spelling ("set<employee*>", "int[4]", "department*").
  std::string ToString() const;

  friend bool operator==(const TypeRef& a, const TypeRef& b);
  friend bool operator!=(const TypeRef& a, const TypeRef& b) {
    return !(a == b);
  }
};

/// A data member of a class.
struct MemberDef {
  std::string name;
  TypeRef type;
  Access access = Access::kPublic;
};

/// A member function, retained as metadata only: OdeView never calls
/// arbitrary methods (the paper notes doing so "will be unacceptable,
/// if not potentially disastrous, because of any potential side
/// effects"); only the distinguished display functions are invoked.
struct MethodDef {
  std::string name;
  std::string return_type;  ///< source spelling
  std::string params;       ///< source spelling between parentheses
  Access access = Access::kPublic;
};

/// An integrity constraint: a predicate over the object's attributes
/// checked on create and update (O++ `constraint:` clause).
struct ConstraintDef {
  std::string predicate_text;
};

/// Events a trigger can fire on.
enum class TriggerEvent : uint8_t { kCreate = 0, kUpdate, kDelete };

std::string_view TriggerEventName(TriggerEvent event);

/// A trigger: when `event` happens to an object and `condition_text`
/// (empty = always) evaluates true, the named action is enqueued.
struct TriggerDef {
  std::string name;
  TriggerEvent event = TriggerEvent::kUpdate;
  std::string condition_text;
  std::string action;
};

/// A parsed O++ class definition.
struct ClassDef {
  std::string name;
  bool persistent = true;
  /// O++ versioned class: updates retain prior versions of the object.
  bool versioned = false;
  std::vector<std::string> bases;  ///< direct superclasses, decl order
  std::vector<MemberDef> members;
  std::vector<MethodDef> methods;
  /// Display formats the class designer provides ("text", "picture"...).
  /// Empty means only the synthesized rudimentary display is available.
  std::vector<std::string> display_formats;
  /// Attributes on which projection may be performed (§5.1). May name
  /// computed attributes that are not data members.
  std::vector<std::string> displaylist;
  /// Attributes usable in selection predicates (§5.2).
  std::vector<std::string> selectlist;
  std::vector<ConstraintDef> constraints;
  std::vector<TriggerDef> triggers;
  /// Verbatim O++ source, shown by the class-definition window (Fig. 4).
  std::string source;

  /// Finds an own (non-inherited) data member; nullptr when absent.
  const MemberDef* FindMember(std::string_view member_name) const;
};

/// The database schema: the collection of class definitions plus the
/// inheritance relationship between them (a set of DAGs).
class Schema {
 public:
  Schema() = default;

  /// Registers a class; fails with AlreadyExists on duplicates.
  Status AddClass(ClassDef def);

  /// Removes a class; fails if other classes derive from or reference it.
  Status DropClass(std::string_view name);

  /// Replaces an existing class definition (schema modification).
  Status ReplaceClass(ClassDef def);

  bool Contains(std::string_view name) const;
  Result<const ClassDef*> GetClass(std::string_view name) const;

  /// All classes in registration order.
  const std::vector<ClassDef>& classes() const { return classes_; }
  size_t size() const { return classes_.size(); }

  /// Direct superclasses / subclasses (the class-information window).
  Result<std::vector<std::string>> DirectSuperclasses(
      std::string_view name) const;
  Result<std::vector<std::string>> DirectSubclasses(
      std::string_view name) const;

  /// Transitive closures (BFS order, no duplicates, excludes `name`).
  Result<std::vector<std::string>> Ancestors(std::string_view name) const;
  Result<std::vector<std::string>> Descendants(std::string_view name) const;

  /// Own members plus inherited ones, base-first in declaration order.
  /// A derived member shadows a base member with the same name.
  Result<std::vector<MemberDef>> AllMembers(std::string_view name) const;

  /// Effective display formats / displaylist / selectlist with
  /// inheritance: a class inherits its bases' lists when it declares
  /// none of its own.
  Result<std::vector<std::string>> EffectiveDisplayFormats(
      std::string_view name) const;
  Result<std::vector<std::string>> EffectiveDisplayList(
      std::string_view name) const;
  Result<std::vector<std::string>> EffectiveSelectList(
      std::string_view name) const;

  /// Inheritance edges (base -> derived), for DAG layout.
  std::vector<std::pair<std::string, std::string>> InheritanceEdges() const;

  /// Checks global consistency: all bases exist, inheritance is acyclic,
  /// ref/embedded member types resolve, member names unique per class.
  Status Validate() const;

  /// Serialization for the persistent catalog. The Decoder overload
  /// consumes exactly the schema's bytes, leaving the rest untouched.
  void Encode(std::string* dst) const;
  static Result<Schema> Decode(std::string_view bytes);
  static Result<Schema> Decode(Decoder* decoder);

 private:
  int IndexOf(std::string_view name) const;  // -1 when absent
  void RebuildIndex();

  std::vector<ClassDef> classes_;
  /// name -> position in classes_ (kept in sync by every mutation).
  std::map<std::string, int, std::less<>> index_;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_SCHEMA_H_
