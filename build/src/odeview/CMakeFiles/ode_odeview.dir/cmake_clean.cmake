file(REMOVE_RECURSE
  "CMakeFiles/ode_odeview.dir/app.cc.o"
  "CMakeFiles/ode_odeview.dir/app.cc.o.d"
  "CMakeFiles/ode_odeview.dir/browse_node.cc.o"
  "CMakeFiles/ode_odeview.dir/browse_node.cc.o.d"
  "CMakeFiles/ode_odeview.dir/dag_view.cc.o"
  "CMakeFiles/ode_odeview.dir/dag_view.cc.o.d"
  "CMakeFiles/ode_odeview.dir/db_interactor.cc.o"
  "CMakeFiles/ode_odeview.dir/db_interactor.cc.o.d"
  "CMakeFiles/ode_odeview.dir/display_state.cc.o"
  "CMakeFiles/ode_odeview.dir/display_state.cc.o.d"
  "CMakeFiles/ode_odeview.dir/join_view.cc.o"
  "CMakeFiles/ode_odeview.dir/join_view.cc.o.d"
  "libode_odeview.a"
  "libode_odeview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_odeview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
