#include "common/threading.h"

#include <atomic>
#include <cstdint>
#include <utility>

namespace ode {

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void BackgroundWorker::Submit(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return;
  queue_.push_back(std::move(task));
  if (!started_) {
    started_ = true;
    thread_ = std::thread(&BackgroundWorker::Loop, this);
  }
  work_cv_.notify_one();
}

void BackgroundWorker::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return (queue_.empty() && !busy_) || stopping_; });
}

void BackgroundWorker::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    queue_.clear();
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

size_t BackgroundWorker::pending() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

void BackgroundWorker::Loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace ode
