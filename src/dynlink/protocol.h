#ifndef ODEVIEW_DYNLINK_PROTOCOL_H_
#define ODEVIEW_DYNLINK_PROTOCOL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "odb/database.h"
#include "owl/geometry.h"

namespace ode::dynlink {

/// The generic window types of the OdeView <-> display-function
/// protocol (paper §4.2): "a set of generic window types corresponding
/// to the kind of windows that are supported by most windowing
/// systems". A display function describes its output purely in these
/// terms and never touches the windowing library — the "principle of
/// separation".
enum class WindowKind : uint8_t {
  kStaticText = 0,  ///< fixed text
  kScrollText,      ///< text with horizontal + vertical scroll bars
  kRasterImage,     ///< a monochrome raster image (ASCII PBM payload)
};

std::string_view WindowKindName(WindowKind kind);

/// One window a display function asks OdeView to materialize. The
/// types are "parameterized to allow the display function to choose
/// the window sizes and to specify the relative placement between the
/// windows".
struct WindowSpec {
  WindowKind kind = WindowKind::kStaticText;
  /// Stable name of this representation ("text", "picture", ...);
  /// must match one of the class's declared display formats.
  std::string format;
  /// Window title shown by OdeView.
  std::string title;
  /// Requested content size in cells (0,0 = let OdeView choose).
  owl::Size size;
  /// Placement relative to the previous window of the same object
  /// ((-1,-1) = let OdeView choose).
  owl::Point placement{-1, -1};
  /// Text payload (kStaticText / kScrollText).
  std::string text;
  /// ASCII PBM payload (kRasterImage).
  std::string image_pbm;
};

/// Everything a display function returns: the windows to create.
/// (The fragment in the paper calls this `display_resources`.)
struct DisplayResources {
  std::vector<WindowSpec> windows;
};

/// A compiled display function. Arguments:
///  * `object` — the object buffer fetched by the object manager;
///  * `attributes` — the class's displaylist (projection vocabulary);
///  * `mask` — the projection bit vector aligned with `attributes`
///    (empty = the class designer's default attribute selection, §5.1).
///
/// Display functions are pure: they compute window contents and never
/// interact with the GUI. They report failures via Status — a
/// `DisplayFault` models a buggy class-designer function, which the
/// object-interactor isolates.
using DisplayFunction = std::function<Result<DisplayResources>(
    const odb::ObjectBuffer& object,
    const std::vector<std::string>& attributes,
    const std::vector<bool>& mask)>;

/// Returns true when `attr` is selected by `mask` over `attributes`.
/// An empty mask selects everything.
bool AttributeSelected(const std::vector<std::string>& attributes,
                       const std::vector<bool>& mask,
                       std::string_view attr);

}  // namespace ode::dynlink

#endif  // ODEVIEW_DYNLINK_PROTOCOL_H_
