/// Fuzzes the telemetry endpoint's request parsing — the only path
/// where raw network bytes enter the process. ParseRequestPath must
/// return a view inside its input (or the static "/") for any byte
/// soup a client sends.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/telemetry_http.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string request(reinterpret_cast<const char*>(data), size);
  std::string_view path = ode::obs::ParseRequestPath(request);
  // The result must alias the request buffer or the "/" literal —
  // touch every byte so ASan catches an out-of-bounds view.
  uint8_t sum = 0;
  for (char c : path) sum ^= static_cast<uint8_t>(c);
  (void)sum;
  if (path.empty()) __builtin_trap();  // contract: never empty
  return 0;
}
