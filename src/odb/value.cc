#include "odb/value.h"

#include <cassert>
#include <sstream>

#include "common/strings.h"

namespace ode::odb {

namespace {
const std::vector<Value::Field>& EmptyFields() {
  static const auto* empty = new std::vector<Value::Field>();
  return *empty;
}
const std::vector<Value>& EmptyElements() {
  static const auto* empty = new std::vector<Value>();
  return *empty;
}

void AppendQuoted(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}
}  // namespace

std::string_view ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kReal:
      return "real";
    case ValueKind::kString:
      return "string";
    case ValueKind::kBlob:
      return "blob";
    case ValueKind::kStruct:
      return "struct";
    case ValueKind::kArray:
      return "array";
    case ValueKind::kSet:
      return "set";
    case ValueKind::kRef:
      return "ref";
  }
  return "?";
}

Value Value::Bool(bool v) {
  Value out;
  out.kind_ = ValueKind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInt;
  out.int_ = v;
  return out;
}

Value Value::Real(double v) {
  Value out;
  out.kind_ = ValueKind::kReal;
  out.real_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.kind_ = ValueKind::kString;
  out.str_ = std::move(v);
  return out;
}

Value Value::Blob(std::string bytes) {
  Value out;
  out.kind_ = ValueKind::kBlob;
  out.str_ = std::move(bytes);
  return out;
}

Value Value::Struct(std::vector<Field> fields) {
  Value out;
  out.kind_ = ValueKind::kStruct;
  out.fields_ = std::move(fields);
  return out;
}

Value Value::Array(std::vector<Value> elements) {
  Value out;
  out.kind_ = ValueKind::kArray;
  out.elements_ = std::move(elements);
  return out;
}

Value Value::Set(std::vector<Value> elements) {
  Value out;
  out.kind_ = ValueKind::kSet;
  out.elements_ = std::move(elements);
  return out;
}

Value Value::Ref(Oid oid, std::string class_name) {
  Value out;
  out.kind_ = ValueKind::kRef;
  out.ref_ = oid;
  out.str_ = std::move(class_name);
  return out;
}

bool Value::AsBool() const {
  assert(kind_ == ValueKind::kBool);
  return bool_;
}

int64_t Value::AsInt() const {
  assert(kind_ == ValueKind::kInt);
  return int_;
}

double Value::AsReal() const {
  assert(kind_ == ValueKind::kReal);
  return real_;
}

const std::string& Value::AsString() const {
  assert(kind_ == ValueKind::kString || kind_ == ValueKind::kBlob);
  return str_;
}

Oid Value::AsRef() const {
  assert(kind_ == ValueKind::kRef);
  return ref_;
}

const std::string& Value::RefClass() const {
  assert(kind_ == ValueKind::kRef);
  return str_;
}

const std::vector<Value::Field>& Value::fields() const {
  return kind_ == ValueKind::kStruct ? fields_ : EmptyFields();
}

std::vector<Value::Field>& Value::mutable_fields() {
  assert(kind_ == ValueKind::kStruct);
  return fields_;
}

const Value* Value::FindField(std::string_view name) const {
  if (kind_ != ValueKind::kStruct) return nullptr;
  for (const Field& f : fields_) {
    if (f.name == name) return &f.value;
  }
  return nullptr;
}

Value* Value::FindMutableField(std::string_view name) {
  if (kind_ != ValueKind::kStruct) return nullptr;
  for (Field& f : fields_) {
    if (f.name == name) return &f.value;
  }
  return nullptr;
}

const Value* Value::FindPath(std::string_view dotted_path) const {
  const Value* cur = this;
  size_t start = 0;
  while (start <= dotted_path.size()) {
    size_t dot = dotted_path.find('.', start);
    std::string_view part = dotted_path.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start);
    cur = cur->FindField(part);
    if (cur == nullptr) return nullptr;
    if (dot == std::string_view::npos) return cur;
    start = dot + 1;
  }
  return nullptr;
}

const std::vector<Value>& Value::elements() const {
  return (kind_ == ValueKind::kArray || kind_ == ValueKind::kSet)
             ? elements_
             : EmptyElements();
}

std::vector<Value>& Value::mutable_elements() {
  assert(kind_ == ValueKind::kArray || kind_ == ValueKind::kSet);
  return elements_;
}

size_t Value::size() const {
  if (kind_ == ValueKind::kStruct) return fields_.size();
  if (kind_ == ValueKind::kArray || kind_ == ValueKind::kSet) {
    return elements_.size();
  }
  return 0;
}

Result<double> Value::ToNumber() const {
  switch (kind_) {
    case ValueKind::kInt:
      return static_cast<double>(int_);
    case ValueKind::kReal:
      return real_;
    case ValueKind::kBool:
      return bool_ ? 1.0 : 0.0;
    default:
      return Status::InvalidArgument(
          std::string("value of kind ") + std::string(ValueKindName(kind_)) +
          " is not numeric");
  }
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBool:
      return a.bool_ == b.bool_;
    case ValueKind::kInt:
      return a.int_ == b.int_;
    case ValueKind::kReal:
      return a.real_ == b.real_;
    case ValueKind::kString:
    case ValueKind::kBlob:
      return a.str_ == b.str_;
    case ValueKind::kRef:
      return a.ref_ == b.ref_ && a.str_ == b.str_;
    case ValueKind::kStruct:
      if (a.fields_.size() != b.fields_.size()) return false;
      for (size_t i = 0; i < a.fields_.size(); ++i) {
        if (a.fields_[i].name != b.fields_[i].name ||
            a.fields_[i].value != b.fields_[i].value) {
          return false;
        }
      }
      return true;
    case ValueKind::kArray:
    case ValueKind::kSet:
      return a.elements_ == b.elements_;
  }
  return false;
}

std::string Value::ToString() const {
  std::ostringstream out;
  switch (kind_) {
    case ValueKind::kNull:
      out << "null";
      break;
    case ValueKind::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case ValueKind::kInt:
      out << int_;
      break;
    case ValueKind::kReal:
      out << real_;
      break;
    case ValueKind::kString:
      AppendQuoted(out, str_);
      break;
    case ValueKind::kBlob:
      out << "<blob " << str_.size() << "B>";
      break;
    case ValueKind::kRef:
      out << "@" << str_ << "(" << ref_.ToString() << ")";
      break;
    case ValueKind::kStruct: {
      out << "{";
      bool first = true;
      for (const Field& f : fields_) {
        if (!first) out << ", ";
        first = false;
        out << f.name << ": " << f.value.ToString();
      }
      out << "}";
      break;
    }
    case ValueKind::kArray:
    case ValueKind::kSet: {
      out << (kind_ == ValueKind::kArray ? "[" : "(");
      bool first = true;
      for (const Value& e : elements_) {
        if (!first) out << ", ";
        first = false;
        out << e.ToString();
      }
      out << (kind_ == ValueKind::kArray ? "]" : ")");
      break;
    }
  }
  return out.str();
}

std::string Value::ToIndentedString(int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::ostringstream out;
  switch (kind_) {
    case ValueKind::kStruct: {
      for (const Field& f : fields_) {
        out << pad << f.name << ":";
        if (f.value.kind() == ValueKind::kStruct ||
            f.value.kind() == ValueKind::kSet ||
            f.value.kind() == ValueKind::kArray) {
          out << "\n" << f.value.ToIndentedString(indent + 1);
        } else {
          out << " " << f.value.ToString() << "\n";
        }
      }
      break;
    }
    case ValueKind::kArray:
    case ValueKind::kSet: {
      for (const Value& e : elements_) {
        if (e.kind() == ValueKind::kStruct) {
          out << pad << "-\n" << e.ToIndentedString(indent + 1);
        } else {
          out << pad << "- " << e.ToString() << "\n";
        }
      }
      break;
    }
    default:
      out << pad << ToString() << "\n";
  }
  return out.str();
}

}  // namespace ode::odb

namespace ode::odb {

std::string Oid::ToString() const {
  if (IsNull()) return "null";
  return "c" + std::to_string(cluster) + ":o" + std::to_string(local);
}

}  // namespace ode::odb
