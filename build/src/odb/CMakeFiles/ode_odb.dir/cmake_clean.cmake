file(REMOVE_RECURSE
  "CMakeFiles/ode_odb.dir/buffer_pool.cc.o"
  "CMakeFiles/ode_odb.dir/buffer_pool.cc.o.d"
  "CMakeFiles/ode_odb.dir/catalog.cc.o"
  "CMakeFiles/ode_odb.dir/catalog.cc.o.d"
  "CMakeFiles/ode_odb.dir/database.cc.o"
  "CMakeFiles/ode_odb.dir/database.cc.o.d"
  "CMakeFiles/ode_odb.dir/ddl_parser.cc.o"
  "CMakeFiles/ode_odb.dir/ddl_parser.cc.o.d"
  "CMakeFiles/ode_odb.dir/heap_file.cc.o"
  "CMakeFiles/ode_odb.dir/heap_file.cc.o.d"
  "CMakeFiles/ode_odb.dir/integrity.cc.o"
  "CMakeFiles/ode_odb.dir/integrity.cc.o.d"
  "CMakeFiles/ode_odb.dir/labdb.cc.o"
  "CMakeFiles/ode_odb.dir/labdb.cc.o.d"
  "CMakeFiles/ode_odb.dir/lexer.cc.o"
  "CMakeFiles/ode_odb.dir/lexer.cc.o.d"
  "CMakeFiles/ode_odb.dir/pager.cc.o"
  "CMakeFiles/ode_odb.dir/pager.cc.o.d"
  "CMakeFiles/ode_odb.dir/predicate.cc.o"
  "CMakeFiles/ode_odb.dir/predicate.cc.o.d"
  "CMakeFiles/ode_odb.dir/schema.cc.o"
  "CMakeFiles/ode_odb.dir/schema.cc.o.d"
  "CMakeFiles/ode_odb.dir/slotted_page.cc.o"
  "CMakeFiles/ode_odb.dir/slotted_page.cc.o.d"
  "CMakeFiles/ode_odb.dir/typecheck.cc.o"
  "CMakeFiles/ode_odb.dir/typecheck.cc.o.d"
  "CMakeFiles/ode_odb.dir/value.cc.o"
  "CMakeFiles/ode_odb.dir/value.cc.o.d"
  "CMakeFiles/ode_odb.dir/value_codec.cc.o"
  "CMakeFiles/ode_odb.dir/value_codec.cc.o.d"
  "libode_odb.a"
  "libode_odb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_odb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
