file(REMOVE_RECURSE
  "CMakeFiles/bench_odb_object_manager.dir/bench_odb_object_manager.cc.o"
  "CMakeFiles/bench_odb_object_manager.dir/bench_odb_object_manager.cc.o.d"
  "bench_odb_object_manager"
  "bench_odb_object_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_odb_object_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
