file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_initial_display.dir/bench_fig01_initial_display.cc.o"
  "CMakeFiles/bench_fig01_initial_display.dir/bench_fig01_initial_display.cc.o.d"
  "bench_fig01_initial_display"
  "bench_fig01_initial_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_initial_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
