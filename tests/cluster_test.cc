// Clustering & prefetch battery: the advisor (direct + induced-sibling
// affinity votes, byte-budgeted greedy grouping, the cost model), the
// online reorganizer (RelocateRecord, Database::Recluster — OIDs and
// payloads survive, group members co-locate), the affinity prefetch
// source, and the pool's read-ahead policy gates (point lookups
// schedule nothing; kAffinity misses fan out to neighbors and charge
// `cluster.prefetch.*`).

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "odb/cluster/advisor.h"
#include "odb/cluster/plan.h"
#include "odb/cluster/prefetch.h"
#include "odb/database.h"
#include "odb/pager.h"
#include "odb/slotted_page.h"

namespace ode::odb {
namespace {

using cluster::AdvisorOptions;
using cluster::BuildAffinityPrefetchSource;
using cluster::BuildClusterPlan;
using cluster::ClusterPlan;
using obs::AccessProfile;
using obs::AffinityEdge;

constexpr char kClusterSchema[] = R"(
persistent class dept {
public:
  string name;
};
persistent class employee {
public:
  string name;
  string pad;
  dept* dept_ref;
};
)";

Value Employee(std::string name, std::string pad, Oid dept = Oid::Null()) {
  return Value::Struct({
      {"name", Value::String(std::move(name))},
      {"pad", Value::String(std::move(pad))},
      {"dept_ref", Value::Ref(dept, "dept")},
  });
}

Value Dept(std::string name) {
  return Value::Struct({{"name", Value::String(std::move(name))}});
}

/// A database whose employees are deliberately scattered: each hot
/// (small) employee is followed by `cold_per_hot` bulky cold ones, so
/// consecutive hot records land on different heap pages.
struct ScatteredDb {
  std::unique_ptr<Database> db;
  Oid dept;
  std::vector<Oid> hot;  ///< creation order
};

ScatteredDb MakeScatteredDb(size_t hot_count, size_t cold_per_hot,
                            size_t pool_pages = 64) {
  ScatteredDb out;
  DatabaseOptions options;
  options.buffer_pool_pages = pool_pages;
  out.db = std::move(*Database::CreateInMemory("cluster-lab", options));
  EXPECT_TRUE(out.db->DefineSchema(kClusterSchema).ok());
  out.dept = *out.db->CreateObject("dept", Dept("research"));
  std::string cold_pad(900, 'x');
  for (size_t i = 0; i < hot_count; ++i) {
    out.hot.push_back(*out.db->CreateObject(
        "employee",
        Employee("hot" + std::to_string(i), "h", out.dept)));
    for (size_t j = 0; j < cold_per_hot; ++j) {
      (void)*out.db->CreateObject(
          "employee",
          Employee("cold" + std::to_string(i) + "_" + std::to_string(j),
                   cold_pad, out.dept));
    }
  }
  return out;
}

/// An AccessProfile holding only a chain of direct intra-cluster edges
/// over consecutive `hot` records (the shape a browse cascade leaves).
AccessProfile ChainProfile(const std::vector<Oid>& hot, uint64_t weight) {
  AccessProfile profile;
  for (size_t i = 0; i + 1 < hot.size(); ++i) {
    AffinityEdge edge;
    edge.src_cluster = hot[i].cluster;
    edge.src_local = hot[i].local;
    edge.dst_cluster = hot[i + 1].cluster;
    edge.dst_local = hot[i + 1].local;
    edge.count = weight;
    profile.edges.push_back(edge);
  }
  return profile;
}

std::map<uint64_t, PageId> PageOf(Database* db, const std::string& cls) {
  std::map<uint64_t, PageId> out;
  Result<std::vector<HeapFile::Placement>> placements =
      db->ClusterPlacements(cls);
  EXPECT_TRUE(placements.ok()) << placements.status().ToString();
  if (!placements.ok()) return out;
  for (const HeapFile::Placement& p : *placements) {
    out[p.local_id] = p.page;
  }
  return out;
}

// --- Advisor -----------------------------------------------------------

TEST(ClusterAdvisorTest, DirectEdgesGroupScatteredRecords) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/8, /*cold_per_hot=*/4);
  std::map<uint64_t, PageId> before = PageOf(lab.db.get(), "employee");
  // The scattering worked: the hot chain spans several pages.
  std::set<PageId> hot_pages;
  for (const Oid& oid : lab.hot) hot_pages.insert(before[oid.local]);
  ASSERT_GT(hot_pages.size(), 1u);

  Result<ClusterPlan> plan =
      BuildClusterPlan(lab.db.get(), ChainProfile(lab.hot, 10));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->clusters.size(), 1u);
  EXPECT_FALSE(plan->empty());
  // All eight small hot records fit one page, so the greedy pass merges
  // the whole chain into a single group.
  ASSERT_EQ(plan->clusters[0].groups.size(), 1u);
  EXPECT_EQ(plan->clusters[0].groups[0].members.size(), lab.hot.size());
  // The chain crosses pages now and would not under the plan.
  EXPECT_GT(plan->cross_page_before, 0u);
  EXPECT_LT(plan->cross_page_after, plan->cross_page_before);
  EXPECT_GT(plan->PredictedSavingRatio(), 0.0);
}

TEST(ClusterAdvisorTest, SharedHubInducesSiblingGroups) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/4, /*cold_per_hot=*/4);
  // No direct employee-employee edges: only employee->dept traversals,
  // all through one shared dept hub.
  AccessProfile profile;
  for (const Oid& oid : lab.hot) {
    AffinityEdge edge;
    edge.src_cluster = oid.cluster;
    edge.src_local = oid.local;
    edge.dst_cluster = lab.dept.cluster;
    edge.dst_local = lab.dept.local;
    edge.count = 5;
    profile.edges.push_back(edge);
  }
  Result<ClusterPlan> plan = BuildClusterPlan(lab.db.get(), profile);
  ASSERT_TRUE(plan.ok());
  // The siblings chain into one employee group even though no edge
  // connects them directly.
  ASSERT_EQ(plan->clusters.size(), 1u);
  EXPECT_EQ(plan->clusters[0].class_name, "employee");
  ASSERT_EQ(plan->clusters[0].groups.size(), 1u);
  EXPECT_EQ(plan->clusters[0].groups[0].members.size(), lab.hot.size());
}

TEST(ClusterAdvisorTest, GroupsRespectThePageByteBudget) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/2, /*cold_per_hot=*/0);
  // Two bulky employees that cannot share a page: no group forms.
  std::string huge(SlottedPage::kMaxRecordSize / 2 + 100, 'y');
  Oid a = *lab.db->CreateObject("employee", Employee("big_a", huge));
  Oid b = *lab.db->CreateObject("employee", Employee("big_b", huge));
  AccessProfile profile;
  AffinityEdge edge;
  edge.src_cluster = a.cluster;
  edge.src_local = a.local;
  edge.dst_cluster = b.cluster;
  edge.dst_local = b.local;
  edge.count = 100;
  profile.edges.push_back(edge);
  Result<ClusterPlan> plan = BuildClusterPlan(lab.db.get(), profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST(ClusterAdvisorTest, DeletedEndpointsDropOut) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/4, /*cold_per_hot=*/2);
  AccessProfile profile = ChainProfile(lab.hot, 10);
  // Delete every hot record after profiling: nothing left to plan.
  for (const Oid& oid : lab.hot) {
    ASSERT_TRUE(lab.db->DeleteObject(oid).ok());
  }
  Result<ClusterPlan> plan = BuildClusterPlan(lab.db.get(), profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST(ClusterAdvisorTest, PlanBuildsCounterTicks) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/2, /*cold_per_hot=*/1);
  obs::Counter* builds =
      obs::Registry::Global().counter("cluster.plan.builds");
  uint64_t before = builds->value();
  ASSERT_TRUE(BuildClusterPlan(lab.db.get(), AccessProfile{}).ok());
  EXPECT_EQ(builds->value(), before + 1);
}

// --- Relocation (heap layer) ------------------------------------------

TEST(ClusterRelocateTest, PayloadAndOidSurviveAMove) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/6, /*cold_per_hot=*/4);
  std::map<uint64_t, PageId> before = PageOf(lab.db.get(), "employee");
  // Build + apply a plan; every hot record keeps its OID and value.
  Result<ClusterPlan> plan =
      BuildClusterPlan(lab.db.get(), ChainProfile(lab.hot, 10));
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->empty());
  ASSERT_TRUE(lab.db->Recluster(*plan).ok());

  std::map<uint64_t, PageId> after = PageOf(lab.db.get(), "employee");
  std::set<PageId> group_pages;
  for (size_t i = 0; i < lab.hot.size(); ++i) {
    Result<ObjectBuffer> buffer = lab.db->GetObject(lab.hot[i]);
    ASSERT_TRUE(buffer.ok()) << "hot record " << i << " lost its OID";
    const Value* name = buffer->value.FindField("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->AsString(), "hot" + std::to_string(i));
    group_pages.insert(after[lab.hot[i].local]);
  }
  // The whole chain now shares one page (it fit one group), and moved
  // off its scattered placement.
  EXPECT_EQ(group_pages.size(), 1u);
  EXPECT_NE(before[lab.hot[0].local], after[lab.hot[0].local]);
}

TEST(ClusterRelocateTest, ReclusterIsIdempotentAndSkipsDeleted) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/6, /*cold_per_hot=*/3);
  Result<ClusterPlan> plan =
      BuildClusterPlan(lab.db.get(), ChainProfile(lab.hot, 10));
  ASSERT_TRUE(plan.ok());
  // One plan member dies between planning and application: skipped.
  ASSERT_TRUE(lab.db->DeleteObject(lab.hot.back()).ok());
  ASSERT_TRUE(lab.db->Recluster(*plan).ok());
  // Applying the same (now stale) plan again is safe.
  ASSERT_TRUE(lab.db->Recluster(*plan).ok());
  for (size_t i = 0; i + 1 < lab.hot.size(); ++i) {
    EXPECT_TRUE(lab.db->GetObject(lab.hot[i]).ok());
  }
  EXPECT_TRUE(lab.db->GetObject(lab.hot.back()).status().IsNotFound());
}

TEST(ClusterRelocateTest, ReclusterJournalsStartAndEnd) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/4, /*cold_per_hot=*/3);
  Result<ClusterPlan> plan =
      BuildClusterPlan(lab.db.get(), ChainProfile(lab.hot, 10));
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->empty());
  ASSERT_TRUE(lab.db->Recluster(*plan).ok());
  bool saw_start = false, saw_end = false;
  for (const obs::JournalRecord& record : obs::Journal::Global().Snapshot()) {
    if (record.type == obs::JournalEvent::kReclusterStart) saw_start = true;
    if (record.type == obs::JournalEvent::kReclusterEnd) {
      saw_end = true;
      EXPECT_EQ(record.arg1, 0);  // clean completion
      EXPECT_GT(record.arg0, 0);  // moves applied
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_end);
}

// --- Recluster actually pays (page-fetch cost drops) -------------------

TEST(ClusterReorgTest, ChaseMissesDropAfterRecluster) {
  // Pool smaller than the scattered hot working set: every chase pass
  // faults. After reclustering the chain fits a page or two.
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/24, /*cold_per_hot=*/4,
                                    /*pool_pages=*/8);
  auto chase = [&]() -> uint64_t {
    BufferPool::Stats before = lab.db->buffer_pool()->stats();
    for (int pass = 0; pass < 4; ++pass) {
      for (const Oid& oid : lab.hot) {
        EXPECT_TRUE(lab.db->GetObject(oid).ok()) << "chase read failed";
      }
    }
    return lab.db->buffer_pool()->stats().misses - before.misses;
  };
  uint64_t scattered_misses = 0;
  { SCOPED_TRACE("scattered"); scattered_misses = chase(); }
  Result<ClusterPlan> plan =
      BuildClusterPlan(lab.db.get(), ChainProfile(lab.hot, 10));
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->empty());
  ASSERT_TRUE(lab.db->Recluster(*plan).ok());
  uint64_t clustered_misses = 0;
  { SCOPED_TRACE("clustered"); clustered_misses = chase(); }
  ASSERT_GT(scattered_misses, 0u);
  // The acceptance bar: at least 2x fewer page fetch misses.
  EXPECT_LE(clustered_misses * 2, scattered_misses)
      << "scattered=" << scattered_misses
      << " clustered=" << clustered_misses;
}

// --- Prefetch source ---------------------------------------------------

TEST(AffinityPrefetchSourceTest, TopNeighborsAreStrongestFirst) {
  std::unordered_map<PageId, std::vector<PageId>> neighbors;
  neighbors[7] = {9, 11, 13};
  cluster::AffinityPrefetchSource source(std::move(neighbors));
  PageId out[4] = {kNoPage, kNoPage, kNoPage, kNoPage};
  EXPECT_EQ(source.TopNeighbors(7, out, 4), 3u);
  EXPECT_EQ(out[0], 9u);
  EXPECT_EQ(out[1], 11u);
  EXPECT_EQ(out[2], 13u);
  EXPECT_EQ(source.TopNeighbors(8, out, 4), 0u);
  // A tighter max truncates.
  EXPECT_EQ(source.TopNeighbors(7, out, 2), 2u);
}

TEST(AffinityPrefetchSourceTest, BuilderProjectsEdgesOntoPages) {
  ScatteredDb lab = MakeScatteredDb(/*hot_count=*/8, /*cold_per_hot=*/4);
  Result<std::shared_ptr<cluster::AffinityPrefetchSource>> source =
      BuildAffinityPrefetchSource(lab.db.get(), ChainProfile(lab.hot, 10));
  ASSERT_TRUE(source.ok());
  // The hot chain crosses pages, so at least one page got neighbors.
  EXPECT_GT((*source)->page_count(), 0u);
  std::map<uint64_t, PageId> pages = PageOf(lab.db.get(), "employee");
  PageId out[4];
  size_t n = (*source)->TopNeighbors(pages[lab.hot[0].local], out, 4);
  ASSERT_GT(n, 0u);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(out[i], pages[lab.hot[0].local]) << "self-edge leaked";
  }
}

// --- Pool read-ahead policy gates --------------------------------------

TEST(ReadAheadPolicyTest, PointLookupsScheduleNothing) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageId a = *pager.Allocate();
  PageId b = *pager.Allocate();
  (void)a;
  ASSERT_EQ(pool.read_ahead_policy(), ReadAheadPolicy::kSequential);
  pool.ReadAhead(b, /*point_lookup=*/true);
  pool.WaitForPrefetches();
  EXPECT_FALSE(pool.Cached(b));
  // A sequential hint does warm the page.
  pool.ReadAhead(b, /*point_lookup=*/false);
  pool.WaitForPrefetches();
  EXPECT_TRUE(pool.Cached(b));
}

TEST(ReadAheadPolicyTest, OffPolicySchedulesNothing) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  pool.SetReadAheadPolicy(ReadAheadPolicy::kOff);
  PageId b = *pager.Allocate();
  pool.ReadAhead(b, /*point_lookup=*/false);
  pool.WaitForPrefetches();
  EXPECT_FALSE(pool.Cached(b));
}

namespace {
/// A canned neighbor table for pool-level tests.
class FixedSource : public PrefetchSource {
 public:
  explicit FixedSource(std::map<PageId, std::vector<PageId>> table)
      : table_(std::move(table)) {}
  size_t TopNeighbors(PageId page, PageId* out,
                      size_t max) const override {
    auto it = table_.find(page);
    if (it == table_.end()) return 0;
    size_t n = std::min(max, it->second.size());
    for (size_t i = 0; i < n; ++i) out[i] = it->second[i];
    return n;
  }

 private:
  const std::map<PageId, std::vector<PageId>> table_;
};
}  // namespace

TEST(ReadAheadPolicyTest, AffinityMissFansOutToNeighbors) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageId p = *pager.Allocate();
  PageId n1 = *pager.Allocate();
  PageId n2 = *pager.Allocate();
  pool.SetReadAheadPolicy(ReadAheadPolicy::kAffinity);
  pool.SetPrefetchSource(std::make_shared<FixedSource>(
      std::map<PageId, std::vector<PageId>>{{p, {n1, n2}}}));
  uint64_t issued_before = pool.stats().cluster_prefetches;
  { ASSERT_TRUE(pool.Fetch(p).ok()); }  // miss -> affinity trigger
  pool.WaitForPrefetches();
  EXPECT_TRUE(pool.Cached(n1));
  EXPECT_TRUE(pool.Cached(n2));
  EXPECT_EQ(pool.stats().cluster_prefetches, issued_before + 2);
  // A hit on the now-cached page does not re-trigger.
  uint64_t issued_after = pool.stats().cluster_prefetches;
  { ASSERT_TRUE(pool.Fetch(p).ok()); }
  pool.WaitForPrefetches();
  EXPECT_EQ(pool.stats().cluster_prefetches, issued_after);
}

TEST(ReadAheadPolicyTest, SequentialPolicyIgnoresTheSource) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageId p = *pager.Allocate();
  PageId n1 = *pager.Allocate();
  pool.SetPrefetchSource(std::make_shared<FixedSource>(
      std::map<PageId, std::vector<PageId>>{{p, {n1}}}));
  ASSERT_EQ(pool.read_ahead_policy(), ReadAheadPolicy::kSequential);
  { ASSERT_TRUE(pool.Fetch(p).ok()); }
  pool.WaitForPrefetches();
  EXPECT_FALSE(pool.Cached(n1));
  EXPECT_EQ(pool.stats().cluster_prefetches, 0u);
}

}  // namespace
}  // namespace ode::odb
