#include "common/trace.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/threading.h"

namespace ode::obs {

std::atomic<bool> Tracing::enabled_{false};

namespace {

/// Events retained per thread before the ring wraps (oldest dropped).
constexpr size_t kRingCapacity = 8192;

/// One thread's span storage. The owning thread appends; an exporting
/// thread reads — both under `mu`, which the owner almost always takes
/// uncontended.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  size_t next = 0;      ///< ring slot for the next event
  bool wrapped = false; ///< ring holds kRingCapacity events
  uint64_t dropped = 0;
};

struct BufferDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferDirectory& Directory() {
  // Leaked: exiting threads' buffers stay exportable at shutdown.
  static BufferDirectory* directory = new BufferDirectory();
  return *directory;
}

ThreadBuffer& LocalBuffer() {
  // The shared_ptr keeps the buffer alive in the directory after the
  // thread exits, so late exports still see its spans.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferDirectory& directory = Directory();
    std::lock_guard<std::mutex> lock(directory.mu);
    directory.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

thread_local uint32_t tls_span_depth = 0;

std::vector<std::shared_ptr<ThreadBuffer>> AllBuffers() {
  BufferDirectory& directory = Directory();
  std::lock_guard<std::mutex> lock(directory.mu);
  return directory.buffers;
}

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t Tracing::NowNanos() {
  auto elapsed = std::chrono::steady_clock::now() - ProcessEpoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

void Tracing::Record(const char* name, uint64_t start_ns,
                     uint64_t duration_ns, uint32_t depth) {
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.thread_id = CurrentThreadId();
  event.depth = depth;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.ring.size() < kRingCapacity) {
    buffer.ring.push_back(event);
    buffer.next = buffer.ring.size() % kRingCapacity;
  } else {
    buffer.ring[buffer.next] = event;
    buffer.next = (buffer.next + 1) % kRingCapacity;
    buffer.wrapped = true;
    ++buffer.dropped;
  }
}

size_t Tracing::CapturedCount() {
  size_t total = 0;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->ring.size();
  }
  return total;
}

uint64_t Tracing::DroppedCount() {
  uint64_t total = 0;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void Tracing::Clear() {
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->wrapped = false;
    buffer->dropped = 0;
  }
}

std::string Tracing::ExportChromeJson() {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const TraceEvent& event : buffer->ring) {
      if (!first) os << ",";
      first = false;
      // Timestamps are microseconds (the trace_event unit); keep
      // nanosecond precision with three decimals.
      char ts[32], dur[32];
      std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                    static_cast<unsigned long long>(event.start_ns / 1000),
                    static_cast<unsigned long long>(event.start_ns % 1000));
      std::snprintf(dur, sizeof(dur), "%llu.%03llu",
                    static_cast<unsigned long long>(event.duration_ns / 1000),
                    static_cast<unsigned long long>(event.duration_ns % 1000));
      os << "{\"name\":\"" << event.name << "\",\"cat\":\"ode\""
         << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << event.thread_id
         << ",\"ts\":" << ts << ",\"dur\":" << dur
         << ",\"args\":{\"depth\":" << event.depth << "}}";
    }
  }
  os << "]}";
  return os.str();
}

TraceSpan::TraceSpan(const char* name) {
  if (!Tracing::enabled()) return;
  name_ = name;
  start_ns_ = Tracing::NowNanos();
  depth_ = tls_span_depth++;
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  --tls_span_depth;
  Tracing::Record(name_, start_ns_, Tracing::NowNanos() - start_ns_, depth_);
}

}  // namespace ode::obs
