#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace ode::obs {

namespace {

/// Where rejected registrations land (see Registry::ResolveName).
constexpr std::string_view kQuarantineName = "obs.invalid_metric";
constexpr std::string_view kRejectionCounter = "obs.invalid_metric_names";

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map
/// dots (and anything else) to underscores.
std::string SanitizeForPrometheus(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

/// Prometheus HELP text escaping: backslash and newline only (the
/// text exposition format's rules for help lines).
std::string EscapePrometheusHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapePrometheusLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// JSON string escaping for metric names (which may carry class names).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int BucketIndex(uint64_t value) {
  int width = std::bit_width(value);  // 0 for value == 0
  return std::min(width, Histogram::kBuckets - 1);
}

uint64_t NowSteadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Quantile from a plain bucket-count array (same bucket geometry as
/// `Histogram`); `max` stands in for the unbounded top bucket.
uint64_t QuantileFromBuckets(const uint64_t* buckets, uint64_t count,
                             uint64_t max, double q) {
  if (count == 0) return 0;
  auto rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) {
      if (i >= Histogram::kBuckets - 1) return max;
      return Histogram::BucketUpperBound(i);
    }
  }
  return max;
}

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  char first = name.front();
  bool first_ok = (first >= 'a' && first <= 'z') ||
                  (first >= 'A' && first <= 'Z') || first == '_';
  if (!first_ok) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '.';
    if (!ok) return false;
  }
  return true;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= kBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    uint64_t n = other.bucket(i);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  uint64_t value = other.max();
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::ApproxQuantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  auto rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      // The top bucket is unbounded; report the observed max instead.
      if (i >= kBuckets - 1) return max();
      return BucketUpperBound(i);
    }
  }
  return max();
}

Registry& Registry::Global() {
  // Leaked singleton: instrument pointers stay valid through static
  // destruction (background threads may log metrics late in shutdown).
  static Registry* registry = new Registry();
  return *registry;
}

std::string_view Registry::ResolveName(std::string_view name) {
  if (IsValidMetricName(name)) return name;
  ODE_LOG(Warning) << "rejected metric name '" << std::string(name)
                   << "' (allowed: [a-zA-Z0-9_:.], leading letter or '_')";
  CounterLocked(kRejectionCounter)->Increment();
  return kQuarantineName;
}

Counter* Registry::CounterLocked(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Counter* Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  return CounterLocked(ResolveName(name));
}

Gauge* Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  name = ResolveName(name);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  name = ResolveName(name);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::shared_ptr<Counter> Registry::NewOwnedCounter(std::string_view name) {
  // The deleter retires the final value so exports keep the history of
  // owners that have since been destroyed (e.g. benchmark-scoped pools).
  MutexLock lock(mu_);
  name = ResolveName(name);
  std::shared_ptr<Counter> instrument(
      new Counter(), [this, key = std::string(name)](Counter* c) {
        RetireCounter(key, c->value());
        delete c;
      });
  owned_counters_.emplace_back(std::string(name), instrument);
  return instrument;
}

std::shared_ptr<Histogram> Registry::NewOwnedHistogram(
    std::string_view name) {
  MutexLock lock(mu_);
  name = ResolveName(name);
  std::shared_ptr<Histogram> instrument(
      new Histogram(), [this, key = std::string(name)](Histogram* h) {
        RetireHistogram(key, *h);
        delete h;
      });
  owned_histograms_.emplace_back(std::string(name), instrument);
  return instrument;
}

void Registry::SetHelp(std::string_view name, std::string_view help) {
  MutexLock lock(mu_);
  help_[std::string(ResolveName(name))] = std::string(help);
}

void Registry::RetireCounter(const std::string& name, uint64_t value) {
  MutexLock lock(mu_);
  retired_counters_[name] += value;
  // Prune expired registrations while we are here so churning owners
  // (one pool per benchmark iteration) cannot grow the list unboundedly.
  std::erase_if(owned_counters_,
                [](const auto& entry) { return entry.second.expired(); });
}

void Registry::RetireHistogram(const std::string& name,
                               const Histogram& histogram) {
  MutexLock lock(mu_);
  auto it = retired_histograms_.find(name);
  if (it == retired_histograms_.end()) {
    it = retired_histograms_
             .emplace(name, std::make_unique<Histogram>())
             .first;
  }
  it->second->MergeFrom(histogram);
  std::erase_if(owned_histograms_,
                [](const auto& entry) { return entry.second.expired(); });
}

std::vector<MetricSample> Registry::Snapshot() const {
  // Aggregation maps keyed by name; owned instances fold into the
  // shared instrument's entry.
  std::map<std::string, uint64_t> counter_totals;
  std::map<std::string, int64_t> gauge_values;
  struct HistAgg {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t buckets[Histogram::kBuckets] = {};
  };
  std::map<std::string, HistAgg> hist_totals;

  auto fold = [&hist_totals](const std::string& name, const Histogram& h) {
    HistAgg& agg = hist_totals[name];
    agg.count += h.count();
    agg.sum += h.sum();
    agg.max = std::max(agg.max, h.max());
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      agg.buckets[i] += h.bucket(i);
    }
  };

  // Owned instruments pinned outside the lock scope: if an owner drops
  // its reference concurrently, the deleter (which retires into this
  // registry under mu_) must not run while we hold mu_.
  std::vector<std::pair<std::string, std::shared_ptr<Counter>>> live_counters;
  std::vector<std::pair<std::string, std::shared_ptr<Histogram>>>
      live_histograms;
  {
    MutexLock lock(mu_);
    for (const auto& [name, c] : counters_) counter_totals[name] += c->value();
    for (const auto& [name, value] : retired_counters_) {
      counter_totals[name] += value;
    }
    for (const auto& [name, weak] : owned_counters_) {
      if (auto c = weak.lock()) live_counters.emplace_back(name, std::move(c));
    }
    for (const auto& [name, g] : gauges_) gauge_values[name] = g->value();
    for (const auto& [name, h] : histograms_) fold(name, *h);
    for (const auto& [name, h] : retired_histograms_) fold(name, *h);
    for (const auto& [name, weak] : owned_histograms_) {
      if (auto h = weak.lock()) {
        live_histograms.emplace_back(name, std::move(h));
      }
    }
  }
  for (const auto& [name, c] : live_counters) counter_totals[name] += c->value();
  for (const auto& [name, h] : live_histograms) fold(name, *h);

  // Window rotation, lazily on snapshot: the aggregate above is the
  // lifetime total, so a window is just the delta of bucket counts
  // since the window opened. mu_ is re-acquired (briefly) because the
  // window baselines are registry state.
  struct WindowView {
    uint64_t count = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  std::map<std::string, WindowView> window_views;
  {
    const uint64_t duration = window_duration_ns();
    const uint64_t now = NowSteadyNs();
    MutexLock lock(mu_);
    for (const auto& [name, agg] : hist_totals) {
      HistWindow& w = windows_[name];
      if (agg.count < w.baseline_count) {
        // Totals shrank (a test reset retired history): restart clean.
        w = HistWindow{};
      }
      uint64_t delta[Histogram::kBuckets];
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        delta[i] = agg.buckets[i] - w.baseline[i];
      }
      uint64_t delta_count = agg.count - w.baseline_count;
      const bool rotate = w.opened_at_ns == 0 || duration == 0 ||
                          now - w.opened_at_ns >= duration;
      if (rotate) {
        std::copy(delta, delta + Histogram::kBuckets, w.completed);
        w.completed_count = delta_count;
        std::copy(agg.buckets, agg.buckets + Histogram::kBuckets,
                  w.baseline);
        w.baseline_count = agg.count;
        w.opened_at_ns = now;
      }
      // Prefer the last completed window; while it is empty (fresh
      // start or a quiet minute) fall back to the in-progress delta so
      // the export never goes dark mid-burst.
      const uint64_t* src = w.completed;
      uint64_t src_count = w.completed_count;
      if (src_count == 0) {
        src = delta;
        src_count = delta_count;
      }
      WindowView view;
      view.count = src_count;
      view.p50 = QuantileFromBuckets(src, src_count, agg.max, 0.50);
      view.p95 = QuantileFromBuckets(src, src_count, agg.max, 0.95);
      view.p99 = QuantileFromBuckets(src, src_count, agg.max, 0.99);
      window_views[name] = view;
    }
  }

  auto quantile_of = [](const HistAgg& agg, double q) -> uint64_t {
    return QuantileFromBuckets(agg.buckets, agg.count, agg.max, q);
  };

  std::vector<MetricSample> out;
  out.reserve(counter_totals.size() + gauge_values.size() +
              hist_totals.size());
  for (const auto& [name, value] : counter_totals) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.value = static_cast<int64_t>(value);
    out.push_back(std::move(s));
  }
  for (const auto& [name, value] : gauge_values) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.value = value;
    out.push_back(std::move(s));
  }
  for (const auto& [name, agg] : hist_totals) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.count = agg.count;
    s.sum = agg.sum;
    s.max = agg.max;
    s.p50 = quantile_of(agg, 0.50);
    s.p95 = quantile_of(agg, 0.95);
    s.p99 = quantile_of(agg, 0.99);
    s.buckets.assign(agg.buckets, agg.buckets + Histogram::kBuckets);
    if (auto it = window_views.find(name); it != window_views.end()) {
      s.window_count = it->second.count;
      s.window_p50 = it->second.p50;
      s.window_p95 = it->second.p95;
      s.window_p99 = it->second.p99;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::RenderPrometheus() const {
  std::map<std::string, std::string, std::less<>> help;
  {
    MutexLock lock(mu_);
    help = help_;
  }
  std::ostringstream os;
  for (const MetricSample& s : Snapshot()) {
    std::string name = SanitizeForPrometheus(s.name);
    if (auto it = help.find(s.name); it != help.end()) {
      os << "# HELP " << name << " " << EscapePrometheusHelp(it->second)
         << "\n";
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << s.value << "\n";
        break;
      case MetricSample::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << s.value << "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (s.buckets[i] == 0 && i != Histogram::kBuckets - 1) continue;
          cumulative += s.buckets[i];
          if (i == Histogram::kBuckets - 1) {
            os << name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
          } else {
            os << name << "_bucket{le=\""
               << EscapePrometheusLabel(
                      std::to_string(Histogram::BucketUpperBound(i)))
               << "\"} " << cumulative << "\n";
          }
        }
        os << name << "_sum " << s.sum << "\n"
           << name << "_count " << s.count << "\n";
        // Rotating-window quantiles export as gauges (a quantile is
        // not a cumulative series).
        os << "# TYPE " << name << "_window_p50 gauge\n"
           << name << "_window_p50 " << s.window_p50 << "\n"
           << "# TYPE " << name << "_window_p95 gauge\n"
           << name << "_window_p95 " << s.window_p95 << "\n"
           << "# TYPE " << name << "_window_p99 gauge\n"
           << name << "_window_p99 " << s.window_p99 << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string Registry::RenderJson() const {
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const MetricSample& s : Snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        if (!first_c) counters << ",";
        first_c = false;
        counters << "\"" << JsonEscape(s.name) << "\":" << s.value;
        break;
      case MetricSample::Kind::kGauge:
        if (!first_g) gauges << ",";
        first_g = false;
        gauges << "\"" << JsonEscape(s.name) << "\":" << s.value;
        break;
      case MetricSample::Kind::kHistogram: {
        if (!first_h) histograms << ",";
        first_h = false;
        histograms << "\"" << JsonEscape(s.name) << "\":{"
                   << "\"count\":" << s.count << ",\"sum\":" << s.sum
                   << ",\"max\":" << s.max << ",\"p50\":" << s.p50
                   << ",\"p95\":" << s.p95 << ",\"p99\":" << s.p99
                   << ",\"window\":{\"count\":" << s.window_count
                   << ",\"p50\":" << s.window_p50
                   << ",\"p95\":" << s.window_p95
                   << ",\"p99\":" << s.window_p99 << "}";
        // Bucket boundaries ride along so consumers can re-derive any
        // quantile; zero buckets are omitted, the top one is "inf".
        histograms << ",\"buckets\":[";
        bool first_b = true;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (s.buckets[i] == 0) continue;
          if (!first_b) histograms << ",";
          first_b = false;
          if (i == Histogram::kBuckets - 1) {
            histograms << "{\"le\":\"inf\",\"count\":" << s.buckets[i]
                       << "}";
          } else {
            histograms << "{\"le\":" << Histogram::BucketUpperBound(i)
                       << ",\"count\":" << s.buckets[i] << "}";
          }
        }
        histograms << "]}";
        break;
      }
    }
  }
  std::ostringstream os;
  os << "{\"counters\":{" << counters.str() << "},\"gauges\":{"
     << gauges.str() << "},\"histograms\":{" << histograms.str() << "}}";
  return os.str();
}

std::string Registry::RenderText() const {
  std::vector<MetricSample> samples = Snapshot();
  std::ostringstream os;
  // One section per kind (samples are name-sorted within each).
  auto section = [&](MetricSample::Kind kind, const char* header) {
    bool first = true;
    for (const MetricSample& s : samples) {
      if (s.kind != kind) continue;
      if (first) {
        os << header;
        first = false;
      }
      if (kind == MetricSample::Kind::kHistogram) {
        os << "  " << s.name << ": n=" << s.count << " p50=" << s.p50
           << " p95=" << s.p95 << " p99=" << s.p99 << " max=" << s.max;
        if (s.count > 0) os << " mean=" << s.sum / s.count;
        os << "\n";
      } else {
        os << "  " << s.name << " = " << s.value << "\n";
      }
    }
  };
  section(MetricSample::Kind::kCounter, "-- counters --\n");
  section(MetricSample::Kind::kGauge, "-- gauges --\n");
  section(MetricSample::Kind::kHistogram, "-- histograms (ns) --\n");
  return os.str();
}

void Registry::ResetForTest() {
  MutexLock lock(mu_);
  // Recreate rather than zero: instrument pointers cached at call sites
  // must stay valid, so zero in place.
  for (auto& [name, c] : counters_) {
    (void)name;
    c->Add(0 - c->value());
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->Set(0);
  }
  // Histograms cannot be zeroed in place race-free; replacing them
  // would invalidate cached pointers. Tests that need a clean slate use
  // fresh metric names or delta assertions instead; shared histograms
  // keep their samples.
  owned_counters_.clear();
  owned_histograms_.clear();
  retired_counters_.clear();
  retired_histograms_.clear();
  windows_.clear();
}

}  // namespace ode::obs
