file(REMOVE_RECURSE
  "CMakeFiles/odeview_shell.dir/odeview_shell.cpp.o"
  "CMakeFiles/odeview_shell.dir/odeview_shell.cpp.o.d"
  "odeview_shell"
  "odeview_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odeview_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
