# Empty compiler generated dependencies file for ode_dag.
# This may be replaced when dependencies are built.
