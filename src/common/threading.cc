#include "common/threading.h"

#include <utility>

namespace ode {

void BackgroundWorker::Submit(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return;
  queue_.push_back(std::move(task));
  if (!started_) {
    started_ = true;
    thread_ = std::thread(&BackgroundWorker::Loop, this);
  }
  work_cv_.notify_one();
}

void BackgroundWorker::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return (queue_.empty() && !busy_) || stopping_; });
}

void BackgroundWorker::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    queue_.clear();
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

size_t BackgroundWorker::pending() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

void BackgroundWorker::Loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace ode
