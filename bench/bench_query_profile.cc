// Profiling-overhead matrix for the query-profiling layer.
//
// Each workload runs in two (or three) flavors:
//   *_ProfilingOff — no profile attached: the per-charge-site cost is
//     one thread-local pointer test. CI gates this flavor against
//     BENCH_BASELINE.json at 5% tolerance — the "near-zero cost when
//     disabled" contract.
//   *_ProfilingOn — an OpProfile attached for the duration: every
//     charge site pays its relaxed atomic adds.
//   *_SessionProfiled — the full ProfiledOp path a real session op
//     takes (fresh profile, session totals merge, slow-op threshold
//     check). CI gates the on/off ratio instead of absolute time, so
//     the check is machine-independent (compare_bench.py --ratio).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/op_profile.h"
#include "odb/exec/executor.h"
#include "odb/exec/explain.h"
#include "odb/predicate.h"

namespace ode::bench {
namespace {

odb::LabDbConfig BenchConfig() {
  odb::LabDbConfig config;
  config.employees = 400;
  return config;
}

odb::Predicate AgePredicate() {
  return ValueOrDie(odb::ParsePredicate("age > 40"), "parse predicate");
}

void BM_SelectProfilingOff(benchmark::State& state) {
  LabSession session = LabSession::Create(BenchConfig());
  odb::Predicate predicate = AgePredicate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(session.db->Select("employee", predicate), "select"));
  }
}
BENCHMARK(BM_SelectProfilingOff);

void BM_SelectProfilingOn(benchmark::State& state) {
  LabSession session = LabSession::Create(BenchConfig());
  odb::Predicate predicate = AgePredicate();
  obs::OpProfile profile;
  obs::OpProfileScope scope(&profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(session.db->Select("employee", predicate), "select"));
  }
  state.counters["rows_scanned"] =
      static_cast<double>(profile.Snapshot().rows_scanned);
}
BENCHMARK(BM_SelectProfilingOn);

void BM_SelectSessionProfiled(benchmark::State& state) {
  LabSession session = LabSession::Create(BenchConfig());
  odb::Predicate predicate = AgePredicate();
  odb::Session db_session = session.db->OpenSession();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(db_session.Select("employee", predicate), "select"));
  }
}
BENCHMARK(BM_SelectSessionProfiled);

void BM_GetObjectProfilingOff(benchmark::State& state) {
  LabSession session = LabSession::Create(BenchConfig());
  odb::Oid first =
      ValueOrDie(session.db->FirstObject("employee"), "first");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(session.db->GetObject(first), "get"));
  }
}
BENCHMARK(BM_GetObjectProfilingOff);

void BM_GetObjectProfilingOn(benchmark::State& state) {
  LabSession session = LabSession::Create(BenchConfig());
  odb::Oid first =
      ValueOrDie(session.db->FirstObject("employee"), "first");
  obs::OpProfile profile;
  obs::OpProfileScope scope(&profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(session.db->GetObject(first), "get"));
  }
}
BENCHMARK(BM_GetObjectProfilingOn);

void BM_ParallelScanProfilingOff(benchmark::State& state) {
  LabSession session = LabSession::Create(BenchConfig());
  odb::Predicate predicate = AgePredicate();
  odb::exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &predicate;
  spec.parallelism = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie(
        odb::exec::ExecuteScan(session.db.get(), spec), "scan"));
  }
}
BENCHMARK(BM_ParallelScanProfilingOff);

void BM_ParallelScanProfilingOn(benchmark::State& state) {
  LabSession session = LabSession::Create(BenchConfig());
  odb::Predicate predicate = AgePredicate();
  odb::exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &predicate;
  spec.parallelism = 4;
  obs::OpProfile profile;
  obs::OpProfileScope scope(&profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie(
        odb::exec::ExecuteScan(session.db.get(), spec), "scan"));
  }
}
BENCHMARK(BM_ParallelScanProfilingOn);

// EXPLAIN ANALYZE's own cost relative to just running the query: the
// plan rendering plus the nested profile should stay a thin wrapper.
void BM_ExplainAnalyzeSelect(benchmark::State& state) {
  LabSession session = LabSession::Create(BenchConfig());
  odb::Predicate predicate = AgePredicate();
  for (auto _ : state) {
    auto explained =
        session.db->ExplainSelect("employee", predicate, /*analyze=*/true);
    CheckOk(explained.status(), "explain analyze");
    benchmark::DoNotOptimize(explained->totals.rows_scanned);
  }
}
BENCHMARK(BM_ExplainAnalyzeSelect);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
