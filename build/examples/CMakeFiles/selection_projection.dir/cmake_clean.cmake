file(REMOVE_RECURSE
  "CMakeFiles/selection_projection.dir/selection_projection.cpp.o"
  "CMakeFiles/selection_projection.dir/selection_projection.cpp.o.d"
  "selection_projection"
  "selection_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
