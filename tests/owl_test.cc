#include <gtest/gtest.h>

#include "owl/bitmap.h"
#include "owl/framebuffer.h"
#include "owl/server.h"
#include "owl/widgets.h"
#include "owl/window.h"

namespace ode::owl {
namespace {

// --- Geometry -------------------------------------------------------------

TEST(GeometryTest, RectContains) {
  Rect r{2, 3, 4, 5};
  EXPECT_TRUE(r.Contains(Point{2, 3}));
  EXPECT_TRUE(r.Contains(Point{5, 7}));
  EXPECT_FALSE(r.Contains(Point{6, 3}));
  EXPECT_FALSE(r.Contains(Point{2, 8}));
  EXPECT_FALSE(r.Contains(Point{1, 3}));
}

TEST(GeometryTest, RectIntersection) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 10, 10};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Intersection(b), (Rect{5, 5, 5, 5}));
  Rect c{20, 20, 2, 2};
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersection(c).Empty());
}

TEST(GeometryTest, RectTranslateAndToString) {
  Rect r{1, 2, 3, 4};
  EXPECT_EQ(r.Translated(Point{10, 20}), (Rect{11, 22, 3, 4}));
  EXPECT_EQ(r.ToString(), "3x4+1+2");
}

// --- Bitmap -----------------------------------------------------------------

TEST(BitmapTest, PbmRoundTrip) {
  Bitmap bitmap(3, 2);
  bitmap.Set(0, 0, true);
  bitmap.Set(2, 1, true);
  Result<Bitmap> parsed = Bitmap::FromPbm(bitmap.ToPbm());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, bitmap);
}

TEST(BitmapTest, PbmPackedAndComments) {
  Result<Bitmap> bitmap = Bitmap::FromPbm("P1 # comment\n2 2\n1001");
  ASSERT_TRUE(bitmap.ok()) << bitmap.status().ToString();
  EXPECT_TRUE(bitmap->Get(0, 0));
  EXPECT_FALSE(bitmap->Get(1, 0));
  EXPECT_TRUE(bitmap->Get(1, 1));
}

TEST(BitmapTest, PbmErrors) {
  EXPECT_FALSE(Bitmap::FromPbm("P2 2 2 0 0 0 0").ok());
  EXPECT_FALSE(Bitmap::FromPbm("P1 2 2 0 0 0").ok());   // too few
  EXPECT_FALSE(Bitmap::FromPbm("P1 2 2 0 0 0 2").ok()); // bad digit
  EXPECT_FALSE(Bitmap::FromPbm("P1 0 5 ").ok());        // zero dim
  EXPECT_FALSE(Bitmap::FromPbm("").ok());
}

TEST(BitmapTest, OutOfBoundsSafe) {
  Bitmap bitmap(2, 2);
  EXPECT_FALSE(bitmap.Get(-1, 0));
  EXPECT_FALSE(bitmap.Get(0, 5));
  bitmap.Set(100, 100, true);  // ignored, no crash
  EXPECT_EQ(bitmap.PopCount(), 0);
}

TEST(BitmapTest, NearestScalingPreservesSolid) {
  Bitmap solid(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) solid.Set(x, y, true);
  }
  Bitmap scaled = solid.ScaledNearest(3, 5);
  EXPECT_EQ(scaled.PopCount(), 15);
  Bitmap up = solid.ScaledNearest(16, 16);
  EXPECT_EQ(up.PopCount(), 256);
}

TEST(BitmapTest, BoxScalingMajorityThreshold) {
  // Left half set, right half clear; downscale to 2x1.
  Bitmap half(8, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) half.Set(x, y, true);
  }
  Bitmap scaled = half.ScaledBox(2, 1);
  EXPECT_TRUE(scaled.Get(0, 0));
  EXPECT_FALSE(scaled.Get(1, 0));
}

TEST(BitmapTest, BoxScalingSmoothsCheckerboard) {
  Bitmap checker(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) checker.Set(x, y, (x + y) % 2 == 0);
  }
  // A 50% checkerboard downsampled by box filter stays all-on (ties
  // round up), while nearest sampling keeps the pattern.
  Bitmap box = checker.ScaledBox(4, 4);
  EXPECT_EQ(box.PopCount(), 16);
  Bitmap nearest = checker.ScaledNearest(4, 4);
  EXPECT_EQ(nearest.PopCount(), 16);  // samples only even cells
}

TEST(BitmapTest, InvertFlipsEverything) {
  Bitmap bitmap(4, 4);
  bitmap.Set(1, 1, true);
  bitmap.Invert();
  EXPECT_EQ(bitmap.PopCount(), 15);
  EXPECT_FALSE(bitmap.Get(1, 1));
}

TEST(BitmapTest, ToAsciiRows) {
  Bitmap bitmap(2, 2);
  bitmap.Set(0, 0, true);
  std::vector<std::string> rows = bitmap.ToAscii('#', '.');
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "#.");
  EXPECT_EQ(rows[1], "..");
}

// --- Framebuffer ---------------------------------------------------------------

TEST(FramebufferTest, PutAtAndClipping) {
  Framebuffer fb(4, 3);
  fb.Put(0, 0, 'a');
  fb.Put(3, 2, 'z');
  fb.Put(-1, 0, 'x');
  fb.Put(4, 0, 'x');
  fb.Put(0, 3, 'x');
  EXPECT_EQ(fb.At(0, 0), 'a');
  EXPECT_EQ(fb.At(3, 2), 'z');
  EXPECT_EQ(fb.At(-1, -1), ' ');
}

TEST(FramebufferTest, DrawTextClipsAtEdge) {
  Framebuffer fb(5, 1);
  fb.DrawText(2, 0, "hello");
  EXPECT_EQ(fb.Row(0), "  hel");
}

TEST(FramebufferTest, BoxDrawing) {
  Framebuffer fb(5, 4);
  fb.DrawBox(Rect{0, 0, 5, 4});
  EXPECT_EQ(fb.Row(0), "+---+");
  EXPECT_EQ(fb.Row(1), "|   |");
  EXPECT_EQ(fb.Row(3), "+---+");
}

TEST(FramebufferTest, FillAndBitmap) {
  Framebuffer fb(6, 3);
  fb.FillRect(Rect{1, 1, 2, 2}, '#');
  EXPECT_EQ(fb.At(1, 1), '#');
  EXPECT_EQ(fb.At(2, 2), '#');
  EXPECT_EQ(fb.At(3, 1), ' ');
  Bitmap bitmap(2, 1);
  bitmap.Set(0, 0, true);
  fb.DrawBitmap(4, 0, bitmap, '@', '.');
  EXPECT_EQ(fb.At(4, 0), '@');
  EXPECT_EQ(fb.At(5, 0), '.');
}

TEST(FramebufferTest, ToStringIsRectangular) {
  Framebuffer fb(3, 2);
  EXPECT_EQ(fb.ToString(), "   \n   \n");
}

// --- Widgets -----------------------------------------------------------------------

TEST(WidgetTest, TreeFindAndAbsoluteOrigin) {
  Widget root("root");
  root.set_rect(Rect{0, 0, 40, 20});
  auto* panel = root.AddChild(std::make_unique<Panel>("panel"));
  panel->set_rect(Rect{5, 3, 20, 10});
  auto* button = panel->AddChild(
      std::make_unique<Button>("ok", "OK"));
  button->set_rect(Rect{2, 1, 6, 1});
  EXPECT_EQ(root.FindWidget("ok"), button);
  EXPECT_EQ(root.FindWidget("ghost"), nullptr);
  EXPECT_EQ(button->AbsoluteOrigin(), (Point{7, 4}));
}

TEST(WidgetTest, RemoveChildRecursive) {
  Widget root("root");
  auto* panel = root.AddChild(std::make_unique<Panel>("panel"));
  panel->AddChild(std::make_unique<Button>("deep", "X"));
  EXPECT_TRUE(root.RemoveChild("deep"));
  EXPECT_EQ(root.FindWidget("deep"), nullptr);
  EXPECT_FALSE(root.RemoveChild("deep"));
}

TEST(ButtonTest, ClickInvokesCallbackAndCounts) {
  int clicks = 0;
  Button button("b", "Go", [&](Button&) { ++clicks; });
  button.set_rect(Rect{0, 0, 6, 1});
  EXPECT_TRUE(button.DispatchClick(Point{1, 0}));
  button.Press();
  EXPECT_EQ(clicks, 2);
  EXPECT_EQ(button.click_count(), 2);
}

TEST(ButtonTest, DisabledButtonIgnoresPress) {
  int clicks = 0;
  Button button("b", "Go", [&](Button&) { ++clicks; });
  button.set_enabled(false);
  button.Press();
  EXPECT_EQ(clicks, 0);
}

TEST(ButtonTest, ToggleModeFlipsState) {
  Button button("b", "text");
  button.set_toggle_mode(true);
  EXPECT_FALSE(button.toggled());
  button.Press();
  EXPECT_TRUE(button.toggled());
  button.Press();
  EXPECT_FALSE(button.toggled());
}

TEST(ButtonTest, RenderShowsToggleMarker) {
  Framebuffer fb(12, 1);
  Button button("b", "text");
  button.set_toggle_mode(true);
  button.set_rect(Rect{0, 0, 8, 1});
  button.Render(&fb, Point{0, 0});
  EXPECT_EQ(fb.Row(0).substr(0, 6), "[text]");
  button.Press();
  fb.Clear();
  button.Render(&fb, Point{0, 0});
  EXPECT_EQ(fb.Row(0).substr(0, 7), "[*text]");
}

TEST(StaticTextTest, WrapsToWidth) {
  Framebuffer fb(12, 4);
  StaticText text("t", "alpha beta gamma");
  text.set_rect(Rect{0, 0, 6, 4});
  text.Render(&fb, Point{0, 0});
  EXPECT_EQ(fb.Row(0).substr(0, 5), "alpha");
  EXPECT_EQ(fb.Row(1).substr(0, 4), "beta");
}

TEST(ScrollTextTest, ScrollClampsAndSlices) {
  std::vector<std::string> lines;
  for (int i = 0; i < 20; ++i) lines.push_back("line" + std::to_string(i));
  ScrollText text("t", lines);
  text.set_rect(Rect{0, 0, 10, 6});  // 5 content rows + scrollbar row
  EXPECT_EQ(text.VisibleLines().front(), "line0");
  text.ScrollBy(100);
  EXPECT_EQ(text.scroll_y(), 15);  // 20 - 5
  EXPECT_EQ(text.VisibleLines().front(), "line15");
  text.ScrollBy(-100);
  EXPECT_EQ(text.scroll_y(), 0);
  // Horizontal scroll is clamped too: all lines fit, so x stays 0.
  text.ScrollTo(2, 3);
  EXPECT_EQ(text.scroll_x(), 0);
  EXPECT_EQ(text.VisibleLines().front(), "line3");
}

TEST(ScrollTextTest, HorizontalScrollOverWideLines) {
  ScrollText text("t", {"0123456789abcdef", "short"});
  text.set_rect(Rect{0, 0, 5, 4});  // 4 content columns
  text.ScrollTo(3, 0);
  EXPECT_EQ(text.scroll_x(), 3);
  EXPECT_EQ(text.VisibleLines()[0], "3456");
  EXPECT_EQ(text.VisibleLines()[1], "rt");
  text.ScrollTo(100, 0);  // clamped to widest - content width
  EXPECT_EQ(text.scroll_x(), 12);
  text.ScrollHorizontallyBy(-100);
  EXPECT_EQ(text.scroll_x(), 0);
}

TEST(ScrollTextTest, ScrollEventAndArrowClicks) {
  std::vector<std::string> lines(30, "x");
  ScrollText text("t", lines);
  text.set_rect(Rect{0, 0, 8, 5});
  EXPECT_TRUE(text.DispatchScroll(Point{1, 1}, 3));
  EXPECT_EQ(text.scroll_y(), 3);
  // Top arrow is at the last column, row 0.
  EXPECT_TRUE(text.DispatchClick(Point{7, 0}));
  EXPECT_EQ(text.scroll_y(), 2);
  // Bottom arrow.
  EXPECT_TRUE(text.DispatchClick(Point{7, 3}));
  EXPECT_EQ(text.scroll_y(), 3);
}

TEST(MenuTest, SelectionByClickAndName) {
  std::vector<std::pair<int, std::string>> picks;
  Menu menu("m", {"alpha", "beta", "gamma"},
            [&](int i, const std::string& s) { picks.push_back({i, s}); });
  menu.set_rect(Rect{0, 0, 10, 3});
  EXPECT_TRUE(menu.DispatchClick(Point{1, 1}));
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0].second, "beta");
  ASSERT_TRUE(menu.SelectItem("gamma").ok());
  EXPECT_EQ(menu.selected(), 2);
  EXPECT_TRUE(menu.SelectItem("nope").IsNotFound());
  EXPECT_TRUE(menu.SelectItem(9).IsOutOfRange());
}

TEST(TextInputTest, TypingEditingSubmitting) {
  std::vector<std::string> submitted;
  TextInput input("i", [&](const std::string& s) { submitted.push_back(s); });
  input.OnKey("age > 3");
  EXPECT_EQ(input.text(), "age > 3");
  input.OnKey("\b41");
  EXPECT_EQ(input.text(), "age > 41");
  input.OnKey("\n");
  ASSERT_EQ(submitted.size(), 1u);
  EXPECT_EQ(submitted[0], "age > 41");
}

// --- Window & server ------------------------------------------------------------------

TEST(WindowTest, ClickRoutesThroughFrame) {
  Window window(1, "test", Point{0, 0}, Size{20, 5});
  int clicks = 0;
  auto* button = window.root()->AddChild(
      std::make_unique<Button>("b", "Hit", [&](Button&) { ++clicks; }));
  button->set_rect(Rect{2, 1, 6, 1});
  // Window-local (3, 2) = content (2, 1).
  EXPECT_TRUE(window.HandleEvent(Event::MouseClick(1, Point{3, 2})));
  EXPECT_EQ(clicks, 1);
  // Clicking the frame itself is not consumed.
  EXPECT_FALSE(window.HandleEvent(Event::MouseClick(1, Point{0, 0})));
}

TEST(WindowTest, CloseRequestClosesAndNotifies) {
  Window window(1, "test", Point{0, 0}, Size{10, 3});
  bool closed = false;
  window.set_on_close([&] { closed = true; });
  EXPECT_TRUE(window.HandleEvent(Event::CloseRequest(1)));
  EXPECT_FALSE(window.open());
  EXPECT_TRUE(closed);
  // Closed windows ignore clicks.
  EXPECT_FALSE(window.HandleEvent(Event::MouseClick(1, Point{1, 1})));
}

TEST(WindowTest, RenderDrawsFrameAndTitle) {
  Window window(1, "lab", Point{1, 0}, Size{10, 2});
  Framebuffer fb(20, 6);
  window.Render(&fb);
  EXPECT_EQ(fb.At(1, 0), '+');
  EXPECT_EQ(fb.Row(0).substr(2, 7), "[ lab ]");
  EXPECT_EQ(fb.At(12, 3), '+');
}

TEST(ServerTest, CreateFindDestroy) {
  Server server;
  Window* a = server.CreateWindow("a", Point{0, 0}, Size{8, 2});
  Window* b = server.CreateWindow("b", Server::kAutoPlace, Size{8, 2});
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(server.FindWindow(a->id()), a);
  EXPECT_EQ(server.FindWindowByTitle("b"), b);
  const WindowId a_id = a->id();  // `a` dangles once destroyed below.
  ASSERT_TRUE(server.DestroyWindow(a_id).ok());
  EXPECT_EQ(server.FindWindow(a_id), nullptr);
  EXPECT_TRUE(server.DestroyWindow(999).IsNotFound());
}

TEST(ServerTest, AutoPlacementAvoidsOverlapWhileRoomRemains) {
  Server server(100, 40);
  Window* a = server.CreateWindow("a", Server::kAutoPlace, Size{20, 5});
  Window* b = server.CreateWindow("b", Server::kAutoPlace, Size{20, 5});
  Window* c = server.CreateWindow("c", Server::kAutoPlace, Size{20, 5});
  EXPECT_FALSE(a->FrameRect().Intersects(b->FrameRect()));
  EXPECT_FALSE(b->FrameRect().Intersects(c->FrameRect()));
  EXPECT_FALSE(a->FrameRect().Intersects(c->FrameRect()));
}

TEST(ServerTest, EventQueueDispatches) {
  Server server;
  Window* window = server.CreateWindow("w", Point{0, 0}, Size{20, 3});
  int clicks = 0;
  auto* button = window->root()->AddChild(
      std::make_unique<Button>("b", "Hit", [&](Button&) { ++clicks; }));
  button->set_rect(Rect{0, 0, 6, 1});
  server.PostEvent(Event::MouseClick(window->id(), Point{2, 1}));
  server.PostEvent(Event::MouseClick(window->id(), Point{2, 1}));
  EXPECT_EQ(server.RunLoop(), 2);
  EXPECT_EQ(clicks, 2);
  EXPECT_EQ(server.stats().events_posted, 2u);
}

TEST(ServerTest, ClickWidgetByName) {
  Server server;
  Window* window = server.CreateWindow("w", Point{3, 3}, Size{30, 5});
  int clicks = 0;
  auto* panel = window->root()->AddChild(std::make_unique<Panel>("p"));
  panel->set_rect(Rect{2, 1, 20, 3});
  auto* button = panel->AddChild(
      std::make_unique<Button>("go", "Go", [&](Button&) { ++clicks; }));
  button->set_rect(Rect{1, 1, 6, 1});
  ASSERT_TRUE(server.ClickWidget(window->id(), "go").ok());
  EXPECT_EQ(clicks, 1);
  EXPECT_TRUE(server.ClickWidget(window->id(), "ghost").IsNotFound());
  EXPECT_TRUE(server.ClickWidget(999, "go").IsNotFound());
}

TEST(ServerTest, SendKeysReachFocus) {
  Server server;
  Window* window = server.CreateWindow("w", Point{0, 0}, Size{20, 3});
  auto* input = static_cast<TextInput*>(window->root()->AddChild(
      std::make_unique<TextInput>("in")));
  input->set_rect(Rect{0, 0, 18, 1});
  window->set_focus(input);
  ASSERT_TRUE(server.SendKeys(window->id(), "hello").ok());
  EXPECT_EQ(input->text(), "hello");
}

TEST(ServerTest, CompositeRespectsZOrderAndOpenState) {
  Server server(40, 10);
  Window* back = server.CreateWindow("back", Point{0, 0}, Size{10, 3});
  Window* front = server.CreateWindow("front", Point{2, 1}, Size{10, 3});
  Framebuffer fb = server.Composite();
  // front overlaps back; front's frame wins at the overlap.
  EXPECT_EQ(fb.At(2, 1), '+');
  front->set_open(false);
  fb = server.Composite();
  EXPECT_EQ(fb.At(0, 0), '+');  // back still there
  EXPECT_NE(fb.Row(1).substr(3, 5), "[ fro");
  (void)back;
}

}  // namespace
}  // namespace ode::owl
