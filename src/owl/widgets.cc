#include "owl/widgets.h"

#include <algorithm>

#include "common/strings.h"

namespace ode::owl {

void Label::RenderSelf(Framebuffer* fb, Point origin) const {
  fb->DrawText(origin.x, origin.y,
               std::string_view(text_).substr(
                   0, static_cast<size_t>(std::max(0, rect().width))));
}

void Button::Press() {
  if (!enabled_) return;
  ++click_count_;
  if (toggle_mode_) toggled_ = !toggled_;
  if (on_click_) on_click_(*this);
}

bool Button::OnClick(Point) {
  Press();
  return true;
}

void Button::RenderSelf(Framebuffer* fb, Point origin) const {
  std::string text = "[";
  if (toggle_mode_ && toggled_) text += "*";
  text += label_;
  text += "]";
  if (!enabled_) text = "(" + label_ + ")";
  fb->DrawText(origin.x, origin.y, text);
}

void StaticText::RenderSelf(Framebuffer* fb, Point origin) const {
  int width = std::max(1, rect().width);
  std::vector<std::string> wrapped =
      WrapText(text_, static_cast<size_t>(width));
  for (int i = 0;
       i < rect().height && i < static_cast<int>(wrapped.size()); ++i) {
    fb->DrawText(origin.x, origin.y + i, wrapped[static_cast<size_t>(i)]);
  }
}

void ScrollText::set_lines(std::vector<std::string> lines) {
  lines_ = std::move(lines);
  scroll_y_ = std::min(scroll_y_, MaxScrollY());
  scroll_x_ = std::min(scroll_x_, MaxScrollX());
}

int ScrollText::ContentWidth() const { return std::max(1, rect().width - 1); }
int ScrollText::ContentHeight() const {
  return std::max(1, rect().height - 1);
}

int ScrollText::MaxScrollY() const {
  return std::max(0, static_cast<int>(lines_.size()) - ContentHeight());
}

int ScrollText::MaxScrollX() const {
  int widest = 0;
  for (const std::string& line : lines_) {
    widest = std::max(widest, static_cast<int>(line.size()));
  }
  return std::max(0, widest - ContentWidth());
}

void ScrollText::ScrollTo(int x, int y) {
  scroll_x_ = std::clamp(x, 0, MaxScrollX());
  scroll_y_ = std::clamp(y, 0, MaxScrollY());
}

void ScrollText::ScrollBy(int amount) {
  ScrollTo(scroll_x_, scroll_y_ + amount);
}

void ScrollText::ScrollHorizontallyBy(int amount) {
  ScrollTo(scroll_x_ + amount, scroll_y_);
}

std::vector<std::string> ScrollText::VisibleLines() const {
  std::vector<std::string> out;
  int height = ContentHeight();
  int width = ContentWidth();
  for (int i = 0; i < height; ++i) {
    size_t row = static_cast<size_t>(scroll_y_ + i);
    if (row >= lines_.size()) break;
    const std::string& line = lines_[row];
    if (static_cast<size_t>(scroll_x_) >= line.size()) {
      out.emplace_back();
    } else {
      out.push_back(line.substr(static_cast<size_t>(scroll_x_),
                                static_cast<size_t>(width)));
    }
  }
  return out;
}

void ScrollText::RenderSelf(Framebuffer* fb, Point origin) const {
  std::vector<std::string> visible = VisibleLines();
  for (size_t i = 0; i < visible.size(); ++i) {
    fb->DrawText(origin.x, origin.y + static_cast<int>(i), visible[i]);
  }
  // Vertical scrollbar in the last column: ^ ... v with a thumb '#'.
  int height = ContentHeight();
  int bar_x = origin.x + rect().width - 1;
  fb->Put(bar_x, origin.y, '^');
  fb->Put(bar_x, origin.y + height - 1, 'v');
  for (int i = 1; i < height - 1; ++i) fb->Put(bar_x, origin.y + i, ':');
  if (MaxScrollY() > 0 && height > 2) {
    int thumb = 1 + (scroll_y_ * (height - 3)) / std::max(1, MaxScrollY());
    fb->Put(bar_x, origin.y + thumb, '#');
  }
  // Horizontal scrollbar in the last row.
  int width = ContentWidth();
  int bar_y = origin.y + rect().height - 1;
  fb->Put(origin.x, bar_y, '<');
  fb->Put(origin.x + width - 1, bar_y, '>');
  for (int i = 1; i < width - 1; ++i) fb->Put(origin.x + i, bar_y, '.');
  if (MaxScrollX() > 0 && width > 2) {
    int thumb = 1 + (scroll_x_ * (width - 3)) / std::max(1, MaxScrollX());
    fb->Put(origin.x + thumb, bar_y, '#');
  }
}

bool ScrollText::OnScroll(Point, int amount) {
  ScrollBy(amount);
  return true;
}

bool ScrollText::OnClick(Point local) {
  // Scrollbar arrows: top/bottom of the last column, ends of last row.
  if (local.x == rect().width - 1) {
    if (local.y == 0) {
      ScrollBy(-1);
      return true;
    }
    if (local.y == ContentHeight() - 1) {
      ScrollBy(1);
      return true;
    }
  }
  if (local.y == rect().height - 1) {
    if (local.x == 0) {
      ScrollHorizontallyBy(-1);
      return true;
    }
    if (local.x == ContentWidth() - 1) {
      ScrollHorizontallyBy(1);
      return true;
    }
  }
  return false;
}

void RasterView::RenderSelf(Framebuffer* fb, Point origin) const {
  if (bitmap_.empty() || rect().Empty()) return;
  if (scale_to_fit_ && (bitmap_.width() != rect().width ||
                        bitmap_.height() != rect().height)) {
    fb->DrawBitmap(origin.x, origin.y,
                   bitmap_.ScaledBox(rect().width, rect().height));
  } else {
    fb->DrawBitmap(origin.x, origin.y, bitmap_);
  }
}

void Panel::RenderSelf(Framebuffer* fb, Point origin) const {
  if (!border_) return;
  Rect frame{origin.x, origin.y, rect().width, rect().height};
  fb->DrawBox(frame);
  if (!title_.empty() && rect().width > 4) {
    std::string text = " " + title_ + " ";
    fb->DrawText(origin.x + 1, origin.y,
                 std::string_view(text).substr(
                     0, static_cast<size_t>(rect().width - 2)));
  }
}

Status Menu::SelectItem(int index) {
  if (index < 0 || index >= static_cast<int>(items_.size())) {
    return Status::OutOfRange("menu index " + std::to_string(index));
  }
  selected_ = index;
  if (on_select_) on_select_(index, items_[static_cast<size_t>(index)]);
  return Status::OK();
}

Status Menu::SelectItem(std::string_view item) {
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i] == item) return SelectItem(static_cast<int>(i));
  }
  return Status::NotFound("menu item '" + std::string(item) + "'");
}

void Menu::RenderSelf(Framebuffer* fb, Point origin) const {
  for (int i = 0;
       i < static_cast<int>(items_.size()) && i < rect().height; ++i) {
    std::string line = (i == selected_ ? "> " : "  ");
    line += items_[static_cast<size_t>(i)];
    fb->DrawText(origin.x, origin.y + i, line);
  }
}

bool Menu::OnClick(Point local) {
  if (local.y >= 0 && local.y < static_cast<int>(items_.size())) {
    return SelectItem(local.y).ok();
  }
  return false;
}

bool TextInput::OnKey(std::string_view text) {
  for (char c : text) {
    if (c == '\n') {
      if (on_submit_) on_submit_(text_);
    } else if (c == '\b') {
      if (!text_.empty()) text_.pop_back();
    } else if (c >= 0x20) {
      text_.push_back(c);
    }
  }
  return true;
}

void TextInput::RenderSelf(Framebuffer* fb, Point origin) const {
  int width = std::max(1, rect().width);
  std::string shown = text_;
  if (static_cast<int>(shown.size()) > width - 1) {
    shown = shown.substr(shown.size() - static_cast<size_t>(width - 1));
  }
  shown += "_";
  fb->DrawText(origin.x, origin.y, shown);
}

}  // namespace ode::owl
