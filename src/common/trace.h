#ifndef ODEVIEW_COMMON_TRACE_H_
#define ODEVIEW_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ode::obs {

/// One completed span, recorded when its `TraceSpan` leaves scope.
struct TraceEvent {
  const char* name = nullptr;  ///< static string (the span label)
  uint64_t start_ns = 0;       ///< steady-clock, relative to process start
  uint64_t duration_ns = 0;
  uint32_t thread_id = 0;  ///< small dense id (see CurrentThreadId)
  uint32_t depth = 0;      ///< nesting depth within this thread (0 = root)
};

/// Process-wide tracing control. Spans are collected into per-thread
/// ring buffers (each guarded by its own — effectively uncontended —
/// mutex, so collection is TSan-clean even while another thread
/// exports). Tracing is disabled by default: a span on a disabled
/// process costs one relaxed atomic load.
class Tracing {
 public:
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Events currently retained across all thread buffers.
  static size_t CapturedCount();
  /// Events overwritten because a ring buffer wrapped.
  static uint64_t DroppedCount();
  /// Drops every retained event (buffers stay registered).
  static void Clear();

  /// Chrome `trace_event` JSON (the "traceEvents" array format):
  /// complete events (ph "X") with microsecond timestamps, loadable
  /// directly in chrome://tracing and Perfetto.
  static std::string ExportChromeJson();

  /// Appends one completed span to the calling thread's buffer.
  /// Normally called by ~TraceSpan, public for tests.
  static void Record(const char* name, uint64_t start_ns,
                     uint64_t duration_ns, uint32_t depth);

  /// Nanoseconds since process start on the steady clock (the spans'
  /// time base).
  static uint64_t NowNanos();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII scope measuring one span. Use via ODE_TRACE_SPAN:
///
///   Result<PageHandle> BufferPool::Fetch(...) {
///     ODE_TRACE_SPAN("pool.fetch");
///     ...
///   }
///
/// The name must be a string with static storage duration (a literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null when tracing was off at entry
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace ode::obs

#define ODE_OBS_CONCAT_INNER(a, b) a##b
#define ODE_OBS_CONCAT(a, b) ODE_OBS_CONCAT_INNER(a, b)
#define ODE_TRACE_SPAN(name) \
  ::ode::obs::TraceSpan ODE_OBS_CONCAT(ode_trace_span_, __LINE__)(name)

#endif  // ODEVIEW_COMMON_TRACE_H_
