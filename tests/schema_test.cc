#include <gtest/gtest.h>

#include "odb/ddl_parser.h"
#include "odb/schema.h"

namespace ode::odb {
namespace {

ClassDef SimpleClass(std::string name, std::vector<std::string> bases = {}) {
  ClassDef def;
  def.name = std::move(name);
  def.bases = std::move(bases);
  return def;
}

Schema DiamondSchema() {
  // person <- employee, person <- consultant, both <- hybrid.
  Schema schema;
  ClassDef person = SimpleClass("person");
  person.members.push_back({"name", TypeRef::String(), Access::kPublic});
  EXPECT_TRUE(schema.AddClass(person).ok());
  ClassDef employee = SimpleClass("employee", {"person"});
  employee.members.push_back({"salary", TypeRef::Real(), Access::kPrivate});
  EXPECT_TRUE(schema.AddClass(employee).ok());
  ClassDef consultant = SimpleClass("consultant", {"person"});
  consultant.members.push_back({"rate", TypeRef::Real(), Access::kPublic});
  EXPECT_TRUE(schema.AddClass(consultant).ok());
  ClassDef hybrid = SimpleClass("hybrid", {"employee", "consultant"});
  hybrid.members.push_back({"split", TypeRef::Int(), Access::kPublic});
  EXPECT_TRUE(schema.AddClass(hybrid).ok());
  return schema;
}

// --- Registration ------------------------------------------------------

TEST(SchemaTest, AddAndGet) {
  Schema schema;
  ASSERT_TRUE(schema.AddClass(SimpleClass("a")).ok());
  EXPECT_TRUE(schema.Contains("a"));
  EXPECT_FALSE(schema.Contains("b"));
  EXPECT_TRUE(schema.GetClass("a").ok());
  EXPECT_TRUE(schema.GetClass("b").status().IsNotFound());
  EXPECT_EQ(schema.size(), 1u);
}

TEST(SchemaTest, DuplicateRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddClass(SimpleClass("a")).ok());
  EXPECT_EQ(schema.AddClass(SimpleClass("a")).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, EmptyNameRejected) {
  Schema schema;
  EXPECT_TRUE(schema.AddClass(SimpleClass("")).IsInvalidArgument());
}

TEST(SchemaTest, DropRefusedWhileDerived) {
  Schema schema = DiamondSchema();
  EXPECT_EQ(schema.DropClass("person").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(schema.DropClass("hybrid").ok());
  EXPECT_FALSE(schema.Contains("hybrid"));
}

TEST(SchemaTest, DropRefusedWhileReferenced) {
  Schema schema;
  ASSERT_TRUE(schema.AddClass(SimpleClass("dept")).ok());
  ClassDef emp = SimpleClass("emp");
  emp.members.push_back({"dept", TypeRef::Ref("dept"), Access::kPublic});
  ASSERT_TRUE(schema.AddClass(emp).ok());
  EXPECT_EQ(schema.DropClass("dept").code(),
            StatusCode::kFailedPrecondition);
  // References nested inside containers also count.
  Schema schema2;
  ASSERT_TRUE(schema2.AddClass(SimpleClass("dept")).ok());
  ClassDef team = SimpleClass("team");
  team.members.push_back(
      {"depts", TypeRef::Set(TypeRef::Ref("dept")), Access::kPublic});
  ASSERT_TRUE(schema2.AddClass(team).ok());
  EXPECT_EQ(schema2.DropClass("dept").code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchemaTest, ReplaceClassKeepsPosition) {
  Schema schema = DiamondSchema();
  ClassDef updated = SimpleClass("employee", {"person"});
  updated.members.push_back({"badge", TypeRef::Int(), Access::kPublic});
  ASSERT_TRUE(schema.ReplaceClass(updated).ok());
  EXPECT_EQ((*schema.GetClass("employee"))->members[0].name, "badge");
  EXPECT_TRUE(schema.ReplaceClass(SimpleClass("ghost")).IsNotFound());
}

// --- Inheritance queries -------------------------------------------------

TEST(SchemaTest, DirectSuperAndSubclasses) {
  Schema schema = DiamondSchema();
  EXPECT_EQ(*schema.DirectSuperclasses("hybrid"),
            (std::vector<std::string>{"employee", "consultant"}));
  EXPECT_EQ(*schema.DirectSubclasses("person"),
            (std::vector<std::string>{"employee", "consultant"}));
  EXPECT_TRUE(schema.DirectSuperclasses("person")->empty());
  EXPECT_TRUE(schema.DirectSubclasses("hybrid")->empty());
  EXPECT_TRUE(schema.DirectSubclasses("nope").status().IsNotFound());
}

TEST(SchemaTest, TransitiveClosures) {
  Schema schema = DiamondSchema();
  std::vector<std::string> ancestors = *schema.Ancestors("hybrid");
  // person appears once despite the diamond.
  EXPECT_EQ(ancestors.size(), 3u);
  EXPECT_EQ(std::count(ancestors.begin(), ancestors.end(), "person"), 1);
  std::vector<std::string> descendants = *schema.Descendants("person");
  EXPECT_EQ(descendants.size(), 3u);
}

TEST(SchemaTest, AllMembersBaseFirstWithShadowing) {
  Schema schema = DiamondSchema();
  std::vector<MemberDef> members = *schema.AllMembers("hybrid");
  // person.name, employee.salary, consultant.rate, hybrid.split — with
  // name deduplicated across the diamond.
  ASSERT_EQ(members.size(), 4u);
  EXPECT_EQ(members.back().name, "split");
  int name_count = 0;
  for (const MemberDef& m : members) name_count += m.name == "name";
  EXPECT_EQ(name_count, 1);
}

TEST(SchemaTest, DerivedMemberShadowsBase) {
  Schema schema;
  ClassDef base = SimpleClass("base");
  base.members.push_back({"tag", TypeRef::Int(), Access::kPublic});
  ASSERT_TRUE(schema.AddClass(base).ok());
  ClassDef derived = SimpleClass("derived", {"base"});
  derived.members.push_back({"tag", TypeRef::String(), Access::kPublic});
  ASSERT_TRUE(schema.AddClass(derived).ok());
  std::vector<MemberDef> members = *schema.AllMembers("derived");
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0].type.kind, TypeRef::Kind::kString);
}

TEST(SchemaTest, EffectiveListsInherit) {
  Schema schema;
  ClassDef base = SimpleClass("base");
  base.displaylist = {"a", "b"};
  base.display_formats = {"text"};
  ASSERT_TRUE(schema.AddClass(base).ok());
  ClassDef mid = SimpleClass("mid", {"base"});
  ASSERT_TRUE(schema.AddClass(mid).ok());
  ClassDef leaf = SimpleClass("leaf", {"mid"});
  leaf.displaylist = {"c"};
  ASSERT_TRUE(schema.AddClass(leaf).ok());
  EXPECT_EQ(*schema.EffectiveDisplayList("mid"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(*schema.EffectiveDisplayList("leaf"),
            (std::vector<std::string>{"c"}));
  EXPECT_EQ(*schema.EffectiveDisplayFormats("leaf"),
            (std::vector<std::string>{"text"}));
  EXPECT_TRUE(schema.EffectiveSelectList("leaf")->empty());
}

TEST(SchemaTest, InheritanceEdges) {
  Schema schema = DiamondSchema();
  auto edges = schema.InheritanceEdges();
  EXPECT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0], (std::pair<std::string, std::string>{"person",
                                                           "employee"}));
}

// --- Validation -----------------------------------------------------------

TEST(SchemaTest, ValidateAcceptsDiamond) {
  EXPECT_TRUE(DiamondSchema().Validate().ok());
}

TEST(SchemaTest, ValidateRejectsUnknownBase) {
  Schema schema;
  ASSERT_TRUE(schema.AddClass(SimpleClass("x", {"ghost"})).ok());
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsSelfInheritance) {
  Schema schema;
  ASSERT_TRUE(schema.AddClass(SimpleClass("x", {"x"})).ok());
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsCycle) {
  Schema schema;
  ASSERT_TRUE(schema.AddClass(SimpleClass("a", {"b"})).ok());
  ASSERT_TRUE(schema.AddClass(SimpleClass("b", {"a"})).ok());
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsDuplicateMember) {
  Schema schema;
  ClassDef def = SimpleClass("x");
  def.members.push_back({"m", TypeRef::Int(), Access::kPublic});
  def.members.push_back({"m", TypeRef::Real(), Access::kPublic});
  ASSERT_TRUE(schema.AddClass(def).ok());
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsDanglingReference) {
  Schema schema;
  ClassDef def = SimpleClass("x");
  def.members.push_back({"r", TypeRef::Ref("ghost"), Access::kPublic});
  ASSERT_TRUE(schema.AddClass(def).ok());
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateChecksNestedContainerTypes) {
  Schema schema;
  ClassDef def = SimpleClass("x");
  def.members.push_back(
      {"rs", TypeRef::Set(TypeRef::Ref("ghost")), Access::kPublic});
  ASSERT_TRUE(schema.AddClass(def).ok());
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

// --- TypeRef ---------------------------------------------------------------

TEST(TypeRefTest, ToStringSpellings) {
  EXPECT_EQ(TypeRef::Int().ToString(), "int");
  EXPECT_EQ(TypeRef::Ref("dept").ToString(), "dept*");
  EXPECT_EQ(TypeRef::Set(TypeRef::Ref("emp")).ToString(), "set<emp*>");
  EXPECT_EQ(TypeRef::Array(TypeRef::Int(), 4).ToString(), "int[4]");
  EXPECT_EQ(TypeRef::Class("dept").ToString(), "dept");
}

TEST(TypeRefTest, Equality) {
  EXPECT_EQ(TypeRef::Set(TypeRef::Ref("e")), TypeRef::Set(TypeRef::Ref("e")));
  EXPECT_NE(TypeRef::Set(TypeRef::Ref("e")), TypeRef::Set(TypeRef::Int()));
  EXPECT_NE(TypeRef::Array(TypeRef::Int(), 3), TypeRef::Array(TypeRef::Int(), 4));
}

// --- Serialization -----------------------------------------------------------

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Result<Schema> parsed = ParseSchema(R"(
persistent versioned class doc {
public:
  string title;
  int pages[3];
  set<doc*> related;
  void render(int dpi);
  display text, postscript;
  displaylist title;
  selectlist title;
  constraint pages >= 0;
  trigger big: on_update when pages > 100 do warn;
private:
  real internal_score;
};
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string bytes;
  parsed->Encode(&bytes);
  Result<Schema> decoded = Schema::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ClassDef* def = *decoded->GetClass("doc");
  EXPECT_TRUE(def->versioned);
  EXPECT_TRUE(def->persistent);
  ASSERT_EQ(def->members.size(), 4u);
  EXPECT_EQ(def->members[1].type.ToString(), "int[3]");
  EXPECT_EQ(def->members[3].access, Access::kPrivate);
  ASSERT_EQ(def->methods.size(), 1u);
  EXPECT_EQ(def->methods[0].params, "int dpi");
  EXPECT_EQ(def->display_formats,
            (std::vector<std::string>{"text", "postscript"}));
  ASSERT_EQ(def->constraints.size(), 1u);
  EXPECT_EQ(def->constraints[0].predicate_text, "pages >= 0");
  ASSERT_EQ(def->triggers.size(), 1u);
  EXPECT_EQ(def->triggers[0].condition_text, "pages > 100");
  EXPECT_EQ(def->triggers[0].action, "warn");
  EXPECT_EQ(def->source, (*parsed->GetClass("doc"))->source);
}

TEST(SchemaTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Schema::Decode("garbage bytes").ok());
}

}  // namespace
}  // namespace ode::odb
