#include "owl/bitmap.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ode::owl {

Bitmap::Bitmap(int width, int height)
    : width_(std::max(0, width)),
      height_(std::max(0, height)),
      bits_(static_cast<size_t>(width_) * static_cast<size_t>(height_), 0) {}

Result<Bitmap> Bitmap::FromPbm(std::string_view text) {
  // Tokenize, skipping '#' comments.
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '#') {
      ++i;
    }
    tokens.emplace_back(text.substr(start, i - start));
  }
  if (tokens.size() < 3 || tokens[0] != "P1") {
    return Status::InvalidArgument("not an ASCII PBM (missing P1 header)");
  }
  int width = std::atoi(tokens[1].c_str());
  int height = std::atoi(tokens[2].c_str());
  if (width <= 0 || height <= 0 || width > 1 << 16 || height > 1 << 16) {
    return Status::InvalidArgument("PBM dimensions out of range");
  }
  Bitmap bitmap(width, height);
  size_t needed = static_cast<size_t>(width) * static_cast<size_t>(height);
  // Cells may be packed ("0101") or separated ("0 1 0 1").
  size_t filled = 0;
  for (size_t t = 3; t < tokens.size() && filled < needed; ++t) {
    for (char c : tokens[t]) {
      if (c != '0' && c != '1') {
        return Status::InvalidArgument("PBM pixel must be 0 or 1");
      }
      if (filled >= needed) break;
      bitmap.bits_[filled++] = c == '1' ? 1 : 0;
    }
  }
  if (filled != needed) {
    return Status::InvalidArgument("PBM has too few pixels");
  }
  return bitmap;
}

std::string Bitmap::ToPbm() const {
  std::ostringstream out;
  out << "P1 " << width_ << " " << height_ << "\n";
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out << (Get(x, y) ? '1' : '0');
      if (x + 1 < width_) out << ' ';
    }
    out << "\n";
  }
  return out.str();
}

bool Bitmap::Get(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return false;
  return bits_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
               static_cast<size_t>(x)] != 0;
}

void Bitmap::Set(int x, int y, bool on) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  bits_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
        static_cast<size_t>(x)] = on ? 1 : 0;
}

int Bitmap::PopCount() const {
  int n = 0;
  for (uint8_t b : bits_) n += b;
  return n;
}

Bitmap Bitmap::ScaledNearest(int new_width, int new_height) const {
  Bitmap out(new_width, new_height);
  if (empty() || out.empty()) return out;
  for (int y = 0; y < out.height_; ++y) {
    int sy = static_cast<int>(
        (static_cast<int64_t>(y) * height_) / out.height_);
    for (int x = 0; x < out.width_; ++x) {
      int sx = static_cast<int>(
          (static_cast<int64_t>(x) * width_) / out.width_);
      out.Set(x, y, Get(sx, sy));
    }
  }
  return out;
}

Bitmap Bitmap::ScaledBox(int new_width, int new_height) const {
  Bitmap out(new_width, new_height);
  if (empty() || out.empty()) return out;
  for (int y = 0; y < out.height_; ++y) {
    int sy0 = static_cast<int>(
        (static_cast<int64_t>(y) * height_) / out.height_);
    int sy1 = static_cast<int>(
        (static_cast<int64_t>(y + 1) * height_) / out.height_);
    if (sy1 <= sy0) sy1 = sy0 + 1;
    for (int x = 0; x < out.width_; ++x) {
      int sx0 = static_cast<int>(
          (static_cast<int64_t>(x) * width_) / out.width_);
      int sx1 = static_cast<int>(
          (static_cast<int64_t>(x + 1) * width_) / out.width_);
      if (sx1 <= sx0) sx1 = sx0 + 1;
      int set = 0;
      int total = 0;
      for (int sy = sy0; sy < sy1 && sy < height_; ++sy) {
        for (int sx = sx0; sx < sx1 && sx < width_; ++sx) {
          ++total;
          if (Get(sx, sy)) ++set;
        }
      }
      out.Set(x, y, total > 0 && 2 * set >= total);
    }
  }
  return out;
}

void Bitmap::Invert() {
  for (uint8_t& b : bits_) b = b ? 0 : 1;
}

std::vector<std::string> Bitmap::ToAscii(char on, char off) const {
  std::vector<std::string> rows;
  rows.reserve(static_cast<size_t>(height_));
  for (int y = 0; y < height_; ++y) {
    std::string row;
    row.reserve(static_cast<size_t>(width_));
    for (int x = 0; x < width_; ++x) row.push_back(Get(x, y) ? on : off);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace ode::owl
