# Empty compiler generated dependencies file for bench_fig02_schema_dag.
# This may be replaced when dependencies are built.
