// Tests for the query-profiling layer: OpProfile charge propagation
// (storage / WAL / lock / executor charge sites), per-session resource
// accounting and the /sessions inspector, the slow-operation ring,
// EXPLAIN / EXPLAIN ANALYZE (including the per-operator-vs-totals
// equivalence the join plan promises), latency-percentile windows, and
// the telemetry endpoint's new surfaces and error paths.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/telemetry_http.h"
#include "common/threading.h"
#include "odb/database.h"
#include "odb/exec/executor.h"
#include "odb/exec/explain.h"
#include "odb/labdb.h"
#include "odb/predicate.h"

namespace ode::odb {
namespace {

/// Restores the slow-op threshold on scope exit; several tests lower
/// it to capture everything and must not leak that into neighbors.
class ScopedSlowThreshold {
 public:
  explicit ScopedSlowThreshold(uint64_t ns)
      : previous_(obs::SlowOpLog::Global().threshold_ns()) {
    obs::SlowOpLog::Global().set_threshold_ns(ns);
  }
  ~ScopedSlowThreshold() {
    obs::SlowOpLog::Global().set_threshold_ns(previous_);
  }

 private:
  uint64_t previous_;
};

std::string StatsJson(const obs::OpProfileStats& stats) {
  std::ostringstream os;
  obs::AppendOpProfileStatsJson(os, stats);
  return os.str();
}

class QueryProfileSuite : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::move(*Database::CreateInMemory("lab"));
    LabDbConfig config;
    ASSERT_TRUE(BuildLabDatabase(db_.get(), config).ok());
  }

  std::unique_ptr<Database> db_;
};

// --- OpProfile core ---------------------------------------------------

TEST(OpProfileTest, ChargesSnapshotAndMerge) {
  obs::OpProfile profile;
  profile.ChargePoolFetch(/*hit=*/true);
  profile.ChargePoolFetch(/*hit=*/false);
  profile.ChargePagerRead();
  profile.ChargeHeapBatch(/*records=*/7, /*bytes=*/123);
  profile.ChargeScan(10, 4, 6, 10, 2, 1);
  profile.ChargeJoin(3, 5, 2);
  profile.ChargeLockWait(1000);
  profile.ChargeWalCommitWait(2000);
  profile.ChargeWalBytes(64);

  obs::OpProfileStats s = profile.Snapshot();
  EXPECT_EQ(s.pool_lookups, 2u);
  EXPECT_EQ(s.pool_hits, 1u);
  EXPECT_EQ(s.pool_misses, 1u);
  EXPECT_EQ(s.pager_reads, 1u);
  EXPECT_EQ(s.heap_records, 7u);
  EXPECT_EQ(s.arena_bytes, 123u);
  EXPECT_EQ(s.rows_scanned, 10u);
  EXPECT_EQ(s.rows_matched, 4u);
  EXPECT_EQ(s.rows_skipped_decode, 6u);
  EXPECT_EQ(s.predicate_evals, 10u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.partitions, 1u);
  EXPECT_EQ(s.join_build_rows, 3u);
  EXPECT_EQ(s.join_probe_rows, 5u);
  EXPECT_EQ(s.join_pairs, 2u);
  EXPECT_EQ(s.lock_wait_ns, 1000u);
  EXPECT_EQ(s.wal_commit_wait_ns, 2000u);
  EXPECT_EQ(s.wal_bytes_logged, 64u);

  obs::OpProfile dest;
  profile.MergeInto(&dest);
  profile.MergeInto(&dest);
  EXPECT_EQ(dest.Snapshot().pool_lookups, 4u);
  EXPECT_EQ(dest.Snapshot().wal_bytes_logged, 128u);
}

TEST(OpProfileTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(obs::CurrentOpProfile(), nullptr);
  obs::OpProfile outer, inner;
  {
    obs::OpProfileScope a(&outer);
    EXPECT_EQ(obs::CurrentOpProfile(), &outer);
    {
      obs::OpProfileScope b(&inner);
      EXPECT_EQ(obs::CurrentOpProfile(), &inner);
      // Installing nullptr turns profiling off for the scope.
      obs::OpProfileScope off(nullptr);
      EXPECT_EQ(obs::CurrentOpProfile(), nullptr);
    }
    EXPECT_EQ(obs::CurrentOpProfile(), &outer);
  }
  EXPECT_EQ(obs::CurrentOpProfile(), nullptr);
}

TEST(OpProfileTest, ProfiledOpMergesIntoParentAndSession) {
  ScopedSlowThreshold quiet(0);  // 0 disables slow capture
  obs::SessionEntry session(/*session_id=*/77, /*trace_id=*/0,
                            /*opened_ns=*/0);
  obs::OpProfile outer;
  obs::OpProfileScope scope(&outer);
  {
    obs::ProfiledOp op(&session, "test_op");
    EXPECT_EQ(session.current_op(), std::string("test_op"));
    obs::CurrentOpProfile()->ChargePagerRead();
    obs::CurrentOpProfile()->ChargeScan(5, 2, 0, 5, 1, 1);
  }
  EXPECT_EQ(session.current_op(), nullptr);
  EXPECT_EQ(session.ops_completed(), 1u);
  // Charges aggregate upward into the enclosing profile AND into the
  // session's cumulative totals.
  EXPECT_EQ(outer.Snapshot().pager_reads, 1u);
  EXPECT_EQ(outer.Snapshot().rows_scanned, 5u);
  EXPECT_EQ(session.totals().Snapshot().pager_reads, 1u);
}

TEST(OpProfileTest, ContendedLockWaitIsCharged) {
  obs::OpProfile profile;
  Mutex mu(LockRank::kPager);
  std::atomic<bool> held{false};
  std::thread holder([&] {
    mu.Lock();
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mu.Unlock();
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    obs::OpProfileScope scope(&profile);
    MutexLock blocked(mu);  // contended: the timed slow path runs
  }
  holder.join();
  EXPECT_GT(profile.Snapshot().lock_wait_ns, 0u);

  // Uncontended acquisition takes the try_lock fast path: no charge.
  obs::OpProfile cheap;
  {
    obs::OpProfileScope scope(&cheap);
    MutexLock uncontended(mu);
  }
  EXPECT_EQ(cheap.Snapshot().lock_wait_ns, 0u);
}

// --- Executor / storage charge sites ---------------------------------

TEST_F(QueryProfileSuite, SelectChargesAttachedProfile) {
  Predicate predicate = *ParsePredicate("age > 40");
  obs::OpProfile profile;
  {
    obs::OpProfileScope scope(&profile);
    auto result = db_->Select("employee", predicate);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->empty());
  }
  obs::OpProfileStats s = profile.Snapshot();
  EXPECT_GT(s.rows_scanned, 0u);
  EXPECT_GT(s.rows_matched, 0u);
  EXPECT_GT(s.predicate_evals, 0u);
  EXPECT_GT(s.batches, 0u);
  EXPECT_GT(s.heap_records, 0u);
  EXPECT_GT(s.arena_bytes, 0u);
  EXPECT_GT(s.pool_lookups, 0u);
  EXPECT_EQ(s.rows_scanned, s.heap_records);
}

TEST_F(QueryProfileSuite, NoProfileAttachedStaysCheapAndSafe) {
  ASSERT_EQ(obs::CurrentOpProfile(), nullptr);
  Predicate predicate = *ParsePredicate("age > 40");
  auto result = db_->Select("employee", predicate);
  ASSERT_TRUE(result.ok());  // every charge site tolerates nullptr
}

TEST_F(QueryProfileSuite, ParallelScanWorkersAdoptCallersProfile) {
  Predicate predicate = *ParsePredicate("age >= 18");
  exec::ScanSpec spec;
  spec.class_name = "employee";
  spec.predicate = &predicate;
  spec.parallelism = 4;
  obs::OpProfile profile;
  exec::ScanResult serial;
  {
    obs::OpProfileScope scope(&profile);
    auto result = exec::ExecuteScan(db_.get(), spec);
    ASSERT_TRUE(result.ok());
    serial = std::move(*result);
  }
  obs::OpProfileStats s = profile.Snapshot();
  EXPECT_GT(s.partitions, 1u);
  // Worker threads charged the initiator's profile: every record the
  // partitions pulled through the heap layer landed here (>= the rows
  // the executor reports — partition boundaries over-read).
  EXPECT_GE(s.heap_records, serial.stats.rows_scanned);
  EXPECT_EQ(s.rows_scanned, serial.stats.rows_scanned);
}

// --- EXPLAIN / EXPLAIN ANALYZE ---------------------------------------

TEST_F(QueryProfileSuite, ExplainSelectDescribesPlanWithoutRunning) {
  Predicate predicate = *ParsePredicate("age > 40");
  auto explained = db_->ExplainSelect("employee", predicate, false);
  ASSERT_TRUE(explained.ok());
  EXPECT_FALSE(explained->analyzed);
  std::string text = explained->RenderText();
  EXPECT_NE(text.find("scan"), std::string::npos);
  EXPECT_NE(text.find("class: employee"), std::string::npos);
  EXPECT_NE(text.find("predicate: "), std::string::npos);
  EXPECT_NE(text.find("strategy: batched-decode"), std::string::npos);
  EXPECT_NE(text.find("masked (1 attributes)"), std::string::npos);
  EXPECT_EQ(text.find("actual:"), std::string::npos) << text;
  std::string json = explained->RenderJson();
  EXPECT_NE(json.find("\"analyzed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"scan\""), std::string::npos);
}

TEST_F(QueryProfileSuite, ExplainPredictsIdsOnlyFastPath) {
  auto explained =
      db_->ExplainSelect("employee", Predicate::True(), false);
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->RenderText().find("strategy: ids-only"),
            std::string::npos);
}

TEST_F(QueryProfileSuite, ExplainAnalyzeSelectReportsActuals) {
  Predicate predicate = *ParsePredicate("age > 40");
  auto expected = db_->Select("employee", predicate);
  ASSERT_TRUE(expected.ok());
  auto explained = db_->ExplainSelect("employee", predicate, true);
  ASSERT_TRUE(explained.ok());
  EXPECT_TRUE(explained->analyzed);
  EXPECT_GT(explained->total_ns, 0u);
  EXPECT_EQ(explained->root.rows_out, expected->size());
  EXPECT_GT(explained->totals.rows_scanned, 0u);
  EXPECT_GT(explained->totals.pool_lookups, 0u);
  // Single-operator plan: root actuals ARE the totals.
  EXPECT_EQ(StatsJson(explained->root.actual),
            StatsJson(explained->totals));
  std::string text = explained->RenderText();
  EXPECT_NE(text.find("actual: rows="), std::string::npos);
  EXPECT_NE(text.find("totals: time="), std::string::npos);
  std::string json = explained->RenderJson();
  EXPECT_NE(json.find("\"rows_scanned\":"), std::string::npos);
  EXPECT_NE(json.find("\"pages_read\":"), std::string::npos);
}

TEST_F(QueryProfileSuite, ExplainAnalyzeMergesIntoEnclosingProfile) {
  Predicate predicate = *ParsePredicate("age > 40");
  obs::OpProfile outer;
  obs::OpProfileScope scope(&outer);
  auto explained = db_->ExplainSelect("employee", predicate, true);
  ASSERT_TRUE(explained.ok());
  // The nested analysis profile merged back: session totals would not
  // lose the work EXPLAIN ANALYZE performed.
  EXPECT_EQ(outer.Snapshot().rows_scanned,
            explained->totals.rows_scanned);
}

TEST_F(QueryProfileSuite, ExplainJoinPredictsStrategy) {
  Predicate hash = *ParsePredicate("left.age == right.age");
  auto explained = db_->ExplainJoin("employee", "manager", hash, false);
  ASSERT_TRUE(explained.ok());
  EXPECT_EQ(explained->root.op, "hash-join");
  ASSERT_EQ(explained->root.children.size(), 2u);
  EXPECT_EQ(explained->root.children[0].op, "scan");
  EXPECT_NE(explained->RenderText().find("key: left.age = right.age"),
            std::string::npos);

  Predicate loop = *ParsePredicate("left.age < right.age");
  auto nested = db_->ExplainJoin("employee", "manager", loop, false);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->root.op, "nested-loop-join");
}

// The acceptance property: per-operator actuals sum to exactly the
// query totals — no charge is double-counted or dropped between the
// two scan phases, the match phase, and the whole-query profile.
TEST_F(QueryProfileSuite, ExplainAnalyzeJoinActualsSumToTotals) {
  Predicate predicate = *ParsePredicate("left.age == right.age");
  auto explained = db_->ExplainJoin("employee", "manager", predicate, true);
  ASSERT_TRUE(explained.ok());
  ASSERT_TRUE(explained->analyzed);
  ASSERT_EQ(explained->root.children.size(), 2u);

  obs::OpProfileStats sum;
  sum += explained->root.children[0].actual;  // left scan
  sum += explained->root.children[1].actual;  // right scan
  sum += explained->root.actual;              // match phase
  EXPECT_EQ(StatsJson(sum), StatsJson(explained->totals));

  // And the operator attribution is sane: scans carry the storage
  // charges, the match phase carries the join-row charges.
  EXPECT_GT(explained->root.children[0].actual.rows_scanned, 0u);
  EXPECT_GT(explained->root.children[1].actual.rows_scanned, 0u);
  EXPECT_EQ(explained->root.actual.rows_scanned, 0u);
  EXPECT_GT(explained->root.actual.join_probe_rows, 0u);
  EXPECT_EQ(explained->root.children[0].actual.join_probe_rows, 0u);
}

// The profile's charges must agree with the engine's global metrics:
// running a query under a profile moves the process-wide pool counters
// by exactly what the profile recorded.
TEST_F(QueryProfileSuite, ProfileAgreesWithGlobalCounters) {
  db_->buffer_pool()->WaitForPrefetches();
  Predicate predicate = *ParsePredicate("age > 40");

  auto lookups_total = [&] {
    for (const obs::MetricSample& s : obs::Registry::Global().Snapshot()) {
      if (s.name == "pool.fetch.lookups") {
        return static_cast<uint64_t>(s.value);
      }
    }
    return uint64_t{0};
  };

  uint64_t before = lookups_total();
  obs::OpProfile profile;
  {
    obs::OpProfileScope scope(&profile);
    ASSERT_TRUE(db_->Select("employee", predicate).ok());
  }
  db_->buffer_pool()->WaitForPrefetches();
  uint64_t after = lookups_total();
  obs::OpProfileStats s = profile.Snapshot();
  EXPECT_GT(s.pool_lookups, 0u);
  // Other tests don't run concurrently in this process, so the global
  // delta is this query's work (prefetches it triggered included —
  // they adopt the caller's profile).
  EXPECT_EQ(after - before, s.pool_lookups);
}

// --- Session accounting ----------------------------------------------

TEST_F(QueryProfileSuite, SessionRegistryTracksOpenSessions) {
  obs::SessionRegistry& registry = obs::SessionRegistry::Global();
  size_t before = registry.size();
  {
    Session session = db_->OpenSession();
    ASSERT_NE(session.entry(), nullptr);
    EXPECT_EQ(registry.size(), before + 1);
    EXPECT_EQ(session.entry()->session_id(), session.id());
    EXPECT_EQ(session.entry()->current_op(), nullptr);

    Predicate predicate = *ParsePredicate("age > 40");
    ASSERT_TRUE(session.Select("employee", predicate).ok());
    ASSERT_TRUE(session.FirstObject("employee").ok());
    EXPECT_EQ(session.entry()->ops_completed(), 2u);
    EXPECT_GT(session.entry()->busy_ns(), 0u);
    EXPECT_GT(session.entry()->totals().Snapshot().rows_scanned, 0u);

    std::string json = registry.RenderJson();
    EXPECT_NE(json.find("\"session_id\":" + std::to_string(session.id())),
              std::string::npos);
    EXPECT_NE(json.find("\"ops_completed\":"), std::string::npos);
    EXPECT_NE(json.find("\"totals\":{"), std::string::npos);
  }
  EXPECT_EQ(registry.size(), before);  // close unregisters
}

TEST_F(QueryProfileSuite, MovedSessionKeepsSingleRegistration) {
  obs::SessionRegistry& registry = obs::SessionRegistry::Global();
  size_t before = registry.size();
  Session a = db_->OpenSession();
  uint64_t id = a.id();
  Session b = std::move(a);
  EXPECT_EQ(registry.size(), before + 1);
  EXPECT_EQ(b.entry()->session_id(), id);
  b = db_->OpenSession();  // overwriting unregisters the old entry
  EXPECT_EQ(registry.size(), before + 1);
  EXPECT_NE(b.entry()->session_id(), id);
}

// --- Slow-operation log ----------------------------------------------

TEST_F(QueryProfileSuite, SlowOpsParkFullProfileInRing) {
  obs::SlowOpLog::Global().ResetForTest();
  ScopedSlowThreshold capture_everything(1);

  Session session = db_->OpenSession();
  Predicate predicate = *ParsePredicate("age > 40");
  ASSERT_TRUE(session.Select("employee", predicate).ok());

  ASSERT_GE(obs::SlowOpLog::Global().recorded(), 1u);
  std::vector<obs::SlowOpRecord> records =
      obs::SlowOpLog::Global().Snapshot();
  ASSERT_FALSE(records.empty());
  const obs::SlowOpRecord& slow = records.back();
  EXPECT_STREQ(slow.op, "select");
  EXPECT_EQ(slow.session_id, session.id());
  EXPECT_GT(slow.duration_ns, 0u);
  EXPECT_GT(slow.stats.rows_scanned, 0u);

  // The journal carries the threshold crossing too.
  bool journaled = false;
  for (const obs::JournalRecord& r : obs::Journal::Global().Snapshot()) {
    if (r.type == obs::JournalEvent::kSlowOp &&
        r.arg1 == static_cast<int64_t>(session.id())) {
      journaled = true;
    }
  }
  EXPECT_TRUE(journaled);

  std::string json = obs::SlowOpLog::Global().RenderJson();
  EXPECT_NE(json.find("\"op\":\"select\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
}

TEST(SlowOpLogTest, ZeroThresholdDisablesCapture) {
  obs::SlowOpLog::Global().ResetForTest();
  ScopedSlowThreshold disabled(0);
  obs::ProfiledOp op(nullptr, "never_recorded");
  // (destructor runs at scope end)
}

TEST(SlowOpLogTest, RingOverwritesOldestBeyondCapacity) {
  obs::SlowOpLog& log = obs::SlowOpLog::Global();
  log.ResetForTest();
  obs::OpProfileStats stats;
  const uint64_t total = obs::SlowOpLog::kCapacity + 22;
  for (uint64_t i = 0; i < total; ++i) {
    stats.rows_scanned = i;
    log.Record("ring_test", /*session_id=*/i, /*trace_id=*/0,
               /*duration_ns=*/100 + i, stats);
  }
  EXPECT_EQ(log.recorded(), total);
  std::vector<obs::SlowOpRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), obs::SlowOpLog::kCapacity);
  // Oldest first, and exactly the newest kCapacity survive.
  EXPECT_EQ(records.front().seq, total - obs::SlowOpLog::kCapacity + 1);
  EXPECT_EQ(records.back().seq, total);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
  }
  log.ResetForTest();
}

// --- Percentile windows ----------------------------------------------

TEST(MetricsWindowTest, WindowsRotateAndTrackRecentSamples) {
  obs::Registry& registry = obs::Registry::Global();
  registry.SetWindowDurationNs(0);  // rotate every snapshot
  obs::Histogram* h = registry.histogram("obs_test.profile.window");
  for (int i = 0; i < 100; ++i) h->Record(1000);

  auto window_of = [&](const char* name) {
    obs::MetricSample out;
    for (const obs::MetricSample& s : registry.Snapshot()) {
      if (s.name == name) out = s;
    }
    return out;
  };

  obs::MetricSample first = window_of("obs_test.profile.window");
  EXPECT_EQ(first.window_count, 100u);
  EXPECT_GT(first.window_p50, 0u);

  // A burst of much slower samples dominates the *next* window even
  // though the lifetime histogram is still mostly fast samples.
  for (int i = 0; i < 10; ++i) h->Record(1u << 20);
  obs::MetricSample second = window_of("obs_test.profile.window");
  EXPECT_EQ(second.window_count, 10u);
  EXPECT_GT(second.window_p50, first.window_p50 * 100);
  EXPECT_GT(second.window_p99, first.window_p99);
  // Lifetime quantiles still reflect the full population.
  EXPECT_LT(second.p50, second.window_p50);

  // With rotate-every-snapshot, an idle interval closes as an *empty*
  // window — the quantiles honestly say "nothing ran", they don't
  // replay stale samples.
  obs::MetricSample third = window_of("obs_test.profile.window");
  EXPECT_EQ(third.window_count, 0u);
  EXPECT_EQ(third.window_p99, 0u);

  registry.SetWindowDurationNs(60ull * 1000 * 1000 * 1000);
}

TEST(MetricsWindowTest, PrometheusAndJsonCarryWindowQuantiles) {
  obs::Registry& registry = obs::Registry::Global();
  registry.SetWindowDurationNs(0);
  obs::Histogram* h = registry.histogram("obs_test.profile.window_export");
  h->Record(5000);
  (void)registry.Snapshot();  // close a window containing the sample

  std::string prometheus = registry.RenderPrometheus();
  EXPECT_NE(prometheus.find("obs_test_profile_window_export_window_p95"),
            std::string::npos);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"window\":{"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  registry.SetWindowDurationNs(60ull * 1000 * 1000 * 1000);
}

TEST(MetricsWindowTest, JsonExportsBucketBoundaries) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram* h = registry.histogram("obs_test.profile.buckets");
  h->Record(1);     // bucket le=1
  h->Record(1000);  // mid bucket
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"buckets\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"le\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"count\":"), std::string::npos);
}

// --- Telemetry endpoint ----------------------------------------------

std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Sends `payload` raw (no trailing CRLF added) and returns the
/// response — for the malformed-request tests.
std::string HttpRaw(uint16_t port, const std::string& payload) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, payload.data(), payload.size(), 0);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(QueryProfileSuite, TelemetryServesSessionsSlowAndHealth) {
  obs::SlowOpLog::Global().ResetForTest();
  ScopedSlowThreshold capture_everything(1);
  Session session = db_->OpenSession();
  Predicate predicate = *ParsePredicate("age > 40");
  ASSERT_TRUE(session.Select("employee", predicate).ok());

  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(/*port=*/0).ok());

  std::string sessions = HttpGet(server.port(), "/sessions");
  EXPECT_NE(sessions.find("200 OK"), std::string::npos);
  EXPECT_NE(sessions.find("application/json"), std::string::npos);
  EXPECT_NE(
      sessions.find("\"session_id\":" + std::to_string(session.id())),
      std::string::npos);

  std::string slow = HttpGet(server.port(), "/slow");
  EXPECT_NE(slow.find("200 OK"), std::string::npos);
  EXPECT_NE(slow.find("\"op\":\"select\""), std::string::npos);
  EXPECT_NE(slow.find("\"rows_scanned\":"), std::string::npos);

  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"wal\":{\"recovery_runs\":"), std::string::npos);
  EXPECT_NE(health.find("\"torn_bytes\":"), std::string::npos);

  std::string metrics_json = HttpGet(server.port(), "/metrics.json");
  EXPECT_NE(metrics_json.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics_json.find("\"counters\":{"), std::string::npos);

  server.Stop();
}

TEST(TelemetryErrorPathTest, UnknownPathReturns404) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  std::string response = HttpGet(server.port(), "/definitely-not-a-page");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos);
  server.Stop();
}

TEST(TelemetryErrorPathTest, OversizedRequestLineRejected) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  // 8 KiB without a CRLF: the server must reject, not buffer forever.
  std::string huge = "GET /" + std::string(8192, 'a');
  std::string response = HttpRaw(server.port(), huge);
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);
  EXPECT_NE(response.find("request line too long"), std::string::npos);
  server.Stop();
}

TEST(TelemetryErrorPathTest, TruncatedRequestGetsNoResponse) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  // Connection closed before the request line completes: the server
  // just drops it (and must not crash or stall the accept loop).
  std::string response = HttpRaw(server.port(), "GET /metrics");
  EXPECT_EQ(response, "");
  // The listener is still healthy afterwards.
  std::string ok = HttpGet(server.port(), "/healthz");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace ode::odb
