#include "common/strings.h"

#include <cctype>

namespace ode {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string PadTo(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::vector<std::string> WrapText(std::string_view text, size_t width) {
  std::vector<std::string> lines;
  if (width == 0) width = 1;
  for (const std::string& paragraph : Split(text, '\n')) {
    std::string_view rest = paragraph;
    if (rest.empty()) {
      lines.emplace_back();
      continue;
    }
    while (!rest.empty()) {
      if (rest.size() <= width) {
        lines.emplace_back(rest);
        break;
      }
      size_t brk = rest.rfind(' ', width);
      if (brk == std::string_view::npos || brk == 0) brk = width;
      lines.emplace_back(StripWhitespace(rest.substr(0, brk)));
      rest = rest.substr(brk);
      while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    }
  }
  return lines;
}

}  // namespace ode
