// Figure 1: the initial display — a scrollable "database" window with
// the names and iconified images of the current Ode databases.
//
// Measures opening the database window and compositing the screen as
// the number of registered databases grows.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace ode::bench {
namespace {

std::unique_ptr<view::OdeViewApp> AppWithDatabases(int count) {
  auto app = std::make_unique<view::OdeViewApp>(240, 100);
  for (int i = 0; i < count; ++i) {
    auto db = ValueOrDie(
        odb::Database::CreateInMemory("db" + std::to_string(i)),
        "create db");
    CheckOk(app->AddDatabase(std::move(db)), "register");
  }
  return app;
}

void BM_OpenInitialWindow(benchmark::State& state) {
  int databases = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto app = AppWithDatabases(databases);
    state.ResumeTiming();
    CheckOk(app->OpenInitialWindow(), "open");
    benchmark::DoNotOptimize(app->initial_window());
  }
  state.SetItemsProcessed(state.iterations() * databases);
}
BENCHMARK(BM_OpenInitialWindow)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ClickDatabaseIcon(benchmark::State& state) {
  // Clicking an icon spawns the db-interactor and its schema window.
  for (auto _ : state) {
    state.PauseTiming();
    LabSession session = LabSession::Create();
    CheckOk(session.app->CloseDatabase("lab"), "close");
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        ValueOrDie(session.app->OpenDatabase("lab"), "open"));
  }
}
BENCHMARK(BM_ClickDatabaseIcon);

void BM_CompositeScreen(benchmark::State& state) {
  int databases = static_cast<int>(state.range(0));
  auto app = AppWithDatabases(databases);
  CheckOk(app->OpenInitialWindow(), "open");
  for (auto _ : state) {
    benchmark::DoNotOptimize(app->Screenshot());
  }
}
BENCHMARK(BM_CompositeScreen)->Arg(4)->Arg(64);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
