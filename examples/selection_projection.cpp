// selection_projection: the Section 5 extensions — projecting an
// object display onto chosen attributes (§5.1) and filtering an
// object set with selection predicates built both ways (§5.2).

#include <cstdio>

#include "dynlink/lab_modules.h"
#include "odb/database.h"
#include "odb/labdb.h"
#include "odeview/app.h"
#include "owl/widgets.h"

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::ode::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

#define CHECK_ASSIGN(lhs, expr)                                     \
  auto lhs##_result = (expr);                                       \
  if (!lhs##_result.ok()) {                                         \
    std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                 lhs##_result.status().ToString().c_str());         \
    return 1;                                                       \
  }                                                                 \
  auto& lhs = *lhs##_result

std::string DisplayText(ode::view::OdeViewApp& app,
                        ode::view::BrowseNode* node) {
  ode::owl::Window* window =
      app.server()->FindWindow(node->DisplayWindow("text"));
  if (window == nullptr) return "<no display>";
  auto* text =
      dynamic_cast<ode::owl::ScrollText*>(window->FindWidget("content"));
  if (text == nullptr) return "<no content>";
  std::string out;
  for (const std::string& line : text->lines()) out += line + "\n";
  return out;
}

}  // namespace

int main() {
  using namespace ode;

  CHECK_ASSIGN(db, odb::Database::CreateInMemory("lab"));
  CHECK_OK(odb::BuildLabDatabase(db.get()));
  view::OdeViewApp app(160, 60);
  CHECK_OK(dynlink::RegisterLabDisplayModules(app.repository(), "lab",
                                              db->schema()));
  CHECK_OK(app.AddDatabaseBorrowed(db.get()));
  CHECK_OK(app.OpenInitialWindow());
  CHECK_ASSIGN(lab, app.OpenDatabase("lab"));

  CHECK_ASSIGN(node, lab->OpenObjectSet("employee"));
  CHECK_OK(node->Next());
  CHECK_OK(node->ToggleFormat("text"));

  // ---- §5.1 Projection --------------------------------------------------
  std::printf("== default display (class designer's attribute set) ==\n%s\n",
              DisplayText(app, node).c_str());

  CHECK_ASSIGN(displaylist, node->DisplayList());
  std::printf("displaylist of employee:");
  for (const std::string& attr : displaylist) std::printf(" %s", attr.c_str());
  std::printf("\n\n");

  // The user clicks `project`, picks name + age, then apply — here via
  // the projection dialog's buttons.
  CHECK_OK(lab->OpenProjectionDialog("employee"));
  owl::WindowId dialog = lab->projection_dialog("employee");
  CHECK_OK(app.server()->ClickWidget(dialog, "attr:name"));
  CHECK_OK(app.server()->ClickWidget(dialog, "attr:age"));
  CHECK_OK(app.server()->ClickWidget(dialog, "apply"));
  std::printf("== projected onto {name, age} ==\n%s\n",
              DisplayText(app, node).c_str());

  // ALL lifts the projection.
  CHECK_OK(app.server()->ClickWidget(dialog, "ALL"));
  std::printf("== after ALL (projection lifted) ==\n%s\n",
              DisplayText(app, node).c_str());

  // ---- §5.2 Selection -----------------------------------------------------
  CHECK_ASSIGN(selectlist, node->SelectList());
  std::printf("selectlist of employee:");
  for (const std::string& attr : selectlist) std::printf(" %s", attr.c_str());
  std::printf("\n\n");

  // Scheme 1: menus + typed value (Pasta-3 style).
  CHECK_OK(lab->OpenSelectionDialog("employee"));
  owl::WindowId sel = lab->selection_dialog("employee");
  owl::Window* sel_window = app.server()->FindWindow(sel);
  auto* attr_menu =
      dynamic_cast<owl::Menu*>(sel_window->FindWidget("attr-menu"));
  auto* op_menu =
      dynamic_cast<owl::Menu*>(sel_window->FindWidget("op-menu"));
  auto* value =
      dynamic_cast<owl::TextInput*>(sel_window->FindWidget("value"));
  CHECK_OK(attr_menu->SelectItem("age"));
  CHECK_OK(op_menu->SelectItem(">="));
  value->set_text("55");
  CHECK_OK(app.server()->ClickWidget(sel, "add-and"));
  CHECK_OK(app.server()->ClickWidget(sel, "apply"));
  std::printf("== menu-built predicate: employees with age >= 55 ==\n");
  int count = 0;
  CHECK_OK(node->Reset());
  while (node->Next().ok()) {
    CHECK_ASSIGN(current, node->Current());
    std::printf("  %-10s age %2lld\n",
                current.value.FindField("name")->AsString().c_str(),
                static_cast<long long>(
                    current.value.FindField("age")->AsInt()));
    ++count;
  }
  std::printf("  (%d of 55 employees)\n\n", count);

  // Scheme 2: the QBE-style condition box — type the whole predicate.
  CHECK_OK(lab->ApplyConditionBox(
      "employee", "age < 30 && salary > 60000 || name contains \"ra\""));
  std::printf(
      "== condition box: age < 30 && salary > 60000 || name contains "
      "\"ra\" ==\n");
  CHECK_OK(node->Reset());
  while (node->Next().ok()) {
    CHECK_ASSIGN(current, node->Current());
    std::printf("  %-10s age %2lld salary %.0f\n",
                current.value.FindField("name")->AsString().c_str(),
                static_cast<long long>(
                    current.value.FindField("age")->AsInt()),
                current.value.FindField("salary")->AsReal());
  }

  // Selection errors are validated against the selectlist.
  Status bad = lab->ApplyConditionBox("employee", "picture == \"x\"");
  std::printf("\nselecting on a non-selectlist attribute: %s\n",
              bad.ToString().c_str());
  return 0;
}
