#ifndef ODEVIEW_ODEVIEW_APP_H_
#define ODEVIEW_ODEVIEW_APP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dynlink/repository.h"
#include "odb/database.h"
#include "odeview/db_interactor.h"
#include "odeview/display_state.h"
#include "owl/server.h"

namespace ode::view {

/// OdeView itself: the top-level application.
///
/// "OdeView begins as a single process that allows a user to choose
/// among different databases. When the user selects a database, a
/// 'db-interactor' process is created..." (§4.6). Here the initial
/// process is this class: it owns the display server, the module
/// repository, the registered databases, and one DbInteractor per
/// database the user opened. Multiple databases can be browsed
/// simultaneously.
class OdeViewApp {
 public:
  /// `screen_width`/`screen_height` size the headless display.
  explicit OdeViewApp(int screen_width = 132, int screen_height = 50);
  ~OdeViewApp();

  OdeViewApp(const OdeViewApp&) = delete;
  OdeViewApp& operator=(const OdeViewApp&) = delete;

  owl::Server* server() { return &server_; }
  dynlink::ModuleRepository* repository() { return &repository_; }
  DisplayStateRegistry* display_states() { return &display_states_; }

  /// Registers a database under its own name, taking ownership.
  Status AddDatabase(std::unique_ptr<odb::Database> db);
  /// Registers a caller-owned database (must outlive the app).
  Status AddDatabaseBorrowed(odb::Database* db);

  std::vector<std::string> DatabaseNames() const;
  Result<odb::Database*> FindDatabase(const std::string& name) const;

  /// Opens the initial scrollable "database" window (Fig. 1) with one
  /// icon button per registered database.
  Status OpenInitialWindow();
  owl::WindowId initial_window() const { return initial_window_; }

  /// Opens (or returns) the db-interactor for `name` — what clicking a
  /// database icon does — and opens its schema window.
  Result<DbInteractor*> OpenDatabase(const std::string& name);
  DbInteractor* FindInteractor(const std::string& name);
  /// Closes the interactor and all its windows.
  Status CloseDatabase(const std::string& name);

  /// Opens (or re-opens) the runtime inspector: a scrollable window
  /// showing every metric in the global `obs::Registry`. The window is
  /// built from registry data alone — it never reaches into engine or
  /// interactor internals, mirroring the paper's separation between
  /// the application and the tool observing it — so it works no matter
  /// which databases are open.
  Status OpenStatsWindow();
  /// Re-renders the inspector from a fresh registry snapshot.
  Status RefreshStatsWindow();
  owl::WindowId stats_window() const { return stats_window_; }

  /// Runs the event loop until the queue drains (the XtMainLoop
  /// analog).
  int RunLoop() { return server_.RunLoop(); }

  /// A full-screen rendering of the current session.
  std::string Screenshot() { return server_.Composite().ToString(); }

 private:
  owl::Server server_;
  dynlink::ModuleRepository repository_;
  DisplayStateRegistry display_states_;
  std::vector<std::unique_ptr<odb::Database>> owned_databases_;
  std::map<std::string, odb::Database*> databases_;
  std::map<std::string, std::unique_ptr<DbInteractor>> interactors_;
  owl::WindowId initial_window_ = owl::kNoWindow;
  owl::WindowId stats_window_ = owl::kNoWindow;
};

}  // namespace ode::view

#endif  // ODEVIEW_ODEVIEW_APP_H_
