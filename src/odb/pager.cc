#include "odb/pager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/trace.h"

namespace ode::odb {

namespace {

// Shared (process-wide) I/O instruments. Pagers are plain backends
// with no per-instance stats API, so they count straight into the
// global registry; the pointers are cached once per metric name.
obs::Counter& MemReads() {
  static obs::Counter* c = obs::Registry::Global().counter("pager.mem.reads");
  return *c;
}
obs::Counter& MemWrites() {
  static obs::Counter* c = obs::Registry::Global().counter("pager.mem.writes");
  return *c;
}
obs::Counter& FileReads() {
  static obs::Counter* c = obs::Registry::Global().counter("pager.file.reads");
  return *c;
}
obs::Counter& FileWrites() {
  static obs::Counter* c =
      obs::Registry::Global().counter("pager.file.writes");
  return *c;
}
obs::Counter& FileSyncs() {
  static obs::Counter* c = obs::Registry::Global().counter("pager.file.syncs");
  return *c;
}

}  // namespace

Result<PageId> MemPager::Allocate() {
  MutexLock lock(mu_);
  auto page = std::make_unique<Page>();
  page->Zero();
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPager::Read(PageId id, Page* page) {
  MutexLock lock(mu_);
  if (id >= pages_.size()) {
    return Status::IOError("read of unallocated page " + std::to_string(id));
  }
  *page = *pages_[id];
  MemReads().Increment();
  if (auto* profile = obs::CurrentOpProfile()) profile->ChargePagerRead();
  return Status::OK();
}

Status MemPager::Write(PageId id, const Page& page) {
  MutexLock lock(mu_);
  // Like FilePager, a write exactly at page_count extends by one page;
  // anything past that is an error.
  if (id > pages_.size()) {
    return Status::IOError("write of unallocated page " +
                           std::to_string(id));
  }
  if (id == pages_.size()) {
    pages_.push_back(std::make_unique<Page>());
  }
  *pages_[id] = page;
  MemWrites().Increment();
  if (auto* profile = obs::CurrentOpProfile()) profile->ChargePagerWrite();
  return Status::OK();
}

uint32_t MemPager::page_count() const {
  MutexLock lock(mu_);
  return static_cast<uint32_t>(pages_.size());
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path,
                                                   bool create) {
  int flags = create ? (O_RDWR | O_CREAT | O_TRUNC) : O_RDWR;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open database file '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat '" + path + "'");
  }
  auto size = static_cast<size_t>(st.st_size);
  if (size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("database file '" + path +
                              "' is not page-aligned");
  }
  auto count = static_cast<uint32_t>(size / kPageSize);
  return std::unique_ptr<FilePager>(new FilePager(fd, count, path));
}

FilePager::~FilePager() {
  if (fd_ >= 0) ::close(fd_);
}

Status FilePager::WriteAt(PageId id, const Page& page) {
  const char* src = page.bytes();
  size_t remaining = kPageSize;
  auto offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  while (remaining > 0) {
    ssize_t n = ::pwrite(fd_, src, remaining, offset);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("short write of page " + std::to_string(id) +
                             " in '" + path_ + "'");
    }
    src += n;
    offset += n;
    remaining -= static_cast<size_t>(n);
  }
  FileWrites().Increment();
  if (auto* profile = obs::CurrentOpProfile()) profile->ChargePagerWrite();
  return Status::OK();
}

Result<PageId> FilePager::Allocate() {
  Page zero;
  zero.Zero();
  MutexLock lock(extend_mu_);
  PageId id = page_count_.load(std::memory_order_relaxed);
  ODE_RETURN_IF_ERROR(WriteAt(id, zero));
  page_count_.store(id + 1, std::memory_order_release);
  return id;
}

Status FilePager::Read(PageId id, Page* page) {
  ODE_TRACE_SPAN("pager.read");
  if (id >= page_count_.load(std::memory_order_acquire)) {
    return Status::IOError("read of unallocated page " + std::to_string(id));
  }
  char* dst = page->bytes();
  size_t remaining = kPageSize;
  auto offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  while (remaining > 0) {
    ssize_t n = ::pread(fd_, dst, remaining, offset);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("short read of page " + std::to_string(id) +
                             " from '" + path_ + "'");
    }
    dst += n;
    offset += n;
    remaining -= static_cast<size_t>(n);
  }
  FileReads().Increment();
  if (auto* profile = obs::CurrentOpProfile()) profile->ChargePagerRead();
  return Status::OK();
}

Status FilePager::Write(PageId id, const Page& page) {
  ODE_TRACE_SPAN("pager.write");
  // Fast path: rewriting an existing page needs no lock — pwrite is
  // positional and the pool serializes same-page writers.
  if (id < page_count_.load(std::memory_order_acquire)) {
    return WriteAt(id, page);
  }
  MutexLock lock(extend_mu_);
  uint32_t count = page_count_.load(std::memory_order_relaxed);
  if (id > count) {
    return Status::IOError("write of unallocated page " +
                           std::to_string(id));
  }
  ODE_RETURN_IF_ERROR(WriteAt(id, page));
  if (id == count) {
    page_count_.store(count + 1, std::memory_order_release);
  }
  return Status::OK();
}

uint32_t FilePager::page_count() const {
  return page_count_.load(std::memory_order_acquire);
}

Status FilePager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed for '" + path_ + "'");
  }
  FileSyncs().Increment();
  return Status::OK();
}

}  // namespace ode::odb
