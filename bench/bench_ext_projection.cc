// Section 5.1 (extension): projection — displaylist retrieval, bit
// vector construction, and masked display rendering as the number of
// attributes grows.

#include <benchmark/benchmark.h>

#include <sstream>

#include "bench/bench_util.h"
#include "dynlink/synthesized.h"
#include "odeview/display_state.h"

namespace ode::bench {
namespace {

/// A class with `n` public int attributes a0..a{n-1}, all displayable.
std::unique_ptr<odb::Database> WideDb(int attrs) {
  auto db = ValueOrDie(odb::Database::CreateInMemory("wide"), "db");
  std::ostringstream ddl;
  ddl << "persistent class wide {\npublic:\n";
  for (int i = 0; i < attrs; ++i) ddl << "  int a" << i << ";\n";
  ddl << "};\n";
  CheckOk(db->DefineSchema(ddl.str()), "schema");
  std::vector<odb::Value::Field> fields;
  for (int i = 0; i < attrs; ++i) {
    fields.push_back({"a" + std::to_string(i), odb::Value::Int(i)});
  }
  (void)ValueOrDie(
      db->CreateObject("wide", odb::Value::Struct(std::move(fields))),
      "object");
  return db;
}

void BM_ProjectionMaskBuild(benchmark::State& state) {
  int attrs = static_cast<int>(state.range(0));
  std::vector<std::string> displaylist;
  std::vector<std::string> chosen;
  for (int i = 0; i < attrs; ++i) {
    displaylist.push_back("a" + std::to_string(i));
    if (i % 2 == 0) chosen.push_back(displaylist.back());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        view::BuildProjectionMask(displaylist, chosen));
  }
  state.counters["attrs"] = attrs;
}
BENCHMARK(BM_ProjectionMaskBuild)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_MaskedDisplayRender(benchmark::State& state) {
  int attrs = static_cast<int>(state.range(0));
  bool projected = state.range(1) == 1;
  auto db = WideDb(attrs);
  odb::ObjectBuffer obj = ValueOrDie(
      db->GetObject(ValueOrDie(db->FirstObject("wide"), "first")), "get");
  std::vector<std::string> displaylist =
      ValueOrDie(dynlink::SynthesizeDisplayList(db->schema(), "wide"),
                 "list");
  std::vector<bool> mask;
  if (projected) {
    mask.assign(displaylist.size(), false);
    mask[0] = true;  // project onto a single attribute
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie(
        dynlink::FormatObjectText(db->schema(), obj, displaylist, mask,
                                  false),
        "format"));
  }
  state.SetLabel(projected ? "projected to 1 attr" : "all attrs");
  state.counters["attrs"] = attrs;
}
BENCHMARK(BM_MaskedDisplayRender)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_ProjectionApplyInteraction(benchmark::State& state) {
  // The full §5.1 flow on the lab db: set a projection and re-render.
  LabSession session = LabSession::Create();
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(node->Next(), "next");
  CheckOk(node->ToggleFormat("text"), "text");
  for (auto _ : state) {
    CheckOk(node->SetProjection({"name", "age"}), "project");
    CheckOk(node->ClearProjection(), "clear");
  }
}
BENCHMARK(BM_ProjectionApplyInteraction);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
