#include "dag/layout.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "common/metrics.h"
#include "common/trace.h"

namespace ode::dag {

namespace {

/// Fenwick tree for counting inversions in the bilayer sweep.
class Bit {
 public:
  explicit Bit(int n) : tree_(static_cast<size_t>(n) + 1, 0) {}

  void Add(int i) {
    for (++i; i < static_cast<int>(tree_.size()); i += i & (-i)) {
      ++tree_[static_cast<size_t>(i)];
    }
  }

  /// Sum of counts in [0, i].
  uint64_t Prefix(int i) const {
    uint64_t s = 0;
    for (++i; i > 0; i -= i & (-i)) s += tree_[static_cast<size_t>(i)];
    return s;
  }

  uint64_t Total() const { return Prefix(static_cast<int>(tree_.size()) - 2); }

 private:
  std::vector<uint64_t> tree_;
};

/// Internal node in the dummy-expanded graph.
struct LNode {
  NodeId original = -1;  ///< -1 for dummy nodes
  int layer = 0;
  int order = 0;
  double x_center = 0;  ///< working coordinate during placement
  int width = 1;
  std::vector<int> up;    ///< neighbors in layer-1 (internal ids)
  std::vector<int> down;  ///< neighbors in layer+1
};

/// Working state for the Sugiyama pipeline.
struct Pipeline {
  const Digraph* graph;
  LayoutOptions options;
  std::vector<std::pair<NodeId, NodeId>> acyclic_edges;  // possibly reversed
  std::vector<bool> reversed;       // per input edge
  std::vector<int> layer_of;        // per original node
  std::vector<LNode> lnodes;        // internal nodes (originals first)
  std::vector<std::vector<int>> layers;  // internal ids per layer
  /// Per input edge: chain of internal ids source..target.
  std::vector<std::vector<int>> edge_chains;
};

/// 1. Cycle removal: DFS marking back edges, which get reversed.
void RemoveCycles(Pipeline* p) {
  const Digraph& g = *p->graph;
  int n = g.node_count();
  std::vector<int> state(static_cast<size_t>(n), 0);  // 0 new 1 open 2 done
  p->reversed.assign(g.edges().size(), false);
  // Map (from,to) -> edge index for marking.
  std::vector<std::vector<std::pair<NodeId, size_t>>> out_index(
      static_cast<size_t>(n));
  for (size_t e = 0; e < g.edges().size(); ++e) {
    out_index[static_cast<size_t>(g.edges()[e].first)].push_back(
        {g.edges()[e].second, e});
  }
  // Iterative DFS.
  for (NodeId root = 0; root < n; ++root) {
    if (state[static_cast<size_t>(root)] != 0) continue;
    std::vector<std::pair<NodeId, size_t>> stack;  // node, next-child idx
    stack.push_back({root, 0});
    state[static_cast<size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [node, child_idx] = stack.back();
      auto& children = out_index[static_cast<size_t>(node)];
      if (child_idx >= children.size()) {
        state[static_cast<size_t>(node)] = 2;
        stack.pop_back();
        continue;
      }
      auto [next, edge_idx] = children[child_idx++];
      if (state[static_cast<size_t>(next)] == 1) {
        p->reversed[edge_idx] = true;  // back edge
      } else if (state[static_cast<size_t>(next)] == 0) {
        state[static_cast<size_t>(next)] = 1;
        stack.push_back({next, 0});
      }
    }
  }
  p->acyclic_edges.clear();
  for (size_t e = 0; e < g.edges().size(); ++e) {
    auto [from, to] = g.edges()[e];
    if (p->reversed[e]) std::swap(from, to);
    p->acyclic_edges.emplace_back(from, to);
  }
}

/// 2. Layer assignment over the acyclic edge set.
void AssignLayers(Pipeline* p) {
  int n = p->graph->node_count();
  std::vector<std::vector<NodeId>> out(static_cast<size_t>(n));
  std::vector<int> in_degree(static_cast<size_t>(n), 0);
  for (const auto& [from, to] : p->acyclic_edges) {
    out[static_cast<size_t>(from)].push_back(to);
    ++in_degree[static_cast<size_t>(to)];
  }
  p->layer_of.assign(static_cast<size_t>(n), 0);
  std::deque<NodeId> ready;
  std::vector<int> remaining = in_degree;
  for (NodeId v = 0; v < n; ++v) {
    if (remaining[static_cast<size_t>(v)] == 0) ready.push_back(v);
  }
  int width_bound = p->options.max_width;
  if (p->options.layering == LayeringMethod::kCoffmanGraham &&
      width_bound <= 0) {
    width_bound = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                  static_cast<double>(n)))));
  }
  std::vector<int> layer_fill;  // nodes per layer so far
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop_front();
    int layer = p->layer_of[static_cast<size_t>(v)];
    if (p->options.layering == LayeringMethod::kCoffmanGraham) {
      while (static_cast<size_t>(layer) < layer_fill.size() &&
             layer_fill[static_cast<size_t>(layer)] >= width_bound) {
        ++layer;
      }
      if (static_cast<size_t>(layer) >= layer_fill.size()) {
        layer_fill.resize(static_cast<size_t>(layer) + 1, 0);
      }
      ++layer_fill[static_cast<size_t>(layer)];
      p->layer_of[static_cast<size_t>(v)] = layer;
    }
    for (NodeId w : out[static_cast<size_t>(v)]) {
      p->layer_of[static_cast<size_t>(w)] =
          std::max(p->layer_of[static_cast<size_t>(w)], layer + 1);
      if (--remaining[static_cast<size_t>(w)] == 0) ready.push_back(w);
    }
  }
}

/// 3. Dummy-node insertion and initial ordering.
void BuildLayeredGraph(Pipeline* p) {
  const Digraph& g = *p->graph;
  int n = g.node_count();
  int max_layer = 0;
  for (int l : p->layer_of) max_layer = std::max(max_layer, l);
  p->lnodes.clear();
  p->lnodes.resize(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    LNode& node = p->lnodes[static_cast<size_t>(v)];
    node.original = v;
    node.layer = p->layer_of[static_cast<size_t>(v)];
    node.width = p->options.fixed_node_width > 0
                     ? p->options.fixed_node_width
                     : static_cast<int>(g.label(v).size()) + 2;
  }
  p->edge_chains.assign(g.edges().size(), {});
  for (size_t e = 0; e < p->acyclic_edges.size(); ++e) {
    auto [from, to] = p->acyclic_edges[e];
    std::vector<int> chain;
    chain.push_back(from);
    int lf = p->layer_of[static_cast<size_t>(from)];
    int lt = p->layer_of[static_cast<size_t>(to)];
    int prev = from;
    for (int layer = lf + 1; layer < lt; ++layer) {
      LNode dummy;
      dummy.original = -1;
      dummy.layer = layer;
      dummy.width = 1;
      int id = static_cast<int>(p->lnodes.size());
      p->lnodes.push_back(dummy);
      p->lnodes[static_cast<size_t>(prev)].down.push_back(id);
      p->lnodes[static_cast<size_t>(id)].up.push_back(prev);
      chain.push_back(id);
      prev = id;
    }
    p->lnodes[static_cast<size_t>(prev)].down.push_back(to);
    p->lnodes[static_cast<size_t>(to)].up.push_back(prev);
    chain.push_back(to);
    p->edge_chains[e] = std::move(chain);
  }
  // Initial order: BFS from in-degree-0 nodes, appended per layer.
  p->layers.assign(static_cast<size_t>(max_layer) + 1, {});
  std::vector<bool> placed(p->lnodes.size(), false);
  std::deque<int> queue;
  for (size_t i = 0; i < p->lnodes.size(); ++i) {
    if (p->lnodes[i].up.empty()) queue.push_back(static_cast<int>(i));
  }
  while (!queue.empty()) {
    int id = queue.front();
    queue.pop_front();
    if (placed[static_cast<size_t>(id)]) continue;
    placed[static_cast<size_t>(id)] = true;
    p->layers[static_cast<size_t>(p->lnodes[static_cast<size_t>(id)].layer)]
        .push_back(id);
    for (int down : p->lnodes[static_cast<size_t>(id)].down) {
      queue.push_back(down);
    }
  }
  for (size_t i = 0; i < p->lnodes.size(); ++i) {
    if (!placed[i]) {
      p->layers[static_cast<size_t>(p->lnodes[i].layer)].push_back(
          static_cast<int>(i));
    }
  }
  for (auto& layer : p->layers) {
    for (size_t i = 0; i < layer.size(); ++i) {
      p->lnodes[static_cast<size_t>(layer[i])].order = static_cast<int>(i);
    }
  }
}

uint64_t TotalCrossings(const Pipeline& p) {
  uint64_t total = 0;
  for (size_t layer = 0; layer + 1 < p.layers.size(); ++layer) {
    std::vector<std::pair<int, int>> edges;
    for (int id : p.layers[layer]) {
      const LNode& node = p.lnodes[static_cast<size_t>(id)];
      for (int down : node.down) {
        edges.emplace_back(node.order,
                           p.lnodes[static_cast<size_t>(down)].order);
      }
    }
    total += CountBilayerCrossings(std::move(edges));
  }
  return total;
}

/// One ordering pass: reorder `layer` by the barycenter/median of each
/// node's neighbors in the fixed adjacent layer.
void OrderLayer(Pipeline* p, size_t layer, bool use_up, bool median) {
  auto& nodes = p->layers[layer];
  std::vector<std::pair<double, int>> keyed;
  keyed.reserve(nodes.size());
  for (int id : nodes) {
    const LNode& node = p->lnodes[static_cast<size_t>(id)];
    const std::vector<int>& neighbors = use_up ? node.up : node.down;
    double key;
    if (neighbors.empty()) {
      key = node.order;  // keep position
    } else if (median) {
      std::vector<int> pos;
      pos.reserve(neighbors.size());
      for (int nb : neighbors) {
        pos.push_back(p->lnodes[static_cast<size_t>(nb)].order);
      }
      std::sort(pos.begin(), pos.end());
      key = pos[pos.size() / 2];
      if (pos.size() % 2 == 0) {
        key = (key + pos[pos.size() / 2 - 1]) / 2.0;
      }
    } else {
      double sum = 0;
      for (int nb : neighbors) {
        sum += p->lnodes[static_cast<size_t>(nb)].order;
      }
      key = sum / static_cast<double>(neighbors.size());
    }
    keyed.emplace_back(key, id);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (size_t i = 0; i < keyed.size(); ++i) {
    nodes[i] = keyed[i].second;
    p->lnodes[static_cast<size_t>(nodes[i])].order = static_cast<int>(i);
  }
}

/// 4. Crossing-minimization sweeps, keeping the best ordering seen.
void MinimizeCrossings(Pipeline* p) {
  if (p->options.ordering == OrderingMethod::kNone) return;
  bool median = p->options.ordering == OrderingMethod::kMedian;
  uint64_t best = TotalCrossings(*p);
  std::vector<std::vector<int>> best_layers = p->layers;
  for (int sweep = 0; sweep < p->options.sweeps; ++sweep) {
    for (size_t layer = 1; layer < p->layers.size(); ++layer) {
      OrderLayer(p, layer, /*use_up=*/true, median);
    }
    for (size_t layer = p->layers.size(); layer-- > 1;) {
      OrderLayer(p, layer - 1, /*use_up=*/false, median);
    }
    uint64_t now = TotalCrossings(*p);
    if (now < best) {
      best = now;
      best_layers = p->layers;
      if (best == 0) break;
    }
  }
  p->layers = best_layers;
  for (auto& layer : p->layers) {
    for (size_t i = 0; i < layer.size(); ++i) {
      p->lnodes[static_cast<size_t>(layer[i])].order = static_cast<int>(i);
    }
  }
}

/// 5. Horizontal coordinates: sequential packing + neighbor-median
/// relaxation passes that respect left-to-right order.
void AssignCoordinates(Pipeline* p) {
  int gap = std::max(1, p->options.node_gap);
  // Initial packing.
  for (auto& layer : p->layers) {
    double x = 0;
    for (int id : layer) {
      LNode& node = p->lnodes[static_cast<size_t>(id)];
      node.x_center = x + node.width / 2.0;
      x += node.width + gap;
    }
  }
  auto relax = [&](size_t layer, bool use_up) {
    auto& nodes = p->layers[layer];
    // Desired positions.
    std::vector<double> desired(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      LNode& node = p->lnodes[static_cast<size_t>(nodes[i])];
      const std::vector<int>& neighbors = use_up ? node.up : node.down;
      if (neighbors.empty()) {
        desired[i] = node.x_center;
      } else {
        double sum = 0;
        for (int nb : neighbors) {
          sum += p->lnodes[static_cast<size_t>(nb)].x_center;
        }
        desired[i] = sum / static_cast<double>(neighbors.size());
      }
    }
    // Left-to-right pass with minimum separation.
    double min_x = -1e18;
    for (size_t i = 0; i < nodes.size(); ++i) {
      LNode& node = p->lnodes[static_cast<size_t>(nodes[i])];
      double lo = min_x + node.width / 2.0;
      node.x_center = std::max(desired[i], lo);
      min_x = node.x_center + node.width / 2.0 + gap;
    }
    // Right-to-left pass pulls nodes back toward desired positions.
    double max_x = 1e18;
    for (size_t i = nodes.size(); i-- > 0;) {
      LNode& node = p->lnodes[static_cast<size_t>(nodes[i])];
      double hi = max_x - node.width / 2.0;
      node.x_center = std::min(std::max(desired[i], node.x_center), hi);
      if (node.x_center < desired[i]) {
        node.x_center = std::min(desired[i], hi);
      }
      max_x = node.x_center - node.width / 2.0 - gap;
    }
  };
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t layer = 1; layer < p->layers.size(); ++layer) {
      relax(layer, /*use_up=*/true);
    }
    for (size_t layer = p->layers.size(); layer-- > 1;) {
      relax(layer - 1, /*use_up=*/false);
    }
  }
  // Normalize to x >= 0.
  double min_x = 0;
  bool first = true;
  for (const LNode& node : p->lnodes) {
    double left = node.x_center - node.width / 2.0;
    if (first || left < min_x) {
      min_x = left;
      first = false;
    }
  }
  for (LNode& node : p->lnodes) node.x_center -= min_x;
}

}  // namespace

uint64_t CountBilayerCrossings(std::vector<std::pair<int, int>> edges) {
  if (edges.empty()) return 0;
  std::sort(edges.begin(), edges.end());
  int max_lower = 0;
  for (const auto& [u, v] : edges) max_lower = std::max(max_lower, v);
  Bit bit(max_lower + 1);
  uint64_t crossings = 0;
  // Process in (u, v) order; an earlier edge crosses the current one
  // iff its lower endpoint is strictly greater.
  for (size_t i = 0; i < edges.size(); ++i) {
    int v = edges[i].second;
    crossings += bit.Total() - bit.Prefix(v);
    bit.Add(v);
  }
  return crossings;
}

Result<DagLayout> LayoutDag(const Digraph& graph,
                            const LayoutOptions& options) {
  ODE_TRACE_SPAN("dag.layout");
  static obs::Counter* layouts =
      obs::Registry::Global().counter("dag.layouts");
  static obs::Histogram* latency =
      obs::Registry::Global().histogram("dag.layout_latency_ns");
  obs::ScopedLatencyTimer timer(latency, layouts);
  DagLayout layout;
  if (graph.node_count() == 0) return layout;
  Pipeline p;
  p.graph = &graph;
  p.options = options;
  RemoveCycles(&p);
  AssignLayers(&p);
  BuildLayeredGraph(&p);
  MinimizeCrossings(&p);
  AssignCoordinates(&p);
  layout.crossings = TotalCrossings(p);

  int layer_height = 1 + std::max(1, options.layer_gap);
  layout.nodes.resize(static_cast<size_t>(graph.node_count()));
  layout.layers.assign(p.layers.size(), {});
  for (size_t layer = 0; layer < p.layers.size(); ++layer) {
    for (int id : p.layers[layer]) {
      const LNode& node = p.lnodes[static_cast<size_t>(id)];
      if (node.original < 0) continue;
      PlacedNode placed;
      placed.node = node.original;
      placed.layer = node.layer;
      placed.order = node.order;
      placed.width = node.width;
      placed.x = static_cast<int>(std::lround(node.x_center -
                                              node.width / 2.0));
      placed.y = node.layer * layer_height;
      layout.nodes[static_cast<size_t>(node.original)] = placed;
      layout.layers[layer].push_back(node.original);
    }
  }
  // Edge polylines through dummy positions.
  layout.edge_paths.resize(p.edge_chains.size());
  for (size_t e = 0; e < p.edge_chains.size(); ++e) {
    std::vector<EdgeBend> path;
    for (size_t i = 0; i < p.edge_chains[e].size(); ++i) {
      const LNode& node =
          p.lnodes[static_cast<size_t>(p.edge_chains[e][i])];
      EdgeBend bend;
      bend.x = static_cast<int>(std::lround(node.x_center));
      bend.y = node.layer * layer_height;
      path.push_back(bend);
    }
    if (p.reversed[e]) std::reverse(path.begin(), path.end());
    layout.edge_paths[e] = std::move(path);
  }
  // Extents.
  for (const PlacedNode& node : layout.nodes) {
    layout.width = std::max(layout.width, node.x + node.width);
    layout.height = std::max(layout.height, node.y + 1);
  }
  for (const auto& path : layout.edge_paths) {
    for (const EdgeBend& bend : path) {
      layout.width = std::max(layout.width, bend.x + 1);
      layout.height = std::max(layout.height, bend.y + 1);
    }
  }
  return layout;
}

}  // namespace ode::dag
