
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/odeview/app.cc" "src/odeview/CMakeFiles/ode_odeview.dir/app.cc.o" "gcc" "src/odeview/CMakeFiles/ode_odeview.dir/app.cc.o.d"
  "/root/repo/src/odeview/browse_node.cc" "src/odeview/CMakeFiles/ode_odeview.dir/browse_node.cc.o" "gcc" "src/odeview/CMakeFiles/ode_odeview.dir/browse_node.cc.o.d"
  "/root/repo/src/odeview/dag_view.cc" "src/odeview/CMakeFiles/ode_odeview.dir/dag_view.cc.o" "gcc" "src/odeview/CMakeFiles/ode_odeview.dir/dag_view.cc.o.d"
  "/root/repo/src/odeview/db_interactor.cc" "src/odeview/CMakeFiles/ode_odeview.dir/db_interactor.cc.o" "gcc" "src/odeview/CMakeFiles/ode_odeview.dir/db_interactor.cc.o.d"
  "/root/repo/src/odeview/display_state.cc" "src/odeview/CMakeFiles/ode_odeview.dir/display_state.cc.o" "gcc" "src/odeview/CMakeFiles/ode_odeview.dir/display_state.cc.o.d"
  "/root/repo/src/odeview/join_view.cc" "src/odeview/CMakeFiles/ode_odeview.dir/join_view.cc.o" "gcc" "src/odeview/CMakeFiles/ode_odeview.dir/join_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ode_common.dir/DependInfo.cmake"
  "/root/repo/build/src/odb/CMakeFiles/ode_odb.dir/DependInfo.cmake"
  "/root/repo/build/src/owl/CMakeFiles/ode_owl.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ode_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/dynlink/CMakeFiles/ode_dynlink.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
