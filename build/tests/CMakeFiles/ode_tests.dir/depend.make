# Empty dependencies file for ode_tests.
# This may be replaced when dependencies are built.
