#ifndef ODEVIEW_ODB_CLUSTER_PREFETCH_H_
#define ODEVIEW_ODB_CLUSTER_PREFETCH_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/access_log.h"
#include "common/result.h"
#include "odb/buffer_pool.h"
#include "odb/database.h"

namespace ode::odb::cluster {

/// An immutable page-affinity table driving the pool's affinity
/// read-ahead: for each heap page, the pages most often touched next
/// by the same reference cascades, strongest first. Built from an
/// access-recorder snapshot with `BuildAffinityPrefetchSource` and
/// installed with `BufferPool::SetPrefetchSource`; the pool then
/// schedules the top neighbors whenever a listed page misses (policy
/// `kAffinity`).
///
/// The table is a placement-time snapshot: rebuild it after a
/// `Database::Recluster` (record→page assignments changed) or after
/// significant churn.
class AffinityPrefetchSource : public PrefetchSource {
 public:
  explicit AffinityPrefetchSource(
      std::unordered_map<PageId, std::vector<PageId>> neighbors)
      : neighbors_(std::move(neighbors)) {}

  size_t TopNeighbors(PageId page, PageId* out,
                      size_t max) const override {
    auto it = neighbors_.find(page);
    if (it == neighbors_.end()) return 0;
    size_t n = std::min(max, it->second.size());
    for (size_t i = 0; i < n; ++i) out[i] = it->second[i];
    return n;
  }

  /// Pages with at least one neighbor (for tests / the shell report).
  size_t page_count() const { return neighbors_.size(); }

 private:
  const std::unordered_map<PageId, std::vector<PageId>> neighbors_;
};

/// Projects the profile's object-level affinity edges onto the current
/// physical placement: each edge's endpoints resolve (via the heap
/// directories) to the pages holding them now, page-pair weights
/// accumulate, and every page keeps its `top_k` strongest distinct
/// neighbors. Edges whose endpoints died, and edges that resolve to a
/// single page (already co-located — nothing to prefetch), are
/// dropped.
Result<std::shared_ptr<AffinityPrefetchSource>> BuildAffinityPrefetchSource(
    Database* db, const obs::AccessProfile& profile, size_t top_k = 4);

}  // namespace ode::odb::cluster

#endif  // ODEVIEW_ODB_CLUSTER_PREFETCH_H_
