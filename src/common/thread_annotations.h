#ifndef ODEVIEW_COMMON_THREAD_ANNOTATIONS_H_
#define ODEVIEW_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros (the `ODE_` spelling
/// of the scheme documented at
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
///
/// Under Clang with `-Wthread-safety` these turn locking contracts
/// into compile errors: a field declared `ODE_GUARDED_BY(mu_)` cannot
/// be touched without holding `mu_`, a method declared
/// `ODE_REQUIRES(mu_)` cannot be called without it, and RAII lockers
/// (`ODE_SCOPED_CAPABILITY`) are tracked through scopes. Under GCC (or
/// any compiler without the attributes) every macro expands to
/// nothing, so annotated headers stay portable — CI's static-analysis
/// job is the enforcing build.
///
/// Known analysis limits we rely on (documented in docs/LOCKING.md):
/// constructors/destructors are not analyzed, and the analysis is
/// intra-procedural (no inlining), which is exactly why the contracts
/// below live on function signatures.

#if defined(__clang__) && defined(__has_attribute)
#define ODE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ODE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Type attribute: the class is a lockable capability ("mutex" names
/// it in warnings).
#define ODE_CAPABILITY(x) ODE_THREAD_ANNOTATION_(capability(x))

/// Type attribute: RAII object that acquires on construction and
/// releases on destruction (std::lock_guard-style).
#define ODE_SCOPED_CAPABILITY ODE_THREAD_ANNOTATION_(scoped_lockable)

/// Data member is protected by the given capability.
#define ODE_GUARDED_BY(x) ODE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define ODE_PT_GUARDED_BY(x) ODE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability held (exclusively / shared) on
/// entry, and does not release it.
#define ODE_REQUIRES(...) \
  ODE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ODE_REQUIRES_SHARED(...) \
  ODE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds
/// it past return.
#define ODE_ACQUIRE(...) \
  ODE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ODE_ACQUIRE_SHARED(...) \
  ODE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability. The plain form releases whatever
/// mode was held (what RAII-locker destructors want).
#define ODE_RELEASE(...) \
  ODE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ODE_RELEASE_SHARED(...) \
  ODE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; the first argument is the return value
/// meaning success.
#define ODE_TRY_ACQUIRE(...) \
  ODE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define ODE_TRY_ACQUIRE_SHARED(...) \
  ODE_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock
/// guard for self-locking public methods).
#define ODE_EXCLUDES(...) ODE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function asserts (at runtime) that the capability is already held.
#define ODE_ASSERT_CAPABILITY(x) \
  ODE_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability.
#define ODE_RETURN_CAPABILITY(x) ODE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use must
/// carry a rationale comment and be listed in docs/LOCKING.md
/// ("documented lock-free fast paths" in the PR acceptance sense).
#define ODE_NO_THREAD_SAFETY_ANALYSIS \
  ODE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // ODEVIEW_COMMON_THREAD_ANNOTATIONS_H_
